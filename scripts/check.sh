#!/usr/bin/env bash
# Repo health check: full test suite, a CLI smoke, and the guard that
# instrumentation stays a no-op while disabled.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tests =="
python -m pytest -x -q

echo "== cli smoke (table1) =="
python -m repro table1 > /dev/null
echo "ok"

echo "== disabled-overhead guard =="
python -m pytest -q tests/test_obs.py -k disabled

echo "all checks passed"
