#!/usr/bin/env bash
# Repo health check: full test suite, a CLI smoke, and the guard that
# instrumentation stays a no-op while disabled.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

# Every foreground step runs under a hard wall-clock cap: a wedged step
# (a hung server, a deadlocked pool) fails the gate instead of hanging
# it forever.  Override per-run with STEP_TIMEOUT=<seconds>.
STEP_TIMEOUT="${STEP_TIMEOUT:-1200}"
step() { timeout --kill-after=15 "$STEP_TIMEOUT" "$@"; }

echo "== tests =="
step python -m pytest -x -q

echo "== cli smoke (table1) =="
step python -m repro table1 > /dev/null
echo "ok"

echo "== disabled-overhead guard =="
step python -m pytest -q tests/test_obs.py -k disabled

echo "== bench gate: fresh BENCH_*.json vs stored baseline =="
step python scripts/bench_gate.py

echo "== resilience smoke: injected fault must fail the verifier =="
step python -m repro faults verilog-initial --smoke

echo "== resilience smoke: checkpointed fig1 kill -> resume -> identical =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
step python -m repro fig1 > "$tmp/fresh.txt"
if step env REPRO_ABORT_AFTER=4 python -m repro fig1 \
    --checkpoint "$tmp/ck.jsonl" > /dev/null 2> "$tmp/interrupt.log"; then
  echo "expected the interrupted sweep to exit non-zero" >&2
  exit 1
fi
test -s "$tmp/ck.jsonl"
step python -m repro fig1 \
    --checkpoint "$tmp/ck.jsonl" --resume > "$tmp/resumed.txt"
cmp "$tmp/fresh.txt" "$tmp/resumed.txt"
echo "ok"

echo "== exec smoke: fig1 --jobs 2 byte-identical to serial =="
step python -m repro fig1 --jobs 2 > "$tmp/parallel.txt"
cmp "$tmp/fresh.txt" "$tmp/parallel.txt"
echo "ok"

echo "== engine smoke: fig1/verify --engine batch byte-identical to compiled =="
step python -m repro engines > /dev/null
step python -m repro fig1 --engine batch > "$tmp/batch.txt"
cmp "$tmp/fresh.txt" "$tmp/batch.txt"
step python -m repro verify verilog-opt --engine compiled > "$tmp/verify_c.txt"
step python -m repro verify verilog-opt --engine batch > "$tmp/verify_b.txt"
cmp "$tmp/verify_c.txt" "$tmp/verify_b.txt"
echo "ok"

echo "== cache smoke: warm table2 run identical, with cache hits =="
step python -m repro table2 --cache "$tmp/cache" > "$tmp/t2_cold.txt"
step python -m repro table2 --cache "$tmp/cache" > "$tmp/t2_warm.txt"
cmp "$tmp/t2_cold.txt" "$tmp/t2_warm.txt"
step python -m repro table2 --cache "$tmp/cache" \
    --metrics "$tmp/t2_metrics.json" > /dev/null
step python - "$tmp/t2_metrics.json" <<'EOF'
import json, sys
payload = json.load(open(sys.argv[1]))
hits = payload["metrics"]["counters"].get("cache.hits", 0)
assert hits > 0, f"expected warm-cache hits, got {hits}"
print(f"cache.hits = {hits}")
EOF
echo "ok"

echo "== serve smoke: live service vs CLI, batching, cache hits, drain =="
python -m repro serve --port 0 --cache "$tmp/cache" \
    --warm verilog-initial --batch-wait-ms 50 > "$tmp/serve.out" &
serve_pid=$!
trap 'kill "$serve_pid" 2> /dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 600); do
  grep -q '^serving on ' "$tmp/serve.out" && break
  if ! kill -0 "$serve_pid" 2> /dev/null; then
    echo "serve process died during startup" >&2
    cat "$tmp/serve.out" >&2
    exit 1
  fi
  sleep 0.5
done
addr="$(sed -n 's/^serving on //p' "$tmp/serve.out" | head -n 1)"
test -n "$addr"
step python -m repro measure verilog-initial --cache "$tmp/cache" --json \
    > "$tmp/measure_cli.json" 2> /dev/null
step python - "$addr" "$tmp" <<'EOF'
import json, sys, urllib.request
from concurrent.futures import ThreadPoolExecutor

base = "http://" + sys.argv[1]
tmp = sys.argv[2]

def post(path, payload):
    req = urllib.request.Request(base + path, data=json.dumps(payload).encode())
    with urllib.request.urlopen(req, timeout=300) as resp:
        return resp.status, resp.read()

with urllib.request.urlopen(base + "/healthz", timeout=60) as resp:
    health = json.load(resp)
assert health["status"] == "ok", health

# /v1/measure must be byte-identical to `measure --json` on the same cache
status, body = post("/v1/measure", {"design": "verilog-initial"})
assert status == 200
cli = open(tmp + "/measure_cli.json", "rb").read()
assert body == cli, "service and CLI measure outputs differ"

# a concurrent burst of single-block requests must coalesce
from repro.eval.verify import random_matrices
from repro.idct.reference import chen_wang_idct
blocks = [[list(r) for r in m] for m in random_matrices(8)]
with ThreadPoolExecutor(max_workers=8) as pool:
    results = list(pool.map(
        lambda b: post("/v1/idct", {"design": "verilog-initial",
                                    "blocks": [b]}), blocks))
for (status, body), block in zip(results, blocks):
    assert status == 200
    assert json.loads(body)["outputs"] == [chen_wang_idct(block)]

with urllib.request.urlopen(base + "/metrics", timeout=60) as resp:
    metrics = resp.read().decode()
lines = dict(line.split(" ", 1) for line in metrics.splitlines()
             if line and not line.startswith("#") and "{" not in line)
assert float(lines.get("repro_cache_hits", 0)) > 0, "expected warm-cache hits"
invocations = int(lines["repro_serve_sim_invocations"])
assert invocations < len(blocks), \
    f"{len(blocks)} requests should coalesce below {len(blocks)} invocations"
print(f"serve: cache.hits={lines['repro_cache_hits']}, "
      f"{len(blocks)} requests -> {invocations} invocations")
EOF
echo "ok"

echo "== obs smoke: live /v1/jobs/<id>/events stream covers every design =="
step python - "$addr" <<'EOF'
import json, sys, urllib.request

base = "http://" + sys.argv[1]

req = urllib.request.Request(
    base + "/v1/jobs", data=json.dumps({"kind": "fig1"}).encode())
with urllib.request.urlopen(req, timeout=60) as resp:
    job = json.load(resp)

# Stream the chunked NDJSON event feed while the sweep runs; the server
# ends the stream once the job is terminal and every event is delivered.
events = []
with urllib.request.urlopen(
        base + f"/v1/jobs/{job['id']}/events", timeout=600) as resp:
    assert resp.headers.get("Transfer-Encoding") == "chunked", \
        dict(resp.headers)
    for line in resp:
        events.append(json.loads(line))
assert events, "event stream was empty"

with urllib.request.urlopen(base + f"/v1/jobs/{job['id']}", timeout=60) as resp:
    done = json.load(resp)
assert done["status"] == "done", done

# Every design the job's trace measured must have a cell.done event.
with urllib.request.urlopen(
        base + f"/v1/traces/{done['trace']}", timeout=60) as resp:
    tree = json.load(resp)

def walk(spans):
    for span in spans:
        yield span
        yield from walk(span["children"])

measured = {span["attrs"].get("design") for span in walk(tree["spans"])
            if span["name"] == "measure"}
finished = {e.get("design") for e in events if e.get("type") == "cell.done"}
assert measured and measured <= finished, (sorted(measured - finished))

# A second GET replays the identical history after completion.
with urllib.request.urlopen(
        base + f"/v1/jobs/{job['id']}/events", timeout=60) as resp:
    replay = [json.loads(line) for line in resp]
assert replay == events, (len(replay), len(events))
print(f"obs: {len(events)} events streamed, "
      f"{len(finished)} designs finished, replay identical")
EOF
kill -TERM "$serve_pid"
wait "$serve_pid"
echo "ok"

echo "== chaos smoke: seeded kills and cache rot leave output honest =="
step python -m repro chaos worker-kill --seed 3
step python -m repro chaos cache-rot --seed 3
step python -m repro chaos serve-kill --seed 3
step python -m repro fig1 --jobs 2 --chaos 'seed=3,kill=0.7' > "$tmp/chaotic.txt"
cmp "$tmp/fresh.txt" "$tmp/chaotic.txt"
echo "ok"

echo "== serve journal smoke: SIGKILL mid-job -> interrupted -> resumed =="
start_journal_server() {
  : > "$tmp/journal_serve.out"
  python -m repro serve --port 0 --journal "$tmp/jobs.jsonl" "$@" \
      > "$tmp/journal_serve.out" &
  journal_pid=$!
  for _ in $(seq 1 600); do
    grep -q '^serving on ' "$tmp/journal_serve.out" && return 0
    if ! kill -0 "$journal_pid" 2> /dev/null; then
      echo "journaled serve process died during startup" >&2
      cat "$tmp/journal_serve.out" >&2
      return 1
    fi
    sleep 0.5
  done
  return 1
}
journal_addr() {
  sed -n 's/^serving on //p' "$tmp/journal_serve.out" | head -n 1
}
start_journal_server
trap 'kill "$journal_pid" 2> /dev/null || true; rm -rf "$tmp"' EXIT
step python - "$(journal_addr)" <<'EOF'
import json, urllib.request, sys
req = urllib.request.Request(
    "http://" + sys.argv[1] + "/v1/jobs",
    data=json.dumps({"kind": "fig1"}).encode())
with urllib.request.urlopen(req, timeout=60) as resp:
    job = json.load(resp)
assert job["id"] == "job-1" and job["status"] in ("queued", "running"), job
EOF
sleep 1  # let the job start running before the crash
kill -9 "$journal_pid"
wait "$journal_pid" 2> /dev/null || true
test -s "$tmp/jobs.jsonl"
start_journal_server  # restart WITHOUT --resume-jobs: honest, not re-run
step python - "$(journal_addr)" <<'EOF'
import json, urllib.request, sys
with urllib.request.urlopen(
        "http://" + sys.argv[1] + "/v1/jobs", timeout=60) as resp:
    jobs = json.load(resp)["jobs"]
assert [j["id"] for j in jobs] == ["job-1"], jobs
assert jobs[0]["status"] == "interrupted", jobs
assert jobs[0]["interrupted"] is True, jobs
EOF
kill -TERM "$journal_pid"
wait "$journal_pid"
start_journal_server --resume-jobs  # now the lost job is re-run
step python - "$(journal_addr)" <<'EOF'
import json, time, urllib.request, sys
base = "http://" + sys.argv[1]
deadline = time.time() + 600
while time.time() < deadline:
    with urllib.request.urlopen(base + "/v1/jobs/job-1", timeout=60) as resp:
        job = json.load(resp)
    if job["status"] in ("done", "failed"):
        break
    time.sleep(0.5)
assert job["status"] == "done", job
assert job["interrupted"] is True, job  # history survives the re-run
assert "Design space exploration" in job["output"], job
EOF
kill -TERM "$journal_pid"
wait "$journal_pid"
echo "ok"

echo "== serve pool smoke: --workers 2 identical, survives worker SIGKILL =="
python -m repro serve --port 0 --warm verilog-initial \
    --batch-wait-ms 50 > "$tmp/pool1.out" &
pool1_pid=$!
python -m repro serve --port 0 --workers 2 --warm verilog-initial \
    --batch-wait-ms 50 --journal "$tmp/pool_jobs.jsonl" > "$tmp/pool2.out" &
pool2_pid=$!
trap 'kill "$pool1_pid" "$pool2_pid" 2> /dev/null || true; rm -rf "$tmp"' EXIT
for out in pool1.out pool2.out; do
  for _ in $(seq 1 600); do
    grep -q '^serving on ' "$tmp/$out" && break
    sleep 0.5
  done
  grep -q '^serving on ' "$tmp/$out" || {
    echo "pool smoke server ($out) never came up" >&2
    cat "$tmp/$out" >&2
    exit 1
  }
done
addr1="$(sed -n 's/^serving on //p' "$tmp/pool1.out" | head -n 1)"
addr2="$(sed -n 's/^serving on //p' "$tmp/pool2.out" | head -n 1)"
step python - "$addr1" "$addr2" <<'EOF'
import json, os, signal, sys, time, urllib.request
from concurrent.futures import ThreadPoolExecutor

single = "http://" + sys.argv[1]   # --workers 1
pooled = "http://" + sys.argv[2]   # --workers 2

def post(base, path, payload):
    req = urllib.request.Request(base + path,
                                 data=json.dumps(payload).encode())
    with urllib.request.urlopen(req, timeout=300) as resp:
        return resp.status, resp.read()

def get_json(base, path):
    with urllib.request.urlopen(base + path, timeout=60) as resp:
        return json.load(resp)

# 1. the same coalesced burst must be byte-identical across both tiers
from repro.eval.verify import random_matrices
blocks = [[list(r) for r in m] for m in random_matrices(8)]

def burst(base):
    with ThreadPoolExecutor(max_workers=8) as pool:
        return list(pool.map(
            lambda b: post(base, "/v1/idct",
                           {"design": "verilog-initial", "blocks": [b]}),
            blocks))

for (s1, b1), (s2, b2) in zip(burst(single), burst(pooled)):
    assert s1 == s2 == 200, (s1, s2)
    assert b1 == b2, "pooled response body differs from single-process"

# 2. /healthz exposes both forked workers
workers = get_json(pooled, "/healthz")["workers"]
assert len(workers) == 2, workers
assert all(w["state"] in ("idle", "busy") for w in workers), workers

# 3. SIGKILL one evaluator worker while a journaled sweep job runs: the
# job (parent compute thread) must finish, and the pool must respawn.
status, body = post(pooled, "/v1/jobs", {"kind": "fig1"})
assert status == 202, (status, body)
job = json.loads(body)
os.kill(workers[0]["pid"], signal.SIGKILL)
deadline = time.time() + 600
while time.time() < deadline:
    job = get_json(pooled, f"/v1/jobs/{job['id']}")
    if job["status"] in ("done", "failed"):
        break
    time.sleep(0.5)
assert job["status"] == "done", job

# 4. the burst still answers correctly and the restart is on the books
for (s1, b1), (s2, b2) in zip(burst(single), burst(pooled)):
    assert s1 == s2 == 200 and b1 == b2
deadline = time.time() + 120
restarts = 0.0
while time.time() < deadline:
    with urllib.request.urlopen(pooled + "/metrics", timeout=60) as resp:
        lines = dict(
            line.split(" ", 1) for line in resp.read().decode().splitlines()
            if line and not line.startswith("#") and "{" not in line)
    restarts = float(lines.get("repro_serve_worker_restarts", 0))
    if restarts > 0:
        break
    time.sleep(0.5)
assert restarts > 0, "worker SIGKILL was never noticed/respawned"
print(f"pool: burst identical across tiers, job {job['id']} done, "
      f"worker restarts = {restarts:g}")
EOF
kill -TERM "$pool1_pid" "$pool2_pid"
wait "$pool1_pid"
wait "$pool2_pid"
echo "ok"

echo "== fabric smoke: fig1 --fabric over 2 pull-workers byte-identical =="
: > "$tmp/fabric_serve.out"
python -m repro serve --port 0 --journal "$tmp/fabric_jobs.jsonl" \
    > "$tmp/fabric_serve.out" &
fabric_pid=$!
trap 'kill "$fabric_pid" 2> /dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 600); do
  grep -q '^serving on ' "$tmp/fabric_serve.out" && break
  if ! kill -0 "$fabric_pid" 2> /dev/null; then
    echo "fabric master died during startup" >&2
    cat "$tmp/fabric_serve.out" >&2
    exit 1
  fi
  sleep 0.5
done
fabric_addr="$(sed -n 's/^serving on //p' "$tmp/fabric_serve.out" | head -n 1)"
test -n "$fabric_addr"
python -m repro work --master "$fabric_addr" --parallel 2 &
work_pid=$!
trap 'kill "$fabric_pid" "$work_pid" 2> /dev/null || true; rm -rf "$tmp"' EXIT
step python -m repro fig1 --fabric "$fabric_addr" > "$tmp/fabric.txt"
cmp "$tmp/fresh.txt" "$tmp/fabric.txt"
step python - "$fabric_addr" <<'EOF'
import sys, urllib.request
with urllib.request.urlopen(
        "http://" + sys.argv[1] + "/metrics", timeout=60) as resp:
    lines = dict(line.split(" ", 1)
                 for line in resp.read().decode().splitlines()
                 if line and not line.startswith("#") and "{" not in line)
leases = float(lines.get("repro_fabric_leases", 0))
assert leases > 0, "sweep completed without any fabric leases on the books"
print(f"fabric: leases = {leases:g}")
EOF
kill -TERM "$fabric_pid"
wait "$fabric_pid"
wait "$work_pid" 2> /dev/null || true
echo "ok"

echo "== chaos smoke: fabric workers SIGKILLed mid-lease stay honest =="
step python -m repro chaos fabric-kill --seed 3
echo "ok"

echo "== qos smoke: throttled heavy tenant, light tenant still completes =="
cat > "$tmp/keys.json" <<'EOF'
{
  "tenants": {
    "heavy": {"weight": 4, "rate_per_s": 1, "burst": 1, "priority": 5}
  },
  "keys": {"secret-heavy": "heavy"}
}
EOF
: > "$tmp/qos_serve.out"
python -m repro serve --port 0 --api-keys "$tmp/keys.json" \
    > "$tmp/qos_serve.out" &
qos_pid=$!
trap 'kill "$qos_pid" 2> /dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 600); do
  grep -q '^serving on ' "$tmp/qos_serve.out" && break
  if ! kill -0 "$qos_pid" 2> /dev/null; then
    echo "qos serve process died during startup" >&2
    cat "$tmp/qos_serve.out" >&2
    exit 1
  fi
  sleep 0.5
done
qos_addr="$(sed -n 's/^serving on //p' "$tmp/qos_serve.out" | head -n 1)"
test -n "$qos_addr"
step python - "$qos_addr" "$tmp" <<'EOF'
import json, sys, time, urllib.error, urllib.request

base = "http://" + sys.argv[1]
tmp = sys.argv[2]
fresh = open(tmp + "/fresh.txt", "r", encoding="utf-8").read()

def post(path, payload, key=None):
    headers = {"X-Api-Key": key} if key else {}
    req = urllib.request.Request(base + path,
                                 data=json.dumps(payload).encode(),
                                 headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=300) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()

# an unknown key is a 403, never a silent anon demotion
status, _, _ = post("/v1/idct",
                    {"design": "verilog-initial",
                     "blocks": [[[0] * 8 for _ in range(8)]]},
                    key="no-such-key")
assert status == 403, status

# the heavy tenant saturates its 1 req/s token bucket: the flood must
# see at least one success and at least one 429 with a Retry-After
statuses = []
retry_after = None
for _ in range(5):
    status, headers, _ = post(
        "/v1/idct", {"design": "verilog-initial",
                     "blocks": [[[0] * 8 for _ in range(8)]]},
        key="secret-heavy")
    statuses.append(status)
    if status == 429 and retry_after is None:
        retry_after = headers.get("Retry-After")
assert 200 in statuses, statuses
assert 429 in statuses, statuses
assert retry_after is not None and int(retry_after) >= 1, retry_after

# the light (anonymous) tenant's job still completes under the flood,
# and its output is byte-identical to the CLI's clean run
status, _, body = post("/v1/jobs", {"kind": "fig1"})
assert status == 202, (status, body)
job = json.loads(body)
assert job["tenant"] == "anon" and job["priority"] == 0, job
deadline = time.time() + 600
while time.time() < deadline:
    with urllib.request.urlopen(base + f"/v1/jobs/{job['id']}",
                                timeout=60) as resp:
        job = json.load(resp)
    if job["status"] in ("done", "failed"):
        break
    time.sleep(0.5)
assert job["status"] == "done", job
# the CLI prints the render (adding one trailing newline); the job
# stores the raw render text — account for exactly that one byte
assert job["output"] + "\n" == fresh, \
    "served job output differs from the CLI run"

# per-tenant throttle counters are on the books (and pre-registered
# series render as honest zeros for tenants that were never throttled)
with urllib.request.urlopen(base + "/metrics", timeout=60) as resp:
    metrics = resp.read().decode()
series = dict(line.rsplit(" ", 1) for line in metrics.splitlines()
              if line and not line.startswith("#"))
throttled = float(series.get('repro_qos_throttled{tenant="heavy"}', 0))
assert throttled > 0, "heavy tenant was throttled but /metrics shows none"
assert 'repro_qos_preemptions{tenant="heavy"}' in series, \
    "per-tenant qos series not pre-registered"
print(f"qos: flood statuses {statuses}, Retry-After {retry_after}, "
      f"throttled[heavy] = {throttled:g}, light job done byte-identical")
EOF
kill -TERM "$qos_pid"
wait "$qos_pid"
echo "ok"

echo "== chaos smoke: tenant storm preempts and resumes byte-identical =="
step python -m repro chaos qos-storm --seed 3
echo "ok"

echo "all checks passed"
