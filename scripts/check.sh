#!/usr/bin/env bash
# Repo health check: full test suite, a CLI smoke, and the guard that
# instrumentation stays a no-op while disabled.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tests =="
python -m pytest -x -q

echo "== cli smoke (table1) =="
python -m repro table1 > /dev/null
echo "ok"

echo "== disabled-overhead guard =="
python -m pytest -q tests/test_obs.py -k disabled

echo "== resilience smoke: injected fault must fail the verifier =="
python -m repro faults verilog-initial --smoke

echo "== resilience smoke: checkpointed fig1 kill -> resume -> identical =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
python -m repro fig1 > "$tmp/fresh.txt"
if REPRO_ABORT_AFTER=4 python -m repro fig1 \
    --checkpoint "$tmp/ck.jsonl" > /dev/null 2> "$tmp/interrupt.log"; then
  echo "expected the interrupted sweep to exit non-zero" >&2
  exit 1
fi
test -s "$tmp/ck.jsonl"
python -m repro fig1 \
    --checkpoint "$tmp/ck.jsonl" --resume > "$tmp/resumed.txt"
cmp "$tmp/fresh.txt" "$tmp/resumed.txt"
echo "ok"

echo "== exec smoke: fig1 --jobs 2 byte-identical to serial =="
python -m repro fig1 --jobs 2 > "$tmp/parallel.txt"
cmp "$tmp/fresh.txt" "$tmp/parallel.txt"
echo "ok"

echo "== cache smoke: warm table2 run identical, with cache hits =="
python -m repro table2 --cache "$tmp/cache" > "$tmp/t2_cold.txt"
python -m repro table2 --cache "$tmp/cache" > "$tmp/t2_warm.txt"
cmp "$tmp/t2_cold.txt" "$tmp/t2_warm.txt"
python -m repro table2 --cache "$tmp/cache" \
    --metrics "$tmp/t2_metrics.json" > /dev/null
python - "$tmp/t2_metrics.json" <<'EOF'
import json, sys
payload = json.load(open(sys.argv[1]))
hits = payload["metrics"]["counters"].get("cache.hits", 0)
assert hits > 0, f"expected warm-cache hits, got {hits}"
print(f"cache.hits = {hits}")
EOF
echo "ok"

echo "all checks passed"
