#!/usr/bin/env bash
# Repo health check: full test suite, a CLI smoke, and the guard that
# instrumentation stays a no-op while disabled.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tests =="
python -m pytest -x -q

echo "== cli smoke (table1) =="
python -m repro table1 > /dev/null
echo "ok"

echo "== disabled-overhead guard =="
python -m pytest -q tests/test_obs.py -k disabled

echo "== resilience smoke: injected fault must fail the verifier =="
python -m repro faults verilog-initial --smoke

echo "== resilience smoke: checkpointed fig1 kill -> resume -> identical =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
python -m repro fig1 > "$tmp/fresh.txt"
if REPRO_ABORT_AFTER=4 python -m repro fig1 \
    --checkpoint "$tmp/ck.jsonl" > /dev/null 2> "$tmp/interrupt.log"; then
  echo "expected the interrupted sweep to exit non-zero" >&2
  exit 1
fi
test -s "$tmp/ck.jsonl"
python -m repro fig1 \
    --checkpoint "$tmp/ck.jsonl" --resume > "$tmp/resumed.txt"
cmp "$tmp/fresh.txt" "$tmp/resumed.txt"
echo "ok"

echo "== exec smoke: fig1 --jobs 2 byte-identical to serial =="
python -m repro fig1 --jobs 2 > "$tmp/parallel.txt"
cmp "$tmp/fresh.txt" "$tmp/parallel.txt"
echo "ok"

echo "== cache smoke: warm table2 run identical, with cache hits =="
python -m repro table2 --cache "$tmp/cache" > "$tmp/t2_cold.txt"
python -m repro table2 --cache "$tmp/cache" > "$tmp/t2_warm.txt"
cmp "$tmp/t2_cold.txt" "$tmp/t2_warm.txt"
python -m repro table2 --cache "$tmp/cache" \
    --metrics "$tmp/t2_metrics.json" > /dev/null
python - "$tmp/t2_metrics.json" <<'EOF'
import json, sys
payload = json.load(open(sys.argv[1]))
hits = payload["metrics"]["counters"].get("cache.hits", 0)
assert hits > 0, f"expected warm-cache hits, got {hits}"
print(f"cache.hits = {hits}")
EOF
echo "ok"

echo "== serve smoke: live service vs CLI, batching, cache hits, drain =="
python -m repro serve --port 0 --cache "$tmp/cache" \
    --warm verilog-initial --batch-wait-ms 50 > "$tmp/serve.out" &
serve_pid=$!
trap 'kill "$serve_pid" 2> /dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 600); do
  grep -q '^serving on ' "$tmp/serve.out" && break
  if ! kill -0 "$serve_pid" 2> /dev/null; then
    echo "serve process died during startup" >&2
    cat "$tmp/serve.out" >&2
    exit 1
  fi
  sleep 0.5
done
addr="$(sed -n 's/^serving on //p' "$tmp/serve.out" | head -n 1)"
test -n "$addr"
python -m repro measure verilog-initial --cache "$tmp/cache" --json \
    > "$tmp/measure_cli.json" 2> /dev/null
python - "$addr" "$tmp" <<'EOF'
import json, sys, urllib.request
from concurrent.futures import ThreadPoolExecutor

base = "http://" + sys.argv[1]
tmp = sys.argv[2]

def post(path, payload):
    req = urllib.request.Request(base + path, data=json.dumps(payload).encode())
    with urllib.request.urlopen(req, timeout=300) as resp:
        return resp.status, resp.read()

with urllib.request.urlopen(base + "/healthz", timeout=60) as resp:
    health = json.load(resp)
assert health["status"] == "ok", health

# /v1/measure must be byte-identical to `measure --json` on the same cache
status, body = post("/v1/measure", {"design": "verilog-initial"})
assert status == 200
cli = open(tmp + "/measure_cli.json", "rb").read()
assert body == cli, "service and CLI measure outputs differ"

# a concurrent burst of single-block requests must coalesce
from repro.eval.verify import random_matrices
from repro.idct.reference import chen_wang_idct
blocks = [[list(r) for r in m] for m in random_matrices(8)]
with ThreadPoolExecutor(max_workers=8) as pool:
    results = list(pool.map(
        lambda b: post("/v1/idct", {"design": "verilog-initial",
                                    "blocks": [b]}), blocks))
for (status, body), block in zip(results, blocks):
    assert status == 200
    assert json.loads(body)["outputs"] == [chen_wang_idct(block)]

with urllib.request.urlopen(base + "/metrics", timeout=60) as resp:
    metrics = resp.read().decode()
lines = dict(line.split(" ", 1) for line in metrics.splitlines()
             if line and not line.startswith("#") and "{" not in line)
assert float(lines.get("repro_cache_hits", 0)) > 0, "expected warm-cache hits"
invocations = int(lines["repro_serve_sim_invocations"])
assert invocations < len(blocks), \
    f"{len(blocks)} requests should coalesce below {len(blocks)} invocations"
print(f"serve: cache.hits={lines['repro_cache_hits']}, "
      f"{len(blocks)} requests -> {invocations} invocations")
EOF
kill -TERM "$serve_pid"
wait "$serve_pid"
echo "ok"

echo "all checks passed"
