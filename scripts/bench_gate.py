#!/usr/bin/env python3
"""Benchmark regression gate over the ``.benchmarks/`` perf trajectory.

Every benchmark run persists its statistics as
``.benchmarks/BENCH_<test>.json`` (see ``benchmarks/conftest.py``); this
gate compares the fresh files against a stored baseline copy in
``.benchmarks/baseline/`` and fails — non-zero exit, suitable for
``scripts/check.sh`` — when throughput (the ``bench.ops`` gauge,
operations per second) regresses by more than the threshold (default
15%).  Benchmarks present on only one side are reported but never fail
the gate: coverage changes are a review question, not a perf regression.

Without a baseline directory the gate *skips with a notice* and exits 0,
so fresh clones aren't red.  Record a baseline from the current fresh
results with ``--update`` (after a deliberate perf change, commit the
refreshed baseline alongside it).

Usage::

    python scripts/bench_gate.py                # gate fresh vs baseline
    python scripts/bench_gate.py --update       # (re)record the baseline
    python scripts/bench_gate.py --threshold 0.10
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys

#: Gauge used as the throughput figure of merit (higher is better).
THROUGHPUT_GAUGE = "bench.ops"


def load_ops(path: str) -> float | None:
    """The ``bench.ops`` gauge from one ``BENCH_*.json``, or ``None``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    gauges = (payload.get("metrics") or {}).get("gauges") or {}
    ops = gauges.get(THROUGHPUT_GAUGE)
    return float(ops) if isinstance(ops, (int, float)) else None


def bench_files(directory: str) -> dict[str, str]:
    """Map benchmark name -> path for every ``BENCH_*.json`` in a dir."""
    out: dict[str, str] = {}
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return out
    for name in names:
        if name.startswith("BENCH_") and name.endswith(".json"):
            out[name] = os.path.join(directory, name)
    return out


def update_baseline(fresh: dict[str, str], baseline_dir: str) -> int:
    os.makedirs(baseline_dir, exist_ok=True)
    for name, path in fresh.items():
        shutil.copyfile(path, os.path.join(baseline_dir, name))
    print(f"bench gate: recorded {len(fresh)} baseline file(s) "
          f"in {baseline_dir}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >threshold benchmark throughput regression")
    parser.add_argument("--benchmarks", default=".benchmarks",
                        help="directory of fresh BENCH_*.json files")
    parser.add_argument("--baseline", default=None,
                        help="baseline directory "
                             "(default: <benchmarks>/baseline)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated fractional ops drop "
                             "(default: 0.15)")
    parser.add_argument("--update", action="store_true",
                        help="record the fresh results as the new baseline")
    args = parser.parse_args(argv)
    baseline_dir = args.baseline or os.path.join(args.benchmarks, "baseline")

    fresh = bench_files(args.benchmarks)
    if args.update:
        if not fresh:
            print(f"bench gate: no BENCH_*.json in {args.benchmarks} "
                  f"to record", file=sys.stderr)
            return 2
        return update_baseline(fresh, baseline_dir)

    if not os.path.isdir(baseline_dir):
        print(f"bench gate: no baseline at {baseline_dir} — skipping "
              f"(record one with --update)")
        return 0
    base = bench_files(baseline_dir)
    if not fresh:
        print(f"bench gate: no fresh BENCH_*.json in {args.benchmarks} — "
              f"skipping (run `python -m pytest benchmarks/` first)")
        return 0

    regressions = []
    compared = 0
    for name in sorted(set(base) & set(fresh)):
        old = load_ops(base[name])
        new = load_ops(fresh[name])
        if old is None or new is None or old <= 0:
            continue
        compared += 1
        delta = (new - old) / old
        marker = "  "
        if delta < -args.threshold:
            marker = "!!"
            regressions.append((name, old, new, delta))
        print(f"{marker} {name[len('BENCH_'):-len('.json')]:<44s} "
              f"{old:>12.2f} -> {new:<12.2f} ops/s ({delta:+.1%})")
    for name in sorted(set(base) ^ set(fresh)):
        side = "baseline" if name in base else "fresh run"
        print(f"   {name[len('BENCH_'):-len('.json')]:<44s} "
              f"only in {side} (not gated)")

    if regressions:
        print(f"bench gate: FAILED — {len(regressions)} benchmark(s) "
              f"regressed more than {args.threshold:.0%}", file=sys.stderr)
        return 1
    print(f"bench gate: ok ({compared} benchmark(s) within "
          f"{args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
