#!/usr/bin/env python3
"""Design-space exploration with the XLS-style auto-pipeliner (Fig. 1 slice).

Sweeps the one knob the paper sweeps for XLS — the number of pipeline
stages — and prints the Performance x Area trajectory plus an ASCII
scatter, showing the paper's central XLS finding: frequency scales with
depth but the sequential AXI adapter pins the periodicity at 8, so quality
peaks at a moderate depth and then falls as flip-flop area explodes.

Run:  python examples/xls_design_space.py
"""

from repro.eval import measure_design
from repro.frontends.flow import xls_design


def main() -> None:
    stages = [0, 1, 2, 3, 4, 6, 8, 10, 12, 14, 16]
    rows = []
    for n in stages:
        measured = measure_design(xls_design(n))
        rows.append((n, measured))
        print(
            f"stages={n:2d}  fmax={measured.fmax_mhz:7.2f} MHz  "
            f"latency={measured.latency:2d}  P={measured.throughput_mops:6.2f} MOPS  "
            f"A={measured.area:6d}  Q={measured.quality:7.1f}"
        )

    best = max(rows, key=lambda r: r[1].quality)
    print(f"\nbest quality at {best[0]} stages (Q={best[1].quality:.1f})")

    # ASCII scatter: x = area (log-ish buckets), y = throughput.
    print("\n  P (MOPS)")
    max_p = max(m.throughput_mops for _n, m in rows)
    max_a = max(m.area for _n, m in rows)
    grid = [[" "] * 61 for _ in range(12)]
    for n, m in rows:
        x = int(m.area / max_a * 59)
        y = int(m.throughput_mops / max_p * 10)
        grid[10 - y][x] = "*"
    for line in grid:
        print("  |" + "".join(line))
    print("  +" + "-" * 60 + "> A (LUT+FF)")


if __name__ == "__main__":
    main()
