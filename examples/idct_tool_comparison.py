#!/usr/bin/env python3
"""The paper's experiment in miniature: compare HLS/HC tools on the IDCT.

Builds the initial and optimized IDCT design for a few representative
tools, verifies each against the golden Chen-Wang model on IEEE-1180-style
stimuli, and prints the Table-II-style summary: throughput, area, quality,
and the derived automation/controllability metrics.

Run:  python examples/idct_tool_comparison.py
"""

from repro.eval import generate_table2, render_table2


def main() -> None:
    # Restrict to a fast subset; drop the argument for all seven tools.
    table = generate_table2(
        tools=["Verilog/Vivado", "Chisel/Chisel", "BSV/BSC", "C/Vivado HLS"]
    )
    print(render_table2(table))

    print("\nHighlights:")
    verilog = table.column("Verilog/Vivado")
    for key, column in table.columns.items():
        if key == "Verilog/Vivado":
            continue
        print(
            f"  {key:16s} automation {column.automation_opt:6.1f}%   "
            f"controllability {column.controllability:6.1f}%   "
            f"flexibility {column.flexibility:8.1f}"
        )
    print(
        f"\nVerilog baseline quality: initial {verilog.initial.quality:.0f}, "
        f"optimized {verilog.optimized.quality:.0f} OPS/(LUT+FF)"
    )


if __name__ == "__main__":
    main()
