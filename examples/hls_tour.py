#!/usr/bin/env python3
"""A tour of the mini-C HLS compiler.

Compiles a small C program four ways — default, wider memory, chaining
off, and loop-pipelined — and shows how each tool decision changes the
schedule, exactly the cause-and-effect the paper studies for Bambu and
Vivado HLS.

Run:  python examples/hls_tour.py
"""

from repro.frontends.chls import HlsOptions, build_function_top, parse
from repro.frontends.chls.transform import inline_program
from repro.sim import Simulator

SOURCE = """
int scale(int v) { return v * 3 + 1; }

void top(short data[16]) {
  for (i = 0; i < 16; i++)
    data[i] = scale(data[i]) >> 1;
}
"""

PIPELINED = """
void top(short data[16]) {
  int t = 0;
  #pragma HLS PIPELINE
  for (i = 0; i < 16; i++)
    data[i] = (data[i] * 3 + 1) >> 1;
}
"""


def compile_and_run(label, source, options):
    flat, _ = inline_program(parse(source), "top")
    result = build_function_top(flat, options)
    sim = Simulator(result.module)
    data = list(range(-8, 8))
    if result.module.memories:
        sim.write_memory(sim.netlist.memories[0], [v & 0xFFFF for v in data])
    else:  # partitioned: the bank lives in registers
        for j, v in enumerate(data):
            sim.poke_register(f"v_data__{j}", v & 0xFFFF)
    sim.poke("start", 1)
    cycles = sim.run_until(lambda s: s.peek_int("done") == 1, timeout=2000)
    if result.module.memories:
        raw = sim.read_memory(sim.netlist.memories[0])
        out = [v - 0x10000 if v & 0x8000 else v for v in raw]
    else:  # partitioned: read the bank registers
        out = [sim.peek(f"v_data__{j}").sint for j in range(16)]
    expected = [(v * 3 + 1) >> 1 for v in data]
    status = "OK " if out == expected else "BAD"
    print(f"[{status}] {label:28s} states={result.n_states:3d} cycles={cycles:4d} "
          f"loops={list(result.loop_info.values())}")


def main() -> None:
    compile_and_run("default (1R/1W BRAM)", SOURCE, HlsOptions())
    compile_and_run("dual-port memory", SOURCE,
                    HlsOptions(mem_read_ports=2, mem_write_ports=2))
    compile_and_run("chaining disabled", SOURCE, HlsOptions(chaining=False))
    compile_and_run("pipelined + partitioned", PIPELINED,
                    HlsOptions(partition_arrays=frozenset({"data"})))


if __name__ == "__main__":
    main()
