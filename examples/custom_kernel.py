#!/usr/bin/env python3
"""Bring your own kernel: a 2-D sharpen filter through the same flow.

The framework is not IDCT-specific: any 8x8 matrix transform can ride the
same frontends, AXI-Stream wrapper, simulator, and cost model.  This
example implements a small integer sharpen filter (center-weighted
Laplacian) twice — once with the Chisel-like HC DSL and once as an
XLS-style auto-pipelined kernel — wraps both in the row-by-row stream
shell, checks them against a Python model, and compares their synthesis
estimates.

Run:  python examples/custom_kernel.py
"""

from repro.axis import KernelSpec, KernelStyle, StreamHarness, build_axis_wrapper
from repro.frontends.hc import HcModule, Sig
from repro.frontends.flow import pipeline_kernel
from repro.rtl import elaborate
from repro.sim import Simulator
from repro.synth import synthesize

ROWS = COLS = 8
IN_W, OUT_W = 12, 12


def python_model(matrix):
    """Golden model: out = clip(2*x - mean(N,S,E,W)), borders passed through."""
    out = [[0] * COLS for _ in range(ROWS)]
    for r in range(ROWS):
        for c in range(COLS):
            if 0 < r < ROWS - 1 and 0 < c < COLS - 1:
                neighbours = (matrix[r - 1][c] + matrix[r + 1][c]
                              + matrix[r][c - 1] + matrix[r][c + 1])
                value = 2 * matrix[r][c] - (neighbours >> 2)
            else:
                value = matrix[r][c]
            out[r][c] = max(-2048, min(2047, value))
    return out


def _sharpen(cells):
    """The transform over a matrix of Sig-like values."""
    out = []
    for r in range(ROWS):
        row = []
        for c in range(COLS):
            if 0 < r < ROWS - 1 and 0 < c < COLS - 1:
                neighbours = (cells[r - 1][c] + cells[r + 1][c]
                              + cells[r][c - 1] + cells[r][c + 1])
                value = ((cells[r][c] << 1) - (neighbours >> 2)).clip(-2048, 2047)
            else:
                value = cells[r][c].resize(12)
            row.append(value)
        out.append(row)
    return out


def build_hc_kernel():
    hc = HcModule("sharpen_hc")
    in_mat = hc.input("in_mat", ROWS * COLS * IN_W, signed=False)
    cells = [
        [in_mat.bits(((r * COLS + c) + 1) * IN_W - 1, (r * COLS + c) * IN_W)
         .as_signed() for c in range(COLS)]
        for r in range(ROWS)
    ]
    from repro.rtl import ops

    flat = [e.resize(OUT_W).expr for row in _sharpen(cells) for e in row]
    port = hc.module.output("out_mat", ROWS * COLS * OUT_W)
    hc.module.assign(port, ops.cat(*reversed(flat)))
    return hc.module


def build_flow_kernel(n_stages):
    def kernel(inputs):
        from repro.rtl import ops

        (in_mat,) = inputs
        cells = [
            [in_mat.bits(((r * COLS + c) + 1) * IN_W - 1, (r * COLS + c) * IN_W)
             .as_signed() for c in range(COLS)]
            for r in range(ROWS)
        ]
        flat = [e.resize(OUT_W).expr for row in _sharpen(cells) for e in row]
        from repro.frontends.hc.dsl import Sig as HSig

        return {"out_mat": HSig(ops.cat(*reversed(flat)), signed=False)}

    return pipeline_kernel("sharpen_flow", [("in_mat", ROWS * COLS * IN_W)],
                           kernel, n_stages)


def run(design_name, top, spec, matrices):
    harness = StreamHarness(Simulator(top), spec)
    outs, timing = harness.run_matrices(matrices, signed_output=True)
    ok = outs == [python_model(m) for m in matrices]
    report = synthesize(elaborate(top), max_dsp=0)
    print(
        f"{design_name:14s} bit-exact={ok}  latency={timing.latency:2d}  "
        f"periodicity={timing.periodicity}  fmax={report.fmax_mhz:7.2f} MHz  "
        f"area={report.area}"
    )
    return ok


def main() -> None:
    matrices = [
        [[((r * 31 + c * 17 + m * 7) % 4096) - 2048 for c in range(COLS)]
         for r in range(ROWS)]
        for m in range(3)
    ]
    comb_spec = KernelSpec(style=KernelStyle.COMB_MATRIX, rows=ROWS, cols=COLS,
                           in_width=IN_W, out_width=OUT_W)
    hc_top = build_axis_wrapper(build_hc_kernel(), comb_spec, name="sharpen_hc_top")
    assert run("hc (comb)", hc_top, comb_spec, matrices)

    piped = build_flow_kernel(3)
    pipe_spec = KernelSpec(style=KernelStyle.PIPELINED_MATRIX, rows=ROWS,
                           cols=COLS, in_width=IN_W, out_width=OUT_W,
                           latency=piped.latency)
    flow_top = build_axis_wrapper(piped.module, pipe_spec, name="sharpen_flow_top")
    assert run("flow (3-stage)", flow_top, pipe_spec, matrices)


if __name__ == "__main__":
    main()
