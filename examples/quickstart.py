#!/usr/bin/env python3
"""Quickstart: build, simulate, and "synthesize" a small circuit.

This walks the core flow every frontend in the repository sits on:

1. describe hardware with the RTL construction API;
2. simulate it cycle by cycle;
3. estimate area/timing with the FPGA cost model;
4. emit Verilog.

Run:  python examples/quickstart.py
"""

from repro.backends import emit_verilog
from repro.rtl import Module, elaborate, ops
from repro.rtl.ir import Ref
from repro.sim import Simulator
from repro.synth import synthesize


def build_mac() -> Module:
    """A multiply-accumulate unit: acc += a * b, with clear."""
    m = Module("mac")
    a = m.input("a", 12)
    b = m.input("b", 12)
    clear = m.input("clear", 1)
    total = m.output("total", 32)

    product = ops.mul(a, Ref(b), signed=True)          # 24-bit full product
    acc = m.reg("acc", 32)
    m.set_next(
        acc,
        ops.mux(Ref(clear), ops.const(0, 32), ops.add(acc, ops.sext(product, 32))),
    )
    m.assign(total, Ref(acc))
    return m


def main() -> None:
    mac = build_mac()

    # --- simulate ------------------------------------------------------
    sim = Simulator(mac)
    sim.poke("clear", 0)
    pairs = [(3, 4), (-5, 10), (100, 100)]
    for a, b in pairs:
        sim.poke("a", a & 0xFFF)
        sim.poke("b", b & 0xFFF)
        sim.step()
    expected = sum(a * b for a, b in pairs)
    print(f"accumulated: {sim.peek('total').sint}  (expected {expected})")

    # --- synthesize ------------------------------------------------------
    netlist = elaborate(mac)
    report = synthesize(netlist)
    no_dsp = synthesize(netlist, max_dsp=0)
    print(report.summary())
    print(f"normalized area (maxdsp=0): {no_dsp.n_lut + no_dsp.n_ff} LUT+FF")

    # --- export ------------------------------------------------------------
    verilog = emit_verilog(netlist)
    print("\nfirst lines of the emitted Verilog:")
    print("\n".join(verilog.splitlines()[:12]))


if __name__ == "__main__":
    main()
