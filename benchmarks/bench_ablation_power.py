"""Ablation: the third DSE axis — power across the tool designs.

The paper frames design-space exploration as balancing performance, power,
and area but only measures the first two; this ablation fills in the third
with the activity-based model: each tool's optimized design processes the
same matrix stream and its estimated power split is reported, including
energy per operation (the figure of merit deep pipelines lose on).
"""

from repro.axis import StreamHarness
from repro.eval.experiments import PAIRS
from repro.eval.verify import random_matrices
from repro.rtl import elaborate
from repro.sim import Simulator
from repro.synth import estimate_power, measure_activity, synthesize


def test_power_ablation(benchmark):
    keys = ["Verilog/Vivado", "Chisel/Chisel", "BSV/BSC", "DSLX/XLS"]

    def run():
        rows = []
        mats = random_matrices(3, seed=31)
        for key in keys:
            _initial, design = PAIRS[key]()
            netlist = elaborate(design.top)
            sim = Simulator(netlist)
            harness = StreamHarness(sim, design.spec)

            def stimulate(_sim, h=harness, m=mats):
                h.run_matrices(m)

            activity = measure_activity(sim, stimulate)
            report = synthesize(netlist, max_dsp=0)
            power = estimate_power(netlist, activity, report.fmax_mhz)
            mops = report.fmax_mhz / 8  # all four stream at T_P ~ 8-9
            rows.append((key, power, power.total_mw / mops))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{'tool':16s}{'total mW':>10s}{'logic':>8s}{'ff':>8s}"
          f"{'clock':>8s}{'static':>8s}{'mW/MOPS':>9s}")
    for key, power, per_op in rows:
        print(f"{key:16s}{power.total_mw:10.1f}{power.dynamic_logic_mw:8.1f}"
              f"{power.dynamic_ff_mw:8.1f}{power.clock_mw:8.1f}"
              f"{power.static_mw:8.1f}{per_op:9.2f}")
    by_key = {key: power for key, power, _ in rows}
    # The deep XLS pipeline must pay the highest clock power.
    assert by_key["DSLX/XLS"].clock_mw == max(p.clock_mw for p in by_key.values())
