"""Ablation: netlist optimization passes across the tool designs.

Quantifies how much of each frontend's area is recoverable by generic
logic optimization (fold + simplify + CSE + DCE) before technology
mapping — i.e. how much redundancy each "language" leaves on the table.
The HLS-generated FSMs leave the most; the hand-written Verilog baseline
the least.
"""

from repro.eval.experiments import PAIRS
from repro.rtl import elaborate, optimize
from repro.synth import synthesize


def test_optimize_ablation(benchmark):
    keys = ["Verilog/Vivado", "Chisel/Chisel", "BSV/BSC", "DSLX/XLS",
            "C/Vivado HLS"]

    def run():
        rows = []
        for key in keys:
            _initial, optimized_design = PAIRS[key]()
            netlist = elaborate(optimized_design.top)
            opt_netlist, stats = optimize(netlist)
            before = synthesize(netlist, max_dsp=0)
            after = synthesize(opt_netlist, max_dsp=0)
            rows.append((key, before.area, after.area, stats))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{'tool':16s}{'A before':>10s}{'A after':>10s}{'saved':>8s}"
          f"{'merged':>8s}{'folded':>8s}{'dead':>6s}")
    for key, before, after, stats in rows:
        saved = (before - after) / before * 100
        print(f"{key:16s}{before:10d}{after:10d}{saved:7.1f}%"
              f"{stats.merged:8d}{stats.folded:8d}"
              f"{stats.dead_assigns + stats.dead_registers:6d}")
        assert after <= before
