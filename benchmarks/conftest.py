"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's evaluation artifacts; the
rows/series it prints are the reproduction counterpart of the published
table or figure.  pytest-benchmark measures the harness runtime on top.

Each benchmark's statistics are additionally persisted through the
:mod:`repro.obs` metrics exporter as ``.benchmarks/BENCH_<test>.json`` so
successive runs leave a perf trajectory behind (the ROADMAP's prerequisite
for judging future optimization PRs).
"""

import re

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import write_metrics_json

_BENCH_STAT_KEYS = ("min", "max", "mean", "stddev", "median", "rounds",
                    "iterations", "ops")


@pytest.fixture(autouse=True)
def persist_bench_metrics(request):
    """After each benchmark, export its stats via the obs metrics exporter."""
    yield
    funcargs = getattr(request.node, "funcargs", None) or {}
    bench = funcargs.get("benchmark")
    stats = getattr(getattr(bench, "stats", None), "stats", None)
    if stats is None:  # benchmark fixture unused or never called
        return
    registry = MetricsRegistry()
    for key in _BENCH_STAT_KEYS:
        value = getattr(stats, key, None)
        if value is not None:
            registry.set_gauge(f"bench.{key}", float(value))
    name = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    out_dir = request.config.rootpath / ".benchmarks"
    out_dir.mkdir(exist_ok=True)
    write_metrics_json(
        out_dir / f"BENCH_{name}.json",
        registry=registry,
        events=[],
        extra={"test": request.node.nodeid},
    )


@pytest.fixture(scope="session")
def paper_reference():
    """Published Table II values (for side-by-side printing)."""
    return {
        "Verilog/Vivado": dict(P=(6.99, 14.15), A=(30396, 6567), TP=(8, 8),
                               TL=(17, 24), F=(55.88, 113.21), C=100.0),
        "Chisel/Chisel": dict(P=(7.39, 13.97), A=(28778, 7194), TP=(8, 8),
                              TL=(17, 24), F=(59.15, 111.77), C=90.1),
        "BSV/BSC": dict(P=(7.71, 11.35), A=(29549, 7036), TP=(13, 9),
                        TL=(21, 26), F=(100.25, 102.18), C=74.8),
        "DSLX/XLS": dict(P=(8.41, 31.31), A=(27127, 37965), TP=(8, 8),
                         TL=(17, 19), F=(67.30, 250.50), C=38.3),
        "MaxJ/MaxCompiler": dict(P=(123.08, 44.79), A=(55580, 19413), TP=(1, 9),
                                 TL=(47, 60), F=(403.13, 403.13), C=107.1),
        "C/Bambu": dict(P=(0.82, 1.39), A=(8879, 10514), TP=(323, 185),
                        TL=(323, 185), F=(263.44, 257.33), C=6.1),
        "C/Vivado HLS": dict(P=(0.39, 16.43), A=(5633, 8501), TP=(340, 8),
                             TL=(340, 26), F=(132.61, 131.46), C=89.7),
    }
