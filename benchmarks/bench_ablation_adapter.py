"""Ablation: the AXI-Stream adapter bottleneck (paper §IV).

The paper repeatedly notes that the row-by-row adapter caps every design
at one matrix per 8 cycles — "in theory, the implementation could run 8
times faster".  This ablation quantifies that: the same combinational
kernel is measured (a) behind the row-serial adapter and (b) fed a whole
matrix per cycle (a MaxJ-style wide port), and the throughput ratio is
checked to be the adapter's 8x.
"""

from repro.axis import MATRIX_SPEC_12_9, StreamHarness, build_axis_wrapper
from repro.eval.verify import random_matrices
from repro.frontends.vlog import build_initial_kernel
from repro.idct import chen_wang_idct
from repro.rtl import elaborate
from repro.sim import Simulator
from repro.synth import synthesize


def measure_row_serial():
    kernel = build_initial_kernel()
    top = build_axis_wrapper(kernel, MATRIX_SPEC_12_9)
    harness = StreamHarness(Simulator(top), MATRIX_SPEC_12_9)
    _outs, timing = harness.run_matrices(random_matrices(5))
    report = synthesize(elaborate(top), max_dsp=0)
    return report.fmax_mhz / timing.periodicity, timing.periodicity


def measure_wide_port():
    # The bare kernel with a full-matrix port: one operation per cycle.
    kernel = build_initial_kernel()
    sim = Simulator(kernel)
    mats = random_matrices(4)
    from repro.axis.harness import pack_row

    for matrix in mats:
        word = 0
        for r, row in enumerate(matrix):
            word |= pack_row(row, 12) << (r * 96)
        sim.poke("in_mat", word)
        out_word = sim.peek_int("out_mat")
        got = [[_sext9((out_word >> ((r * 8 + c) * 9)) & 0x1FF)
                for c in range(8)] for r in range(8)]
        assert got == chen_wang_idct(matrix)
        sim.step()
    report = synthesize(elaborate(kernel), max_dsp=0)
    return report.fmax_mhz / 1, 1


def _sext9(v):
    return v - 512 if v & 0x100 else v


def test_adapter_bottleneck(benchmark):
    def run():
        return measure_row_serial(), measure_wide_port()

    (serial_p, serial_tp), (wide_p, wide_tp) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    ratio = (wide_p / serial_p) * (serial_tp / wide_tp) / serial_tp  # unused guard
    print(f"\nrow-serial adapter: P = {serial_p:8.2f} MOPS (T_P = {serial_tp})")
    print(f"wide matrix port:   P = {wide_p:8.2f} MOPS (T_P = {wide_tp})")
    print(f"adapter headroom:   {wide_p / serial_p:.2f}x (paper: ~8x)")
    assert serial_tp == 8
    assert wide_tp == 1
    # Same kernel, same fmax: the headroom is exactly the periodicity ratio.
    assert abs(wide_p / serial_p - 8) < 1.5
