"""Service benchmark: batched vs unbatched ``/v1/idct`` throughput.

Drives a live :class:`repro.serve.EvalServer` over real sockets twice —
once with the micro-batch window disabled (``max_batch=1``) and once
with a window of 16 — and argues the batching win from obs metrics
rather than ad-hoc timing: per-block compute cost comes from the
``serve.evaluate`` span durations the evaluator records around each
invocation, and the ``serve.batch_size`` histogram proves the coalescing
actually happened.  The acceptance bar is batched throughput >= 3x
unbatched at a window of 16.
"""

import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.api import Session
from repro.eval.verify import random_matrices
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.serve import EvalServer, ServeConfig

DESIGN = "verilog-initial"
N_BLOCKS = 64
WINDOW = 16


class _LiveServer:
    def __init__(self, session, **config):
        self.server = EvalServer(session, ServeConfig(port=0, **config))
        self.host = self.port = None
        self._announced = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._announced.wait(120)

    def _run(self):
        def announce(host, port):
            self.host, self.port = host, port
            self._announced.set()

        self.server.serve_forever(announce=announce)

    def post_idct(self, blocks):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=120)
        try:
            conn.request("POST", "/v1/idct", body=json.dumps(
                {"design": DESIGN, "blocks": blocks}).encode())
            response = conn.getresponse()
            body = response.read()
            assert response.status == 200, body
            return json.loads(body)
        finally:
            conn.close()

    def stop(self):
        self.server.request_drain(0)
        self._thread.join(timeout=120)


def _evaluate_stats():
    """(total compute µs, total blocks) over all serve.evaluate spans."""
    total_us = blocks = 0
    for record in obs_trace.events():
        if record.name == "serve.evaluate" and record.kind == "span":
            total_us += record.duration * 1e6
            blocks += record.attrs.get("blocks", 0)
    return total_us, blocks


def _burst(server, blocks, workers):
    with ThreadPoolExecutor(max_workers=workers) as pool:
        list(pool.map(lambda b: server.post_idct([b]), blocks))


def test_serve_batching_speedup(benchmark):
    session = Session()
    session.evaluator(DESIGN)  # warm start outside the measured phases
    blocks = [[list(row) for row in m] for m in random_matrices(N_BLOCKS)]

    # -- unbatched: window disabled, sequential single-block requests ----
    obs.clear()
    server = _LiveServer(session, max_batch=1, batch_wait_s=0.0)
    for block in blocks:
        server.post_idct([block])
    server.stop()
    unbatched_us, unbatched_blocks = _evaluate_stats()
    assert unbatched_blocks == N_BLOCKS

    # -- batched: a 16-block window coalescing a concurrent burst --------
    obs.clear()
    server = _LiveServer(session, max_batch=WINDOW, batch_wait_s=0.25)
    benchmark.pedantic(_burst, args=(server, blocks, WINDOW),
                       rounds=3, iterations=1)
    server.stop()
    batched_us, batched_blocks = _evaluate_stats()
    assert batched_blocks == 3 * N_BLOCKS  # three benchmark rounds

    # coalescing evidence: the obs histogram saw real multi-block batches
    hist = obs_metrics.REGISTRY.histogram("serve.batch_size")
    assert hist.max >= WINDOW
    assert hist.count < batched_blocks  # fewer invocations than blocks

    # throughput argued from the evaluator's own span durations
    unbatched_us_per_block = unbatched_us / unbatched_blocks
    batched_us_per_block = batched_us / batched_blocks
    speedup = unbatched_us_per_block / batched_us_per_block
    print(f"\nunbatched: {unbatched_us_per_block:.1f} us/block over "
          f"{unbatched_blocks} blocks in {unbatched_blocks} invocations")
    print(f"batched:   {batched_us_per_block:.1f} us/block over "
          f"{batched_blocks} blocks in {hist.count} invocations "
          f"(max batch {hist.max:g})")
    print(f"speedup:   {speedup:.2f}x (bar: >= 3x)")
    assert speedup >= 3.0
