"""Regenerates the paper's Table II: the full HLS/HC evaluation.

Builds all fourteen design points (seven tools x initial/optimized),
verifies each bit-for-bit against the Chen-Wang golden model, measures
latency/periodicity in simulation and frequency/area with the synthesis
model, and derives the paper's α / Q / C_Q / F_Q metrics.

The printed table is the reproduction artifact; the side-by-side section
compares the headline cells against the published values.
"""

from repro.eval import generate_table2, render_table2


def test_table2_full(benchmark, paper_reference):
    table = benchmark.pedantic(generate_table2, rounds=1, iterations=1)
    assert set(table.columns) == set(paper_reference)

    print("\n" + render_table2(table))

    print("\npaper vs measured (optimized designs):")
    header = (f"{'tool':18s} {'P paper':>9s} {'P ours':>9s} "
              f"{'A paper':>9s} {'A ours':>9s} {'C_Q paper':>10s} {'C_Q ours':>9s}")
    print(header)
    for key, column in table.columns.items():
        ref = paper_reference[key]
        print(
            f"{key:18s} {ref['P'][1]:9.2f} {column.optimized.throughput_mops:9.2f} "
            f"{ref['A'][1]:9d} {column.optimized.area:9d} "
            f"{ref['C']:10.1f} {column.controllability:9.1f}"
        )

    # Shape assertions: orderings the paper's conclusions rest on.
    cq = {k: c.controllability for k, c in table.columns.items()}
    assert cq["C/Bambu"] == min(cq.values())          # Bambu least controllable
    assert cq["Chisel/Chisel"] > cq["DSLX/XLS"]       # HC beats XLS on quality
    assert cq["BSV/BSC"] > cq["DSLX/XLS"]
    period = {k: c.optimized.periodicity for k, c in table.columns.items()}
    assert period["BSV/BSC"] == 9                     # the scheduling bubble
    assert period["Verilog/Vivado"] == 8
