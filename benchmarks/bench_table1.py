"""Regenerates the paper's Table I (languages and tools under evaluation)."""

from repro.eval import generate_table1, render_table1


def test_table1(benchmark):
    table = benchmark(generate_table1)
    assert len(table) == 7
    print("\n" + render_table1())
