"""Regenerates the paper's Figure 1: DSE in the Performance x Area plane.

All per-tool sweeps are rebuilt: 3 Verilog architectures, 2 Chisel, the
26-configuration BSC sweep, the 19-point XLS pipeline-stage sweep, 2 MaxJ
kernels, the 42-configuration Bambu sweep, and 2 Vivado HLS points.

Set REPRO_FIG1_FULL=1 to run the complete sweeps (a few minutes); the
default trims the large sweeps so CI stays fast while keeping every
series' shape visible.
"""

import os

from repro.eval.experiments import generate_fig1, render_fig1

FULL = os.environ.get("REPRO_FIG1_FULL", "0") == "1"


def test_fig1(benchmark):
    kwargs = (dict(bsc_configs=26, bambu_configs=42, xls_stages=18) if FULL
              else dict(bsc_configs=4, bambu_configs=6, xls_stages=8))
    series = benchmark.pedantic(generate_fig1, kwargs=kwargs,
                                rounds=1, iterations=1)
    print("\n" + render_fig1(series))

    by_tool = {s.tool: s for s in series}
    assert len(by_tool) == 7

    # Shape assertions from the published figure.
    # 1. MaxJ sits far right/top: highest throughput of any design.
    maxj_best = max(p for _c, p, _a in by_tool["MaxCompiler"].points)
    rest_best = max(p for tool, s in by_tool.items() if tool != "MaxCompiler"
                    for _c, p, _a in s.points)
    assert maxj_best > rest_best
    # 2. The XLS trajectory grows in area monotonically with stages beyond
    #    the first register insertion.
    xls_areas = [a for _c, _p, a in by_tool["XLS"].points]
    assert xls_areas[-1] > xls_areas[1]
    # 3. The C tools cluster at the bottom (lowest throughput).
    c_best = max(p for tool in ("Bambu", "Vivado HLS")
                 for _c, p, _a in by_tool[tool].points)
    rtl_best = max(p for _c, p, _a in by_tool["Vivado"].points)
    assert c_best < rtl_best
    # 4. The BSC sweep is a tight cluster (settings change little).
    bsc_areas = [a for _c, _p, a in by_tool["BSC"].points[2:]]
    if len(bsc_areas) >= 2:
        assert max(bsc_areas) / min(bsc_areas) < 1.2
