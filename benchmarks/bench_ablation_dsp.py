"""Ablation: the paper's maxdsp=0 area normalization (§III-C).

The paper measures area with DSP inference disabled so designs that map
multipliers differently stay comparable.  This ablation regenerates both
measurements for each tool's optimized design and reports the DSP count
and the LUT delta the normalization hides.
"""

from repro.eval.experiments import PAIRS
from repro.rtl import elaborate
from repro.synth import synthesize


def test_dsp_normalization(benchmark):
    def run():
        rows = []
        for key in ("Verilog/Vivado", "Chisel/Chisel", "BSV/BSC",
                    "C/Vivado HLS"):
            _initial, optimized = PAIRS[key]()
            netlist = elaborate(optimized.top)
            with_dsp = synthesize(netlist)
            no_dsp = synthesize(netlist, max_dsp=0)
            rows.append((key, with_dsp, no_dsp))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{'tool':18s}{'N_DSP':>7s}{'N_LUT':>9s}{'N*_LUT':>9s}{'LUT delta':>11s}")
    for key, with_dsp, no_dsp in rows:
        delta = no_dsp.n_lut - with_dsp.n_lut
        print(f"{key:18s}{with_dsp.n_dsp:7d}{with_dsp.n_lut:9d}"
              f"{no_dsp.n_lut:9d}{delta:11d}")
        # DSP inference must trade DSPs for LUTs, never both ways.
        assert no_dsp.n_dsp == 0
        assert no_dsp.n_lut >= with_dsp.n_lut
        if with_dsp.n_dsp:
            assert delta > 0
