"""Infrastructure benchmark: compiled-simulator throughput.

Not a paper artifact, but the quantity every experiment's wall-clock rests
on: cycles per second through the AXI-wrapped optimized Verilog IDCT.
"""

from repro.axis import StreamHarness
from repro.eval.verify import random_matrices
from repro.frontends.vlog import verilog_opt
from repro.sim import Simulator


def test_sim_throughput(benchmark):
    design = verilog_opt()
    sim = Simulator(design.top)
    harness = StreamHarness(sim, design.spec)
    matrices = random_matrices(8)

    def run():
        outs, timing = harness.run_matrices(matrices)
        return timing.total_cycles

    cycles = benchmark(run)
    assert cycles > 60
