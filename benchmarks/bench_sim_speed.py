"""Infrastructure benchmark: compiled-simulator throughput.

Not a paper artifact, but the quantity every experiment's wall-clock rests
on: cycles per second through the AXI-wrapped optimized Verilog IDCT —
for the scalar compiled engine and for the lane-packed batch engine.
"""

from repro import obs
from repro.axis import StreamHarness
from repro.eval.verify import random_matrices
from repro.frontends.vlog import verilog_opt
from repro.obs import trace as obs_trace
from repro.sim import BatchStreamRunner, Simulator

BATCH_BLOCKS = 256
BATCH_LANES = 16
SCALAR_BLOCKS = 32


def test_sim_throughput(benchmark):
    design = verilog_opt()
    sim = Simulator(design.top)
    harness = StreamHarness(sim, design.spec)
    matrices = random_matrices(8)

    def run():
        outs, timing = harness.run_matrices(matrices)
        return timing.total_cycles

    cycles = benchmark(run)
    assert cycles > 60


def _span_stats(name):
    """(total seconds, total blocks) over ``name`` spans."""
    total_s = blocks = 0
    for record in obs_trace.events():
        if record.name == name and record.kind == "span":
            total_s += record.duration
            blocks += record.attrs.get("blocks",
                                       record.attrs.get("matrices", 0))
    return total_s, blocks


def test_sim_throughput_batch(benchmark):
    """Lane-packed batch engine vs the scalar compiled simulator.

    Each round streams :data:`BATCH_BLOCKS` random matrices through a
    16-lane :class:`BatchStreamRunner` — the production configuration of
    the serve tier's ``"batch"`` engine.  The >=5x acceptance bar is
    argued from obs span data rather than ad-hoc timing: ``sim.stream``
    and ``sim.batch.stream`` spans record duration, blocks, and (via the
    simulators' lifetime counters) combinational settle passes, so the
    win decomposes into its mechanism — lanes amortize the per-cycle
    Python cost, and lazy settling runs ~1 settle pass per cycle for the
    whole 16-block cohort where the scalar engine settles per block.
    """
    design = verilog_opt()
    runner = BatchStreamRunner(design.top, design.spec, lanes=BATCH_LANES)
    blocks = [[list(row) for row in m]
              for m in random_matrices(BATCH_BLOCKS)]

    obs.enable()
    obs.clear()

    # Scalar reference leg, run in the same 8-block chunks as
    # test_sim_throughput above (the recorded baseline this engine is
    # gated against) so both sides pay comparable pipeline-fill costs.
    # It doubles as the bit-exactness oracle for the batch outputs.
    sim = Simulator(design.top)
    harness = StreamHarness(sim, design.spec)
    ref = []
    for at in range(0, SCALAR_BLOCKS, 8):
        sim.reset()
        outs, _timing = harness.run_matrices(blocks[at:at + 8])
        ref.extend(outs)
    scalar_s, scalar_blocks = _span_stats("sim.stream")
    scalar_settles = sim.settles  # lifetime counter, reset() keeps it
    assert scalar_blocks == SCALAR_BLOCKS

    outs = benchmark(runner.run_blocks, blocks)
    assert outs[:SCALAR_BLOCKS] == ref

    # Lifetime settles over lifetime blocks: correct across however many
    # rounds pytest-benchmark decided to run.
    batch_s, batch_blocks = _span_stats("sim.batch.stream")
    batch_settles = runner.sim.settles
    scalar_us = scalar_s * 1e6 / scalar_blocks
    batch_us = batch_s * 1e6 / batch_blocks
    speedup = scalar_us / batch_us
    print(f"\nscalar: {scalar_us:.0f} us/block "
          f"({scalar_settles / scalar_blocks:.1f} settles/block)")
    print(f"batch:  {batch_us:.0f} us/block over {batch_blocks} blocks "
          f"({batch_settles / batch_blocks:.2f} settles/block, "
          f"{BATCH_LANES} lanes)")
    print(f"speedup: {speedup:.2f}x (bar: >= 5x)")
    # Mechanism: the batch engine settles far fewer times per block.
    assert batch_settles / BATCH_BLOCKS < scalar_settles / scalar_blocks
    assert speedup >= 5.0
    obs.clear()
