"""Tests for ``repro.exec``: task enumeration and the sharded sweep
executor's byte-identity guarantee (parallel output == serial output,
including under checkpoint/resume and the artifact cache)."""

import pytest

from repro.cache import ArtifactCache
from repro.core.errors import SweepInterrupted
from repro.eval.experiments import (
    fig1_design_lists,
    generate_fig1,
    generate_table2,
    render_fig1,
    render_table2,
)
from repro.eval.measure import clear_measure_cache
from repro.exec import (
    ParallelSweepRunner,
    SweepTask,
    fig1_tasks,
    table2_tasks,
)
from repro.resilience.checkpoint import Checkpoint
from repro.resilience.runner import RunnerConfig, SweepRunner

FIG1_SIZES = dict(bsc_configs=1, bambu_configs=1, xls_stages=1)
CONFIG = RunnerConfig(n_matrices=2)


def _serial_fig1() -> str:
    clear_measure_cache()
    return render_fig1(generate_fig1(
        runner=SweepRunner(config=CONFIG), **FIG1_SIZES))


def _parallel_fig1(jobs=2, cache=None, checkpoint=None, abort_after=None,
                   **runner_kwargs) -> tuple[str, ParallelSweepRunner]:
    clear_measure_cache()
    lists = fig1_design_lists(**FIG1_SIZES)
    runner = ParallelSweepRunner(
        tasks=fig1_tasks(lists, FIG1_SIZES), jobs=jobs, cache=cache,
        config=CONFIG, checkpoint=checkpoint, abort_after=abort_after,
        **runner_kwargs)
    runner.prefetch()
    out = render_fig1(generate_fig1(runner=runner, design_lists=lists,
                                    **FIG1_SIZES))
    return out, runner


class TestTasks:
    def test_table2_tasks_include_baseline_and_both_configs(self):
        tasks = table2_tasks(["Chisel/Chisel"])
        assert tasks[0] == SweepTask("table2", "Verilog/Vivado", 0)
        assert tasks[1] == SweepTask("table2", "Verilog/Vivado", 1)
        assert {(t.key, t.index) for t in tasks} == {
            ("Verilog/Vivado", 0), ("Verilog/Vivado", 1),
            ("Chisel/Chisel", 0), ("Chisel/Chisel", 1)}

    def test_fig1_tasks_cover_every_point_in_order(self):
        lists = fig1_design_lists(**FIG1_SIZES)
        tasks = fig1_tasks(lists, FIG1_SIZES)
        expected = [(tool, i) for tool, designs in lists
                    for i in range(len(designs))]
        assert [(t.key, t.index) for t in tasks] == expected
        packed = tuple(sorted(FIG1_SIZES.items()))
        assert all(t.sizes == packed for t in tasks)

    def test_tasks_are_picklable(self):
        import pickle

        lists = fig1_design_lists(**FIG1_SIZES)
        tasks = fig1_tasks(lists, FIG1_SIZES)
        assert pickle.loads(pickle.dumps(tasks)) == tasks


class TestParallelIdentity:
    def test_fig1_parallel_equals_serial(self):
        serial = _serial_fig1()
        parallel, runner = _parallel_fig1(jobs=3)
        assert parallel == serial
        assert runner.stats["failed"] == 0
        assert runner.stats["ok"] > 0

    def test_table2_parallel_equals_serial(self):
        tools = ["Chisel/Chisel", "DSLX/XLS"]
        clear_measure_cache()
        serial = render_table2(generate_table2(
            tools=tools, runner=SweepRunner(config=CONFIG)))
        clear_measure_cache()
        runner = ParallelSweepRunner(tasks=table2_tasks(tools), jobs=2,
                                     config=CONFIG)
        runner.prefetch()
        parallel = render_table2(generate_table2(tools=tools, runner=runner))
        assert parallel == serial

    def test_injected_failure_matches_serial(self):
        clear_measure_cache()
        serial = render_fig1(generate_fig1(
            runner=SweepRunner(config=CONFIG,
                               inject_failures={"chisel-opt"}),
            **FIG1_SIZES))
        clear_measure_cache()
        lists = fig1_design_lists(**FIG1_SIZES)
        runner = ParallelSweepRunner(
            tasks=fig1_tasks(lists, FIG1_SIZES), jobs=2, config=CONFIG,
            inject_failures={"chisel-opt"})
        runner.prefetch()
        parallel = render_fig1(generate_fig1(runner=runner,
                                             design_lists=lists, **FIG1_SIZES))
        assert parallel == serial
        assert "FAILED(ScheduleError)" in parallel

    def test_prefetch_is_idempotent(self):
        clear_measure_cache()
        lists = fig1_design_lists(**FIG1_SIZES)
        runner = ParallelSweepRunner(
            tasks=fig1_tasks(lists, FIG1_SIZES), jobs=2, config=CONFIG)
        count = runner.prefetch()
        assert runner.prefetch() == count  # no second pool


class TestWorkerRecycling:
    def test_recycled_pools_bound_worker_lifetime(self):
        """max_tasks_per_child=1 re-forks workers every stride while the
        rendered sweep output stays byte-identical to the serial run."""
        import math

        serial = _serial_fig1()
        n_tasks = len(fig1_tasks(fig1_design_lists(**FIG1_SIZES), FIG1_SIZES))
        recycled, runner = _parallel_fig1(jobs=2, max_tasks_per_child=1)
        assert recycled == serial
        assert runner.pools_used == math.ceil(n_tasks / (2 * 1))

    def test_default_recycling_uses_one_pool_for_small_sweeps(self):
        _, runner = _parallel_fig1(jobs=2)  # default stride >> task count
        assert runner.pools_used == 1

    def test_disabled_recycling_is_one_pool(self):
        _, runner = _parallel_fig1(jobs=2, max_tasks_per_child=None)
        assert runner.pools_used == 1


class TestResumedParallelIdentity:
    def test_interrupted_then_resumed_parallel_equals_serial(self, tmp_path):
        serial = _serial_fig1()

        # Interrupt a checkpointed *parallel* sweep partway through the
        # consume phase...
        path = tmp_path / "fig1.jsonl"
        with pytest.raises(SweepInterrupted):
            _parallel_fig1(jobs=2, checkpoint=Checkpoint(path),
                           abort_after=4)
        assert 0 < len(Checkpoint(path, resume=True)) <= 4

        # ...then resume it, still parallel: checkpointed designs are not
        # re-measured, the rest come from a fresh prefetch, and the
        # rendered output is byte-identical to an uninterrupted serial run.
        resumed, runner = _parallel_fig1(
            jobs=2, checkpoint=Checkpoint(path, resume=True))
        assert resumed == serial
        assert runner.stats["checkpoint_hits"] > 0


class TestParallelWithCache:
    def test_workers_populate_shared_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        first, runner_a = _parallel_fig1(jobs=2, cache=cache)
        assert runner_a.cache.stats["puts"] > 0

        warm = ArtifactCache(tmp_path / "cache")
        second, runner_b = _parallel_fig1(jobs=2, cache=warm)
        assert second == first
        assert runner_b.cache.stats["hits"] > 0
        assert runner_b.cache.stats["puts"] == 0  # fully warm
