"""Tests for the RTL expression IR: width rules and both evaluators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bits import to_signed
from repro.core.errors import WidthError
from repro.rtl import ops
from repro.rtl.ir import (
    BinOp,
    BinOpKind,
    Cat,
    Const,
    Ext,
    Mux,
    Ref,
    Signal,
    Slice,
    UnOp,
    UnOpKind,
    emit_py,
    eval_expr,
    expr_signals,
    expr_size,
)


def evaluate(expr, env=None):
    """Evaluate with the reference interpreter against a name->value env."""
    env = env or {}
    return eval_expr(expr, lambda sig: env[sig.name])


def evaluate_compiled(expr, env=None):
    """Evaluate via the emitted Python code path."""
    env = env or {}
    code = emit_py(expr, lambda sig: f"env[{sig.name!r}]")
    namespace = {"_sx": to_signed, "env": env}
    return eval(code, namespace)


def both(expr, env=None):
    interp = evaluate(expr, env)
    compiled = evaluate_compiled(expr, env)
    assert interp == compiled, f"interpreter {interp} != compiled {compiled}"
    return interp


class TestConst:
    def test_masks_value(self):
        assert Const(0x1FF, 8).value == 0xFF

    def test_negative_value_wraps(self):
        assert Const(-1, 8).value == 0xFF

    def test_positive_width_required(self):
        with pytest.raises(WidthError):
            Const(0, 0)


class TestWidthRules:
    def test_add_requires_equal_widths(self):
        with pytest.raises(WidthError):
            BinOp(BinOpKind.ADD, Const(0, 4), Const(0, 5))

    def test_add_keeps_width(self):
        assert BinOp(BinOpKind.ADD, Const(0, 4), Const(0, 4)).width == 4

    def test_mul_width_is_sum(self):
        assert BinOp(BinOpKind.MUL, Const(0, 4), Const(0, 6)).width == 10

    def test_compare_width_is_one(self):
        assert BinOp(BinOpKind.SLT, Const(0, 8), Const(0, 8)).width == 1

    def test_shift_allows_mixed_widths(self):
        assert BinOp(BinOpKind.SHL, Const(0, 8), Const(0, 3)).width == 8

    def test_mux_needs_one_bit_select(self):
        with pytest.raises(WidthError):
            Mux(Const(0, 2), Const(0, 4), Const(0, 4))

    def test_mux_needs_equal_arms(self):
        with pytest.raises(WidthError):
            Mux(Const(0, 1), Const(0, 4), Const(0, 5))

    def test_cat_width_is_sum(self):
        assert Cat((Const(0, 3), Const(0, 5))).width == 8

    def test_cat_needs_parts(self):
        with pytest.raises(WidthError):
            Cat(())

    def test_slice_bounds_checked(self):
        with pytest.raises(WidthError):
            Slice(Const(0, 4), 4, 0)
        with pytest.raises(WidthError):
            Slice(Const(0, 4), 1, 2)

    def test_ext_cannot_narrow(self):
        with pytest.raises(WidthError):
            Ext(Const(0, 8), 4, signed=False)

    def test_reduction_width_is_one(self):
        assert UnOp(UnOpKind.REDOR, Const(0, 9)).width == 1


class TestSemantics:
    def test_add_wraps(self):
        assert both(BinOp(BinOpKind.ADD, Const(15, 4), Const(2, 4))) == 1

    def test_sub_wraps(self):
        assert both(BinOp(BinOpKind.SUB, Const(0, 4), Const(1, 4))) == 15

    def test_unsigned_vs_signed_product_differ(self):
        # (-1) * 1 over 2-bit operands: signed -1 -> 0b1111, unsigned 3 -> 0b0011
        a, b = Const(0b11, 2), Const(0b01, 2)
        assert both(BinOp(BinOpKind.MUL, a, b)) == 3
        assert both(BinOp(BinOpKind.MULS, a, b)) == 0b1111

    def test_signed_compare(self):
        assert both(BinOp(BinOpKind.SLT, Const(0b1000, 4), Const(0, 4))) == 1
        assert both(BinOp(BinOpKind.ULT, Const(0b1000, 4), Const(0, 4))) == 0

    def test_shl_overflow_drops_bits(self):
        assert both(BinOp(BinOpKind.SHL, Const(0b1001, 4), Const(1, 3))) == 0b0010

    def test_shift_by_width_or_more_is_zero(self):
        assert both(BinOp(BinOpKind.SHL, Const(1, 4), Const(4, 4))) == 0
        assert both(BinOp(BinOpKind.LSHR, Const(8, 4), Const(9, 4))) == 0

    def test_ashr_saturates_shift_amount(self):
        assert both(BinOp(BinOpKind.ASHR, Const(0b1000, 4), Const(100, 8))) == 0b1111

    def test_ashr_positive(self):
        assert both(BinOp(BinOpKind.ASHR, Const(0b0100, 4), Const(2, 3))) == 0b0001

    def test_not_and_neg(self):
        assert both(UnOp(UnOpKind.NOT, Const(0b1010, 4))) == 0b0101
        assert both(UnOp(UnOpKind.NEG, Const(1, 4))) == 15

    def test_reductions(self):
        assert both(UnOp(UnOpKind.REDOR, Const(0, 5))) == 0
        assert both(UnOp(UnOpKind.REDOR, Const(2, 5))) == 1
        assert both(UnOp(UnOpKind.REDAND, Const(0b11111, 5))) == 1
        assert both(UnOp(UnOpKind.REDAND, Const(0b11011, 5))) == 0
        assert both(UnOp(UnOpKind.REDXOR, Const(0b1011, 4))) == 1

    def test_mux_selects(self):
        expr = Mux(Const(1, 1), Const(3, 4), Const(9, 4))
        assert both(expr) == 3
        expr = Mux(Const(0, 1), Const(3, 4), Const(9, 4))
        assert both(expr) == 9

    def test_cat_is_msb_first(self):
        assert both(Cat((Const(0b10, 2), Const(0b01, 2)))) == 0b1001

    def test_slice(self):
        assert both(Slice(Const(0b110101, 6), 4, 1)) == 0b1010

    def test_sext_zext(self):
        assert both(Ext(Const(0b1000, 4), 8, signed=True)) == 0xF8
        assert both(Ext(Const(0b1000, 4), 8, signed=False)) == 0x08

    def test_signal_reference(self):
        sig = Signal("x", 8)
        assert both(Ref(sig), {"x": 42}) == 42


class TestStructuralQueries:
    def test_expr_signals_collects_transitively(self):
        a, b = Signal("a", 4), Signal("b", 4)
        expr = ops.mux(ops.eq(a, b), ops.add(a, b), ops.bnot(a))
        assert expr_signals(expr) == {a, b}

    def test_expr_size_counts_nodes(self):
        assert expr_size(Const(0, 1)) == 1
        expr = BinOp(BinOpKind.ADD, Const(0, 4), Const(0, 4))
        assert expr_size(expr) == 3


class TestOpsHelpers:
    def test_balance_promotes_int_to_signal_width(self):
        a = Signal("a", 8)
        expr = ops.add(a, 3)
        assert expr.width == 8

    def test_two_ints_rejected(self):
        with pytest.raises(TypeError):
            ops.add(1, 2)

    def test_add_grow_adds_carry_bit(self):
        a, b = Signal("a", 8), Signal("b", 8)
        assert ops.add(a, b, grow=True).width == 9

    def test_mixed_width_signed_balance(self):
        a, b = Signal("a", 4), Signal("b", 8)
        expr = ops.add(a, b)
        assert expr.width == 8
        assert both(expr, {"a": 0b1111, "b": 1}) == 0  # -1 + 1

    def test_mixed_width_unsigned_balance(self):
        a, b = Signal("a", 4), Signal("b", 8)
        expr = ops.add(a, b, signed=False)
        assert both(expr, {"a": 0b1111, "b": 1}) == 16

    def test_resize_narrows_and_widens(self):
        a = Signal("a", 8)
        assert ops.resize(a, 4).width == 4
        assert ops.resize(a, 16).width == 16
        assert ops.resize(a, 8) is not None

    def test_mul_int_operand_uses_min_width(self):
        a = Signal("a", 8)
        assert ops.mul(a, 181).width == 8 + 9  # 181 needs 9 signed bits
        assert ops.mul(a, 181, signed=False).width == 8 + 8

    def test_mux_balances_arms(self):
        a = Signal("a", 4)
        expr = ops.mux(ops.eq(a, 0), a, 255)
        # 255 as an int takes the other arm's width after balancing: the
        # wider literal arm wins, both become 4 bits wide here since the
        # integer adopts the signal arm's width.
        assert expr.width == 4

    def test_shift_helpers(self):
        a = Signal("a", 8)
        assert both(ops.shl(a, 2), {"a": 1}) == 4
        assert both(ops.lshr(a, 2), {"a": 0x80}) == 0x20
        assert both(ops.ashr(a, 2), {"a": 0x80}) == 0xE0

    def test_bit_and_bits(self):
        a = Signal("a", 8)
        assert both(ops.bit(a, 7), {"a": 0x80}) == 1
        assert both(ops.bits(a, 7, 4), {"a": 0xA5}) == 0xA

    def test_as_expr_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ops.as_expr("nope")  # type: ignore[arg-type]

    def test_as_expr_int_needs_width(self):
        with pytest.raises(TypeError):
            ops.as_expr(5)


# ----------------------------------------------------------------------
# property tests: interpreter and compiled evaluator agree on random trees
# ----------------------------------------------------------------------

_BINOPS = list(BinOpKind)
_UNOPS = list(UnOpKind)


@st.composite
def random_expr(draw, depth=3):
    width = draw(st.integers(1, 16))
    return _random_expr_of_width(draw, width, depth)


def _random_expr_of_width(draw, width, depth):
    if depth == 0:
        return Const(draw(st.integers(0, 2**width - 1)), width)
    choice = draw(st.integers(0, 5))
    if choice == 0:
        return Const(draw(st.integers(0, 2**width - 1)), width)
    if choice == 1:  # same-width binop
        kind = draw(st.sampled_from([BinOpKind.ADD, BinOpKind.SUB, BinOpKind.AND,
                                     BinOpKind.OR, BinOpKind.XOR]))
        a = _random_expr_of_width(draw, width, depth - 1)
        b = _random_expr_of_width(draw, width, depth - 1)
        return BinOp(kind, a, b)
    if choice == 2:  # mux
        sel = _random_expr_of_width(draw, 1, depth - 1)
        a = _random_expr_of_width(draw, width, depth - 1)
        b = _random_expr_of_width(draw, width, depth - 1)
        return Mux(sel, a, b)
    if choice == 3:  # unop
        kind = draw(st.sampled_from([UnOpKind.NOT, UnOpKind.NEG]))
        return UnOp(kind, _random_expr_of_width(draw, width, depth - 1))
    if choice == 4 and width >= 2:  # slice of something wider
        inner = _random_expr_of_width(draw, width + 3, depth - 1)
        lo = draw(st.integers(0, 3))
        return Slice(inner, lo + width - 1, lo)
    # extension of something narrower
    if width >= 2:
        inner_width = draw(st.integers(1, width - 1))
        inner = _random_expr_of_width(draw, inner_width, depth - 1)
        return Ext(inner, width, signed=draw(st.booleans()))
    return Const(draw(st.integers(0, 1)), width)


@given(random_expr())
def test_compiled_matches_interpreter_on_random_trees(expr):
    assert evaluate(expr) == evaluate_compiled(expr)


@given(random_expr())
def test_eval_result_fits_width(expr):
    value = evaluate(expr)
    assert 0 <= value < 2**expr.width


@given(st.integers(-(2**15), 2**15 - 1), st.integers(-(2**15), 2**15 - 1))
def test_muls_matches_python_signed_product(a, b):
    expr = BinOp(BinOpKind.MULS, Const(a, 16), Const(b, 16))
    assert both(expr) == (a * b) % 2**32
