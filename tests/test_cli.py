"""Tests for the command-line interface."""

import csv

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Verilog" in out and "MaxCompiler" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "verilog-opt" in out
        assert "maxj-initial" in out

    def test_verify_known_design(self, capsys):
        assert main(["verify", "chisel-opt"]) == 0
        out = capsys.readouterr().out
        assert "bit-exact" in out
        assert "periodicity 8" in out

    def test_verify_unknown_design(self, capsys):
        assert main(["verify", "nonexistent"]) == 2

    def test_table2_subset_with_csv(self, capsys, tmp_path):
        path = tmp_path / "table2.csv"
        assert main(["table2", "--tools", "Chisel/Chisel",
                     "--csv", str(path)]) == 0
        rows = list(csv.DictReader(path.open()))
        # Verilog baseline is always added, so 2 tools x 2 configs.
        assert len(rows) == 4
        assert {r["config"] for r in rows} == {"initial", "opt"}
        assert all(float(r["throughput_mops"]) > 0 for r in rows)

    def test_fig1_csv(self, capsys, tmp_path):
        path = tmp_path / "fig1.csv"
        assert main(["fig1", "--csv", str(path)]) == 0
        rows = list(csv.DictReader(path.open()))
        tools = {r["tool"] for r in rows}
        assert {"Vivado", "XLS", "MaxCompiler", "Bambu"} <= tools

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
