"""Tests for the AXI-Stream wrapper generator and stream harness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axis import (
    AxisPorts,
    KernelSpec,
    KernelStyle,
    StreamHarness,
    always,
    build_axis_wrapper,
    every,
    pack_row,
    unpack_row,
)
from repro.core.errors import FrontendError, ProtocolError
from repro.rtl import Module, ops
from repro.rtl.ir import Ref
from repro.sim import Simulator

ROWS, COLS, IN_W, OUT_W = 8, 8, 12, 9


def comb_spec(**kw):
    return KernelSpec(style=KernelStyle.COMB_MATRIX, rows=ROWS, cols=COLS,
                      in_width=IN_W, out_width=OUT_W, **kw)


def make_comb_kernel():
    """Combinational kernel: every element maps to (x >> 3) in 9 bits."""
    spec = comb_spec()
    m = Module("trunc_kernel")
    in_mat = m.input("in_mat", spec.in_mat_bits)
    out_mat = m.output("out_mat", spec.out_mat_bits)
    elems = []
    for i in range(ROWS * COLS):
        elem = ops.bits(in_mat, (i + 1) * IN_W - 1, i * IN_W)
        elems.append(ops.bits(ops.ashr(elem, 3), OUT_W - 1, 0))
    m.assign(out_mat, ops.cat(*reversed(elems)))
    return m, spec


def make_pipelined_kernel(latency=2):
    """Same transform, cut into ``latency`` register stages (with ce)."""
    spec = KernelSpec(style=KernelStyle.PIPELINED_MATRIX, rows=ROWS, cols=COLS,
                      in_width=IN_W, out_width=OUT_W, latency=latency)
    m = Module(f"pipe_kernel_{latency}")
    ce = m.input("ce", 1)
    in_mat = m.input("in_mat", spec.in_mat_bits)
    out_mat = m.output("out_mat", spec.out_mat_bits)
    elems = []
    for i in range(ROWS * COLS):
        elem = ops.bits(in_mat, (i + 1) * IN_W - 1, i * IN_W)
        elems.append(ops.bits(ops.ashr(elem, 3), OUT_W - 1, 0))
    value = ops.cat(*reversed(elems))
    for stage in range(latency):
        value = Ref(m.reg(f"stage{stage}", spec.out_mat_bits, next=value, en=Ref(ce)))
    m.assign(out_mat, value)
    return m, spec


def make_row_serial_kernel(latency=1):
    """Row-serial kernel: registered per-row transform, valid piped along."""
    spec = KernelSpec(style=KernelStyle.ROW_SERIAL, rows=ROWS, cols=COLS,
                      in_width=IN_W, out_width=OUT_W, latency=latency)
    m = Module("row_kernel")
    ce = m.input("ce", 1)
    in_row = m.input("in_row", spec.in_row_bits)
    in_valid = m.input("in_valid", 1)
    out_row = m.output("out_row", spec.out_row_bits)
    out_valid = m.output("out_valid", 1)
    elems = []
    for i in range(COLS):
        elem = ops.bits(in_row, (i + 1) * IN_W - 1, i * IN_W)
        elems.append(ops.bits(ops.ashr(elem, 3), OUT_W - 1, 0))
    data = ops.cat(*reversed(elems))
    valid = ops.as_expr(Ref(in_valid))
    for stage in range(latency):
        data = Ref(m.reg(f"d{stage}", spec.out_row_bits, next=data, en=Ref(ce)))
        valid = Ref(m.reg(f"v{stage}", 1, next=valid, en=Ref(ce)))
    m.assign(out_row, data)
    m.assign(out_valid, valid)
    return m, spec


def reference(matrix):
    return [[x >> 3 for x in row] for row in matrix]


def make_matrices(count=4):
    return [
        [[(mi * 64 + r * 8 + c) * 3 - 900 for c in range(COLS)] for r in range(ROWS)]
        for mi in range(count)
    ]


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        row = [-2048, 2047, 0, -1, 1, 100, -100, 5]
        word = pack_row(row, 12)
        assert unpack_row(word, 8, 12) == row

    def test_unpack_unsigned(self):
        word = pack_row([255, 1], 9)
        assert unpack_row(word, 2, 9, signed=False) == [255, 1]


class TestCombWrapper:
    def make(self, allow_overlap=True):
        kernel, spec = make_comb_kernel()
        top = build_axis_wrapper(kernel, spec, allow_capture_overlap=allow_overlap)
        return StreamHarness(Simulator(top), spec)

    def test_functional(self):
        harness = self.make()
        mats = make_matrices(3)
        outs, _timing = harness.run_matrices(mats)
        assert outs == [reference(m) for m in mats]

    def test_latency_17_periodicity_8(self):
        # The paper's initial Verilog design timing.
        harness = self.make()
        _outs, timing = harness.run_matrices(make_matrices(5))
        assert timing.latency == 17
        assert timing.periodicity == 8

    def test_capture_bubble_gives_periodicity_9(self):
        # The paper's BSV one-cycle bubble.
        harness = self.make(allow_overlap=False)
        _outs, timing = harness.run_matrices(make_matrices(5))
        assert timing.periodicity == 9

    def test_slow_source(self):
        harness = self.make()
        mats = make_matrices(2)
        outs, timing = harness.run_matrices(mats, valid_pattern=every(3))
        assert outs == [reference(m) for m in mats]
        assert timing.periodicity >= 8

    def test_backpressure_correctness(self):
        harness = self.make()
        mats = make_matrices(3)
        outs, _ = harness.run_matrices(mats, ready_pattern=every(2))
        assert outs == [reference(m) for m in mats]

    def test_joint_throttling(self):
        harness = self.make()
        mats = make_matrices(2)
        outs, _ = harness.run_matrices(
            mats, valid_pattern=every(2), ready_pattern=every(3, offset=1)
        )
        assert outs == [reference(m) for m in mats]

    def test_tlast_misalignment_flags_error(self):
        kernel, spec = make_comb_kernel()
        top = build_axis_wrapper(kernel, spec)
        sim = Simulator(top)
        # Send a row with TLAST asserted on the first beat: misaligned.
        sim.poke(AxisPorts.S_TVALID, 1)
        sim.poke(AxisPorts.S_TDATA, 0)
        sim.poke(AxisPorts.S_TLAST, 1)
        sim.poke(AxisPorts.M_TREADY, 1)
        sim.step(2)
        assert sim.peek_int(AxisPorts.ERROR) == 1

    def test_missing_ports_rejected(self):
        bad = Module("bad")
        bad.input("x", 8)
        y = bad.output("y", 8)
        bad.assign(y, ops.const(0, 8))
        with pytest.raises(FrontendError):
            build_axis_wrapper(bad, comb_spec())


class TestPipelinedWrapper:
    def make(self, latency):
        kernel, spec = make_pipelined_kernel(latency)
        top = build_axis_wrapper(kernel, spec)
        return StreamHarness(Simulator(top), spec)

    @pytest.mark.parametrize("latency", [1, 2, 4, 8])
    def test_functional_and_latency(self, latency):
        harness = self.make(latency)
        mats = make_matrices(4)
        outs, timing = harness.run_matrices(mats)
        assert outs == [reference(m) for m in mats]
        assert timing.latency == 17 + latency
        assert timing.periodicity == 8  # adapter-bound, as the paper observes

    def test_backpressure_freezes_pipeline(self):
        harness = self.make(3)
        mats = make_matrices(3)
        outs, _ = harness.run_matrices(mats, ready_pattern=every(4))
        assert outs == [reference(m) for m in mats]

    def test_latency_zero_rejected(self):
        with pytest.raises(FrontendError):
            KernelSpec(style=KernelStyle.PIPELINED_MATRIX, latency=0)


class TestRowSerialWrapper:
    def make(self, latency=1):
        kernel, spec = make_row_serial_kernel(latency)
        top = build_axis_wrapper(kernel, spec)
        return StreamHarness(Simulator(top), spec)

    def test_functional(self):
        harness = self.make()
        mats = make_matrices(3)
        outs, _ = harness.run_matrices(mats)
        assert outs == [reference(m) for m in mats]

    def test_periodicity_8(self):
        harness = self.make()
        _outs, timing = harness.run_matrices(make_matrices(5))
        assert timing.periodicity == 8

    def test_backpressure(self):
        harness = self.make(latency=2)
        mats = make_matrices(2)
        outs, _ = harness.run_matrices(mats, ready_pattern=every(3))
        assert outs == [reference(m) for m in mats]

    def test_missing_ports_rejected(self):
        bad = Module("bad")
        bad.input("in_row", 96)
        out = bad.output("out_row", 72)
        bad.assign(out, ops.const(0, 72))
        spec = KernelSpec(style=KernelStyle.ROW_SERIAL)
        with pytest.raises(FrontendError):
            build_axis_wrapper(bad, spec)


@given(st.integers(2, 5), st.integers(1, 4), st.integers(1, 4))
@settings(max_examples=8, deadline=None)
def test_property_any_throttling_preserves_data(n_mats, valid_n, ready_n):
    kernel, spec = make_comb_kernel()
    top = build_axis_wrapper(kernel, spec)
    harness = StreamHarness(Simulator(top), spec)
    mats = make_matrices(n_mats)
    outs, _ = harness.run_matrices(
        mats, valid_pattern=every(valid_n), ready_pattern=every(ready_n, offset=1)
    )
    assert outs == [reference(m) for m in mats]
