"""Tests for the Verilog and DOT backends."""

import re

from repro.backends import emit_dot, emit_verilog
from repro.rtl import Module, elaborate, ops
from repro.rtl.ir import MemRead, Ref


def make_design():
    m = Module("dut")
    a = m.input("a", 8)
    b = m.input("b", 8)
    y = m.output("y", 8)
    en = m.input("en", 1)
    total = m.reg("total", 8, init=3)
    m.set_next(total, ops.add(total, ops.mux(Ref(en), Ref(a), Ref(b))), en=Ref(en))
    m.assign(y, Ref(total))
    return m


class TestVerilog:
    def test_module_header_and_ports(self):
        text = emit_verilog(elaborate(make_design()))
        assert text.startswith("module dut (")
        assert "input clk;" in text
        assert "input [7:0] a;" in text
        assert "output [7:0] y;" in text
        assert text.rstrip().endswith("endmodule")

    def test_register_block(self):
        text = emit_verilog(elaborate(make_design()))
        assert "always @(posedge clk)" in text
        assert "if (rst)" in text
        assert "total <= 8'd3;" in text  # reset value

    def test_signed_ops_use_dollar_signed(self):
        m = Module("m")
        a = m.input("a", 8)
        b = m.input("b", 8)
        p = ops.mul(a, Ref(b), signed=True)
        y = m.output("y", p.width)
        m.assign(y, p)
        text = emit_verilog(elaborate(m))
        assert "$signed" in text

    def test_ashr_uses_triple_gt(self):
        m = Module("m")
        a = m.input("a", 8)
        y = m.output("y", 8)
        m.assign(y, ops.ashr(a, 2))
        text = emit_verilog(elaborate(m))
        assert ">>>" in text

    def test_memory_becomes_reg_array(self):
        m = Module("m")
        addr = m.input("addr", 3)
        we = m.input("we", 1)
        data = m.output("data", 8)
        mem = m.memory("buf", 8, 8, init=[1, 2, 3])
        m.mem_write(mem, Ref(we), Ref(addr), ops.const(0xAA, 8))
        m.assign(data, MemRead(mem, Ref(addr)))
        text = emit_verilog(elaborate(m))
        assert "reg [7:0] buf [0:7];" in text
        assert "initial begin" in text
        assert "buf[0] = 8'd1;" in text
        assert re.search(r"if \(.*we.*\) buf\[.*\] <= ", text)

    def test_hierarchical_dots_legalized(self):
        child = Module("child")
        ca = child.input("a", 4)
        cy = child.output("y", 4)
        child.assign(cy, ops.add(ca, 1))
        top = Module("top")
        a = top.input("a", 4)
        y = top.output("y", 4)
        top.instance(child, "u0", a=Ref(a), y=y)
        text = emit_verilog(elaborate(top))
        assert "." not in re.sub(r"//.*", "", text).replace("endmodule", "")

    def test_sign_extension_replication(self):
        m = Module("m")
        a = m.input("a", 4)
        y = m.output("y", 8)
        m.assign(y, ops.sext(a, 8))
        text = emit_verilog(elaborate(m))
        assert "{" in text and "}" in text  # replication concat emitted


class TestDot:
    def test_dot_structure(self):
        text = emit_dot(elaborate(make_design()))
        assert text.startswith('digraph "dut"')
        assert "rankdir=LR" in text
        assert "shape=triangle" in text  # inputs
        assert "shape=invtriangle" in text  # outputs
        assert "shape=box" in text  # registers
        assert "->" in text

    def test_dot_register_feedback_dashed(self):
        text = emit_dot(elaborate(make_design()))
        assert "style=dashed" in text
        assert "label=en" in text
