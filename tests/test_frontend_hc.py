"""Tests for the Chisel-like HC frontend: DSL width rules and IDCT designs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import FrontendError
from repro.eval.verify import verify_design
from repro.frontends.hc import (
    HcModule,
    Sig,
    chisel_initial,
    chisel_opt,
    idct_col_hc,
    idct_row_hc,
    lit,
    mux,
    select,
    transpose,
)
from repro.idct import idct_col, idct_row
from repro.rtl import elaborate
from repro.rtl.ir import eval_expr
from repro.sim import Simulator
from repro.synth import synthesize


def build_comb(fn, n_inputs, in_width, out_width=None):
    """Wrap a pure Sig function in a module and return a Simulator."""
    hc = HcModule("dut")
    inputs = [hc.input(f"i{k}", in_width) for k in range(n_inputs)]
    result = fn(*inputs)
    hc.output("o", result, width=out_width or result.width)
    return Simulator(hc.module)


def run1(fn, values, in_width, signed_out=True):
    sim = build_comb(fn, len(values), in_width)
    for k, v in enumerate(values):
        sim.poke(f"i{k}", v & ((1 << in_width) - 1))
    out = sim.peek("o")
    return out.sint if signed_out else out.uint


class TestWidthInference:
    def test_add_grows_one_bit(self):
        hc = HcModule("m")
        a = hc.input("a", 12)
        b = hc.input("b", 12)
        assert (a + b).width == 13

    def test_mixed_width_add(self):
        hc = HcModule("m")
        a = hc.input("a", 12)
        b = hc.input("b", 4)
        assert (a + b).width == 13

    def test_mul_width_is_sum(self):
        hc = HcModule("m")
        a = hc.input("a", 12)
        assert (a * a).width == 24

    def test_const_mul_uses_min_const_width(self):
        hc = HcModule("m")
        a = hc.input("a", 12)
        # 565 fits in 11 signed bits.
        assert (a * 565).width == 23

    def test_shift_left_grows(self):
        hc = HcModule("m")
        a = hc.input("a", 12)
        assert (a << 11).width == 23

    def test_shift_right_shrinks(self):
        hc = HcModule("m")
        a = hc.input("a", 12)
        assert (a >> 8).width == 4
        assert (a >> 100).width == 1

    def test_compare_is_one_bit(self):
        hc = HcModule("m")
        a = hc.input("a", 12)
        assert (a > 5).width == 1
        assert (a.eq(3)).width == 1

    def test_clip_width_is_minimal(self):
        hc = HcModule("m")
        a = hc.input("a", 20)
        assert a.clip(-256, 255).width == 9

    def test_lit_infers_width(self):
        assert lit(255).width == 9  # signed
        assert lit(255, signed=False).width == 8
        assert lit(-1).width == 1

    def test_bad_operand_rejected(self):
        hc = HcModule("m")
        a = hc.input("a", 4)
        with pytest.raises(FrontendError):
            a + "nope"  # type: ignore[operand]


class TestSemantics:
    @given(st.integers(-2048, 2047), st.integers(-2048, 2047))
    @settings(max_examples=40, deadline=None)
    def test_add_never_overflows(self, x, y):
        assert run1(lambda a, b: a + b, [x, y], 12) == x + y

    @given(st.integers(-2048, 2047), st.integers(-2048, 2047))
    @settings(max_examples=40, deadline=None)
    def test_sub_and_mul(self, x, y):
        assert run1(lambda a, b: a - b, [x, y], 12) == x - y
        assert run1(lambda a, b: a * b, [x, y], 12) == x * y

    @given(st.integers(-2048, 2047))
    @settings(max_examples=30, deadline=None)
    def test_shift_right_floors(self, x):
        assert run1(lambda a: a >> 3, [x], 12) == x >> 3

    @given(st.integers(-2048, 2047))
    @settings(max_examples=30, deadline=None)
    def test_clip(self, x):
        assert run1(lambda a: a.clip(-256, 255), [x], 12) == max(-256, min(255, x))

    def test_mux_selects(self):
        assert run1(lambda a, b: mux(a > b, a, b), [5, 9], 12) == 9
        assert run1(lambda a, b: mux(a > b, a, b), [9, 5], 12) == 9

    def test_select_indexes(self):
        hc = HcModule("m")
        idx = hc.input("idx", 2, signed=False)
        items = [lit(v, 8) for v in (10, 20, 30, 40)]
        hc.output("o", select(idx, items))
        sim = Simulator(hc.module)
        for i, expected in enumerate((10, 20, 30, 40)):
            sim.poke("idx", i)
            assert sim.peek("o").sint == expected

    def test_neg(self):
        assert run1(lambda a: -a, [7], 12) == -7

    def test_counter_wraps(self):
        hc = HcModule("m")
        en = hc.input("en", 1, signed=False)
        count, wrap = hc.counter("cnt", 5, advance=en)
        hc.output("count", count)
        hc.output("wrap", wrap)
        sim = Simulator(hc.module)
        sim.poke("en", 1)
        seen = []
        for _ in range(11):
            seen.append(sim.peek("count").uint)
            sim.step()
        assert seen == [0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0]

    def test_reg_declare_then_drive(self):
        hc = HcModule("m")
        acc = hc.reg_declare("acc", 8, signed=False)
        hc.drive(acc, Sig(acc.expr, signed=False) + 1)
        hc.output("o", acc)
        sim = Simulator(hc.module)
        sim.step(3)
        assert sim.peek("o").uint == 3

    def test_drive_non_register_rejected(self):
        hc = HcModule("m")
        a = hc.input("a", 4)
        with pytest.raises(FrontendError):
            hc.drive(a + 1, a)

    def test_kernel_ce_gates_registers(self):
        hc = HcModule("m", kernel=True)
        d = hc.input("d", 8)
        q = hc.reg("q", d)
        hc.output("o", q)
        sim = Simulator(hc.module)
        sim.poke("d", 42)
        sim.poke("ce", 0)
        sim.step(3)
        assert sim.peek("o").sint == 0
        sim.poke("ce", 1)
        sim.step()
        assert sim.peek("o").sint == 42


class TestIdctTransforms:
    @given(st.lists(st.integers(-2048, 2047), min_size=8, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_row_matches_golden(self, row):
        hc = HcModule("m")
        ins = [hc.input(f"i{k}", 12) for k in range(8)]
        outs = idct_row_hc(ins)
        for k, out in enumerate(outs):
            hc.output(f"o{k}", out)
        sim = Simulator(hc.module)
        for k, v in enumerate(row):
            sim.poke(f"i{k}", v & 0xFFF)
        got = [sim.peek(f"o{k}").sint for k in range(8)]
        assert got == idct_row(row)

    @given(st.lists(st.integers(-(1 << 18), (1 << 18) - 1), min_size=8, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_col_matches_golden(self, col):
        hc = HcModule("m")
        ins = [hc.input(f"i{k}", 19) for k in range(8)]
        outs = idct_col_hc(ins)
        for k, out in enumerate(outs):
            hc.output(f"o{k}", out)
        sim = Simulator(hc.module)
        for k, v in enumerate(col):
            sim.poke(f"i{k}", v & 0x7FFFF)
        got = [sim.peek(f"o{k}").sint for k in range(8)]
        assert got == idct_col(col)

    def test_transpose_is_pure_wiring(self):
        matrix = [[lit(r * 8 + c, 8) for c in range(8)] for r in range(8)]
        t = transpose(matrix)
        assert t[2][5] is matrix[5][2]


class TestSystemDesigns:
    def test_initial_bit_exact_latency_17(self):
        result = verify_design(chisel_initial(), n_matrices=5)
        assert result.bit_exact
        assert result.latency == 17
        assert result.periodicity == 8

    def test_opt_bit_exact(self):
        result = verify_design(chisel_opt(), n_matrices=5)
        assert result.bit_exact
        assert result.periodicity == 8

    def test_width_inference_shrinks_initial_area(self):
        # The paper: the Chisel initial design needs slightly *less* area
        # than Verilog because widths are inferred more accurately.
        from repro.frontends.vlog import verilog_initial

        chisel = synthesize(elaborate(chisel_initial().top), max_dsp=0)
        verilog = synthesize(elaborate(verilog_initial().top), max_dsp=0)
        assert chisel.area < verilog.area
        assert chisel.fmax_mhz >= 0.95 * verilog.fmax_mhz

    def test_opt_is_close_to_verilog_opt(self):
        # The paper: Chisel opt is "slightly inferior to Verilog" —
        # performance 98.7%, area 109.5%.
        from repro.frontends.vlog import verilog_opt

        chisel = synthesize(elaborate(chisel_opt().top), max_dsp=0)
        verilog = synthesize(elaborate(verilog_opt().top), max_dsp=0)
        assert 0.85 <= chisel.fmax_mhz / verilog.fmax_mhz <= 1.1
        assert 0.9 <= chisel.area / verilog.area <= 1.3

    def test_sources_look_like_scala(self):
        design = chisel_opt()
        assert any(s.label.endswith(".scala") for s in design.sources)
