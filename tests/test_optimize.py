"""Tests for the netlist optimization passes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtl import Module, Netlist, elaborate, ops, optimize
from repro.rtl.ir import Const, MemRead, Mux, Ref
from repro.sim import Simulator
from repro.synth import synthesize


def equivalent(netlist: Netlist, optimized: Netlist, inputs, n=20, seed=3):
    """Random-stimulus equivalence check over all outputs."""
    import random

    rng = random.Random(seed)
    a, b = Simulator(netlist), Simulator(optimized)
    for _ in range(n):
        for sig in inputs:
            value = rng.getrandbits(sig.width)
            a.poke(sig, value)
            b.poke(sig, value)
        for sim in (a, b):
            sim.step()
        for out in netlist.outputs:
            if a.peek(out) != b.peek(out):
                return False
    return True


class TestFolding:
    def test_constant_tree_folds(self):
        m = Module("m")
        y = m.output("y", 16)
        m.assign(y, ops.trunc(ops.mul(ops.const(6, 8), ops.const(7, 8),
                                      signed=False), 16))
        netlist = elaborate(m)
        optimized, stats = optimize(netlist)
        assert stats.folded >= 1
        expr = optimized.assigns[0][1]
        assert isinstance(expr, Const)
        assert expr.value == 42

    def test_folding_matches_interpreter(self):
        m = Module("m")
        a = m.input("a", 8)
        y = m.output("y", 9)
        # (a + (3*5 - 15)) -> a + 0 -> a after fold + simplify
        m.assign(y, ops.add(a, ops.trunc(
            ops.sub(ops.mul(ops.const(3, 4), ops.const(5, 4), signed=False),
                    ops.const(15, 8)), 8), grow=True))
        netlist = elaborate(m)
        optimized, _stats = optimize(netlist)
        assert equivalent(netlist, optimized, netlist.inputs)


class TestSimplify:
    def make(self, build):
        m = Module("m")
        a = m.input("a", 8)
        y = m.output("y", 8)
        m.assign(y, build(a))
        return elaborate(m)

    @pytest.mark.parametrize("build", [
        lambda a: ops.add(a, 0),
        lambda a: ops.sub(a, 0),
        lambda a: ops.bor(a, 0),
        lambda a: ops.bxor(a, 0),
        lambda a: ops.shl(a, 0),
    ], ids=["add0", "sub0", "or0", "xor0", "shl0"])
    def test_identity_ops_vanish(self, build):
        netlist = self.make(build)
        optimized, stats = optimize(netlist)
        assert stats.simplified >= 1
        # The output should collapse to a direct read of the input.
        expr = optimized.assigns[0][1]
        assert isinstance(expr, Ref)

    def test_mul_by_zero_is_zero(self):
        netlist = self.make(lambda a: ops.trunc(ops.mul(a, 0), 8))
        optimized, _ = optimize(netlist)
        expr = optimized.assigns[0][1]
        assert isinstance(expr, Const) and expr.value == 0

    def test_mux_same_arms(self):
        m = Module("m")
        a = m.input("a", 8)
        sel = m.input("sel", 1)
        y = m.output("y", 8)
        arm = ops.add(a, 1)
        m.assign(y, Mux(Ref(sel), arm, arm))
        optimized, stats = optimize(elaborate(m))
        assert stats.simplified >= 1

    def test_const_mux_picks_arm(self):
        m = Module("m")
        a = m.input("a", 8)
        y = m.output("y", 8)
        m.assign(y, ops.mux(ops.const(1, 1), Ref(a), ops.const(9, 8)))
        optimized, _ = optimize(elaborate(m))
        assert isinstance(optimized.assigns[0][1], Ref)

    def test_slice_of_slice_flattens(self):
        m = Module("m")
        a = m.input("a", 16)
        y = m.output("y", 4)
        m.assign(y, ops.bits(ops.bits(a, 11, 4), 5, 2))
        netlist = elaborate(m)
        optimized, _ = optimize(netlist)
        assert equivalent(netlist, optimized, netlist.inputs)


class TestCse:
    def test_duplicate_subtrees_merge(self):
        m = Module("m")
        a = m.input("a", 12)
        y0 = m.output("y0", 25)
        y1 = m.output("y1", 25)
        # Two structurally identical, distinct trees.
        m.assign(y0, ops.mul(a, 2841))
        m.assign(y1, ops.mul(a, 2841))
        netlist = elaborate(m)
        optimized, stats = optimize(netlist)
        assert stats.merged >= 1
        before = synthesize(netlist, max_dsp=0)
        after = synthesize(optimized, max_dsp=0)
        assert after.n_lut < before.n_lut

    def test_cse_preserves_semantics(self):
        m = Module("m")
        a = m.input("a", 8)
        b = m.input("b", 8)
        y = m.output("y", 10)
        first = ops.add(a, Ref(b), grow=True)
        second = ops.add(a, Ref(b), grow=True)  # distinct object, same shape
        m.assign(y, ops.add(first, second, grow=True))
        netlist = elaborate(m)
        optimized, _ = optimize(netlist)
        assert equivalent(netlist, optimized, netlist.inputs)


class TestDce:
    def test_dead_logic_dropped(self):
        m = Module("m")
        a = m.input("a", 8)
        y = m.output("y", 8)
        m.assign(y, ops.add(a, 1))
        ghost = m.wire("ghost", 16)
        m.assign(ghost, ops.mul(a, Ref(a)))      # never observed
        m.reg("dead_reg", 8, next=ops.add(a, 2))  # never observed
        netlist = elaborate(m)
        optimized, stats = optimize(netlist)
        assert stats.dead_assigns >= 1
        assert stats.dead_registers >= 1
        assert len(optimized.registers) == 0

    def test_dead_memory_dropped(self):
        m = Module("m")
        a = m.input("a", 8)
        y = m.output("y", 8)
        m.assign(y, ops.add(a, 1))
        mem = m.memory("unused", 8, 8)
        m.mem_write(mem, ops.const(1, 1), ops.const(0, 32), ops.bnot(a))
        optimized, stats = optimize(elaborate(m))
        assert stats.dead_memories == 1
        assert not optimized.memories

    def test_live_memory_kept(self):
        m = Module("m")
        addr = m.input("addr", 3)
        we = m.input("we", 1)
        y = m.output("y", 8)
        mem = m.memory("ram", 8, 8)
        m.mem_write(mem, Ref(we), Ref(addr), ops.const(7, 8))
        m.assign(y, MemRead(mem, Ref(addr)))
        netlist = elaborate(m)
        optimized, _ = optimize(netlist)
        assert len(optimized.memories) == 1
        assert len(optimized.memories[0].writes) == 1

    def test_feedback_register_stays_live(self):
        m = Module("m")
        y = m.output("y", 8)
        count = m.reg("count", 8)
        m.set_next(count, ops.add(count, 1))
        m.assign(y, Ref(count))
        optimized, stats = optimize(elaborate(m))
        assert len(optimized.registers) == 1


class TestOnRealDesigns:
    @pytest.mark.parametrize("factory_path", [
        "repro.frontends.vlog:verilog_opt",
        "repro.frontends.hc:chisel_initial",
        "repro.frontends.rules:bsv_opt",
    ])
    def test_designs_stay_bit_exact_after_optimize(self, factory_path):
        import importlib

        from repro.axis import StreamHarness
        from repro.eval.verify import random_matrices
        from repro.idct import chen_wang_idct
        from repro.sim import Simulator

        mod_name, fn_name = factory_path.split(":")
        design = getattr(importlib.import_module(mod_name), fn_name)()
        netlist = elaborate(design.top)
        optimized, stats = optimize(netlist)
        assert stats.total() > 0
        mats = random_matrices(3, seed=21)
        harness = StreamHarness(Simulator(optimized), design.spec)
        outs, _ = harness.run_matrices(mats)
        assert outs == [chen_wang_idct(m) for m in mats]

    def test_optimize_never_grows_area(self):
        from repro.frontends.vlog import verilog_initial

        netlist = elaborate(verilog_initial().top)
        optimized, _ = optimize(netlist)
        before = synthesize(netlist, max_dsp=0)
        after = synthesize(optimized, max_dsp=0)
        assert after.area <= before.area


@st.composite
def random_comb_module(draw):
    m = Module("rand")
    a = m.input("a", 8)
    b = m.input("b", 8)
    expr = ops.as_expr(a)
    for _ in range(draw(st.integers(1, 6))):
        choice = draw(st.integers(0, 5))
        if choice == 0:
            expr = ops.trunc(ops.add(expr, Ref(b)), 8)
        elif choice == 1:
            expr = ops.trunc(ops.mul(expr, draw(st.integers(0, 7))), 8)
        elif choice == 2:
            expr = ops.bxor(expr, draw(st.integers(0, 255)))
        elif choice == 3:
            expr = ops.mux(ops.bit(Ref(b), 0), expr, ops.bnot(expr))
        elif choice == 4:
            expr = ops.trunc(ops.add(expr, 0), 8)
        else:
            expr = ops.sext(ops.bits(expr, 6, 1), 8)
    y = m.output("y", 8)
    m.assign(y, ops.resize(expr, 8, signed=False))
    return m


@given(random_comb_module())
@settings(max_examples=25, deadline=None)
def test_property_optimize_preserves_semantics(module):
    netlist = elaborate(module)
    optimized, _stats = optimize(netlist)
    assert equivalent(netlist, optimized, netlist.inputs, n=8)
