"""Tests for the FIFO generator and the elastic wrapper variant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axis import (
    KernelSpec,
    KernelStyle,
    StreamHarness,
    build_elastic_wrapper,
    build_fifo,
    every,
)
from repro.core.errors import FrontendError
from repro.eval.verify import random_matrices
from repro.frontends.vlog import build_opt_kernel
from repro.idct import chen_wang_idct
from repro.rtl import elaborate
from repro.sim import Simulator
from repro.synth import synthesize


class FifoModel:
    """Reference queue with the generated FIFO's exact handshake rules."""

    def __init__(self, depth):
        self.depth = depth
        self.items = []

    def step(self, wr_valid, wr_data, rd_ready):
        do_deq = rd_ready and bool(self.items)
        can_enq = len(self.items) < self.depth or do_deq
        do_enq = wr_valid and can_enq
        rd = self.items[0] if self.items else None
        if do_deq:
            self.items.pop(0)
        if do_enq:
            self.items.append(wr_data)
        return can_enq, rd, do_deq


class TestFifo:
    def drive(self, depth, trace):
        fifo = build_fifo("f", 8, depth)
        sim = Simulator(fifo)
        model = FifoModel(depth)
        outputs = []
        for wr_valid, wr_data, rd_ready in trace:
            sim.poke("wr_valid", int(wr_valid))
            sim.poke("wr_data", wr_data & 0xFF)
            sim.poke("rd_ready", int(rd_ready))
            wr_ready = bool(sim.peek_int("wr_ready"))
            rd_valid = bool(sim.peek_int("rd_valid"))
            rd_data = sim.peek_int("rd_data")
            can_enq, expected_head, deq = model.step(wr_valid, wr_data, rd_ready)
            assert wr_ready == can_enq
            assert rd_valid == (expected_head is not None)
            if rd_valid and deq:
                outputs.append(rd_data)
                assert rd_data == expected_head
            sim.step()
        return outputs

    def test_fill_then_drain(self):
        trace = [(True, i, False) for i in range(4)]
        trace += [(False, 0, True)] * 5
        outs = self.drive(4, trace)
        assert outs == [0, 1, 2, 3]

    def test_simultaneous_enq_deq_when_full(self):
        trace = [(True, i, False) for i in range(2)]       # fill depth-2
        trace += [(True, 10 + i, True) for i in range(4)]  # flow-through
        trace += [(False, 0, True)] * 3
        outs = self.drive(2, trace)
        assert outs == [0, 1, 10, 11, 12, 13]

    def test_depth_one(self):
        trace = [(True, 7, False), (True, 8, True), (False, 0, True)]
        outs = self.drive(1, trace)
        assert outs == [7, 8]

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 255),
                              st.booleans()), min_size=1, max_size=60),
           st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_reference_queue(self, trace, depth):
        self.drive(depth, trace)  # all assertions inside

    def test_bad_parameters_rejected(self):
        with pytest.raises(FrontendError):
            build_fifo("f", 8, 0)
        with pytest.raises(FrontendError):
            build_fifo("f", 0, 4)


def make_elastic_idct():
    kernel = build_opt_kernel()
    spec = KernelSpec(style=KernelStyle.ROW_SERIAL, rows=8, cols=8,
                      in_width=12, out_width=9, latency=16)
    top = build_elastic_wrapper(kernel, spec)
    return top, spec


class TestElasticWrapper:
    def test_functional(self):
        top, spec = make_elastic_idct()
        harness = StreamHarness(Simulator(top), spec)
        mats = random_matrices(4, seed=61)
        outs, timing = harness.run_matrices(mats)
        assert outs == [chen_wang_idct(m) for m in mats]
        assert timing.periodicity == 8

    def test_backpressure_absorbed_by_fifo(self):
        top, spec = make_elastic_idct()
        harness = StreamHarness(Simulator(top), spec)
        mats = random_matrices(3, seed=62)
        outs, _ = harness.run_matrices(mats, ready_pattern=every(3))
        assert outs == [chen_wang_idct(m) for m in mats]

    def test_joint_throttling(self):
        top, spec = make_elastic_idct()
        harness = StreamHarness(Simulator(top), spec)
        mats = random_matrices(2, seed=63)
        outs, _ = harness.run_matrices(mats, valid_pattern=every(2),
                                       ready_pattern=every(3, offset=2))
        assert outs == [chen_wang_idct(m) for m in mats]

    @given(st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=6, deadline=None)
    def test_property_any_throttling(self, valid_n, ready_n):
        top, spec = make_elastic_idct()
        harness = StreamHarness(Simulator(top), spec)
        mats = random_matrices(2, seed=64)
        outs, _ = harness.run_matrices(mats, valid_pattern=every(valid_n),
                                       ready_pattern=every(ready_n, offset=1))
        assert outs == [chen_wang_idct(m) for m in mats]

    def test_elastic_costs_fifo_area(self):
        from repro.axis import build_axis_wrapper
        from repro.frontends.vlog import build_opt_kernel as mk

        spec = KernelSpec(style=KernelStyle.ROW_SERIAL, rows=8, cols=8,
                          in_width=12, out_width=9, latency=16)
        stall = synthesize(elaborate(build_axis_wrapper(mk(), spec)), max_dsp=0)
        elastic = synthesize(elaborate(build_elastic_wrapper(mk(), spec)),
                             max_dsp=0)
        # The FIFO slots cost flip-flops the global-stall scheme avoids.
        assert elastic.n_ff > stall.n_ff

    def test_wrong_kernel_style_rejected(self):
        from repro.rtl import Module, ops

        m = Module("bad")
        a = m.input("in_mat", 768)
        y = m.output("out_mat", 576)
        m.assign(y, ops.trunc(ops.as_expr(a), 576))
        spec = KernelSpec(style=KernelStyle.COMB_MATRIX)
        with pytest.raises(FrontendError):
            build_elastic_wrapper(m, spec)
