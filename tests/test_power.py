"""Tests for the activity-based power model."""

from repro.axis import StreamHarness
from repro.eval.verify import random_matrices
from repro.rtl import Module, elaborate, ops
from repro.rtl.ir import Ref
from repro.sim import Simulator
from repro.synth import estimate_power, measure_activity, synthesize


def make_counter(width=8):
    m = Module("counter")
    en = m.input("en", 1)
    out = m.output("out", width)
    count = m.reg("count", width)
    m.set_next(count, ops.add(count, 1), en=Ref(en))
    m.assign(out, Ref(count))
    return elaborate(m)


class TestActivity:
    def test_idle_design_has_zero_activity(self):
        netlist = make_counter()
        sim = Simulator(netlist)

        def idle(s):
            s.poke("en", 0)
            s.step(50)

        activity = measure_activity(sim, idle)
        assert all(rate == 0.0 for sig, rate in activity.items()
                   if sig.name != "en")

    def test_counter_lsb_toggles_every_cycle(self):
        netlist = make_counter()
        sim = Simulator(netlist)

        def run(s):
            s.poke("en", 1)
            s.step(64)

        activity = measure_activity(sim, run)
        count_sig = next(sig for sig in activity if sig.name == "count")
        # A binary counter toggles ~2 bits per cycle on average:
        # activity per bit = 2/width.
        assert abs(activity[count_sig] - 2 / count_sig.width) < 0.05

    def test_activity_bounded_by_one(self):
        netlist = make_counter()
        sim = Simulator(netlist)

        def run(s):
            s.poke("en", 1)
            s.step(32)

        activity = measure_activity(sim, run)
        assert all(0.0 <= rate <= 1.0 for rate in activity.values())


class TestPowerEstimate:
    def _measure(self, netlist, run):
        sim = Simulator(netlist)
        activity = measure_activity(sim, run)
        report = synthesize(netlist, max_dsp=0)
        return estimate_power(netlist, activity, report.fmax_mhz)

    def test_active_burns_more_than_idle(self):
        netlist = make_counter()
        active = self._measure(netlist, lambda s: (s.poke("en", 1), s.step(64)))
        idle = self._measure(netlist, lambda s: (s.poke("en", 0), s.step(64)))
        assert active.dynamic_mw > idle.dynamic_mw
        # Clock and leakage are activity-independent.
        assert abs(active.clock_mw - idle.clock_mw) < 1e-9
        assert abs(active.static_mw - idle.static_mw) < 1e-9

    def test_report_shape(self):
        netlist = make_counter()
        power = self._measure(netlist, lambda s: (s.poke("en", 1), s.step(16)))
        assert power.total_mw == (power.dynamic_mw + power.static_mw)
        assert "mW total" in power.summary()
        assert 0 <= power.mean_activity <= 1

    def test_deep_pipeline_burns_more_clock_power(self):
        # The DSE trade-off the paper gestures at: XLS's deep pipelines pay
        # in clock/FF power, not just FF area.
        from repro.frontends.flow import xls_design

        def measure(stages):
            design = xls_design(stages)
            netlist = elaborate(design.top)
            sim = Simulator(netlist)
            harness = StreamHarness(sim, design.spec)
            mats = random_matrices(2, seed=9)

            def run(s):
                harness.run_matrices(mats)

            activity = measure_activity(sim, run)
            report = synthesize(netlist, max_dsp=0)
            return estimate_power(netlist, activity, report.fmax_mhz)

        shallow = measure(1)
        deep = measure(8)
        assert deep.clock_mw > 3 * shallow.clock_mw
