"""Tests for the XLS-like flow frontend: auto-pipeliner and IDCT sweep."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import FrontendError
from repro.eval.verify import verify_design
from repro.frontends.flow import build_kernel, pipeline_kernel, xls_design, xls_sweep
from repro.frontends.hc.dsl import Sig
from repro.rtl import elaborate
from repro.sim import Simulator
from repro.synth import synthesize


def simple_kernel(inputs):
    """(a * b + c) >> 2 — a small but multi-level dataflow."""
    a, b, c = (s.as_signed() for s in inputs)
    return {"y": ((a * b + c) >> 2).resize(24)}


def build_simple(n_stages):
    return pipeline_kernel(
        "simple",
        [("a", 12), ("b", 12), ("c", 12)],
        simple_kernel,
        n_stages,
    )


def run_pipelined(result, stimulus):
    """Feed ``stimulus`` tuples; collect outputs after the latency."""
    sim = Simulator(result.module)
    if result.n_stages:
        sim.poke("ce", 1)
    outs = []
    for step, values in enumerate(stimulus + [(0, 0, 0)] * result.latency):
        if step < len(stimulus):
            a, b, c = values
            sim.poke("a", a & 0xFFF)
            sim.poke("b", b & 0xFFF)
            sim.poke("c", c & 0xFFF)
        if step >= result.latency:
            outs.append(sim.peek("y").sint)
        sim.step()
    return outs


def reference(values):
    return [((a * b + c) >> 2) for a, b, c in values]


class TestPipeliner:
    def test_comb_mode_has_no_registers(self):
        result = build_simple(0)
        assert result.latency == 0
        assert result.pipeline_ff_bits == 0
        netlist = elaborate(result.module)
        assert not netlist.registers

    @pytest.mark.parametrize("stages", [1, 2, 3, 5])
    def test_any_depth_preserves_function(self, stages):
        result = build_simple(stages)
        assert result.latency == stages
        values = [(100, -50, 7), (-2048, 2047, 0), (1, 1, 1), (500, 3, -8)]
        assert run_pipelined(result, values) == reference(values)

    @given(st.lists(st.tuples(st.integers(-2048, 2047),
                              st.integers(-2048, 2047),
                              st.integers(-2048, 2047)),
                    min_size=1, max_size=6),
           st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_property_pipelining_is_transparent(self, values, stages):
        result = build_simple(stages)
        assert run_pipelined(result, values) == reference(values)

    def test_deeper_pipeline_more_ff(self):
        shallow = build_simple(1)
        deep = build_simple(4)
        assert deep.pipeline_ff_bits > shallow.pipeline_ff_bits

    def test_deeper_pipeline_higher_fmax(self):
        comb = synthesize(elaborate(build_kernel(0).module), max_dsp=0)
        deep = synthesize(elaborate(build_kernel(6).module), max_dsp=0)
        assert deep.fmax_mhz > 2 * comb.fmax_mhz

    def test_stage_counts_cover_all_nodes(self):
        result = build_simple(3)
        assert len(result.stage_node_counts) == 3
        assert sum(result.stage_node_counts) > 0

    def test_negative_stages_rejected(self):
        with pytest.raises(FrontendError):
            build_simple(-1)

    def test_empty_kernel_rejected(self):
        with pytest.raises(FrontendError):
            pipeline_kernel("empty", [("a", 4)], lambda ins: {}, 2)

    def test_ce_freezes_pipeline(self):
        result = build_simple(2)
        sim = Simulator(result.module)
        sim.poke("ce", 1)
        sim.poke("a", 10)
        sim.poke("b", 10)
        sim.poke("c", 0)
        sim.step(2)
        assert sim.peek("y").sint == 25
        sim.poke("ce", 0)
        sim.poke("a", 99)
        sim.step(5)
        assert sim.peek("y").sint == 25  # frozen


class TestXlsDesigns:
    def test_initial_comb_is_bit_exact(self):
        result = verify_design(xls_design(0), n_matrices=4)
        assert result.bit_exact
        assert result.latency == 17
        assert result.periodicity == 8

    @pytest.mark.parametrize("stages", [1, 3, 8])
    def test_pipelined_bit_exact_latency_17_plus_n(self, stages):
        result = verify_design(xls_design(stages), n_matrices=4)
        assert result.bit_exact
        assert result.latency == 17 + stages
        assert result.periodicity == 8  # adapter-bound, as the paper notes

    def test_sweep_has_19_points(self):
        designs = xls_sweep()
        assert len(designs) == 19
        stages = sorted(d.meta["pipeline"].n_stages for d in designs)
        assert stages == list(range(19))

    def test_frequency_grows_with_stages(self):
        f0 = synthesize(elaborate(xls_design(0).top), max_dsp=0).fmax_mhz
        f8 = synthesize(elaborate(xls_design(8).top), max_dsp=0).fmax_mhz
        assert f8 > 3 * f0

    def test_area_grows_with_stages(self):
        a2 = synthesize(elaborate(xls_design(2).top), max_dsp=0).area
        a10 = synthesize(elaborate(xls_design(10).top), max_dsp=0).area
        assert a10 > a2

    def test_quality_peaks_at_moderate_depth(self):
        # The paper's XLS story: deep pipelines buy frequency but the
        # sequential adapter caps throughput, so Q rises then falls.
        def quality(stages):
            design = xls_design(stages)
            run = verify_design(design, n_matrices=4)
            report = synthesize(elaborate(design.top), max_dsp=0)
            return (report.fmax_mhz / run.periodicity) / report.area

        q0, q4, q16 = quality(0), quality(4), quality(16)
        assert q4 > q0
        assert q4 > q16

    def test_sources_include_config(self):
        design = xls_design(8)
        kinds = {s.kind for s in design.sources}
        assert "config" in kinds
        config = next(s for s in design.sources if s.kind == "config")
        assert "pipeline_stages = 8" in config.text
