"""Tests for the HLS scheduler/FSM codegen and the C IDCT designs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import HlsError
from repro.eval.verify import verify_design
from repro.frontends.chls import (
    BambuConfig,
    HlsOptions,
    bambu_initial,
    bambu_opt,
    bambu_sweep,
    build_function_top,
    parse,
    vivado_initial,
    vivado_opt,
)
from repro.frontends.chls.transform import inline_program
from repro.rtl import elaborate
from repro.sim import Simulator
from repro.synth import synthesize


def compile_top(src, top="top", options=None, inline_all=True):
    flat, _ = inline_program(parse(src), top, inline_all=inline_all)
    return build_function_top(flat, options or HlsOptions())


def run_function(result, args=None, arrays=None, timeout=3000):
    sim = Simulator(result.module)
    for name, value in (args or {}).items():
        sim.poke(f"arg_{name}", value & 0xFFFFFFFF)
    for mem, contents in (arrays or {}).items():
        memory = next(m for m in sim.netlist.memories if mem in m.name)
        sim.write_memory(memory, [v & 0xFFFF for v in contents])
    sim.poke("start", 1)
    cycles = sim.run_until(lambda s: s.peek_int("done") == 1, timeout=timeout)
    out_arrays = {}
    for mem in sim.netlist.memories:
        raw = sim.read_memory(mem)
        out_arrays[mem.name] = [v - 0x10000 if v & 0x8000 else v for v in raw]
    retval = sim.peek("retval").sint if any(
        s.name == "retval" for s in sim.netlist.outputs) else None
    return retval, out_arrays, cycles


class TestFunctionCompilation:
    def test_arith_and_return(self):
        result = compile_top("int top(int a, int b) { return a * b - 7; }")
        retval, _, _ = run_function(result, {"a": 6, "b": 9})
        assert retval == 47

    def test_c_semantics_are_32_bit(self):
        result = compile_top("int top(int a) { return a * a; }")
        retval, _, _ = run_function(result, {"a": 1 << 20})
        assert retval == ((1 << 40) % (1 << 32)) - (1 << 32) or retval == 0
        # (1<<40) wraps to 0 in 32 bits.
        assert retval == 0

    def test_short_truncates_on_store(self):
        src = """void top(short b[4]) {
          b[0] = 70000;
        }"""
        result = compile_top(src)
        _, arrays, _ = run_function(result)
        value = list(arrays.values())[0][0]
        assert value == 70000 - 65536  # wrapped to 16 bits

    def test_ternary(self):
        result = compile_top(
            "int top(int a) { return a < 0 ? 0 - a : a; }")
        assert run_function(result, {"a": -42})[0] == 42
        assert run_function(result, {"a": 17})[0] == 17

    def test_if_else(self):
        src = """int top(int a) {
          int r = 0;
          if (a > 10) { r = 1; } else { r = 2; }
          return r;
        }"""
        result = compile_top(src)
        assert run_function(result, {"a": 50})[0] == 1
        assert run_function(result, {"a": 5})[0] == 2

    def test_rolled_loop_accumulates(self):
        src = """int top(int a) {
          int acc = 0;
          for (i = 0; i < 10; i++)
            acc = acc + a;
          return acc;
        }"""
        result = compile_top(src)
        assert run_function(result, {"a": 7})[0] == 70

    def test_nested_loops(self):
        src = """int top() {
          int acc = 0;
          for (i = 0; i < 3; i++)
            for (j = 0; j < 4; j++)
              acc = acc + 1;
          return acc;
        }"""
        assert run_function(compile_top(src))[0] == 12

    def test_array_roundtrip(self):
        src = """void top(short b[8]) {
          for (i = 0; i < 8; i++)
            b[i] = b[i] * 2 + 1;
        }"""
        result = compile_top(src)
        _, arrays, _ = run_function(result, arrays={"b": list(range(8))})
        assert list(arrays.values())[0] == [2 * v + 1 for v in range(8)]

    def test_memory_ports_throttle_schedule(self):
        src = """void top(short b[16]) {
          for (i = 0; i < 16; i++)
            b[i] = b[i] + 1;
        }"""
        slow = compile_top(src, options=HlsOptions(mem_read_ports=1,
                                                   mem_write_ports=1))
        fast = compile_top(src, options=HlsOptions(mem_read_ports=2,
                                                   mem_write_ports=2))
        data = list(range(16))
        _, out_slow, cycles_slow = run_function(slow, arrays={"b": data})
        _, out_fast, cycles_fast = run_function(fast, arrays={"b": data})
        assert list(out_slow.values())[0] == [v + 1 for v in data]
        assert list(out_fast.values())[0] == [v + 1 for v in data]

    def test_chaining_reduces_cycles(self):
        src = """int top(int a) {
          int x = a + 1;
          int y = x + 2;
          int z = y + 3;
          return z;
        }"""
        chained = compile_top(src, options=HlsOptions(chaining=True))
        naive = compile_top(src, options=HlsOptions(chaining=False))
        _, _, cycles_chained = run_function(chained, {"a": 1})
        _, _, cycles_naive = run_function(naive, {"a": 1})
        assert run_function(chained, {"a": 1})[0] == 7
        assert run_function(naive, {"a": 1})[0] == 7
        assert cycles_chained < cycles_naive

    def test_unroll_pragma(self):
        src = """void top(short b[4]) {
          #pragma HLS UNROLL
          for (i = 0; i < 4; i++)
            b[i] = i * 3;
        }"""
        result = compile_top(
            src, options=HlsOptions(partition_arrays=frozenset({"b"})))
        _, arrays, _ = run_function(result)
        # Partitioned array: elements live in registers, not memories, so
        # check via the register map instead.
        sim = Simulator(result.module)
        sim.poke("start", 1)
        sim.run_until(lambda s: s.peek_int("done") == 1, timeout=100)
        values = [sim.peek(f"v_b__{j}").sint for j in range(4)]
        assert values == [0, 3, 6, 9]

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=10, deadline=None)
    def test_property_expressions_match_python(self, a, b):
        src = """int top(int a, int b) {
          return ((a * 3 - b) << 2) + (a > b ? 1 : 0);
        }"""
        result = compile_top(src)
        expected = (((a * 3 - b) << 2) + (1 if a > b else 0))
        retval, _, _ = run_function(result, {"a": a, "b": b})
        assert retval == expected

    def test_pipelined_loop_matches_rolled(self):
        src_base = """void top(short b[8]) {{
          #pragma HLS ARRAY_PARTITION variable=b complete
          {pragma}
          for (i = 0; i < 8; i++)
            b[i] = b[i] * 5 - i;
        }}"""
        opts = HlsOptions(partition_arrays=frozenset({"b"}))
        piped = compile_top(src_base.format(pragma="#pragma HLS PIPELINE"),
                            options=opts)
        rolled = compile_top(src_base.format(pragma=""), options=opts)

        def run_banked(result):
            sim = Simulator(result.module)
            for j in range(8):
                # poke bank registers via backdoor: they are plain regs, so
                # initialize by running a first pass with inputs... simplest:
                pass
            sim.poke("start", 1)
            sim.run_until(lambda s: s.peek_int("done") == 1, timeout=500)
            return [sim.peek(f"v_b__{j}").sint for j in range(8)]

        assert run_banked(piped) == run_banked(rolled)

    def test_pipelined_loop_rejects_loop_carried(self):
        src = """void top(short b[8]) {
          int acc = 0;
          #pragma HLS PIPELINE
          for (i = 0; i < 8; i++) {
            acc = acc + b[i];
            b[i] = acc;
          }
        }"""
        with pytest.raises(HlsError):
            compile_top(src, options=HlsOptions(
                partition_arrays=frozenset({"b"})))

    def test_pipelined_loop_requires_partition(self):
        src = """void top(short b[8]) {
          int t = 0;
          #pragma HLS PIPELINE
          for (i = 0; i < 8; i++)
            b[i] = b[i] + 1;
        }"""
        with pytest.raises(HlsError):
            compile_top(src)


class TestIdctDesigns:
    def test_bambu_initial_bit_exact_slow(self):
        design = bambu_initial()
        result = verify_design(design, n_matrices=2)
        assert result.bit_exact
        # Sequential memory-bound FSM: periodicity in the hundreds, the
        # paper's central Bambu observation (323 cycles there).
        assert 250 <= result.periodicity <= 550

    def test_bambu_opt_roughly_halves_cycles(self):
        initial = verify_design(bambu_initial(), n_matrices=2)
        opt = verify_design(bambu_opt(), n_matrices=2)
        assert opt.bit_exact
        assert opt.periodicity < 0.7 * initial.periodicity

    def test_vivado_initial_slower_than_bambu(self):
        # The paper: push-button Vivado HLS is the slowest of all (the
        # tool does not inline and adds interface handshakes).
        bambu = verify_design(bambu_initial(), n_matrices=2)
        vivado = verify_design(vivado_initial(), n_matrices=2)
        assert vivado.bit_exact
        assert vivado.periodicity > bambu.periodicity

    def test_vivado_opt_pragmas_give_order_of_magnitude(self):
        initial = verify_design(vivado_initial(), n_matrices=2)
        opt = verify_design(vivado_opt(), n_matrices=3)
        assert opt.bit_exact
        assert initial.periodicity / opt.periodicity > 8

    def test_vivado_opt_pipelines_both_loops(self):
        design = vivado_opt()
        loops = design.meta["hls"].loop_info
        pipelined = [v for v in loops.values() if v["kind"] == "pipelined"]
        assert len(pipelined) == 2
        assert all(v["trip"] == 8 for v in pipelined)

    def test_bambu_sweep_has_42_configs(self):
        configs = bambu_sweep()
        assert len(configs) == 42
        assert len(set(configs)) >= 36  # near-distinct command lines

    def test_bambu_ports_visible_in_area(self):
        one = synthesize(elaborate(bambu_initial().top), max_dsp=0)
        two = synthesize(elaborate(bambu_opt().top), max_dsp=0)
        assert one.n_bram >= 0  # structural sanity
        assert two.area > 0

    def test_vivado_initial_has_regions(self):
        # One non-inlined call per loop body (compiled once, paid per
        # iteration at run time).
        design = vivado_initial()
        assert design.meta["hls"].regions >= 2

    def test_sources_counted(self):
        design = bambu_initial()
        labels = [s.label for s in design.sources]
        assert "idct.c" in labels
        assert any(s.kind == "config" for s in design.sources)
