"""Tests for the mini-C HLS frontend: lexer, parser, transforms."""

import pytest

from repro.core.errors import HlsError
from repro.frontends.chls import parse, parse_pragma, tokenize
from repro.frontends.chls.cast import (
    AssignStmt,
    BinExpr,
    CondExpr,
    DeclStmt,
    ForStmt,
    IfStmt,
    IndexExpr,
    NumExpr,
    StoreStmt,
    VarExpr,
)
from repro.frontends.chls.transform import (
    const_value,
    fold_expr,
    inline_program,
    unroll_loop,
)


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("int x = 0x1F + 2;")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "ident", "op", "number", "op", "number",
                         "op", "eof"]

    def test_comments_skipped(self):
        tokens = tokenize("a /* block */ b // line\n c")
        assert [t.text for t in tokens[:-1]] == ["a", "b", "c"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]

    def test_pragma_token(self):
        tokens = tokenize("#pragma HLS PIPELINE II=1\nx;")
        assert tokens[0].kind == "pragma"

    def test_illegal_char(self):
        with pytest.raises(HlsError):
            tokenize("int $x;")


class TestPragma:
    def test_parse_settings(self):
        pragma = parse_pragma("#pragma HLS ARRAY_PARTITION variable=blk complete")
        assert pragma.directive == "ARRAY_PARTITION"
        assert pragma.settings["variable"] == "blk"
        assert pragma.settings["complete"] == "true"

    def test_non_hls_pragma_ignored(self):
        assert parse_pragma("#pragma once") is None


class TestParser:
    def test_function_shape(self):
        program = parse("int f(int a, short b[8]) { return a; }")
        fn = program.functions["f"]
        assert fn.return_type == "int"
        assert fn.params[0].ctype == "int"
        assert fn.params[1].is_array
        assert fn.params[1].array_size == 8

    def test_pointer_param_is_array(self):
        fn = parse("void f(short *p) { p[0] = 1; }").functions["f"]
        assert fn.params[0].is_array

    def test_precedence(self):
        fn = parse("int f(int a) { return a + 2 * 3 << 1; }").functions["f"]
        # ((a + (2*3)) << 1)
        expr = fn.body.statements[-1].value
        assert isinstance(expr, BinExpr) and expr.op == "<<"
        assert expr.left.op == "+"

    def test_ternary(self):
        fn = parse("int f(int a) { return a < 0 ? 0 - a : a; }").functions["f"]
        assert isinstance(fn.body.statements[-1].value, CondExpr)

    def test_for_loop(self):
        fn = parse("void f(short b[8]) { for (i = 0; i < 8; i++) b[i] = i; }")
        loop = fn.functions["f"].body.statements[0]
        assert isinstance(loop, ForStmt)
        assert const_value(loop.bound) == 8

    def test_for_le_bound_normalized(self):
        fn = parse("void f(short b[9]) { for (i = 0; i <= 8; i++) b[i] = i; }")
        loop = fn.functions["f"].body.statements[0]
        assert const_value(loop.bound) == 9

    def test_compound_assignment(self):
        fn = parse("int f(int a) { a += 3; return a; }").functions["f"]
        stmt = fn.body.statements[0]
        assert isinstance(stmt, AssignStmt)
        assert stmt.value.op == "+"

    def test_pragma_binds_to_loop(self):
        # A pragma at the very top of the body is a *function* pragma;
        # after any statement it binds to the following loop.
        src = """void f(short b[8]) {
            int t = 0;
            #pragma HLS PIPELINE
            for (i = 0; i < 8; i++) b[i] = i;
        }"""
        loop = parse(src).functions["f"].body.statements[1]
        assert loop.pragmas[0].directive == "PIPELINE"

    def test_function_pragmas(self):
        src = """void f(short b[8]) {
        #pragma HLS INTERFACE axis port=b
            b[0] = 1;
        }"""
        fn = parse(src).functions["f"]
        assert fn.pragmas[0].directive == "INTERFACE"

    def test_duplicate_function_rejected(self):
        with pytest.raises(HlsError):
            parse("void f() {} void f() {}")

    def test_bad_for_step_rejected(self):
        with pytest.raises(HlsError):
            parse("void f() { for (i = 0; i < 8; j++) ; }")

    def test_casts_are_transparent(self):
        fn = parse("int f(int a) { return (short)(a + 1); }").functions["f"]
        assert isinstance(fn.body.statements[-1].value, BinExpr)


class TestFolding:
    def test_arith(self):
        assert const_value(BinExpr("*", NumExpr(6), NumExpr(7))) == 42
        assert const_value(BinExpr("<<", NumExpr(1), NumExpr(4))) == 16

    def test_c_division_truncates_toward_zero(self):
        assert const_value(BinExpr("/", NumExpr(-7), NumExpr(2))) == -3
        assert const_value(BinExpr("%", NumExpr(-7), NumExpr(2))) == -1

    def test_ternary_folds(self):
        expr = CondExpr(NumExpr(1), NumExpr(10), NumExpr(20))
        assert const_value(expr) == 10

    def test_non_const_is_none(self):
        assert const_value(VarExpr("x")) is None

    def test_division_by_zero(self):
        with pytest.raises(HlsError):
            fold_expr(BinExpr("/", NumExpr(1), NumExpr(0)))


class TestInlining:
    SRC = """
    int iclip(int x) { return x < 0 ? 0 : x; }
    void helper(short b[8], int off) { b[off] = iclip(b[off] - 5); }
    void top(short b[8]) {
      helper(b, 1);
      helper(b, 2);
    }
    """

    def test_inline_all_removes_calls(self):
        flat, regions = inline_program(parse(self.SRC), "top", inline_all=True)
        text = repr(flat.body.statements)
        assert "CallExpr" not in text

    def test_locals_renamed(self):
        src = """
        int f(int x) { int t = x + 1; return t; }
        int top(int x) { int t = f(x); return t + f(t); }
        """
        flat, _ = inline_program(parse(src), "top", inline_all=True)
        # No HlsError means no name clash; also check multiple temps exist.
        names = repr(flat.body.statements)
        assert "t__" in names

    def test_non_inlined_creates_regions(self):
        # 2 helper calls plus the iclip call inside each of them.
        flat, regions = inline_program(parse(self.SRC), "top", inline_all=False,
                                       auto_inline_max_stmts=0)
        assert regions == 4

    def test_small_functions_auto_inline(self):
        flat, regions = inline_program(parse(self.SRC), "top", inline_all=False,
                                       auto_inline_max_stmts=4)
        # helper has 1 statement -> auto inlined even in push-button mode.
        assert regions == 0

    def test_unknown_function_rejected(self):
        with pytest.raises(HlsError):
            inline_program(parse("void top() { ghost(); }"), "top")

    def test_arg_count_checked(self):
        src = "int f(int a) { return a; } void top() { x = f(); }"
        with pytest.raises(HlsError):
            inline_program(parse(src), "top")


class TestUnroll:
    def test_unroll_substitutes_and_folds(self):
        src = "void f(short b[8]) { for (i = 0; i < 4; i++) b[2*i] = i; }"
        loop = parse(src).functions["f"].body.statements[0]
        block = unroll_loop(loop)
        stores = [s for blk in block.statements for s in blk.statements]
        indices = [const_value(s.index) for s in stores]
        assert indices == [0, 2, 4, 6]

    def test_non_constant_bounds_rejected(self):
        src = "void f(short b[8], int n) { for (i = 0; i < n; i++) b[i] = 0; }"
        loop = parse(src).functions["f"].body.statements[0]
        with pytest.raises(HlsError):
            unroll_loop(loop)
