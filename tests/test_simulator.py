"""Tests for the cycle-accurate simulator (both engines)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bits import BV
from repro.core.errors import SimulationError
from repro.rtl import Module, elaborate, ops
from repro.rtl.ir import MemRead, Ref
from repro.sim import Simulator, VcdTracer


def make_counter(width=8):
    m = Module("counter")
    en = m.input("en", 1)
    out = m.output("out", width)
    count = m.reg("count", width)
    m.set_next(count, ops.add(count, 1), en=Ref(en))
    m.assign(out, Ref(count))
    return m


def make_accumulator(width=16):
    m = Module("acc")
    data = m.input("data", width)
    clear = m.input("clear", 1)
    total = m.output("total", width)
    acc = m.reg("acc", width)
    m.set_next(acc, ops.mux(Ref(clear), ops.const(0, width), ops.add(acc, data)))
    m.assign(total, Ref(acc))
    return m


class TestCombinational:
    def test_adder_settles_after_poke(self):
        m = Module("adder")
        a = m.input("a", 8)
        b = m.input("b", 8)
        y = m.output("y", 8)
        m.assign(y, ops.add(a, b))
        sim = Simulator(m)
        sim.poke(a, 3)
        sim.poke(b, 4)
        assert sim.peek(y) == BV(7, 8)

    def test_peek_returns_bv_with_signal_width(self):
        m = Module("m")
        a = m.input("a", 12)
        y = m.output("y", 12)
        m.assign(y, ops.add(a, 1))
        sim = Simulator(m)
        sim.poke(a, 0xFFF)
        assert sim.peek(y).width == 12
        assert sim.peek(y).uint == 0

    def test_peek_by_name(self):
        sim = Simulator(make_counter())
        assert sim.peek("out").uint == 0

    def test_poke_unknown_name_rejected(self):
        sim = Simulator(make_counter())
        with pytest.raises(SimulationError):
            sim.poke("nonexistent", 1)

    def test_poke_non_input_rejected(self):
        m = make_counter()
        sim = Simulator(m)
        with pytest.raises(SimulationError):
            sim.poke("out", 5)

    def test_poke_bv_width_checked(self):
        m = make_counter()
        sim = Simulator(m)
        with pytest.raises(SimulationError):
            sim.poke("en", BV(0, 2))


class TestSequential:
    def test_counter_counts_when_enabled(self):
        sim = Simulator(make_counter())
        sim.poke("en", 1)
        sim.step(5)
        assert sim.peek("out").uint == 5

    def test_counter_holds_when_disabled(self):
        sim = Simulator(make_counter())
        sim.poke("en", 1)
        sim.step(3)
        sim.poke("en", 0)
        sim.step(10)
        assert sim.peek("out").uint == 3

    def test_reset_restores_init(self):
        sim = Simulator(make_counter())
        sim.poke("en", 1)
        sim.step(7)
        sim.reset()
        assert sim.peek("out").uint == 0
        assert sim.cycles == 0

    def test_accumulator(self):
        sim = Simulator(make_accumulator())
        sim.poke("clear", 0)
        for value in (5, 10, 15):
            sim.poke("data", value)
            sim.step()
        assert sim.peek("total").uint == 30
        sim.poke("clear", 1)
        sim.step()
        assert sim.peek("total").uint == 0

    def test_register_samples_pre_edge_value(self):
        # Two chained registers: a one-cycle delay each, no fall-through.
        m = Module("chain")
        d = m.input("d", 8)
        q = m.output("q", 8)
        r1 = m.reg("r1", 8, next=Ref(d))
        r2 = m.reg("r2", 8, next=Ref(r1))
        m.assign(q, Ref(r2))
        sim = Simulator(m)
        sim.poke(d, 42)
        sim.step()
        assert sim.peek(q).uint == 0
        sim.step()
        assert sim.peek(q).uint == 42

    def test_run_until(self):
        sim = Simulator(make_counter())
        sim.poke("en", 1)
        used = sim.run_until(lambda s: s.peek("out").uint == 9)
        assert used == 9

    def test_run_until_timeout(self):
        sim = Simulator(make_counter())
        sim.poke("en", 0)
        with pytest.raises(SimulationError):
            sim.run_until(lambda s: s.peek("out").uint == 1, timeout=20)


class TestMemory:
    def make_ram(self):
        m = Module("ram")
        we = m.input("we", 1)
        waddr = m.input("waddr", 3)
        wdata = m.input("wdata", 8)
        raddr = m.input("raddr", 3)
        rdata = m.output("rdata", 8)
        mem = m.memory("mem", 8, 8)
        m.mem_write(mem, Ref(we), Ref(waddr), Ref(wdata))
        m.assign(rdata, MemRead(mem, Ref(raddr)))
        return m, mem

    def test_write_then_read(self):
        m, _mem = self.make_ram()
        sim = Simulator(m)
        sim.poke("we", 1)
        sim.poke("waddr", 3)
        sim.poke("wdata", 0xAB)
        sim.step()
        sim.poke("we", 0)
        sim.poke("raddr", 3)
        assert sim.peek("rdata").uint == 0xAB

    def test_async_read_sees_pre_edge_data(self):
        m, _mem = self.make_ram()
        sim = Simulator(m)
        sim.poke("we", 1)
        sim.poke("waddr", 0)
        sim.poke("wdata", 1)
        sim.poke("raddr", 0)
        # Before the edge the memory still holds 0.
        assert sim.peek("rdata").uint == 0
        sim.step()
        assert sim.peek("rdata").uint == 1

    def test_memory_init_and_backdoor(self):
        m = Module("rom")
        addr = m.input("addr", 3)
        data = m.output("data", 8)
        mem = m.memory("rom", 8, 8, init=[i * 3 for i in range(8)])
        m.assign(data, MemRead(mem, Ref(addr)))
        sim = Simulator(m)
        sim.poke("addr", 5)
        assert sim.peek("data").uint == 15
        assert sim.read_memory(sim.netlist.memories[0]) == [i * 3 for i in range(8)]
        sim.write_memory(sim.netlist.memories[0], [7] * 8)
        assert sim.peek("data").uint == 7

    def test_backdoor_length_checked(self):
        m, _ = self.make_ram()
        sim = Simulator(m)
        with pytest.raises(SimulationError):
            sim.write_memory(sim.netlist.memories[0], [0] * 4)


class TestEngines:
    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(make_counter(), engine="magic")

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 255)),
                    min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_compiled_matches_interpreter(self, stimulus):
        m = Module("dut")
        en = m.input("en", 1)
        data = m.input("data", 8)
        out = m.output("out", 16)
        acc = m.reg("acc", 16)
        scaled = m.connect("scaled", 16, ops.resize(ops.mul(data, 3), 16, signed=False))
        m.set_next(acc, ops.add(acc, scaled), en=Ref(en))
        m.assign(out, ops.bxor(acc, 0x5A5A))
        netlist = elaborate(m)
        fast = Simulator(netlist, engine="compiled")
        slow = Simulator(netlist, engine="interp")
        for en_val, data_val in stimulus:
            for sim in (fast, slow):
                sim.poke("en", en_val)
                sim.poke("data", data_val)
                sim.step()
            assert fast.peek("out") == slow.peek("out")

    def test_shared_subexpression_dag_is_correct(self):
        # One expression object used by many assigns: CSE must not change
        # semantics.
        m = Module("dag")
        a = m.input("a", 8)
        shared = ops.mul(a, a)  # reused node
        outs = []
        for i in range(4):
            y = m.output(f"y{i}", 16)
            m.assign(y, ops.resize(ops.add(shared, i), 16, signed=False))
            outs.append(y)
        sim = Simulator(m)
        sim.poke(a, 9)
        for i, y in enumerate(outs):
            assert sim.peek(y).uint == 81 + i

    def test_compiled_source_is_inspectable(self):
        sim = Simulator(make_counter())
        assert "def settle" in sim.compiled_source
        assert "def tick" in sim.compiled_source


class TestVcd:
    def test_vcd_contains_declared_signals_and_changes(self):
        m = make_counter()
        sim = Simulator(m)
        tracer = VcdTracer(sim)
        sim.poke("en", 1)
        sim.step(3)
        text = tracer.render()
        assert "$var wire 8" in text
        assert "$var wire 1" in text
        assert "#3" in text

    def test_vcd_save(self, tmp_path):
        sim = Simulator(make_counter())
        tracer = VcdTracer(sim, signals=["out"])
        sim.poke("en", 1)
        sim.step(2)
        path = tmp_path / "wave.vcd"
        tracer.save(str(path))
        assert path.read_text().startswith("$date")

    def test_vcd_records_only_changes(self):
        sim = Simulator(make_counter())
        tracer = VcdTracer(sim, signals=["out"])
        sim.poke("en", 0)
        sim.step(5)  # counter disabled: no changes
        changes = [c for _t, c in tracer.history if c]
        assert len(changes) <= 1  # only the initial dump
