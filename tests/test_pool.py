"""Tests for ``repro.serve.pool``: IPC framing, the pre-forked worker
pool's affinity routing, the kill/restart supervision ladder, retry-once
and poison quarantine, crash-budget exhaustion, heartbeat respawn, and
parent-side obs ingestion."""

import asyncio
import os
import signal
import struct
import time

import pytest

from repro import obs
from repro.api import Session
from repro.chaos import ChaosPolicy
from repro.core.errors import BudgetExceeded, EvaluationError, WorkerCrashError
from repro.eval.verify import random_matrices
from repro.serve.pool import (
    PoolConfig,
    WorkerInit,
    WorkerPool,
    _rebuild_error,
    _WorkerGone,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    read_frame,
)

DESIGN = "verilog-initial"


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.clear()
    yield
    obs.disable()
    obs.clear()


@pytest.fixture(scope="module")
def session():
    """One warm Session: children forked after this inherit the warm
    measurement memo, so per-test pools start fast."""
    s = Session()
    s.evaluator(DESIGN)
    return s


def _blocks(n):
    return [[list(row) for row in matrix] for matrix in random_matrices(n)]


def _run(coro):
    return asyncio.run(coro)


async def _with_pool(session, body, *, chaos=None, obs_on=False, **config):
    """Start a pool over ``session``'s substrate, run ``body(pool)``,
    always drain."""
    init = WorkerInit(
        cache_dir=(str(session.cache.root)
                   if session.cache is not None else None),
        chaos=chaos, obs=obs_on)
    config.setdefault("size", 2)
    config.setdefault("deadline_s", 60.0)
    config.setdefault("backoff_base_s", 0.0)
    pool = WorkerPool(init, PoolConfig(**config))
    await pool.start()
    try:
        return await body(pool)
    finally:
        await pool.drain()


# ---------------------------------------------------------------------------
# IPC framing
# ---------------------------------------------------------------------------
class TestFraming:
    def _read(self, raw):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_frame(reader)

        return _run(go())

    def test_round_trip(self):
        payload = {"op": "eval", "blocks": [[1, -2], [3, 4]], "id": 7}
        assert self._read(encode_frame(payload)) == payload

    def test_clean_eof_is_none(self):
        assert self._read(b"") is None

    def test_eof_mid_frame_is_none(self):
        # A worker that dies mid-write delivered nothing usable.
        raw = encode_frame({"op": "ping"})
        assert self._read(raw[:7]) is None

    def test_oversized_frame_is_rejected(self):
        head = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError):
            self._read(head + b"x")

    def test_non_object_frame_is_rejected(self):
        with pytest.raises(ProtocolError):
            self._read(struct.pack(">I", 2) + b"[]")


# ---------------------------------------------------------------------------
# routing
# ---------------------------------------------------------------------------
class TestRouting:
    def _pool(self, size=3):
        return WorkerPool(WorkerInit(), PoolConfig(size=size))

    def test_affinity_is_stable(self):
        pool = self._pool()
        picks = {pool._pick(DESIGN, "model").index for _ in range(8)}
        assert len(picks) == 1

    def test_engines_may_differ(self):
        pool = self._pool()
        a = pool._pick(DESIGN, "model").index
        b = pool._pick(DESIGN, "sim").index
        # Not necessarily different workers, but both deterministic.
        assert a == pool._pick(DESIGN, "model").index
        assert b == pool._pick(DESIGN, "sim").index

    def test_prefer_fresh_routes_to_newest_spawn(self):
        pool = self._pool()
        for i, worker in enumerate(pool.workers):
            worker.spawned_at = float(i)
        pool.workers[1].spawned_at = 99.0
        assert pool._pick(DESIGN, "model", prefer_fresh=True).index == 1


# ---------------------------------------------------------------------------
# error rebuild (parent side of the worker's classification)
# ---------------------------------------------------------------------------
class TestErrorRebuild:
    def test_cancelled_maps_to_budget_exceeded(self):
        exc = _rebuild_error({"type": "cancelled", "message": "m"}, DESIGN)
        assert isinstance(exc, BudgetExceeded)

    def test_usage_error_round_trips(self):
        from repro.api import UsageError

        exc = _rebuild_error({"type": "UsageError", "message": "m"}, DESIGN)
        assert isinstance(exc, UsageError)

    def test_value_error_round_trips(self):
        exc = _rebuild_error({"type": "ValueError", "message": "m"}, DESIGN)
        assert isinstance(exc, ValueError)
        assert not isinstance(exc, EvaluationError)

    def test_unknown_type_is_runtime_error(self):
        exc = _rebuild_error({}, DESIGN)
        assert isinstance(exc, RuntimeError)


# ---------------------------------------------------------------------------
# live pool behavior
# ---------------------------------------------------------------------------
class TestLivePool:
    def test_evaluate_matches_serial_path(self, session):
        blocks = _blocks(3)
        golden = session.idct(DESIGN, blocks)

        async def body(pool):
            out = await pool.evaluate(DESIGN, "model", blocks)
            assert out == golden
            snap = pool.snapshot()
            assert len(snap) == 2
            assert all(w["state"] == "idle" and w["restarts"] == 0
                       for w in snap)
            assert pool.stats == {"kills": 0, "restarts": 0,
                                  "retries": 0, "quarantined": 0}

        _run(_with_pool(session, body))

    def test_kill_once_retries_on_fresh_worker(self, session):
        blocks = _blocks(1)
        golden = session.idct(DESIGN, blocks)
        chaos = ChaosPolicy(seed=1, kill_targets=("serve:",))

        async def body(pool):
            out = await pool.evaluate(DESIGN, "model", blocks)
            assert out == golden
            assert pool.stats["kills"] == 1
            assert pool.stats["retries"] == 1
            assert pool.stats["restarts"] == 1
            assert pool.stats["quarantined"] == 0

        _run(_with_pool(session, body, chaos=chaos))

    def test_poison_request_is_quarantined_with_503_error(self, session):
        blocks = _blocks(1)
        # Doom only the first request (seq 1); the follow-up must work.
        chaos = ChaosPolicy(seed=1, poison_targets=(":model:1",))

        async def body(pool):
            with pytest.raises(WorkerCrashError):
                await pool.evaluate(DESIGN, "model", blocks)
            assert pool.stats["kills"] == 2       # both attempts died
            assert pool.stats["quarantined"] == 1
            assert pool.quarantined and \
                pool.quarantined[0].startswith("serve:")
            # The pool is still alive for well-behaved requests.
            out = await pool.evaluate(DESIGN, "model", blocks)
            assert out == session.idct(DESIGN, blocks)

        _run(_with_pool(session, body, chaos=chaos))

    def test_bad_engine_raises_client_error_not_crash(self, session):
        async def body(pool):
            with pytest.raises(ValueError):
                await pool.evaluate(DESIGN, "warp-drive", _blocks(1))
            assert pool.stats["kills"] == 0

        _run(_with_pool(session, body))

    def test_worker_budget_maps_to_budget_exceeded(self, session):
        # wall_s=0.0 exhausts during the first charged sim cycles; the
        # worker answers an honest error frame, nobody dies, and the
        # parent re-raises the same exception family (HTTP 504 upstream).
        init = WorkerInit(budget_s=0.0)

        async def body():
            pool = WorkerPool(init, PoolConfig(size=2, deadline_s=60.0,
                                               backoff_base_s=0.0))
            await pool.start()
            try:
                # Enough blocks that the simulator charges past the
                # 256-cycle wall-check interval.
                with pytest.raises(BudgetExceeded):
                    await pool.evaluate(DESIGN, "sim", _blocks(32))
                assert pool.stats["kills"] == 0
            finally:
                await pool.drain()

        _run(body())


class TestLadder:
    def test_soft_cancel_answers_and_worker_survives(self, session):
        async def body(pool):
            worker = pool.workers[0]
            reply = await pool._call(worker, {"op": "sleep", "s": 30}, 0.2)
            assert reply["ok"] is False
            assert reply["error"]["type"] == "cancelled"
            # The worker took the SIGINT, answered, and still serves.
            pong = await pool._call(worker, {"op": "ping"}, 5.0)
            assert pong["ok"] and pong["pid"] == worker.pid
            assert pool.stats["kills"] == 0

        _run(_with_pool(session, body, soft_grace_s=2.0))

    def test_wedged_worker_escalates_to_sigkill_and_respawns(self, session):
        async def body(pool):
            worker = pool.workers[0]
            doomed_pid = worker.pid
            with pytest.raises(_WorkerGone):
                await pool._call(
                    worker, {"op": "sleep", "s": 60, "wedged": True}, 0.2)
            assert pool.stats["kills"] == 1
            # Next use of the slot respawns transparently.
            pong = await pool._call(worker, {"op": "ping"}, 5.0)
            assert pong["ok"] and worker.pid != doomed_pid
            assert worker.restarts == 1

        _run(_with_pool(session, body,
                        soft_grace_s=0.2, term_grace_s=0.2))

    def test_heartbeat_respawns_externally_killed_worker(self, session):
        async def body(pool):
            worker = pool.workers[0]
            os.kill(worker.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                await asyncio.sleep(0.05)
                if worker.restarts:
                    break
            assert worker.restarts == 1
            assert worker.state == "idle"
            assert pool.stats["kills"] == 1

        _run(_with_pool(session, body, ping_interval_s=0.1,
                        ping_timeout_s=2.0))

    def test_exhausted_crash_budget_fails_honestly(self, session):
        chaos = ChaosPolicy(seed=1, poison_targets=("serve:",))

        async def body(pool):
            with pytest.raises(WorkerCrashError):
                await pool.evaluate(DESIGN, "model", _blocks(1))
            # Budget of 1 is spent after the poison pair; the pool stops
            # respawning and answers honestly instead of looping.
            with pytest.raises(WorkerCrashError):
                await pool.evaluate(DESIGN, "model", _blocks(1))
            assert any(w.state == "failed" for w in pool.workers)

        _run(_with_pool(session, body, chaos=chaos, crash_budget=1))


class TestObsIngestion:
    def test_worker_spans_and_metrics_land_in_parent(self, session):
        obs.enable()
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace

        trace_id = obs_trace.new_trace()
        blocks = _blocks(2)

        async def body(pool):
            await pool.evaluate(DESIGN, "model", blocks)

        _run(_with_pool(session, body, obs_on=True))
        names = {rec.name for rec in obs_trace.events()}
        assert "serve.evaluate" in names
        assert all(rec.trace_id == trace_id for rec in obs_trace.events()
                   if rec.name == "serve.evaluate")
        snapshot = obs_metrics.snapshot()
        assert snapshot["counters"].get("serve.sim_invocations") == 1
        assert snapshot["counters"].get("serve.blocks_total") == 2
