"""Unit and property tests for the BV bit-vector value type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bits import BV, mask, min_width_signed, min_width_unsigned, to_signed, to_unsigned
from repro.core.errors import WidthError


class TestConstruction:
    def test_wraps_modulo_width(self):
        assert BV(16, 4).uint == 0
        assert BV(17, 4).uint == 1

    def test_negative_value_wraps_to_twos_complement(self):
        assert BV(-1, 4).uint == 15
        assert BV(-1, 4).sint == -1

    def test_zero_width_rejected(self):
        with pytest.raises(WidthError):
            BV(0, 0)

    def test_negative_width_rejected(self):
        with pytest.raises(WidthError):
            BV(0, -3)

    def test_signed_constructor_checks_range(self):
        assert BV.signed(-8, 4).uint == 8
        with pytest.raises(WidthError):
            BV.signed(8, 4)
        with pytest.raises(WidthError):
            BV.signed(-9, 4)

    def test_unsigned_constructor_checks_range(self):
        assert BV.unsigned(15, 4).uint == 15
        with pytest.raises(WidthError):
            BV.unsigned(16, 4)
        with pytest.raises(WidthError):
            BV.unsigned(-1, 4)


class TestAccessors:
    def test_sint_of_msb_set(self):
        assert BV(0b1000, 4).sint == -8

    def test_bit_indexing(self):
        value = BV(0b1010, 4)
        assert value.bit(0) == 0
        assert value.bit(1) == 1
        assert value.bit(3) == 1

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            BV(0, 4).bit(4)

    def test_getitem_single(self):
        assert BV(0b1010, 4)[1] == BV(1, 1)
        assert BV(0b1010, 4)[-1] == BV(1, 1)

    def test_getitem_slice_lo_to_hi(self):
        assert BV(0b110101, 6)[1:4] == BV(0b1010, 4)

    def test_verilog_slice(self):
        assert BV(0b110101, 6).slice(4, 1) == BV(0b1010, 4)

    def test_slice_out_of_range(self):
        with pytest.raises(WidthError):
            BV(0, 4)[0:4]

    def test_slice_with_step_rejected(self):
        with pytest.raises(WidthError):
            BV(0, 4)[0:2:2]


class TestWidthAdjust:
    def test_zext_pads_with_zeros(self):
        assert BV(0b1111, 4).zext(8) == BV(0x0F, 8)

    def test_sext_replicates_sign(self):
        assert BV(0b1000, 4).sext(8) == BV(0xF8, 8)
        assert BV(0b0100, 4).sext(8) == BV(0x04, 8)

    def test_zext_cannot_truncate(self):
        with pytest.raises(WidthError):
            BV(0, 8).zext(4)

    def test_trunc_keeps_low_bits(self):
        assert BV(0xAB, 8).trunc(4) == BV(0xB, 4)

    def test_trunc_cannot_widen(self):
        with pytest.raises(WidthError):
            BV(0, 4).trunc(8)

    def test_cat_msb_first(self):
        assert BV(0b10, 2).cat(BV(0b01, 2)) == BV(0b1001, 4)

    def test_cat_multiple(self):
        assert BV(1, 1).cat(BV(0, 1), BV(1, 1)) == BV(0b101, 3)


class TestArithmetic:
    def test_add_wraps(self):
        assert (BV(15, 4) + BV(1, 4)).uint == 0

    def test_sub_wraps(self):
        assert (BV(0, 4) - BV(1, 4)).uint == 15

    def test_mul_wraps(self):
        assert (BV(5, 4) * BV(5, 4)).uint == 25 % 16

    def test_width_mismatch_rejected(self):
        with pytest.raises(WidthError):
            BV(1, 4) + BV(1, 5)

    def test_non_bv_operand_rejected(self):
        with pytest.raises(TypeError):
            BV(1, 4) + 1  # type: ignore[operand]

    def test_bitwise_ops(self):
        assert (BV(0b1100, 4) & BV(0b1010, 4)).uint == 0b1000
        assert (BV(0b1100, 4) | BV(0b1010, 4)).uint == 0b1110
        assert (BV(0b1100, 4) ^ BV(0b1010, 4)).uint == 0b0110

    def test_invert(self):
        assert (~BV(0b1010, 4)).uint == 0b0101

    def test_neg_is_twos_complement(self):
        assert (-BV(1, 4)).uint == 15
        assert (-BV(0, 4)).uint == 0

    def test_shifts(self):
        assert (BV(0b0011, 4) << 2).uint == 0b1100
        assert (BV(0b1100, 4) >> 2).uint == 0b0011

    def test_sra_fills_sign(self):
        assert BV(0b1000, 4).sra(2).uint == 0b1110
        assert BV(0b0100, 4).sra(2).uint == 0b0001


class TestDunder:
    def test_bool(self):
        assert BV(1, 4)
        assert not BV(0, 4)

    def test_int_and_index(self):
        assert int(BV(7, 4)) == 7
        assert [10, 20, 30][BV(1, 4)] == 20

    def test_equality_includes_width(self):
        assert BV(1, 4) != BV(1, 5)
        assert BV(1, 4) == BV(1, 4)

    def test_eq_other_type_not_equal(self):
        assert (BV(1, 4) == "x") is False

    def test_hashable(self):
        assert len({BV(1, 4), BV(1, 4), BV(1, 5)}) == 2

    def test_repr_and_str(self):
        assert repr(BV(5, 4)) == "BV(0x5, 4)"
        assert str(BV(5, 4)) == "4'h5"


class TestHelpers:
    def test_mask(self):
        assert mask(1) == 1
        assert mask(8) == 255

    def test_mask_rejects_nonpositive(self):
        with pytest.raises(WidthError):
            mask(0)

    def test_to_signed_roundtrip(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x7F, 8) == 127

    def test_to_unsigned(self):
        assert to_unsigned(-1, 8) == 255

    def test_min_width_unsigned(self):
        assert min_width_unsigned(0) == 1
        assert min_width_unsigned(1) == 1
        assert min_width_unsigned(255) == 8
        assert min_width_unsigned(256) == 9

    def test_min_width_unsigned_rejects_negative(self):
        with pytest.raises(ValueError):
            min_width_unsigned(-1)

    def test_min_width_signed(self):
        assert min_width_signed(0) == 1
        assert min_width_signed(1) == 2
        assert min_width_signed(-1) == 1
        assert min_width_signed(127) == 8
        assert min_width_signed(-128) == 8
        assert min_width_signed(128) == 9


widths = st.integers(min_value=1, max_value=64)


@given(st.data(), widths)
def test_add_matches_python_modular_arithmetic(data, width):
    a = data.draw(st.integers(0, 2**width - 1))
    b = data.draw(st.integers(0, 2**width - 1))
    assert (BV(a, width) + BV(b, width)).uint == (a + b) % 2**width


@given(st.data(), widths)
def test_sub_matches_python_modular_arithmetic(data, width):
    a = data.draw(st.integers(0, 2**width - 1))
    b = data.draw(st.integers(0, 2**width - 1))
    assert (BV(a, width) - BV(b, width)).uint == (a - b) % 2**width


@given(st.data(), widths)
def test_sint_uint_roundtrip(data, width):
    value = data.draw(st.integers(0, 2**width - 1))
    bv = BV(value, width)
    assert BV(bv.sint, width).uint == value
    assert -(2 ** (width - 1)) <= bv.sint < 2 ** (width - 1)


@given(st.data(), widths)
def test_sext_preserves_signed_value(data, width):
    value = data.draw(st.integers(0, 2**width - 1))
    assert BV(value, width).sext(width + 7).sint == BV(value, width).sint


@given(st.data(), widths)
def test_cat_then_slice_recovers_parts(data, width):
    a = data.draw(st.integers(0, 2**width - 1))
    b = data.draw(st.integers(0, 2**width - 1))
    joined = BV(a, width).cat(BV(b, width))
    assert joined[width : 2 * width - 1].uint == a
    assert joined[0 : width - 1].uint == b


@given(st.data(), widths)
def test_neg_matches_twos_complement(data, width):
    value = data.draw(st.integers(0, 2**width - 1))
    assert (-BV(value, width)).uint == (-value) % 2**width
