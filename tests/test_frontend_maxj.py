"""Tests for the MaxJ-like dataflow frontend and PCIe manager model."""

import pytest

from repro.core.errors import FrontendError
from repro.eval.verify import random_matrices
from repro.frontends.maxj import (
    MaxKernel,
    PCIE3_X16,
    build_matrix_kernel,
    build_row_kernel,
    maxj_initial,
    maxj_opt,
    run_matrix_kernel,
    run_row_kernel,
    system_throughput,
    transpose_8x8,
    verify_maxj,
)
from repro.idct import chen_wang_idct
from repro.rtl import elaborate
from repro.sim import Simulator
from repro.synth import synthesize


class TestMaxLang:
    def test_every_op_adds_a_pipeline_stage(self):
        k = MaxKernel("k")
        a = k.input("a", 16)
        b = k.input("b", 16)
        total = a + b
        assert total.depth == 1
        product = total * 3
        assert product.depth == 2

    def test_operand_alignment_inserts_delays(self):
        k = MaxKernel("k")
        a = k.input("a", 16)
        deep = ((a + 1) + 2) + 3   # depth 3
        shallow = a                # depth 0
        combined = deep + shallow
        assert combined.depth == 4
        # Function check: the delayed operand must be time-aligned.
        k.output("y", combined)
        sim = Simulator(k.module)
        sim.poke("ce", 1)
        stimulus = [5, 100, -3, 17, 0, 0, 0, 0, 0]
        outs = []
        for tick, v in enumerate(stimulus):
            sim.poke("a", v & 0xFFFF)
            if tick >= 4:
                outs.append(sim.peek("y").sint)
            sim.step()
        assert outs == [(v + 6) + v for v in stimulus[:5]]

    def test_constant_shift_is_free(self):
        k = MaxKernel("k")
        a = k.input("a", 16)
        assert (a << 3).depth == 0
        assert (a >> 2).depth == 0

    def test_delayed_rejects_future_offsets(self):
        k = MaxKernel("k")
        a = k.input("a", 16)
        with pytest.raises(FrontendError):
            a.delayed(-1)

    def test_cross_kernel_values_rejected(self):
        k1, k2 = MaxKernel("k1"), MaxKernel("k2")
        a = k1.input("a", 8)
        b = k2.input("b", 8)
        with pytest.raises(FrontendError):
            a + b

    def test_output_vector_aligns_depths(self):
        k = MaxKernel("k")
        a = k.input("a", 8)
        shallow = a + 1            # depth 1
        deep = (a + 1) + 1         # depth 2
        depth = k.output_vector("y", [shallow, deep], 12)
        assert depth == 2

    def test_ce_freezes_everything(self):
        k = MaxKernel("k")
        a = k.input("a", 8)
        k.output("y", a + 0)
        sim = Simulator(k.module)
        sim.poke("a", 7)
        sim.poke("ce", 1)
        sim.step()
        assert sim.peek("y").sint == 7
        sim.poke("ce", 0)
        sim.poke("a", 99)
        sim.step(3)
        assert sim.peek("y").sint == 7


class TestTranspose:
    def test_stream_transpose_roundtrip(self):
        k = MaxKernel("k")
        row = k.input_vector("in_row", 8, 16)
        cols = transpose_8x8(k, row)
        k.output_vector("out", cols, 16)
        depth = k.pipeline_depth
        sim = Simulator(k.module)
        sim.poke("ce", 1)
        matrices = [
            [[m * 100 + r * 8 + c for c in range(8)] for r in range(8)]
            for m in range(3)
        ]
        beats = [row for m in matrices for row in m]
        outs = []
        for tick in range(len(beats) + depth):
            if tick < len(beats):
                word = 0
                for i, v in enumerate(beats[tick]):
                    word |= (v & 0xFFFF) << (16 * i)
                sim.poke("in_row", word)
            if tick >= depth:
                word = sim.peek_int("out")
                outs.append([(word >> (16 * i)) & 0xFFFF for i in range(8)])
            sim.step()
        # Column c of matrix m appears at beat m*8 + c.
        for m, matrix in enumerate(matrices):
            for c in range(8):
                expected = [matrix[r][c] for r in range(8)]
                assert outs[m * 8 + c] == expected


class TestManager:
    def test_pcie_link_constants(self):
        assert PCIE3_X16.pins == 59
        assert PCIE3_X16.bandwidth_bytes == 16e9

    def test_full_matrix_kernel_is_link_bound(self):
        # The paper: 16 GB/s / 1024 bits ~ 125 Mops beats the 400 MHz clock.
        report = system_throughput(fmax_mhz=403.0, ticks_per_op=1,
                                   input_bits_per_op=1024)
        assert report.bound == "link"
        assert report.throughput_mops == pytest.approx(125.0)

    def test_row_kernel_is_kernel_bound(self):
        report = system_throughput(fmax_mhz=403.0, ticks_per_op=8,
                                   input_bits_per_op=1024)
        assert report.bound == "kernel"
        assert report.throughput_mops == pytest.approx(403.0 / 8)


class TestIdctKernels:
    def test_matrix_kernel_bit_exact(self):
        assert verify_maxj(maxj_initial(), random_matrices(4))

    def test_row_kernel_bit_exact(self):
        assert verify_maxj(maxj_opt(), random_matrices(4))

    def test_matrix_kernel_accepts_one_matrix_per_tick(self):
        design = maxj_initial()
        mats = random_matrices(5, seed=3)
        outs = run_matrix_kernel(design, mats)
        assert outs == [chen_wang_idct(m) for m in mats]

    def test_row_kernel_streams_rows(self):
        design = maxj_opt()
        mats = random_matrices(3, seed=7)
        outs = run_row_kernel(design, mats)
        assert outs == [chen_wang_idct(m) for m in mats]

    def test_deep_pipelines_make_highest_frequency(self):
        # The paper: MaxJ runs at 403 MHz, the fastest of all designs.
        from repro.frontends.vlog import verilog_opt

        maxj = synthesize(elaborate(maxj_initial().top), max_dsp=0)
        best_verilog = synthesize(elaborate(verilog_opt().top), max_dsp=0)
        assert maxj.fmax_mhz > 3 * best_verilog.fmax_mhz

    def test_row_kernel_much_smaller(self):
        initial = synthesize(elaborate(maxj_initial().top), max_dsp=0)
        opt = synthesize(elaborate(maxj_opt().top), max_dsp=0)
        assert initial.area > 2 * opt.area

    def test_ff_dominated_area(self):
        # Per-op registering makes MaxJ the FF-heaviest design.
        report = synthesize(elaborate(maxj_initial().top), max_dsp=0)
        assert report.n_ff > report.n_lut

    def test_metadata(self):
        design = maxj_initial()
        assert design.meta["maxj"]["ticks_per_op"] == 1
        assert design.meta["maxj"]["input_bits"] == 1024
        assert maxj_opt().meta["maxj"]["ticks_per_op"] == 8
