"""Tests for ``repro.fabric``: the task wire form, the broker's lease
ledger (happy path, expiry → re-dispatch, double-expiry → poison,
at-most-once commit), the HTTP surface (validation, content-addressed
artifacts, pre-registered metrics), and the end-to-end invariant — a
``--fabric`` sweep served by pull-workers renders byte-identical to a
serial run, and a distributed run assembles into one connected trace
tree."""

import hashlib
import json
import os
import subprocess
import sys
import threading
import time
from dataclasses import asdict

import http.client

import pytest

import repro
from repro import obs
from repro.api import Session
from repro.cache import ArtifactCache
from repro.chaos.scenarios import check_invariant
from repro.eval.experiments import render_fig1
from repro.eval.measure import clear_measure_cache
from repro.exec.tasks import SweepTask, TaskSchemaError, table2_tasks
from repro.fabric import TaskBroker, run_worker
from repro.resilience.runner import RunnerConfig
from repro.serve import EvalServer, ServeConfig


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.clear()
    yield
    obs.disable()
    obs.clear()


# ---------------------------------------------------------------------------
# the versioned task wire form
# ---------------------------------------------------------------------------
class TestWireForm:
    def test_round_trips_through_json(self):
        task = SweepTask("fig1", "chisel", 3,
                         sizes=(("n_points", 4),), ctx=("abc123", 7))
        wire = json.loads(json.dumps(task.to_record()))
        assert SweepTask.from_record(wire) == task

    def test_unknown_schema_is_a_typed_error(self):
        record = table2_tasks()[0].to_record()
        record["schema"] = 99
        with pytest.raises(TaskSchemaError):
            SweepTask.from_record(record)
        with pytest.raises(TaskSchemaError):
            SweepTask.from_record({"kind": "table2", "key": "x", "index": 0})


# ---------------------------------------------------------------------------
# broker ledger (injectable clock: no sockets, no sleeps)
# ---------------------------------------------------------------------------
def _sweep_payload(n=2):
    return {
        "tasks": [task.to_record() for task in table2_tasks()[:n]],
        "config": asdict(RunnerConfig()),
        "inject": [], "skip": [], "trace": False,
    }


class TestBroker:
    def setup_method(self):
        self.clock = [0.0]
        self.broker = TaskBroker(lease_s=10.0, backoff_s=0.0,
                                 clock=lambda: self.clock[0])

    def test_lease_heartbeat_result_happy_path(self):
        sweep = self.broker.submit(_sweep_payload(2))
        leases = self.broker.lease("w1", limit=8)
        assert [lease["attempt"] for lease in leases] == [0, 0]
        assert all(lease["deadline_s"] == 10.0 for lease in leases)
        # a live heartbeat extends; a stranger's is stale
        assert self.broker.heartbeat(leases[0]["id"], "w1") == \
            {"stale": False, "deadline_s": 10.0}
        assert self.broker.heartbeat(leases[0]["id"], "w2") == {"stale": True}
        assert self.broker.heartbeat("nope", "w1") is None
        for i, lease in enumerate(leases):
            assert self.broker.result(lease["id"], "w1",
                                      {"index": i}) == {"stale": False}
        status = self.broker.status(sweep)
        assert (status["state"], status["done"]) == ("done", 2)
        assert self.broker.results(sweep) == \
            [{"output": {"index": 0}}, {"output": {"index": 1}}]
        # at most one commit ever wins
        assert self.broker.result(leases[0]["id"], "w1",
                                  {"index": 9}) == {"stale": True}
        assert self.broker.results(sweep)[0] == {"output": {"index": 0}}

    def test_expiry_requeues_and_late_result_is_stale(self):
        sweep = self.broker.submit(_sweep_payload(1))
        (lease,) = self.broker.lease("w1")
        self.clock[0] = 11.0
        assert self.broker.expire() == 1
        # the presumed-dead worker finishing late must not land
        assert self.broker.result(lease["id"], "w1",
                                  {"who": "w1"}) == {"stale": True}
        (release,) = self.broker.lease("w2")
        assert release["id"] == lease["id"]
        assert release["attempt"] == 1
        assert self.broker.result(release["id"], "w2",
                                  {"who": "w2"}) == {"stale": False}
        assert self.broker.results(sweep) == [{"output": {"who": "w2"}}]
        assert self.broker.status(sweep)["expiries"] == 1

    def test_double_expiry_poisons_as_crash_sentinel(self):
        sweep = self.broker.submit(_sweep_payload(1))
        for bump in (11.0, 22.0):
            self.broker.lease(f"w{bump}")
            self.clock[0] = bump
            assert self.broker.expire() == 1
        assert self.broker.lease("w3") == []     # nothing left to hand out
        status = self.broker.status(sweep)
        assert (status["state"], status["expiries"]) == ("done", 2)
        assert self.broker.results(sweep) == [{"crashed": 2}]

    def test_snapshot_counts(self):
        self.broker.submit(_sweep_payload(2))
        self.broker.lease("w1", limit=1)
        snap = self.broker.snapshot()
        assert snap["workers"] == ["w1"]
        assert (snap["leases"], snap["pending"]) == (1, 1)
        assert snap["sweeps"]["running"] == 1


# ---------------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------------
class _LiveServer:
    """EvalServer on a background thread, stopped via request_drain."""

    def __init__(self, session, **config):
        self.server = EvalServer(session, ServeConfig(port=0, **config))
        self.host = self.port = None
        self.exit_code = None
        self._announced = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._announced.wait(120), "server never announced"

    def _run(self):
        def announce(host, port):
            self.host, self.port = host, port
            self._announced.set()

        self.exit_code = self.server.serve_forever(announce=announce)

    @property
    def master(self):
        return f"{self.host}:{self.port}"

    def request(self, method, path, payload=None, body=None,
                headers=None, timeout=120):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            if payload is not None:
                body = json.dumps(payload).encode()
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def stop(self, code=0):
        self.server.request_drain(code)
        self._thread.join(timeout=120)
        assert not self._thread.is_alive(), "server failed to drain"
        return self.exit_code


@pytest.fixture()
def live():
    servers = []

    def start(session=None, **config):
        server = _LiveServer(session or Session(), **config)
        servers.append(server)
        return server

    yield start
    for server in servers:
        if server._thread.is_alive():
            server.stop()


class TestFabricHTTP:
    def test_metrics_preregistered_and_healthz_block(self, live):
        server = live()
        status, body = server.request("GET", "/metrics")
        assert status == 200
        for name in (b"repro_fabric_leases", b"repro_fabric_expiries",
                     b"repro_fabric_requeues"):
            assert name + b" 0" in body   # visible at zero before any sweep
        status, body = server.request("GET", "/healthz")
        fabric = json.loads(body)["fabric"]
        assert fabric["leases"] == 0 and fabric["pending"] == 0
        assert fabric["sweeps"] == {"running": 0, "done": 0, "failed": 0}
        assert server.stop() == 0

    def test_submit_and_lease_validation(self, live):
        server = live()
        status, _ = server.request("POST", "/v1/sweeps",
                                   payload={"tasks": []})
        assert status == 400
        bad = _sweep_payload(1)
        bad["tasks"][0]["schema"] = 99
        status, body = server.request("POST", "/v1/sweeps", payload=bad)
        assert status == 400 and b"schema" in body
        status, _ = server.request("GET", "/v1/sweeps/s999")
        assert status == 404
        status, _ = server.request("POST", "/v1/tasks/lease", payload={})
        assert status == 400                        # no worker id
        status, _ = server.request("POST", "/v1/tasks/nope/heartbeat",
                                   payload={"worker": "w"})
        assert status == 404
        status, _ = server.request("POST", "/v1/tasks/nope/result",
                                   payload={"worker": "w", "output": {}})
        assert status == 404
        # a running sweep has no results yet: explicit 409, not a hang
        status, body = server.request("POST", "/v1/sweeps",
                                      payload=_sweep_payload(1))
        assert status == 200
        sweep = json.loads(body)["id"]
        status, _ = server.request("GET", f"/v1/sweeps/{sweep}/results")
        assert status == 409
        assert server.stop() == 0

    def test_artifacts_are_content_addressed(self, live, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        server = live(session=Session(cache=cache))
        data = b"sealed artifact bytes"
        key = hashlib.sha256(data).hexdigest()
        status, _ = server.request("GET", f"/v1/artifacts/{key}")
        assert status == 404
        status, body = server.request("PUT", f"/v1/artifacts/{key}",
                                      body=data)
        assert status == 200 and json.loads(body)["key"] == key
        status, body = server.request("GET", f"/v1/artifacts/{key}")
        assert status == 200 and body == data
        status, _ = server.request("GET", "/v1/artifacts/not-a-key")
        assert status == 400
        # tampered upload: bytes do not hash to the claimed address
        status, body = server.request("PUT", f"/v1/artifacts/{key}",
                                      body=b"evil replacement")
        assert status == 400
        assert cache.stats["corrupt"] >= 1
        quarantined = os.path.join(str(tmp_path), "corrupt", f"{key}.bin")
        assert os.path.exists(quarantined)   # rejected bytes kept for triage
        # the original sealed blob survives the attempt
        status, body = server.request("GET", f"/v1/artifacts/{key}")
        assert status == 200 and body == data
        assert server.stop() == 0


# ---------------------------------------------------------------------------
# end to end
# ---------------------------------------------------------------------------
def _fig1_text(session):
    clear_measure_cache()
    return render_fig1(session.fig1())


class TestFabricEndToEnd:
    def test_fabric_sweep_is_byte_identical_to_serial(self, live):
        clean = _fig1_text(Session(jobs=1))
        server = live()
        worker = threading.Thread(
            target=run_worker, args=(server.master,),
            kwargs={"worker_id": "t1", "bootstrap": False}, daemon=True)
        worker.start()
        session = Session(fabric=server.master)
        fabric_text = _fig1_text(session)
        assert fabric_text == clean
        assert session.last_runner.stats["worker_restarts"] == 0
        status, body = server.request("GET", "/healthz")
        fabric = json.loads(body)["fabric"]
        assert fabric["sweeps"]["done"] == 1 and fabric["pending"] == 0
        assert server.stop() == 0
        worker.join(timeout=60)       # master gone -> worker exits its loop
        assert not worker.is_alive()

    def test_abandoned_leases_poison_to_honest_failures(self, live):
        """A 'vampire' client leases every task and never reports.  Each
        lease must expire twice and quarantine, and the sweep must end
        with explicit FAILED(...) cells — never a hang, never silently
        wrong numbers."""
        clean = _fig1_text(Session(jobs=1))
        server = live(fabric_lease_s=0.4, fabric_backoff_s=0.0)
        stop = threading.Event()

        def vampire():
            while not stop.wait(0.05):
                try:
                    server.request("POST", "/v1/tasks/lease",
                                   payload={"worker": "vampire",
                                            "limit": 64})
                except OSError:
                    return

        thread = threading.Thread(target=vampire, daemon=True)
        thread.start()
        session = Session(fabric=server.master)
        try:
            chaotic = _fig1_text(session)
        finally:
            stop.set()
            thread.join(timeout=10)
        assert check_invariant(clean, chaotic) == []
        assert "FAILED(" in chaotic
        stats = session.last_runner.stats
        assert stats["poisoned"] > 0
        assert stats["worker_restarts"] == 2 * stats["poisoned"]
        assert server.stop() == 0

    def test_distributed_run_assembles_one_trace_tree(self, live, tmp_path):
        """A real subprocess pull-worker measures a traced task; the
        master grafts the shipped spans under its fabric.dispatch span
        and serves the whole run as one connected tree."""
        server = live()
        trace_id = "deadbeef" * 4
        payload = _sweep_payload(1)
        payload["trace"] = True
        payload["tasks"][0]["ctx"] = [trace_id, 1]
        status, body = server.request(
            "POST", "/v1/sweeps", payload=payload,
            headers={"traceparent": f"00-{trace_id}-0000000000000001-01",
                     "Content-Type": "application/json"})
        assert status == 200
        sweep = json.loads(body)["id"]

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.dirname(os.path.dirname(repro.__file__))]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "work",
             "--master", server.master, "--once", "--max-idle-s", "120"],
            env=env, capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr

        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status, body = server.request("GET", f"/v1/sweeps/{sweep}")
            if json.loads(body).get("state") == "done":
                break
            time.sleep(0.05)
        else:
            pytest.fail("fabric sweep never finished")

        status, body = server.request("GET", f"/v1/traces/{trace_id}")
        assert status == 200
        tree = json.loads(body)
        assert tree["trace"] == trace_id
        roots = [node["name"] for node in tree["spans"]]
        assert "fabric.dispatch" in roots

        def names(node):
            yield node["name"]
            for child in node["children"]:
                yield from names(child)

        dispatch = next(node for node in tree["spans"]
                        if node["name"] == "fabric.dispatch")
        assert dispatch["children"], "worker spans never grafted"
        assert "exec.task" in set(names(dispatch))
        assert server.stop() == 0
