"""Tests for the observability substrate (``repro.obs``)."""

import json
import subprocess
import sys

import pytest

from repro import obs
from repro.cli import main
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, bucket_le
from repro.obs.report import (
    phase_breakdown,
    render_profile,
    render_prometheus,
    render_tree,
    span_tree_payload,
    write_metrics_json,
)
from repro.obs.trace import NULL_SPAN, SpanRecord, TraceContext, Tracer


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with instrumentation off and empty."""
    obs.disable()
    obs.clear()
    yield
    obs.disable()
    obs.clear()


class TestSpans:
    def test_nesting_and_ordering(self):
        obs.enable()
        with obs.trace.span("outer", design="d") as outer:
            with obs.trace.span("inner") as inner:
                obs.trace.event("tick", n=3)
            outer.set(late=True)
        records = obs.trace.events()
        # Records complete innermost-first: event, inner, then outer.
        assert [r.name for r in records] == ["tick", "inner", "outer"]
        tick, rec_inner, rec_outer = records
        assert rec_outer.parent_id is None and rec_outer.depth == 0
        assert rec_inner.parent_id == rec_outer.span_id and rec_inner.depth == 1
        assert tick.parent_id == rec_inner.span_id and tick.kind == "event"
        assert tick.duration == 0.0 and tick.attrs == {"n": 3}
        assert rec_outer.attrs == {"design": "d", "late": True}
        assert rec_outer.duration >= rec_inner.duration >= 0.0

    def test_exception_marks_error_and_unwinds(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.trace.span("boom"):
                raise ValueError("no")
        (rec,) = obs.trace.events()
        assert rec.status == "error"
        # Stack fully unwound: a new span is a root again.
        with obs.trace.span("after"):
            pass
        assert obs.trace.events()[-1].parent_id is None

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=4)
        obs.enable()
        for i in range(6):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.events()] == ["s2", "s3", "s4", "s5"]

    def test_jsonl_round_trip(self, tmp_path):
        obs.enable()
        with obs.trace.span("phase", design="vlog-opt", cycles=16):
            obs.trace.event("mark")
        path = tmp_path / "trace.jsonl"
        count = obs.trace.export_jsonl(path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == 2
        restored = [SpanRecord.from_dict(json.loads(line)) for line in lines]
        for original, copy in zip(obs.trace.events(), restored):
            assert copy.name == original.name
            assert copy.span_id == original.span_id
            assert copy.parent_id == original.parent_id
            assert copy.kind == original.kind
            assert copy.attrs == original.attrs
            assert copy.duration == pytest.approx(original.duration, abs=1e-6)


class TestMetrics:
    def test_counter_gauge_math(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 41)
        reg.set_gauge("g", 2.5)
        reg.set_gauge("g", 7.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 42}
        assert snap["gauges"] == {"g": 7.0}

    def test_histogram_buckets(self):
        assert bucket_le(0) == 1
        assert bucket_le(1) == 1
        assert bucket_le(2) == 2
        assert bucket_le(3) == 4
        assert bucket_le(1024) == 1024
        assert bucket_le(1025) == 2048
        reg = MetricsRegistry()
        for v in (1, 3, 3, 100):
            reg.observe("h", v)
        hist = reg.snapshot()["histograms"]["h"]
        assert hist["count"] == 4
        assert hist["sum"] == 107
        assert hist["min"] == 1 and hist["max"] == 100
        assert hist["mean"] == pytest.approx(26.75)
        assert hist["buckets"] == {"1": 1, "4": 2, "128": 1}

    def test_guarded_module_functions_follow_enable(self):
        obs.metrics.inc("guarded")
        assert obs.metrics.snapshot()["counters"] == {}
        obs.enable()
        obs.metrics.inc("guarded")
        assert obs.metrics.snapshot()["counters"] == {"guarded": 1}


class TestDisabledMode:
    def test_disabled_is_noop(self):
        assert not obs.enabled()
        # One shared null singleton, regardless of name/attrs.
        assert obs.trace.span("x") is obs.trace.span("y", a=1) is NULL_SPAN
        with obs.trace.span("x") as sp:
            sp.set(anything=1)
        obs.trace.event("e", n=1)
        obs.metrics.inc("c")
        obs.metrics.observe("h", 5)
        assert obs.trace.events() == []
        snap = obs.metrics.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_disabled_pipeline_records_nothing(self):
        from repro.frontends.vlog.designs import verilog_initial

        design = verilog_initial()
        from repro.eval.verify import verify_design

        verify_design(design)
        assert obs.trace.events() == []
        assert obs.metrics.snapshot()["counters"] == {}


class TestReport:
    def test_phase_breakdown_attributes_to_ancestor_design(self):
        obs.enable()
        with obs.trace.span("measure", design="d1"):
            with obs.trace.span("elaborate"):
                pass
            with obs.trace.span("synth"):
                pass
        with obs.trace.span("orphan"):
            pass
        phases = phase_breakdown()
        assert set(phases) == {"d1", "-"}
        assert set(phases["d1"]) == {"measure", "elaborate", "synth"}
        assert phases["d1"]["elaborate"]["calls"] == 1
        assert phases["-"]["orphan"]["calls"] == 1

    def test_render_profile_lists_spans_and_metrics(self):
        obs.enable()
        with obs.trace.span("top", design="d"):
            with obs.trace.span("child"):
                pass
        obs.metrics.inc("sim.cycles", 16)
        text = render_profile()
        assert "== phase profile ==" in text
        assert "top" in text and "  child" in text
        assert "sim.cycles" in text and "16" in text

    def test_write_metrics_json_payload(self, tmp_path):
        obs.enable()
        with obs.trace.span("measure", design="d1"):
            pass
        obs.metrics.inc("n", 2)
        path = tmp_path / "metrics.json"
        payload = write_metrics_json(path, extra={"run": "unit"})
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["run"] == "unit"
        assert on_disk["metrics"]["counters"] == {"n": 2}
        assert on_disk["phases"]["d1"]["measure"]["calls"] == 1


class TestCliObs:
    def test_profile_smoke(self, capsys):
        # hc-opt is the frontend-package alias for chisel-opt.
        assert main(["profile", "hc-opt"]) == 0
        out = capsys.readouterr().out
        assert "profile of chisel-opt" in out
        assert "frontend.build" in out
        assert "elaborate" in out and "synth" in out
        assert "sim.cycles" in out and "axis.stalls" in out
        # Tracing was scoped to the command.
        assert not obs.enabled()

    def test_profile_unknown_design(self, capsys):
        assert main(["profile", "nope"]) == 2

    def test_table2_metrics_export(self, capsys, tmp_path):
        from repro.eval import clear_measure_cache

        clear_measure_cache()  # a warm cache would skip the measure spans
        path = tmp_path / "out.json"
        assert main(["table2", "--tools", "Chisel/Chisel",
                     "--metrics", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"metrics", "phases"}
        designs = {d for d in payload["phases"] if d != "-"}
        assert {"chisel-initial", "chisel-opt"} <= designs
        for phases in (payload["phases"][d] for d in designs):
            assert "measure" in phases
            assert all(slot["calls"] >= 1 and slot["seconds"] >= 0.0
                       for slot in phases.values())

    def test_verify_engine_interp(self, capsys):
        assert main(["verify", "vlog-initial", "--engine", "interp"]) == 0
        out = capsys.readouterr().out
        # no engine tag in the output: every sim engine's verify stdout
        # is byte-identical (the check.sh engine smoke relies on it)
        assert "engine=" not in out and "bit-exact" in out


class TestTraceContext:
    def test_traceparent_round_trip(self):
        ctx = TraceContext(trace_id="ab12cd34ef56ab78", span_id=42)
        header = ctx.to_traceparent()
        assert header == f"00-{'ab12cd34ef56ab78':0>32s}-{42:016x}-01"
        back = TraceContext.from_traceparent(header)
        assert back == ctx

    def test_traceparent_rejects_malformed(self):
        for bad in ("", "00-short-0000000000000001-01",
                    "00-" + "g" * 32 + "-" + "0" * 16 + "-01",
                    "no dashes at all"):
            assert TraceContext.from_traceparent(bad) is None

    def test_new_trace_stamps_records_and_events(self):
        obs.enable()
        trace_id = obs.trace.new_trace()
        assert len(trace_id) == 16
        with obs.trace.span("op"):
            obs.trace.event("mark")
        assert all(rec.trace_id == trace_id for rec in obs.trace.events())
        # to_dict/from_dict carries the trace id across the JSONL boundary.
        copy = SpanRecord.from_dict(obs.trace.events()[-1].to_dict())
        assert copy.trace_id == trace_id

    def test_current_context_names_innermost_open_span(self):
        obs.enable()
        trace_id = obs.trace.new_trace()
        assert obs.trace.current_context() == TraceContext(trace_id, None)
        with obs.trace.span("outer"):
            with obs.trace.span("inner") as inner:
                ctx = obs.trace.current_context()
        assert ctx == TraceContext(trace_id, inner.span_id)

    def test_ingest_grafts_foreign_tree_under_local_span(self):
        """A worker's shipped buffer hangs off the dispatch span and
        adopts the parent's trace id — the cross-process join."""
        obs.enable()
        worker = Tracer()
        worker_trace = worker.new_trace("feedbeeffeedbeef")
        with worker.span("exec.task"):
            with worker.span("measure"):
                pass
        shipped = [rec.to_dict() for rec in worker.events()]

        obs.trace.new_trace()
        with obs.trace.span("exec.prefetch") as prefetch:
            graft = prefetch.span_id
            obs.trace.ingest(shipped, under=graft)
        by_name = {rec.name: rec for rec in obs.trace.events()}
        assert by_name["exec.task"].parent_id == graft
        assert by_name["measure"].parent_id == by_name["exec.task"].span_id
        # Foreign trace ids are preserved (the worker adopted the parent's
        # id in production; here it proves ingest doesn't clobber them).
        assert by_name["exec.task"].trace_id == worker_trace


class TestEventLog:
    def test_emit_is_guarded_by_enable(self):
        obs.events.emit("cell.done", design="d")
        assert obs.events.EVENTS.events() == []
        obs.enable()
        obs.events.emit("cell.done", design="d")
        (event,) = obs.events.EVENTS.events()
        assert event["type"] == "cell.done" and event["design"] == "d"
        assert event["seq"] == 1 and event["ts"] > 0

    def test_events_carry_trace_context_and_scope(self):
        obs.enable()
        trace_id = obs.trace.new_trace()
        log = EventLog()
        with obs.trace.span("measure") as sp:
            with log.scope(job="job-1"):
                log.record("phase.start", phase="synth")
        (event,) = log.events()
        assert event["trace"] == trace_id
        assert event["span"] == sp.span_id
        assert event["job"] == "job-1"

    def test_ingest_resequences_and_applies_scope(self):
        log = EventLog()
        foreign = [{"type": "cell.done", "seq": 99, "design": "d1"},
                   {"type": "cell.retry", "seq": 100, "design": "d1",
                    "job": "their-job"}]
        with log.scope(job="job-7"):
            assert log.ingest(foreign) == 2
        first, second = log.events()
        assert [e["seq"] for e in (first, second)] == [1, 2]
        assert first["job"] == "job-7"          # scope fills the gap
        assert second["job"] == "their-job"     # but never overwrites

    def test_subscribe_and_since(self):
        log = EventLog()
        seen = []
        with log.subscribe(seen.append):
            log.record("a")
            log.record("b")
        log.record("c")  # after unsubscribe
        assert [e["type"] for e in seen] == ["a", "b"]
        fresh, latest = log.since(1)
        assert [e["type"] for e in fresh] == ["b", "c"]
        assert latest == 3
        assert log.since(latest)[0] == []

    def test_attached_sink_appends_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog()
        log.record("before")  # not yet attached: not in the file
        log.attach(path)
        log.record("cell.done", design="d")
        log.detach()
        log.record("after")
        lines = [json.loads(line) for line in
                 path.read_text().splitlines()]
        assert [e["type"] for e in lines] == ["cell.done"]


class TestPrometheusLabels:
    def test_labelled_series_share_one_family_header(self):
        reg = MetricsRegistry()
        reg.inc("serve.blocks_total", 5)
        reg.inc("serve.blocks_total|design=d1,engine=model", 3)
        reg.inc("serve.blocks_total|design=d2,engine=sim", 2)
        text = render_prometheus(reg)
        assert text.count("# TYPE repro_serve_blocks_total counter") == 1
        assert "# HELP repro_serve_blocks_total" in text
        assert "repro_serve_blocks_total 5" in text
        assert ('repro_serve_blocks_total{design="d1",engine="model"} 3'
                in text)
        assert ('repro_serve_blocks_total{design="d2",engine="sim"} 2'
                in text)

    def test_supervision_counters_render_as_zeros(self):
        from repro.obs.report import (
            DEFAULT_COUNTERS,
            ensure_default_instruments,
        )

        reg = MetricsRegistry()
        ensure_default_instruments(reg)
        text = render_prometheus(reg)
        for name in ("repro_exec_worker_restarts", "repro_exec_poisoned_tasks",
                     "repro_cache_corrupt"):
            assert f"# HELP {name} " in text
            assert f"# TYPE {name} counter" in text
            assert f"\n{name} 0" in "\n" + text
        assert len(DEFAULT_COUNTERS) >= 3

    def test_empty_registry_still_renders_empty(self):
        # The pre-registration lives in the serve endpoint, not here:
        # an untouched registry must keep rendering nothing at all.
        assert render_prometheus(MetricsRegistry()) == ""


class TestSpanTreePayload:
    def _record(self, span_id, parent_id, name, trace_id="t1", depth=0):
        return SpanRecord(span_id=span_id, parent_id=parent_id, depth=depth,
                          name=name, t_wall=float(span_id),
                          t_start=float(span_id), duration=0.001,
                          trace_id=trace_id)

    def test_nests_children_and_filters_by_trace(self):
        records = [self._record(1, None, "root"),
                   self._record(2, 1, "child", depth=1),
                   self._record(3, None, "other", trace_id="t2")]
        payload = span_tree_payload(records, trace_id="t1")
        assert payload["trace"] == "t1" and payload["count"] == 2
        (root,) = payload["spans"]
        assert root["name"] == "root"
        assert [c["name"] for c in root["children"]] == ["child"]

    def test_render_tree_text(self):
        records = [self._record(1, None, "sweep.fig1"),
                   self._record(2, 1, "measure", depth=1)]
        text = render_tree(records, "t1")
        assert text.splitlines()[0] == "== trace t1 — 2 spans =="
        assert "sweep.fig1" in text and "  measure" in text


def _assert_connected(records):
    """Every span must be parent-reachable from a single root."""
    spans = [rec for rec in records if rec.kind == "span"]
    by_id = {rec.span_id: rec for rec in spans}
    roots = [rec for rec in spans if rec.parent_id is None]
    assert len(roots) == 1, [r.name for r in roots]
    children = {}
    for rec in spans:
        children.setdefault(rec.parent_id, []).append(rec.span_id)
    reachable = set()
    stack = [roots[0].span_id]
    while stack:
        span_id = stack.pop()
        reachable.add(span_id)
        stack.extend(children.get(span_id, ()))
    assert reachable == set(by_id), "orphaned spans in the merged tree"
    assert len({rec.trace_id for rec in spans}) == 1
    return roots[0], spans


class TestConnectedTraces:
    """The tentpole guarantee: one causally-linked span tree per sweep,
    across pool workers and even across worker SIGKILLs."""

    SIZES = {"bsc_configs": 1, "bambu_configs": 1, "xls_stages": 1}

    def _fig1(self, session):
        from repro.eval.experiments import render_fig1
        from repro.eval.measure import clear_measure_cache

        clear_measure_cache()
        return render_fig1(session.fig1(**self.SIZES))

    def test_parallel_sweep_yields_one_tree_and_identical_stdout(self):
        from repro.api import Session

        serial = self._fig1(Session(jobs=1))

        session = Session(jobs=2, trace=True)
        try:
            parallel = self._fig1(session)
            records = obs.trace.events()
        finally:
            session.close()
        assert parallel == serial  # tracing never perturbs the artifact
        root, spans = _assert_connected(records)
        assert root.name == "sweep.fig1"
        assert root.trace_id == session.trace_id
        by_name = {}
        for rec in spans:
            by_name.setdefault(rec.name, []).append(rec)
        (prefetch,) = by_name["exec.prefetch"]
        assert prefetch.parent_id == root.span_id
        tasks = by_name["exec.task"]
        assert len(tasks) == prefetch.attrs["tasks"]
        assert all(rec.parent_id == prefetch.span_id for rec in tasks)
        # Worker-side phases nest inside their exec.task span (via the
        # worker's own resilience.run wrapper).
        by_id = {rec.span_id: rec for rec in spans}
        task_ids = {rec.span_id for rec in tasks}

        def has_task_ancestor(rec):
            while rec.parent_id is not None:
                if rec.parent_id in task_ids:
                    return True
                rec = by_id[rec.parent_id]
            return False

        measures = by_name["measure"]
        assert measures and all(has_task_ancestor(rec) for rec in measures)

    def test_sigkilled_workers_keep_the_tree_connected(self):
        from repro.api import Session
        from repro.chaos import ChaosPolicy

        session = Session(jobs=2, trace=True,
                          chaos=ChaosPolicy(seed=1, kill=1.0))
        try:
            self._fig1(session)
            records = obs.trace.events()
            events = obs.events.EVENTS.events()
        finally:
            session.close()
        assert session.last_runner.stats["worker_restarts"] > 0
        _root, spans = _assert_connected(records)
        tasks = [rec for rec in spans if rec.name == "exec.task"]
        # Re-dispatch rounds are visible: the same task appears again
        # with a higher attempt number, still inside the one tree.
        assert any(rec.attrs.get("attempt", 0) > 0 for rec in tasks)
        restarts = [e for e in events if e["type"] == "worker.restart"]
        assert restarts and all(e["trace"] == session.trace_id
                                for e in restarts)


class TestProfileJsonCli:
    def test_json_report_matches_text_totals(self, capsys):
        assert main(["profile", "hc-opt", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["design"] == "chisel-opt"
        assert payload["bit_exact"] is True
        # One serialization path: total_ms is the sum of the same root
        # spans the text report's percent column divides by.
        roots_ms = sum(node["dur_us"] for node in payload["profile"]) / 1000
        assert payload["total_ms"] == pytest.approx(roots_ms, abs=0.01)
        # And the phase totals agree with recomputing from the tree.
        def walk(nodes):
            for node in nodes:
                yield node
                yield from walk(node["children"])
        measured = sum(n["dur_us"] for n in walk(payload["profile"])
                       if n["name"] == "measure") / 1e3
        phase_ms = sum(slot["measure"]["seconds"] * 1000
                       for slot in payload["phases"].values()
                       if "measure" in slot)
        assert phase_ms == pytest.approx(measured, abs=0.01)
        assert payload["metrics"]["counters"]["sim.cycles"] > 0


class TestObsCliGroup:
    def _events_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = [{"seq": 1, "ts": 1.0, "type": "phase.start", "design": "d1"},
                 {"seq": 2, "ts": 2.0, "type": "cell.done", "design": "d1",
                  "trace": "abc123", "status": "ok"},
                 {"seq": 3, "ts": 3.0, "type": "cell.done", "design": "d2"}]
        path.write_text("".join(json.dumps(e) + "\n" for e in lines)
                        + '{"torn')  # crashed writer's partial last line
        return path

    def test_tail_filters_and_limits(self, capsys, tmp_path):
        path = self._events_file(tmp_path)
        assert main(["obs", "tail", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 3 and "torn" not in out
        assert main(["obs", "tail", str(path), "--type", "cell.done",
                     "--limit", "1"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        assert "cell.done" in out[0] and "design=d2" in out[0]

    def test_tail_missing_file(self, capsys, tmp_path):
        assert main(["obs", "tail", str(tmp_path / "nope.jsonl")]) == 2

    def test_tree_renders_exported_trace(self, capsys, tmp_path):
        obs.enable()
        trace_id = obs.trace.new_trace()
        with obs.trace.span("sweep.fig1"):
            with obs.trace.span("measure", design="d1"):
                pass
        path = tmp_path / "trace.jsonl"
        obs.trace.export_jsonl(path)
        assert main(["obs", "tree", trace_id, "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"== trace {trace_id} — 2 spans ==" in out
        assert "sweep.fig1" in out and "  measure" in out

    def test_diff_reports_metric_deltas(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(
            {"metrics": {"counters": {"cache.hits": 10, "same": 1},
                         "gauges": {}}}))
        b.write_text(json.dumps(
            {"metrics": {"counters": {"cache.hits": 15, "same": 1},
                         "gauges": {"new.g": 2.5}}}))
        assert main(["obs", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "cache.hits" in out and "+5" in out and "+50.0%" in out
        assert "new.g" in out
        assert "same" not in out


class TestBenchGate:
    def _write(self, directory, name, ops):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"BENCH_{name}.json").write_text(json.dumps(
            {"metrics": {"counters": {},
                         "gauges": {"bench.ops": ops}}}))

    def _gate(self, *argv):
        return subprocess.run(
            [sys.executable, "scripts/bench_gate.py", *argv],
            capture_output=True, text=True)

    def test_injected_regression_fails_the_gate(self, tmp_path):
        self._write(tmp_path / "base", "fig1", 100.0)
        self._write(tmp_path / "fresh", "fig1", 80.0)  # -20%
        proc = self._gate("--benchmarks", str(tmp_path / "fresh"),
                          "--baseline", str(tmp_path / "base"))
        assert proc.returncode == 1
        assert "-20.0%" in proc.stdout
        assert "FAILED" in proc.stderr

    def test_within_threshold_passes(self, tmp_path):
        self._write(tmp_path / "base", "fig1", 100.0)
        self._write(tmp_path / "fresh", "fig1", 90.0)  # -10% < 15%
        proc = self._gate("--benchmarks", str(tmp_path / "fresh"),
                          "--baseline", str(tmp_path / "base"))
        assert proc.returncode == 0
        assert "bench gate: ok" in proc.stdout

    def test_missing_baseline_skips_with_notice(self, tmp_path):
        self._write(tmp_path / "fresh", "fig1", 100.0)
        proc = self._gate("--benchmarks", str(tmp_path / "fresh"),
                          "--baseline", str(tmp_path / "base"))
        assert proc.returncode == 0
        assert "skipping" in proc.stdout

    def test_update_records_baseline(self, tmp_path):
        self._write(tmp_path / "fresh", "fig1", 100.0)
        proc = self._gate("--benchmarks", str(tmp_path / "fresh"),
                          "--baseline", str(tmp_path / "base"), "--update")
        assert proc.returncode == 0
        assert (tmp_path / "base" / "BENCH_fig1.json").exists()
        proc = self._gate("--benchmarks", str(tmp_path / "fresh"),
                          "--baseline", str(tmp_path / "base"))
        assert proc.returncode == 0
