"""Tests for the observability substrate (``repro.obs``)."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.metrics import MetricsRegistry, bucket_le
from repro.obs.report import phase_breakdown, render_profile, write_metrics_json
from repro.obs.trace import NULL_SPAN, SpanRecord, Tracer


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with instrumentation off and empty."""
    obs.disable()
    obs.clear()
    yield
    obs.disable()
    obs.clear()


class TestSpans:
    def test_nesting_and_ordering(self):
        obs.enable()
        with obs.trace.span("outer", design="d") as outer:
            with obs.trace.span("inner") as inner:
                obs.trace.event("tick", n=3)
            outer.set(late=True)
        records = obs.trace.events()
        # Records complete innermost-first: event, inner, then outer.
        assert [r.name for r in records] == ["tick", "inner", "outer"]
        tick, rec_inner, rec_outer = records
        assert rec_outer.parent_id is None and rec_outer.depth == 0
        assert rec_inner.parent_id == rec_outer.span_id and rec_inner.depth == 1
        assert tick.parent_id == rec_inner.span_id and tick.kind == "event"
        assert tick.duration == 0.0 and tick.attrs == {"n": 3}
        assert rec_outer.attrs == {"design": "d", "late": True}
        assert rec_outer.duration >= rec_inner.duration >= 0.0

    def test_exception_marks_error_and_unwinds(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.trace.span("boom"):
                raise ValueError("no")
        (rec,) = obs.trace.events()
        assert rec.status == "error"
        # Stack fully unwound: a new span is a root again.
        with obs.trace.span("after"):
            pass
        assert obs.trace.events()[-1].parent_id is None

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=4)
        obs.enable()
        for i in range(6):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.events()] == ["s2", "s3", "s4", "s5"]

    def test_jsonl_round_trip(self, tmp_path):
        obs.enable()
        with obs.trace.span("phase", design="vlog-opt", cycles=16):
            obs.trace.event("mark")
        path = tmp_path / "trace.jsonl"
        count = obs.trace.export_jsonl(path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == 2
        restored = [SpanRecord.from_dict(json.loads(line)) for line in lines]
        for original, copy in zip(obs.trace.events(), restored):
            assert copy.name == original.name
            assert copy.span_id == original.span_id
            assert copy.parent_id == original.parent_id
            assert copy.kind == original.kind
            assert copy.attrs == original.attrs
            assert copy.duration == pytest.approx(original.duration, abs=1e-6)


class TestMetrics:
    def test_counter_gauge_math(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 41)
        reg.set_gauge("g", 2.5)
        reg.set_gauge("g", 7.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 42}
        assert snap["gauges"] == {"g": 7.0}

    def test_histogram_buckets(self):
        assert bucket_le(0) == 1
        assert bucket_le(1) == 1
        assert bucket_le(2) == 2
        assert bucket_le(3) == 4
        assert bucket_le(1024) == 1024
        assert bucket_le(1025) == 2048
        reg = MetricsRegistry()
        for v in (1, 3, 3, 100):
            reg.observe("h", v)
        hist = reg.snapshot()["histograms"]["h"]
        assert hist["count"] == 4
        assert hist["sum"] == 107
        assert hist["min"] == 1 and hist["max"] == 100
        assert hist["mean"] == pytest.approx(26.75)
        assert hist["buckets"] == {"1": 1, "4": 2, "128": 1}

    def test_guarded_module_functions_follow_enable(self):
        obs.metrics.inc("guarded")
        assert obs.metrics.snapshot()["counters"] == {}
        obs.enable()
        obs.metrics.inc("guarded")
        assert obs.metrics.snapshot()["counters"] == {"guarded": 1}


class TestDisabledMode:
    def test_disabled_is_noop(self):
        assert not obs.enabled()
        # One shared null singleton, regardless of name/attrs.
        assert obs.trace.span("x") is obs.trace.span("y", a=1) is NULL_SPAN
        with obs.trace.span("x") as sp:
            sp.set(anything=1)
        obs.trace.event("e", n=1)
        obs.metrics.inc("c")
        obs.metrics.observe("h", 5)
        assert obs.trace.events() == []
        snap = obs.metrics.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_disabled_pipeline_records_nothing(self):
        from repro.frontends.vlog.designs import verilog_initial

        design = verilog_initial()
        from repro.eval.verify import verify_design

        verify_design(design)
        assert obs.trace.events() == []
        assert obs.metrics.snapshot()["counters"] == {}


class TestReport:
    def test_phase_breakdown_attributes_to_ancestor_design(self):
        obs.enable()
        with obs.trace.span("measure", design="d1"):
            with obs.trace.span("elaborate"):
                pass
            with obs.trace.span("synth"):
                pass
        with obs.trace.span("orphan"):
            pass
        phases = phase_breakdown()
        assert set(phases) == {"d1", "-"}
        assert set(phases["d1"]) == {"measure", "elaborate", "synth"}
        assert phases["d1"]["elaborate"]["calls"] == 1
        assert phases["-"]["orphan"]["calls"] == 1

    def test_render_profile_lists_spans_and_metrics(self):
        obs.enable()
        with obs.trace.span("top", design="d"):
            with obs.trace.span("child"):
                pass
        obs.metrics.inc("sim.cycles", 16)
        text = render_profile()
        assert "== phase profile ==" in text
        assert "top" in text and "  child" in text
        assert "sim.cycles" in text and "16" in text

    def test_write_metrics_json_payload(self, tmp_path):
        obs.enable()
        with obs.trace.span("measure", design="d1"):
            pass
        obs.metrics.inc("n", 2)
        path = tmp_path / "metrics.json"
        payload = write_metrics_json(path, extra={"run": "unit"})
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["run"] == "unit"
        assert on_disk["metrics"]["counters"] == {"n": 2}
        assert on_disk["phases"]["d1"]["measure"]["calls"] == 1


class TestCliObs:
    def test_profile_smoke(self, capsys):
        # hc-opt is the frontend-package alias for chisel-opt.
        assert main(["profile", "hc-opt"]) == 0
        out = capsys.readouterr().out
        assert "profile of chisel-opt" in out
        assert "frontend.build" in out
        assert "elaborate" in out and "synth" in out
        assert "sim.cycles" in out and "axis.stalls" in out
        # Tracing was scoped to the command.
        assert not obs.enabled()

    def test_profile_unknown_design(self, capsys):
        assert main(["profile", "nope"]) == 2

    def test_table2_metrics_export(self, capsys, tmp_path):
        from repro.eval import clear_measure_cache

        clear_measure_cache()  # a warm cache would skip the measure spans
        path = tmp_path / "out.json"
        assert main(["table2", "--tools", "Chisel/Chisel",
                     "--metrics", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"metrics", "phases"}
        designs = {d for d in payload["phases"] if d != "-"}
        assert {"chisel-initial", "chisel-opt"} <= designs
        for phases in (payload["phases"][d] for d in designs):
            assert "measure" in phases
            assert all(slot["calls"] >= 1 and slot["seconds"] >= 0.0
                       for slot in phases.values())

    def test_verify_engine_interp(self, capsys):
        assert main(["verify", "vlog-initial", "--engine", "interp"]) == 0
        out = capsys.readouterr().out
        assert "[engine=interp]" in out and "bit-exact" in out
