"""Tests for the IDCT reference models and IEEE 1180 compliance suite."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.idct import (
    INPUT_MAX,
    INPUT_MIN,
    OUTPUT_MAX,
    OUTPUT_MIN,
    SIZE,
    Ieee1180Generator,
    batch_chen_wang,
    batch_float_idct,
    chen_wang_idct,
    float_idct,
    generate_blocks,
    iclip,
    idct_col,
    idct_row,
    run_compliance,
    run_condition,
)
from repro.idct.constants import W1, W2, W3, W5, W6, W7


def zero_block():
    return [[0] * SIZE for _ in range(SIZE)]


def dc_block(value):
    block = zero_block()
    block[0][0] = value
    return block


coeff = st.integers(INPUT_MIN, INPUT_MAX)
blocks = st.lists(
    st.lists(coeff, min_size=SIZE, max_size=SIZE), min_size=SIZE, max_size=SIZE
)


class TestConstants:
    def test_w_constants_match_cos_table(self):
        import math

        for k, w in ((1, W1), (2, W2), (3, W3), (5, W5), (6, W6), (7, W7)):
            expected = round(2048 * math.sqrt(2) * math.cos(k * math.pi / 16))
            assert w == expected


class TestIclip:
    def test_passes_in_range(self):
        assert iclip(0) == 0
        assert iclip(255) == 255
        assert iclip(-256) == -256

    def test_clamps(self):
        assert iclip(256) == OUTPUT_MAX
        assert iclip(-257) == OUTPUT_MIN
        assert iclip(10**6) == OUTPUT_MAX


class TestRowCol:
    def test_row_rejects_bad_length(self):
        with pytest.raises(ValueError):
            idct_row([0] * 7)

    def test_col_rejects_bad_length(self):
        with pytest.raises(ValueError):
            idct_col([0] * 9)

    def test_zero_row(self):
        assert idct_row([0] * 8) == [0] * 8

    def test_dc_only_row_is_scaled_copy(self):
        # The ISO early-out: all-AC-zero gives blk[0] << 3 everywhere.
        for dc in (-2048, -100, -1, 0, 1, 100, 2047):
            assert idct_row([dc, 0, 0, 0, 0, 0, 0, 0]) == [dc << 3] * 8

    def test_dc_only_col_is_clipped_scaled_copy(self):
        for dc in (-3000, -100, 0, 100, 3000):
            expected = iclip((dc + 32) >> 6)
            assert idct_col([dc, 0, 0, 0, 0, 0, 0, 0]) == [expected] * 8

    @given(st.lists(coeff, min_size=8, max_size=8))
    @settings(max_examples=100)
    def test_row_output_bounded(self, row):
        # Row outputs feed the column stage; even adversarial 12-bit inputs
        # stay within 19 signed bits, which the hardware width budgets
        # (and the Chisel-style width inference) rely on.
        out = idct_row(row)
        assert all(-(1 << 18) <= v < (1 << 18) for v in out)


class TestFullIdct:
    def test_zero_block(self):
        assert chen_wang_idct(zero_block()) == zero_block()

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            chen_wang_idct([[0] * 8] * 7)

    def test_dc_block(self):
        out = chen_wang_idct(dc_block(64))
        # DC of 64 -> flat block of (64*8 + 32*... ) ~ 8 per sample.
        assert all(all(v == out[0][0] for v in row) for row in out)
        assert out[0][0] == 8

    def test_output_range(self):
        block = [[INPUT_MAX if (r + c) % 2 else INPUT_MIN for c in range(8)]
                 for r in range(8)]
        out = chen_wang_idct(block)
        assert all(OUTPUT_MIN <= v <= OUTPUT_MAX for row in out for v in row)

    @given(blocks)
    @settings(max_examples=50, deadline=None)
    def test_close_to_float_reference(self, block):
        fixed = chen_wang_idct(block)
        ref = float_idct(block)
        # IEEE 1180 peak error criterion on arbitrary in-range blocks:
        # Chen-Wang stays within 2 of the double-precision reference even
        # for adversarial (non-DCT-like) inputs.
        diff = max(
            abs(fixed[r][c] - ref[r][c]) for r in range(8) for c in range(8)
        )
        assert diff <= 2

    @given(blocks)
    @settings(max_examples=30, deadline=None)
    def test_scalar_matches_batch(self, block):
        scalar = chen_wang_idct(block)
        batched = batch_chen_wang(np.array([block], dtype=np.int64))[0]
        assert scalar == batched.tolist()

    @given(blocks)
    @settings(max_examples=20, deadline=None)
    def test_float_scalar_matches_batch(self, block):
        scalar = float_idct(block)
        batched = batch_float_idct(np.array([block], dtype=np.int64))[0]
        assert scalar == batched.tolist()


class TestGenerator:
    def test_deterministic(self):
        a = Ieee1180Generator(seed=1).block(256, 255)
        b = Ieee1180Generator(seed=1).block(256, 255)
        assert a == b

    def test_range(self):
        gen = Ieee1180Generator()
        values = [gen.value(256, 255) for _ in range(2000)]
        assert min(values) >= -256
        assert max(values) <= 255
        assert min(values) < -200  # actually spans the range
        assert max(values) > 200

    def test_sign_flip(self):
        pos = generate_blocks(3, 5, 5, sign=1, seed=7)
        neg = generate_blocks(3, 5, 5, sign=-1, seed=7)
        assert np.array_equal(pos, -neg)

    def test_blocks_shape(self):
        arr = generate_blocks(4, 256, 255)
        assert arr.shape == (4, 8, 8)


class TestCompliance:
    def test_chen_wang_meets_ieee1180_full_standard(self):
        # The standard's full 10,000 blocks per condition (the vectorized
        # generator makes this sub-second).  Note the L=300 OMSE criterion
        # passes by a hair (0.0199/0.0200 vs the 0.02 limit) — the
        # documented marginal behaviour of the ISO fast IDCT.
        report = run_compliance(batch_chen_wang, n_blocks=10_000)
        assert report.compliant, report.summary()

    def test_vectorized_generator_matches_scalar(self):
        import numpy as np

        gen = Ieee1180Generator(seed=1)
        scalar = [gen.block(256, 255) for _ in range(4)]
        vectorized = generate_blocks(4, 256, 255, seed=1)
        assert np.array_equal(np.array(scalar), vectorized)

    def test_zero_input_criterion(self):
        report = run_compliance(batch_chen_wang, n_blocks=1)
        assert report.zero_input_ok

    def test_condition_metrics_structure(self):
        # 100 blocks is too few for the mean-error criteria to settle, so
        # only the structure and the peak criterion are asserted here.
        result = run_condition(batch_chen_wang, 5, 5, 1, n_blocks=100)
        assert result.n_blocks == 100
        assert result.peak_error <= 1
        assert "L=5 H=5" in result.summary()

    def test_broken_idct_fails(self):
        def broken(blocks):
            out = batch_chen_wang(blocks)
            return out + 2  # constant bias: violates ome and peak error

        report = run_compliance(broken, n_blocks=50)
        assert not report.compliant
        assert "FAIL" in report.summary()

    def test_report_summary_mentions_verdict(self):
        report = run_compliance(batch_chen_wang, n_blocks=20)
        assert "COMPLIANT" in report.summary()
