"""Tests for the BSV-like rules engine and the rule-based IDCT systems."""

import pytest

from repro.core.errors import FrontendError
from repro.eval.verify import random_matrices, verify_design
from repro.frontends.hc.dsl import Sig, lit, mux
from repro.frontends.rules import (
    RulesModule,
    SchedulerOptions,
    bsc_sweep,
    bsv_initial,
    bsv_opt,
)
from repro.axis import StreamHarness, every
from repro.idct import chen_wang_idct
from repro.rtl import elaborate
from repro.sim import Simulator
from repro.synth import synthesize


def make_counter_rules():
    m = RulesModule("dut")
    go = m.input("go", 1)
    count = m.reg("count", 8, signed=False)
    step = m.rule("step", guard=go)
    step.write(count, Sig((count + 1).resize(8).expr, False))
    m.output("count", count)
    return m


class TestEngine:
    def test_single_rule_fires_when_ready(self):
        m = make_counter_rules()
        top, schedule = m.compile()
        sim = Simulator(top)
        sim.poke("go", 1)
        sim.step(4)
        assert sim.peek("count").uint == 4
        assert schedule.order == ["step"]

    def test_guard_false_blocks_rule(self):
        m = make_counter_rules()
        top, _ = m.compile()
        sim = Simulator(top)
        sim.poke("go", 0)
        sim.step(4)
        assert sim.peek("count").uint == 0

    def test_conflicting_rules_serialize_by_urgency(self):
        m = RulesModule("dut")
        shared = m.reg("shared", 8, signed=False)
        hi = m.rule("hi")
        hi.write(shared, 1)
        lo = m.rule("lo")
        lo.write(shared, 2)
        top, schedule = m.compile()
        assert not schedule.conflict_free("hi", "lo")
        sim = Simulator(top)
        sim.step()
        # Urgent rule wins every cycle.
        assert sim.peek("shared").uint == 1

    def test_non_conflicting_rules_fire_concurrently(self):
        m = RulesModule("dut")
        a = m.reg("a", 8, signed=False)
        b = m.reg("b", 8, signed=False)
        ra = m.rule("ra")
        ra.write(a, Sig((a + 1).resize(8).expr, False))
        rb = m.rule("rb")
        rb.write(b, Sig((b + 2).resize(8).expr, False))
        top, schedule = m.compile()
        assert schedule.conflict_free("ra", "rb")
        sim = Simulator(top)
        sim.step(3)
        assert sim.peek("a").uint == 3
        assert sim.peek("b").uint == 6

    def test_atomicity_reads_pre_cycle_state(self):
        # Two concurrent rules swap a and b: with atomic semantics both
        # read old values, so the swap is clean every cycle.
        m = RulesModule("dut")
        a = m.reg("a", 8, init=1, signed=False)
        b = m.reg("b", 8, init=2, signed=False)
        r1 = m.rule("put_a")
        r1.write(a, b)
        r2 = m.rule("put_b")
        r2.write(b, a)
        top, _ = m.compile()
        sim = Simulator(top)
        sim.step()
        assert (sim.peek("a").uint, sim.peek("b").uint) == (2, 1)
        sim.step()
        assert (sim.peek("a").uint, sim.peek("b").uint) == (1, 2)

    def test_pessimistic_mode_adds_guard_conflicts(self):
        def build(mode):
            m = RulesModule("dut")
            flag = m.reg("flag", 1, signed=False)
            other = m.reg("other", 8, signed=False)
            writer = m.rule("writer")
            writer.write(flag, ~flag)
            reader = m.rule("reader", guard=Sig(flag.expr, False))
            reader.write(other, 5)
            return m.compile(SchedulerOptions(conflict_mode=mode))[1]

        exact = build("exact")
        pessimistic = build("pessimistic")
        assert exact.conflict_free("writer", "reader")
        assert not pessimistic.conflict_free("writer", "reader")

    def test_urgency_permutation_preserves_conflicting_order(self):
        m = RulesModule("dut")
        shared = m.reg("shared", 8, signed=False)
        first = m.rule("first")
        first.write(shared, 1)
        second = m.rule("second")
        second.write(shared, 2)
        _top, schedule = m.compile(SchedulerOptions(urgency_seed=5))
        assert schedule.order.index("first") < schedule.order.index("second")

    def test_write_to_non_register_rejected(self):
        m = RulesModule("dut")
        x = m.input("x", 4)
        rule = m.rule("r")
        with pytest.raises(FrontendError):
            rule.write(x, 1)

    def test_double_compile_rejected(self):
        m = make_counter_rules()
        m.compile()
        with pytest.raises(FrontendError):
            m.compile()

    def test_bad_conflict_mode_rejected(self):
        with pytest.raises(FrontendError):
            SchedulerOptions(conflict_mode="magic")

    def test_unwritten_register_holds_value(self):
        m = RulesModule("dut")
        ghost = m.reg("ghost", 8, init=42, signed=False)
        m.output("ghost", ghost)
        r = m.rule("noop")
        r.write(m.reg("other", 1, signed=False), 1)
        top, _ = m.compile()
        sim = Simulator(top)
        sim.step(3)
        assert sim.peek("ghost").uint == 42


class TestBsvDesigns:
    def test_initial_bit_exact(self):
        result = verify_design(bsv_initial(), n_matrices=5)
        assert result.bit_exact

    def test_initial_timing_phased_fsm(self):
        # load(8) + rowpass(1) + colpass(1), drain overlapping next load.
        result = verify_design(bsv_initial(), n_matrices=5)
        assert result.periodicity == 10
        assert result.latency == 19

    def test_opt_bit_exact_with_period_9_bubble(self):
        # The paper's headline BSV observation: periodicity 9, latency 26.
        result = verify_design(bsv_opt(), n_matrices=6)
        assert result.bit_exact
        assert result.periodicity == 9
        assert result.latency == 26

    def test_opt_backpressure(self):
        design = bsv_opt()
        harness = StreamHarness(Simulator(design.top), design.spec)
        mats = random_matrices(3, seed=11)
        outs, _ = harness.run_matrices(mats, ready_pattern=every(3))
        assert outs == [chen_wang_idct(m) for m in mats]

    def test_initial_backpressure(self):
        design = bsv_initial()
        harness = StreamHarness(Simulator(design.top), design.spec)
        mats = random_matrices(2, seed=13)
        outs, _ = harness.run_matrices(mats, ready_pattern=every(2),
                                       valid_pattern=every(2))
        assert outs == [chen_wang_idct(m) for m in mats]

    def test_initial_area_close_to_verilog_initial(self):
        # The paper: BSV initial area is 97.2% of the Verilog initial.
        from repro.frontends.vlog import verilog_initial

        bsv = synthesize(elaborate(bsv_initial().top), max_dsp=0)
        verilog = synthesize(elaborate(verilog_initial().top), max_dsp=0)
        assert 0.8 <= bsv.area / verilog.area <= 1.1

    def test_opt_slightly_worse_than_verilog_opt(self):
        # The paper: BSV opt performance 80.2%, area 107.1% of Verilog opt.
        from repro.frontends.vlog import verilog_opt

        bsv_r = verify_design(bsv_opt(), n_matrices=5)
        v_r = verify_design(verilog_opt(), n_matrices=5)
        bsv_s = synthesize(elaborate(bsv_opt().top), max_dsp=0)
        v_s = synthesize(elaborate(verilog_opt().top), max_dsp=0)
        bsv_p = bsv_s.fmax_mhz / bsv_r.periodicity
        v_p = v_s.fmax_mhz / v_r.periodicity
        assert bsv_p < v_p  # the bubble costs throughput
        assert bsv_s.area > v_s.area

    def test_schedule_attached_to_design(self):
        design = bsv_opt()
        schedule = design.meta["schedule"]
        assert "accept" in schedule.order
        assert not schedule.conflict_free("accept", "start_cols")


class TestBscSweep:
    def test_sweep_has_26_configurations(self):
        designs = bsc_sweep()
        assert len(designs) == 26
        assert len({d.config for d in designs}) == 26

    def test_sweep_settings_have_negligible_impact(self):
        # The paper: "the settings have a negligible impact on the
        # performance and area".  Check a sample of the sweep.
        sample = [bsv_opt()] + bsc_sweep()[11:15]
        areas, periods = [], []
        for design in sample:
            result = verify_design(design, n_matrices=4)
            assert result.bit_exact
            report = synthesize(elaborate(design.top), max_dsp=0)
            areas.append(report.area)
            periods.append(result.periodicity)
        assert max(areas) / min(areas) < 1.1
        assert max(periods) - min(periods) <= 1
