"""Tests for the report writer plus cross-cutting robustness checks."""

import pytest

from repro.backends import emit_dot, emit_verilog
from repro.eval import generate_table2
from repro.eval.report import table2_markdown, write_markdown_report
from repro.rtl import elaborate
from repro.sim import Simulator, VcdTracer


class TestReport:
    @pytest.fixture(scope="class")
    def table(self):
        return generate_table2(tools=["Verilog/Vivado", "BSV/BSC"])

    def test_markdown_table_structure(self, table):
        text = table2_markdown(table)
        lines = text.strip().splitlines()
        assert lines[0].startswith("| tool |")
        # header + separator + 2 tools x 2 configs
        assert len(lines) == 2 + 4
        assert all(line.count("|") == lines[0].count("|") for line in lines)

    def test_full_report(self, table, tmp_path):
        path = tmp_path / "report.md"
        text = write_markdown_report(table, str(path))
        assert path.read_text() == text
        assert "# HLS vs HC evaluation report" in text
        assert "Table I" in text and "Table II" in text
        assert "scheduling bubble" in text  # the BSV note

    def test_notes_flag_bubble(self, table):
        text = write_markdown_report(table)
        assert "BSV/BSC" in text


class TestBackendsOnRealDesigns:
    def test_verilog_emission_of_every_frontend(self):
        from repro.frontends.hc import chisel_opt
        from repro.frontends.maxj import maxj_opt
        from repro.frontends.rules import bsv_opt
        from repro.frontends.chls import vivado_opt

        for factory in (chisel_opt, bsv_opt, maxj_opt, vivado_opt):
            design = factory()
            text = emit_verilog(elaborate(design.top))
            assert text.startswith("module ")
            assert text.rstrip().endswith("endmodule")
            assert "always @(posedge clk)" in text

    def test_dot_emission_scales(self):
        from repro.frontends.vlog import verilog_opt

        text = emit_dot(elaborate(verilog_opt().top))
        assert text.startswith("digraph")
        assert text.count("->") > 100


class TestVcdOnRealDesign:
    def test_stream_run_produces_waveform(self, tmp_path):
        from repro.axis import StreamHarness
        from repro.eval.verify import random_matrices
        from repro.frontends.vlog import verilog_opt

        design = verilog_opt()
        sim = Simulator(design.top)
        tracer = VcdTracer(sim)  # traces the AXI interface by default
        harness = StreamHarness(sim, design.spec)
        harness.run_matrices(random_matrices(2, seed=17))
        text = tracer.render()
        assert "$enddefinitions" in text
        assert text.count("#") > 20  # many timesteps recorded
        path = tmp_path / "idct.vcd"
        tracer.save(str(path))
        assert path.stat().st_size > 1000
