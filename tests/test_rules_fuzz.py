"""Property fuzzing of the rule scheduler against a reference executor.

Hypothesis generates random rule systems (registers, guards, writes); the
compiled hardware is compared cycle-by-cycle against a direct Python
executor of the one-rule-at-a-time-with-concurrency semantics:

* a rule is *ready* when its guard holds on pre-cycle state;
* rules fire in urgency order; a ready rule is blocked only by an
  already-firing conflicting rule;
* all firing rules read pre-cycle state; writes commit together, the most
  urgent writer winning each register.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontends.hc.dsl import Sig, lit, mux
from repro.frontends.rules import RulesModule, SchedulerOptions
from repro.sim import Simulator

WIDTH = 6
MASK = (1 << WIDTH) - 1


@st.composite
def rule_system(draw):
    n_regs = draw(st.integers(1, 4))
    n_rules = draw(st.integers(1, 5))
    rules = []
    for _ in range(n_rules):
        guard_reg = draw(st.integers(0, n_regs - 1))
        guard_kind = draw(st.sampled_from(["lt", "bit", "always"]))
        guard_val = draw(st.integers(0, MASK))
        writes = []
        used_targets: set[int] = set()
        for _ in range(draw(st.integers(1, 2))):
            target = draw(st.integers(0, n_regs - 1))
            if target in used_targets:
                continue  # one write per register per rule (BSV atomicity)
            used_targets.add(target)
            source = draw(st.integers(0, n_regs - 1))
            addend = draw(st.integers(0, 7))
            writes.append((target, source, addend))
        rules.append(dict(guard_reg=guard_reg, guard_kind=guard_kind,
                          guard_val=guard_val, writes=writes))
    inits = [draw(st.integers(0, MASK)) for _ in range(n_regs)]
    mode = draw(st.sampled_from(["exact", "pessimistic"]))
    return dict(n_regs=n_regs, rules=rules, inits=inits, mode=mode)


def build_hardware(system):
    m = RulesModule("fuzz")
    regs = [m.reg(f"r{i}", WIDTH, init=system["inits"][i], signed=False)
            for i in range(system["n_regs"])]
    for i, spec in enumerate(system["rules"]):
        guard_sig = regs[spec["guard_reg"]]
        if spec["guard_kind"] == "lt":
            guard = guard_sig < lit(spec["guard_val"], WIDTH, False)
        elif spec["guard_kind"] == "bit":
            guard = guard_sig.bits(0, 0).eq(1)
        else:
            guard = None
        rule = m.rule(f"rule{i}", guard=guard)
        for target, source, addend in spec["writes"]:
            value = Sig((regs[source] + addend).resize(WIDTH).expr, False)
            rule.write(regs[target], value)
    for i, reg in enumerate(regs):
        m.output(f"out{i}", reg)
    options = SchedulerOptions(conflict_mode=system["mode"])
    top, schedule = m.compile(options)
    return top, schedule


def reference_step(system, state):
    """One cycle of the scheduler semantics in plain Python."""
    rules = system["rules"]

    def ready(spec):
        value = state[spec["guard_reg"]]
        if spec["guard_kind"] == "lt":
            return value < spec["guard_val"]
        if spec["guard_kind"] == "bit":
            return value & 1 == 1
        return True

    def write_targets(spec):
        return {t for t, _s, _a in spec["writes"]}

    def guard_reads(spec):
        return {spec["guard_reg"]} if spec["guard_kind"] != "always" else set()

    def conflicts(a, b):
        if write_targets(a) & write_targets(b):
            return True
        if system["mode"] == "pessimistic":
            if write_targets(a) & guard_reads(b):
                return True
            if write_targets(b) & guard_reads(a):
                return True
        return False

    firing = []
    for spec in rules:
        if not ready(spec):
            continue
        if any(conflicts(spec, other) for other in firing):
            continue
        firing.append(spec)

    new_state = list(state)
    # Most urgent writer wins: apply in reverse urgency so earlier rules
    # overwrite later ones.
    for spec in reversed(firing):
        for target, source, addend in spec["writes"]:
            new_state[target] = (state[source] + addend) & MASK
    return new_state


@given(rule_system())
@settings(max_examples=40, deadline=None)
def test_scheduler_matches_reference_semantics(system):
    top, _schedule = build_hardware(system)
    sim = Simulator(top)
    state = list(system["inits"])
    for _cycle in range(12):
        got = [sim.peek_int(f"out{i}") for i in range(system["n_regs"])]
        assert got == state
        sim.step()
        state = reference_step(system, state)


@given(rule_system())
@settings(max_examples=25, deadline=None)
def test_conflicting_rules_never_fire_together(system):
    top, schedule = build_hardware(system)
    sim = Simulator(top)
    conflict_pairs = set(schedule.conflicts)
    for _cycle in range(10):
        firing = {name for name, wf in schedule.will_fire.items()
                  if sim.peek_int(wf.name)}
        for a, b in conflict_pairs:
            assert not (a in firing and b in firing)
        sim.step()
