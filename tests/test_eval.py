"""Tests for the evaluation harness: LOC, metrics, Table I/II, Fig. 1."""

import pytest

from repro.eval import (
    TOOL_TABLE,
    count_loc,
    delta_loc,
    design_loc,
    generate_table1,
    generate_table2,
    measure_design,
    render_table1,
    render_table2,
)
from repro.eval.experiments import PAIRS, generate_fig1, render_fig1
from repro.frontends.base import Design, SourceArtifact


class TestLoc:
    def test_counts_code_lines(self):
        assert count_loc("int a;\nint b;\n") == 2

    def test_blank_and_comment_lines_skipped(self):
        text = """
        // comment
        int a;   // trailing

        /* block
           comment */
        int b;
        """
        assert count_loc(text) == 2

    def test_pragmas_count_as_settings(self):
        text = "#pragma HLS PIPELINE\nint a;\n# plain comment\n"
        assert count_loc(text) == 2

    def test_python_docstrings_stripped(self):
        text = '''def f():
    """A docstring
    spanning lines."""
    return 1
'''
        assert count_loc(text) == 2

    def test_delta_loc_counts_changes(self):
        def make(lines):
            d = Design(name="d", language="x", tool="t", config="c",
                       top=None, spec=None,
                       sources=[SourceArtifact("s", "\n".join(lines))])
            return d

        a = make(["one;", "two;", "three;"])
        b = make(["one;", "changed;", "three;", "four;"])
        assert delta_loc(a, b) == 3  # one replaced (2) + one added (1)


class TestTable1:
    def test_seven_rows(self):
        assert len(generate_table1()) == 7

    def test_matches_paper_classification(self):
        by_tool = {e.tool: e for e in TOOL_TABLE}
        assert by_tool["Vivado"].tool_type == "LS/PR"
        assert by_tool["Chisel"].tool_type == "HC"
        assert by_tool["BSC"].tool_type == "HC"
        assert by_tool["XLS"].tool_type == "HLS"
        assert by_tool["MaxCompiler"].openness == "Commercial"
        assert by_tool["Bambu"].openness == "Open-source"

    def test_render(self):
        text = render_table1()
        assert "Verilog" in text and "MaxCompiler" in text


class TestMeasurement:
    def test_measure_verilog_opt(self):
        from repro.frontends.vlog import verilog_opt

        measured = measure_design(verilog_opt())
        assert measured.bit_exact
        assert measured.periodicity == 8
        assert measured.area == measured.lut_star + measured.ff_star
        assert measured.quality > 0
        assert measured.loc > 0

    def test_measure_is_cached(self):
        from repro.frontends.vlog import verilog_opt

        first = measure_design(verilog_opt())
        second = measure_design(verilog_opt())
        assert first is second

    def test_measure_maxj_uses_manager(self):
        from repro.frontends.maxj import maxj_initial

        measured = measure_design(maxj_initial())
        assert measured.n_io == 59  # PCIe pins, as the paper reports
        assert measured.extra["bound"] == "link"


class TestTable2:
    @pytest.fixture(scope="class")
    def table(self):
        return generate_table2()

    def test_all_seven_tools_present(self, table):
        assert set(table.columns) == set(PAIRS)

    def test_verilog_is_the_baseline(self, table):
        verilog = table.column("Verilog/Vivado")
        assert verilog.automation_initial == 0.0
        assert verilog.automation_opt == 0.0
        assert verilog.controllability == pytest.approx(100.0)

    def test_all_designs_bit_exact(self, table):
        for column in table.columns.values():
            assert column.initial.bit_exact, column.key
            assert column.optimized.bit_exact, column.key

    def test_optimization_always_improves_quality(self, table):
        for column in table.columns.values():
            assert column.optimized.quality > column.initial.quality, column.key

    def test_shape_maxj_highest_throughput(self, table):
        # The paper: MaxJ (PCIe) dwarfs the AXI-Stream designs.
        maxj = table.column("MaxJ/MaxCompiler")
        others = [c for k, c in table.columns.items() if k != "MaxJ/MaxCompiler"]
        assert maxj.initial.throughput_mops > max(
            c.initial.throughput_mops for c in others
        )

    def test_shape_c_tools_slowest(self, table):
        # Sequential memory-bound HLS: periodicity in the hundreds.
        for key in ("C/Bambu", "C/Vivado HLS"):
            assert table.column(key).initial.periodicity > 100

    def test_shape_bambu_least_controllable(self, table):
        # The paper's C_Q ordering: Bambu is far behind everything else.
        bambu = table.column("C/Bambu").controllability
        for key, column in table.columns.items():
            if key != "C/Bambu":
                assert column.controllability > bambu

    def test_shape_hc_tools_near_verilog(self, table):
        # Chisel and BSV track hand-written Verilog within tens of percent.
        for key in ("Chisel/Chisel", "BSV/BSC"):
            assert 60 <= table.column(key).controllability <= 120

    def test_shape_xls_controllability_low(self, table):
        # The paper: 38.3% (deep pipelines can't beat the adapter bound).
        xls = table.column("DSLX/XLS").controllability
        assert 25 <= xls <= 60

    def test_bsv_bubble_in_periodicity(self, table):
        assert table.column("BSV/BSC").optimized.periodicity == 9

    def test_xls_flexibility_highest_among_hls(self, table):
        # One-knob DSE: tiny dL for a large quality change.
        xls = table.column("DSLX/XLS")
        bambu = table.column("C/Bambu")
        assert xls.delta_loc < 20
        assert xls.flexibility > bambu.flexibility

    def test_render_contains_all_rows(self, table):
        text = render_table2(table)
        for label in ("LOC", "Automation", "Quality", "Controllability",
                      "Flexibility", "Frequency", "Throughput", "Latency",
                      "Periodicity", "N_DSP", "N_IO"):
            assert label in text

    def test_dsp_inference_differentiates_starred_area(self, table):
        verilog = table.column("Verilog/Vivado")
        assert verilog.initial.dsp > 50       # paper: 160
        assert verilog.initial.lut < verilog.initial.lut_star


class TestFig1:
    def test_small_sweep(self):
        series = generate_fig1(bsc_configs=2, bambu_configs=2, xls_stages=2)
        by_tool = {s.tool: s for s in series}
        assert len(by_tool["XLS"].points) == 3  # comb + 2 stages
        assert len(by_tool["Vivado"].points) == 3
        assert len(by_tool["MaxCompiler"].points) == 2
        text = render_fig1(series)
        assert "MOPS" in text

    def test_xls_sweep_monotone_area(self):
        series = generate_fig1(bsc_configs=0, bambu_configs=0, xls_stages=4)
        xls = next(s for s in series if s.tool == "XLS")
        areas = [a for _c, _p, a in xls.points]
        assert areas[-1] > areas[0]  # deeper pipeline, more area
