"""Tests for the Verilog-baseline frontend: units, kernels, system designs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axis import StreamHarness, every
from repro.eval.verify import random_matrices, verify_design
from repro.frontends.vlog import (
    idct_col_unit,
    idct_row_unit,
    verilog_initial,
    verilog_opt,
    verilog_opt1,
)
from repro.frontends.vlog.units import MID_WIDTH
from repro.idct import chen_wang_idct, idct_col, idct_row
from repro.rtl import elaborate
from repro.sim import Simulator
from repro.synth import synthesize

coeff12 = st.integers(-2048, 2047)


def pack(values, width):
    word = 0
    for i, v in enumerate(values):
        word |= (v & ((1 << width) - 1)) << (i * width)
    return word


def unpack(word, count, width):
    out = []
    for i in range(count):
        raw = (word >> (i * width)) & ((1 << width) - 1)
        if raw >> (width - 1):
            raw -= 1 << width
        out.append(raw)
    return out


class TestRowUnit:
    @given(st.lists(coeff12, min_size=8, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_bit_exact_vs_golden(self, row):
        sim = Simulator(idct_row_unit())
        sim.poke("blk", pack(row, 12))
        got = unpack(sim.peek_int("res"), 8, MID_WIDTH)
        assert got == idct_row(row)

    def test_dc_row(self):
        sim = Simulator(idct_row_unit())
        sim.poke("blk", pack([100, 0, 0, 0, 0, 0, 0, 0], 12))
        assert unpack(sim.peek_int("res"), 8, MID_WIDTH) == [800] * 8


class TestColUnit:
    # Column inputs are bounded by what the row stage can produce for
    # IEEE-1180-conditioned inputs (|v| <~ 29k); beyond that the ISO
    # algorithm itself overflows 32-bit C arithmetic, so the golden model
    # and any faithful 32-bit implementation only agree inside this
    # envelope (the only stimuli the paper's flow uses).
    @given(st.lists(st.integers(-29000, 29000), min_size=8, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_bit_exact_vs_golden(self, col):
        sim = Simulator(idct_col_unit())
        sim.poke("blk", pack(col, MID_WIDTH))
        got = unpack(sim.peek_int("res"), 8, 9)
        assert got == idct_col(col)

    def test_clipping_saturates(self):
        sim = Simulator(idct_col_unit())
        sim.poke("blk", pack([1 << 17, 0, 0, 0, 0, 0, 0, 0], MID_WIDTH))
        out = unpack(sim.peek_int("res"), 8, 9)
        assert all(v == 255 for v in out)
        sim.poke("blk", pack([-(1 << 17), 0, 0, 0, 0, 0, 0, 0], MID_WIDTH))
        out = unpack(sim.peek_int("res"), 8, 9)
        assert all(v == -256 for v in out)


class TestSystemDesigns:
    @pytest.mark.parametrize("factory,latency,period", [
        (verilog_initial, 17, 8),
        (verilog_opt1, 18, 8),
        (verilog_opt, 25, 8),
    ])
    def test_bit_exact_and_timing(self, factory, latency, period):
        design = factory()
        result = verify_design(design, n_matrices=5)
        assert result.bit_exact
        assert result.latency == latency
        assert result.periodicity == period

    def test_opt_handles_backpressure(self):
        design = verilog_opt()
        harness = StreamHarness(Simulator(design.top), design.spec)
        mats = random_matrices(3, seed=5)
        outs, _ = harness.run_matrices(mats, ready_pattern=every(3))
        assert outs == [chen_wang_idct(m) for m in mats]

    def test_opt_handles_slow_source(self):
        design = verilog_opt()
        harness = StreamHarness(Simulator(design.top), design.spec)
        mats = random_matrices(2, seed=9)
        outs, _ = harness.run_matrices(mats, valid_pattern=every(2))
        assert outs == [chen_wang_idct(m) for m in mats]

    def test_optimization_shrinks_area_and_raises_fmax(self):
        # The paper's §IV Verilog narrative: the optimized design roughly
        # doubles the frequency and cuts the area severalfold.
        initial = synthesize(elaborate(verilog_initial().top), max_dsp=0)
        opt = synthesize(elaborate(verilog_opt().top), max_dsp=0)
        assert opt.fmax_mhz > 1.4 * initial.fmax_mhz
        assert initial.area > 2.5 * opt.area

    def test_opt1_sits_between(self):
        initial = synthesize(elaborate(verilog_initial().top), max_dsp=0)
        opt1 = synthesize(elaborate(verilog_opt1().top), max_dsp=0)
        opt = synthesize(elaborate(verilog_opt().top), max_dsp=0)
        assert opt.area < opt1.area < initial.area

    def test_design_records_sources(self):
        design = verilog_initial()
        labels = [s.label for s in design.sources]
        assert "idct_row.v" in labels
        assert "idct_col.v" in labels
        assert any("axis" in label for label in labels)

    def test_metadata(self):
        design = verilog_opt()
        assert design.language == "Verilog"
        assert design.tool == "Vivado"
        assert design.is_optimized
