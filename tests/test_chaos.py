"""Tests for ``repro.chaos`` and the crash-safe machinery it attacks:
seeded policy determinism, cache checksum/quarantine integrity, worker
supervision under real SIGKILLs, the durable job journal, and the
evaluator circuit breaker."""

import json
import os
import time

import pytest

from repro import obs
from repro.api import Session, UsageError
from repro.cache import ArtifactCache, split_footer
from repro.cache.store import seal
from repro.chaos import ChaosPolicy, activate, parse_chaos_spec
from repro.chaos.scenarios import check_invariant
from repro.core.errors import EvaluationError, WorkerCrashError
from repro.eval.experiments import render_fig1
from repro.eval.measure import clear_measure_cache
from repro.obs import metrics as obs_metrics
from repro.serve.breaker import CircuitBreaker
from repro.serve.jobs import JobManager

#: Small enough for CI, large enough to shard across two workers.
SMALL_FIG1 = {"bsc_configs": 0, "bambu_configs": 1, "xls_stages": 1}


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.clear()
    yield
    obs.disable()
    obs.clear()


def _fig1_text(session) -> str:
    clear_measure_cache()
    return render_fig1(session.fig1(**SMALL_FIG1))


@pytest.fixture(scope="module")
def clean_fig1() -> str:
    """The chaos-free serial baseline every invariant check compares to."""
    clear_measure_cache()
    return render_fig1(Session(jobs=1).fig1(**SMALL_FIG1))


# ---------------------------------------------------------------------------
# policy determinism and the --chaos spec grammar
# ---------------------------------------------------------------------------
class TestChaosPolicy:
    def test_decisions_are_deterministic_per_seed(self):
        ids = [f"fig1:XLS:{i}" for i in range(40)]
        a = [ChaosPolicy(seed=5, kill=0.5).should_kill(t, 0) for t in ids]
        b = [ChaosPolicy(seed=5, kill=0.5).should_kill(t, 0) for t in ids]
        c = [ChaosPolicy(seed=6, kill=0.5).should_kill(t, 0) for t in ids]
        assert a == b
        assert a != c  # a different seed dooms different tasks
        assert any(a) and not all(a)  # 0.5 is neither never nor always

    def test_kill_is_first_attempt_only_poison_is_every_attempt(self):
        kill = ChaosPolicy(seed=1, kill=1.0)
        assert kill.should_kill("t:k:0", 0)
        assert not kill.should_kill("t:k:0", 1)
        poison = ChaosPolicy(seed=1, poison=1.0)
        assert all(poison.should_kill("t:k:0", n) for n in range(4))

    def test_targets_select_by_task_id_substring(self):
        policy = ChaosPolicy(kill_targets=("XLS:1",),
                             poison_targets=("Bambu",))
        assert policy.should_kill("fig1:XLS:1", 0)
        assert not policy.should_kill("fig1:XLS:1", 1)   # kill-once
        assert not policy.should_kill("fig1:XLS:0", 0)
        assert policy.should_kill("fig1:Bambu:3", 5)     # poison: always

    def test_corrupt_bytes_rots_deterministically(self):
        blob = seal(b'{"x": 1}' * 8)
        rot = ChaosPolicy(seed=2, corrupt=1.0)
        rotten = rot.corrupt_bytes("cache:k", blob)
        assert rotten != blob
        assert rotten == ChaosPolicy(seed=2, corrupt=1.0).corrupt_bytes(
            "cache:k", blob)
        assert split_footer(rotten) is None  # verification must catch it
        assert ChaosPolicy(seed=2).corrupt_bytes("cache:k", blob) == blob

    def test_evaluator_fault_raises_and_recovers(self):
        policy = ChaosPolicy(seed=1, flaky=1.0)
        with pytest.raises(EvaluationError):
            policy.evaluator_fault("d:model")
        # A fractional rate draws per *call*, not per key: one endpoint
        # both fails and recovers over its lifetime.
        partial = ChaosPolicy(seed=1, flaky=0.5)
        outcomes = set()
        for _ in range(64):
            try:
                partial.evaluator_fault("d:model")
                outcomes.add("ok")
            except EvaluationError:
                outcomes.add("fault")
        assert outcomes == {"ok", "fault"}

    def test_spec_round_trip(self):
        policy = parse_chaos_spec(
            "seed=7, kill=0.5, poison=@Bambu, corrupt=1, latency=0.25")
        assert policy.seed == 7
        assert policy.kill == 0.5
        assert policy.poison_targets == ("Bambu",)
        assert policy.corrupt == 1.0
        assert policy.latency_s == 0.25

    @pytest.mark.parametrize("spec", [
        "kill",                # no '='
        "frob=1",              # unknown key
        "kill=high",           # not a number
        "kill=1.5",            # probability out of range
        "corrupt=@xls",        # @target only for kill/poison
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_chaos_spec(spec)

    def test_session_maps_bad_spec_to_usage_error(self):
        with pytest.raises(UsageError):
            Session(chaos="kill=2.0")


# ---------------------------------------------------------------------------
# cache integrity: checksum footer, quarantine, truncated pickles
# ---------------------------------------------------------------------------
class TestCacheIntegrity:
    KEY = "ab" + "0" * 62

    def test_footer_round_trip_and_tamper_detection(self):
        blob = seal(b'{"ok": true}')
        assert split_footer(blob) == b'{"ok": true}'
        assert split_footer(blob[:-5]) is None            # truncated
        flipped = bytes([blob[3] ^ 1])
        assert split_footer(blob[:3] + flipped + blob[4:]) is None
        assert split_footer(b"no footer at all") is None

    def test_truncated_pickle_is_a_quarantined_miss(self, tmp_path):
        # Regression: a half-written pickle used to crash the sweep with
        # an unhandled UnpicklingError instead of falling back to a miss.
        cache = ArtifactCache(tmp_path / "c")
        cache.put_pickle("netlist", self.KEY, {"nested": [1, (2, 3)]})
        path = cache._path("netlist", self.KEY, "pkl")
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[:len(blob) // 2])
        assert cache.get_pickle("netlist", self.KEY) is None
        assert cache.stats["corrupt"] == 1
        assert not os.path.exists(path)
        assert len(list((tmp_path / "c" / "corrupt").iterdir())) == 1
        # The slot is reusable after quarantine.
        cache.put_pickle("netlist", self.KEY, {"fresh": True})
        assert cache.get_pickle("netlist", self.KEY) == {"fresh": True}

    def test_valid_checksum_but_unparsable_body_is_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        path = cache._path("measured", self.KEY, "json")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(seal(b"not json"))  # intact footer, broken body
        assert cache.get_json("measured", self.KEY) is None
        assert cache.stats["corrupt"] == 1

    def test_chaos_rot_on_write_is_caught_on_read(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        with activate(ChaosPolicy(seed=3, corrupt=1.0)):
            cache.put_json("measured", self.KEY, {"x": 1})
        assert cache.get_json("measured", self.KEY) is None  # never trusted
        assert cache.stats["corrupt"] == 1
        cache.put_json("measured", self.KEY, {"x": 1})  # chaos-free rewrite
        assert cache.get_json("measured", self.KEY) == {"x": 1}


# ---------------------------------------------------------------------------
# worker supervision under real SIGKILLs
# ---------------------------------------------------------------------------
class TestWorkerSupervision:
    def test_sigkilled_workers_recover_byte_identical(self, clean_fig1):
        """kill=1.0 SIGKILLs pool workers mid-sweep; supervision must
        re-dispatch every task and reproduce the serial output exactly."""
        session = Session(jobs=2, trace=True,
                          chaos=ChaosPolicy(seed=1, kill=1.0))
        try:
            chaotic = _fig1_text(session)
        finally:
            restarts = obs_metrics.counter("exec.worker_restarts").value
            session.close()
        assert chaotic == clean_fig1
        assert session.last_runner.stats["worker_restarts"] > 0
        assert restarts > 0
        assert session.last_runner.stats["poisoned"] == 0

    def test_poisoned_task_becomes_honest_failed_cell(self, clean_fig1):
        """A task that kills its worker on *every* attempt must end up as
        an explicit FAILED(WorkerCrashError) cell, not a wrong number."""
        session = Session(jobs=2, chaos="poison=@XLS:1")
        chaotic = _fig1_text(session)
        assert "FAILED(WorkerCrashError)" in chaotic
        assert check_invariant(clean_fig1, chaotic) == []
        assert session.last_runner.stats["poisoned"] == 1

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_invariant_holds_under_cache_rot(self, clean_fig1, tmp_path,
                                             seed):
        """Honest-failure invariant, parametrized over seeds: a sweep
        whose every cache artifact rots on disk never reports silently
        wrong numbers, and the rot is detected (cache.corrupt > 0) when
        the artifacts are read back."""
        root = tmp_path / "cache"
        cold = Session(jobs=1, cache=ArtifactCache(root),
                       chaos=ChaosPolicy(seed=seed, corrupt=1.0))
        assert check_invariant(clean_fig1, _fig1_text(cold)) == []
        warm = Session(jobs=1, cache=ArtifactCache(root), trace=True)
        try:
            assert check_invariant(clean_fig1, _fig1_text(warm)) == []
            assert warm.cache.stats["corrupt"] > 0
            assert obs_metrics.counter("cache.corrupt").value > 0
        finally:
            warm.close()


# ---------------------------------------------------------------------------
# durable job journal
# ---------------------------------------------------------------------------
class _StubSession:
    def summary_lines(self):
        return []


class _StubJobManager(JobManager):
    """JobManager with the sweep swapped out for an instant stub."""

    def __init__(self, *args, fail: bool = False, **kwargs):
        self.fail = fail
        super().__init__(_StubSession(), *args, **kwargs)

    def _execute(self, job):
        if self.fail:
            raise RuntimeError("stub failure")
        return f"output of {job.id}"


def _wait_terminal(manager, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = manager.get(job_id)
        if job is not None and job.status in ("done", "failed"):
            return job
        time.sleep(0.01)
    raise AssertionError(f"{job_id} never reached a terminal state")


class TestJobJournal:
    def test_lifecycle_is_journaled_and_replayed(self, tmp_path):
        journal = tmp_path / "jobs.jsonl"
        manager = _StubJobManager(journal=journal)
        job = manager.submit("fig1", {})
        _wait_terminal(manager, job.id)
        manager.drain()
        events = [json.loads(line)["event"]
                  for line in journal.read_text().splitlines()]
        assert events == ["submitted", "running", "done"]
        reborn = _StubJobManager(journal=journal)
        replayed = reborn.get(job.id)
        assert replayed.status == "done"
        assert replayed.output == f"output of {job.id}"
        assert not replayed.interrupted
        # Ids continue past the journal, never colliding with history.
        assert reborn.submit("fig1", {}).id == "job-2"
        reborn.drain()

    def test_crash_leaves_interrupted_jobs_resume_reruns_them(self, tmp_path):
        journal = tmp_path / "jobs.jsonl"
        # A journal as a SIGKILL'd server leaves it: one job mid-run, one
        # acknowledged but never started, and a torn final line.
        journal.write_text(
            '{"event": "submitted", "id": "job-1", "kind": "fig1", '
            '"params": {}}\n'
            '{"event": "running", "id": "job-1"}\n'
            '{"event": "submitted", "id": "job-2", "kind": "fig1", '
            '"params": {}}\n'
            '{"event": "runni')
        listed = _StubJobManager(journal=journal)
        assert [job.status for job in listed.list()] == ["interrupted"] * 2
        assert all(job.to_dict()["interrupted"] for job in listed.list())
        listed.drain()
        resumed = _StubJobManager(journal=journal, resume=True)
        for job_id in ("job-1", "job-2"):
            job = _wait_terminal(resumed, job_id)
            assert job.status == "done"
            assert job.to_dict()["interrupted"] is True  # honest history
        resumed.drain()

    def test_failed_jobs_replay_as_failed(self, tmp_path):
        journal = tmp_path / "jobs.jsonl"
        manager = _StubJobManager(journal=journal, fail=True)
        job = manager.submit("table2", {})
        assert _wait_terminal(manager, job.id).status == "failed"
        manager.drain()
        reborn = _StubJobManager(journal=journal)
        assert reborn.get(job.id).status == "failed"
        assert reborn.get(job.id).error == "stub failure"
        reborn.drain()

    def test_terminal_jobs_are_evicted_past_max_retained(self):
        manager = _StubJobManager(max_retained=2)
        ids = [manager.submit("fig1", {}).id for _ in range(5)]
        # The single worker thread runs them in submission order, so the
        # last job finishing means all five are terminal (or evicted).
        _wait_terminal(manager, ids[-1])
        manager.drain()
        retained = [job.id for job in manager.list() if job.id in ids]
        assert 1 <= len(retained) <= 2
        assert ids[0] not in retained  # oldest evicted first

    def test_ttl_evicts_old_terminal_jobs(self):
        manager = _StubJobManager(ttl_s=0.05)
        old = manager.submit("fig1", {})
        _wait_terminal(manager, old.id)
        time.sleep(0.1)
        fresh = manager.submit("fig1", {})
        _wait_terminal(manager, fresh.id)
        assert manager.get(old.id) is None
        manager.drain()

    def test_resumed_job_survives_eviction_sweep_mid_commit(self, tmp_path):
        """Regression: a --resume-jobs re-run must never be evicted by a
        TTL/max_retained sweep firing at the worst instant — while its
        terminal transition is being committed.  Resumed jobs carry the
        lowest ids, so the overflow rule used to pick them first, and
        the old commit order exposed status "done" before the journal
        record was durable or ``finished_at`` was set."""
        seen = []

        class _SweptDuringCommit(_StubJobManager):
            def _journal(self, event, **fields):
                if event == "done" and fields.get("id") == "job-1":
                    # A concurrent submission's prune, mid-commit.  With
                    # max_retained=0 it evicts every unprotected
                    # terminal job.
                    self._prune()
                    seen.append(self.get("job-1") is not None)
                super()._journal(event, **fields)

        journal = tmp_path / "jobs.jsonl"
        journal.write_text(
            '{"event": "submitted", "id": "job-1", "kind": "fig1", '
            '"params": {}}\n'
            '{"event": "running", "id": "job-1"}\n')
        manager = _SweptDuringCommit(journal=journal, resume=True,
                                     max_retained=0)
        # Hold a direct reference: once the commit completes the job is
        # legitimately evictable (max_retained=0), so manager.get() may
        # go None — but only *after* the terminal transition is durable.
        job = manager.get("job-1")
        assert job is not None
        deadline = time.monotonic() + 30.0
        while job.status != "done" and time.monotonic() < deadline:
            time.sleep(0.01)
        assert job.status == "done"
        manager.drain()
        assert seen == [True], \
            "resumed job was evicted mid-commit by the retention sweep"
        events = [json.loads(line)["event"]
                  for line in journal.read_text().splitlines()]
        assert events == ["submitted", "running", "resumed", "running",
                          "done"]

    def test_replayed_terminal_jobs_get_a_fresh_ttl_clock(self, tmp_path):
        """The journal records no wall-clock times, so TTL for replayed
        terminal jobs measures from recovery — a long-dead server's
        results must survive long enough to be read, not be swept by the
        first prune after restart."""
        journal = tmp_path / "jobs.jsonl"
        journal.write_text(
            '{"event": "submitted", "id": "job-1", "kind": "fig1", '
            '"params": {}}\n'
            '{"event": "running", "id": "job-1"}\n'
            '{"event": "done", "id": "job-1", "output": "x", '
            '"summary": []}\n')
        reborn = _StubJobManager(journal=journal, ttl_s=3600.0)
        job = reborn.get("job-1")
        assert job.status == "done"
        assert job.finished_at is not None
        with reborn._lock:
            reborn._prune()
        assert reborn.get("job-1") is not None
        reborn.drain()


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = [0.0]
        breaker = CircuitBreaker(clock=lambda: clock[0], **kwargs)
        return clock, breaker

    def test_full_cycle_closed_open_halfopen_closed(self):
        clock, breaker = self._breaker(threshold=2, cooldown_s=10.0)
        fault = EvaluationError("injected")
        assert breaker.admit() is None
        breaker.record_failure(fault)
        assert breaker.state == "closed"       # one below threshold
        assert breaker.admit() is None
        breaker.record_failure(fault)
        assert breaker.state == "open"
        retry = breaker.admit()
        assert retry is not None and retry == pytest.approx(10.0)
        clock[0] = 6.0
        assert breaker.admit() == pytest.approx(4.0)  # counts down
        clock[0] = 10.5
        assert breaker.admit() is None                # the half-open probe
        assert breaker.state == "half-open"
        assert breaker.admit() is not None            # concurrent: rejected
        breaker.record_failure(fault)                 # probe failed
        assert breaker.state == "open"
        clock[0] = 25.0
        assert breaker.admit() is None
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.admit() is None
        assert breaker.stats["opened"] == 2

    def test_success_resets_the_consecutive_count(self):
        _clock, breaker = self._breaker(threshold=2)
        fault = EvaluationError("injected")
        for _ in range(3):
            breaker.record_failure(fault)
            breaker.record_success()
        assert breaker.state == "closed"

    def test_only_repro_errors_count(self):
        _clock, breaker = self._breaker(threshold=1)
        for _ in range(5):
            breaker.record_failure(ValueError("client's fault"))
        assert breaker.state == "closed"
        breaker.record_failure(WorkerCrashError("evaluator's fault"))
        assert breaker.state == "open"

    def test_cancel_releases_an_unused_probe(self):
        clock, breaker = self._breaker(threshold=1, cooldown_s=10.0)
        breaker.record_failure(EvaluationError("injected"))
        clock[0] = 11.0
        assert breaker.admit() is None   # probe admitted...
        breaker.cancel()                 # ...but never ran (e.g. 429)
        assert breaker.admit() is None   # the slot is free again

    def test_probe_failing_with_client_error_releases_the_slot(self):
        # Regression: a half-open probe that failed with a *client* error
        # (not a ReproError) used to leak the probe slot — the breaker
        # stayed half-open but rejected every subsequent request forever.
        clock, breaker = self._breaker(threshold=1, cooldown_s=10.0)
        breaker.record_failure(EvaluationError("injected"))
        clock[0] = 11.0
        assert breaker.admit() is None           # probe admitted
        breaker.record_failure(ValueError("bad request rode the probe"))
        assert breaker.state == "half-open"      # client errors don't trip
        assert breaker.admit() is None           # next probe may proceed
