"""Tests for ``repro.cache``: content-addressed keys, the disk store,
and the measurement pipeline's disk-cache integration."""

import json
import os

from repro.cache import (
    ArtifactCache,
    activate,
    active,
    artifact_key,
    code_digest,
    split_footer,
)
from repro.cache.keys import _DIGEST_MEMO


def _scratch_tree(tmp_path, name, body):
    root = tmp_path / name
    (root / "pkg").mkdir(parents=True)
    (root / "pkg" / "mod.py").write_text(body)
    (root / "notes.txt").write_text("not code")
    return root


class TestCodeDigest:
    def test_deterministic_and_ignores_non_python(self, tmp_path):
        a = _scratch_tree(tmp_path, "a", "x = 1\n")
        first = code_digest(a)
        (a / "notes.txt").write_text("changed, but not .py")
        _DIGEST_MEMO.clear()
        assert code_digest(a) == first

    def test_code_edit_changes_digest(self, tmp_path):
        a = _scratch_tree(tmp_path, "a", "x = 1\n")
        before = code_digest(a)
        (a / "pkg" / "mod.py").write_text("x = 2\n")
        _DIGEST_MEMO.clear()
        assert code_digest(a) != before

    def test_memoized_per_root(self, tmp_path):
        a = _scratch_tree(tmp_path, "a", "x = 1\n")
        first = code_digest(a)
        # A later edit is invisible until the memo is dropped — the digest
        # is a per-process snapshot of the tree at first use.
        (a / "pkg" / "mod.py").write_text("x = 3\n")
        assert code_digest(a) == first

    def test_default_root_is_the_repro_package(self):
        import repro

        expected = os.path.dirname(os.path.abspath(repro.__file__))
        digest = code_digest()
        assert digest == _DIGEST_MEMO[expected]


class TestArtifactKey:
    def test_varies_with_every_ingredient(self, tmp_path):
        a = _scratch_tree(tmp_path, "a", "x = 1\n")
        base = artifact_key("measured", "d1", "opt", root=a, n=4)
        assert artifact_key("netlist", "d1", "opt", root=a, n=4) != base
        assert artifact_key("measured", "d2", "opt", root=a, n=4) != base
        assert artifact_key("measured", "d1", "initial", root=a, n=4) != base
        assert artifact_key("measured", "d1", "opt", root=a, n=8) != base
        assert artifact_key("measured", "d1", "opt", root=a, n=4) == base

    def test_invalidated_by_code_change(self, tmp_path):
        a = _scratch_tree(tmp_path, "a", "x = 1\n")
        before = artifact_key("measured", "d1", "opt", root=a)
        (a / "pkg" / "mod.py").write_text("x = 2\n")
        _DIGEST_MEMO.clear()
        assert artifact_key("measured", "d1", "opt", root=a) != before

    def test_param_order_is_irrelevant(self, tmp_path):
        a = _scratch_tree(tmp_path, "a", "x = 1\n")
        assert (artifact_key("p", "d", "c", root=a, n=4, engine="interp")
                == artifact_key("p", "d", "c", root=a, engine="interp", n=4))


class TestArtifactCache:
    def test_json_round_trip_and_stats(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        key = "ab" + "0" * 62
        assert cache.get_json("measured", key) is None
        cache.put_json("measured", key, {"x": 1.5, "y": "z"})
        assert cache.get_json("measured", key) == {"x": 1.5, "y": "z"}
        assert cache.stats == {"hits": 1, "misses": 1, "puts": 1,
                               "errors": 0, "corrupt": 0}

    def test_pickle_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        key = "cd" + "0" * 62
        assert cache.get_pickle("netlist", key) is None
        assert cache.put_pickle("netlist", key, {"nested": [1, (2, 3)]})
        assert cache.get_pickle("netlist", key) == {"nested": [1, (2, 3)]}

    def test_unpicklable_payload_is_skipped(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        assert not cache.put_pickle("netlist", "ef" + "0" * 62,
                                    lambda: None)  # locals don't pickle
        assert cache.stats["errors"] == 1 and cache.stats["puts"] == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        key = "12" + "0" * 62
        cache.put_json("measured", key, {"ok": True})
        path = cache._path("measured", key, "json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{truncated")
        assert cache.get_json("measured", key) is None
        assert cache.stats["errors"] == 1
        # The rotted artifact was quarantined, not left in place: the next
        # lookup is a clean miss and the original bytes are preserved for
        # forensics under corrupt/.
        assert not os.path.exists(path)
        quarantined = list((tmp_path / "c" / "corrupt").iterdir())
        assert len(quarantined) == 1
        assert cache.stats["corrupt"] == 1

    def test_merge_stats_and_summary(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        assert cache.summary() is None
        cache.merge_stats({"hits": 3, "misses": 1, "puts": 1})
        assert cache.stats["hits"] == 3
        assert "3 hits, 1 misses, 1 puts" in cache.summary()

    def test_activate_scopes_the_process_hook(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c")
        assert active() is None
        with activate(cache) as handle:
            assert handle is cache and active() is cache
        assert active() is None


class TestConcurrentWriters:
    def test_two_processes_same_key_leave_one_valid_artifact(self, tmp_path):
        """Two processes hammering the same key concurrently must end with
        exactly one artifact that parses as one writer's complete payload
        (atomic temp+rename, never an interleaving) and no temp litter."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        root = tmp_path / "c"
        key = "aa" + "0" * 62
        barrier = ctx.Barrier(2)

        def hammer(writer_id):
            cache = ArtifactCache(root)
            barrier.wait()
            for i in range(200):
                cache.put_json("measured", key,
                               {"writer": writer_id, "iteration": i})

        procs = [ctx.Process(target=hammer, args=(w,)) for w in (0, 1)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0

        files = sorted((root / "measured").rglob("*"))
        artifacts = [f for f in files if f.suffix == ".json"]
        litter = [f for f in files if f.is_file() and f.suffix != ".json"]
        assert len(artifacts) == 1
        assert litter == []  # every temp file was renamed or unlinked
        body = split_footer(artifacts[0].read_bytes())
        assert body is not None  # checksum footer intact => not torn
        payload = json.loads(body)
        assert payload["writer"] in (0, 1)
        assert payload["iteration"] == 199  # a complete final write


class TestMeasureDiskCache:
    def test_measure_design_hits_disk_across_processes_sim(self, tmp_path):
        # Two "cold-process" measurements (in-memory cache cleared between)
        # against the same disk cache: the second must be a pure disk hit
        # and produce an identical result.
        from repro.cli import _find_design
        from repro.eval.measure import clear_measure_cache, measure_design

        design, _ = _find_design("verilog-initial")
        cache = ArtifactCache(tmp_path / "c")
        clear_measure_cache()
        with activate(cache):
            first = measure_design(design, n_matrices=2)
        puts_after_first = cache.stats["puts"]
        assert puts_after_first > 0

        clear_measure_cache()
        with activate(cache):
            second = measure_design(design, n_matrices=2)
        assert cache.stats["hits"] > 0
        assert cache.stats["puts"] == puts_after_first  # nothing re-measured
        assert second.to_dict() == first.to_dict()

    def test_parameter_change_misses(self, tmp_path):
        from repro.cli import _find_design
        from repro.eval.measure import clear_measure_cache, measure_design

        design, _ = _find_design("verilog-initial")
        cache = ArtifactCache(tmp_path / "c")
        clear_measure_cache()
        with activate(cache):
            measure_design(design, n_matrices=2)
            clear_measure_cache()
            measure_design(design, n_matrices=3)  # different measured key
        # The measured result missed (a second entry was written); only the
        # netlist pickle — which does not depend on n_matrices — may hit.
        files = list((tmp_path / "c" / "measured").rglob("*.json"))
        assert len(files) == 2
        assert cache.stats["misses"] >= 2  # both cold measured lookups

    def test_use_cache_false_bypasses_disk(self, tmp_path):
        from repro.cli import _find_design
        from repro.eval.measure import clear_measure_cache, measure_design

        design, _ = _find_design("verilog-initial")
        cache = ArtifactCache(tmp_path / "c")
        clear_measure_cache()
        with activate(cache):
            measure_design(design, n_matrices=2, use_cache=False)
        # verify-style runs must not persist a measured result; the netlist
        # pickle (a pure build artifact) may still be cached.
        measured_dir = tmp_path / "c" / "measured"
        assert not measured_dir.exists() or not list(measured_dir.rglob("*.json"))

    def test_cached_payload_is_json_on_disk(self, tmp_path):
        from repro.cli import _find_design
        from repro.eval.measure import clear_measure_cache, measure_design

        design, _ = _find_design("verilog-initial")
        cache = ArtifactCache(tmp_path / "c")
        clear_measure_cache()
        with activate(cache):
            measured = measure_design(design, n_matrices=2)
        files = list((tmp_path / "c" / "measured").rglob("*.json"))
        assert len(files) == 1
        body = split_footer(files[0].read_bytes())
        assert body is not None  # sealed with a valid checksum footer
        payload = json.loads(body)
        assert payload["name"] == "verilog-initial"
        assert payload["fmax_mhz"] == measured.fmax_mhz  # exact round-trip
