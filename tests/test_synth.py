"""Tests for the synthesis cost model: area accounting and static timing."""

import pytest

from repro.core.errors import SynthesisError
from repro.rtl import Module, elaborate, ops
from repro.rtl.ir import MemRead, Ref
from repro.synth import ULTRASCALE_PLUS, XCVU9P, Device, normalized_area, synthesize
from repro.synth.cost import is_variable_mult, mult_dsp_count, node_cost


def synth(module, **kwargs):
    return synthesize(elaborate(module), **kwargs)


def make_mult(width=16, signed=True, const=None):
    m = Module("mult")
    a = m.input("a", width)
    if const is None:
        b = m.input("b", width)
        product = ops.mul(a, Ref(b), signed=signed)
    else:
        product = ops.mul(a, const, signed=signed)
    y = m.output("y", product.width)
    m.assign(y, product)
    return m


class TestNodeCost:
    def test_free_nodes(self):
        tech = ULTRASCALE_PLUS
        a = ops.const(5, 8)
        for node in (a, ops.bits(ops.const(0, 8), 3, 0), ops.cat(a, a)):
            cost = node_cost(node, tech)
            assert cost.luts == 0
            assert cost.delay == 0

    def test_adder_scales_with_width(self):
        tech = ULTRASCALE_PLUS
        m = Module("m")
        a8, b8 = m.input("a", 8), m.input("b", 8)
        a32, b32 = m.input("c", 32), m.input("d", 32)
        small = node_cost(ops.add(a8, b8), tech)
        large = node_cost(ops.add(a32, b32), tech)
        assert large.luts == 4 * small.luts
        assert large.delay > small.delay

    def test_constant_shift_is_free(self):
        tech = ULTRASCALE_PLUS
        m = Module("m")
        a = m.input("a", 16)
        cost = node_cost(ops.ashr(a, 3), tech)
        assert cost.luts == 0

    def test_variable_shift_costs_barrel(self):
        tech = ULTRASCALE_PLUS
        m = Module("m")
        a = m.input("a", 16)
        s = m.input("s", 4)
        cost = node_cost(ops.shl(a, Ref(s)), tech)
        assert cost.luts > 0

    def test_power_of_two_const_mult_is_free(self):
        tech = ULTRASCALE_PLUS
        m = Module("m")
        a = m.input("a", 12)
        cost = node_cost(ops.mul(a, 8), tech)
        assert cost.luts == 0
        assert cost.dsps == 0

    def test_dense_const_mult_costs_adders(self):
        tech = ULTRASCALE_PLUS
        m = Module("m")
        a = m.input("a", 12)
        # 2841 = 0b101100011001: the IDCT W1 coefficient.
        cost = node_cost(ops.mul(a, 2841), tech, allow_dsp=False)
        assert cost.luts > 0
        assert cost.dsps == 0
        assert cost.delay > 0

    def test_dense_const_mult_takes_dsp_when_allowed(self):
        # Vivado infers DSP48s for dense constant multipliers too.
        tech = ULTRASCALE_PLUS
        m = Module("m")
        a = m.input("a", 12)
        cost = node_cost(ops.mul(a, 2841), tech, allow_dsp=True)
        assert cost.dsps == 1
        assert cost.luts == 0

    def test_variable_mult_uses_dsp_when_allowed(self):
        tech = ULTRASCALE_PLUS
        m = Module("m")
        a, b = m.input("a", 16), m.input("b", 16)
        node = ops.mul(a, Ref(b))
        assert is_variable_mult(node)
        with_dsp = node_cost(node, tech, allow_dsp=True)
        without = node_cost(node, tech, allow_dsp=False)
        assert with_dsp.dsps >= 1
        assert with_dsp.luts == 0
        assert without.dsps == 0
        assert without.luts > 100

    def test_wide_mult_needs_multiple_dsps(self):
        tech = ULTRASCALE_PLUS
        m = Module("m")
        a, b = m.input("a", 32), m.input("b", 32)
        node = ops.mul(a, Ref(b))
        assert mult_dsp_count(node, tech) >= 4


class TestSynthReports:
    def test_adder_module(self):
        m = Module("adder")
        a, b = m.input("a", 16), m.input("b", 16)
        y = m.output("y", 16)
        m.assign(y, ops.add(a, b))
        report = synth(m)
        assert report.n_lut == round(16 * ULTRASCALE_PLUS.luts_per_add_bit)
        assert report.n_ff == 0
        assert report.fmax_mhz > 100

    def test_registers_count_as_ff(self):
        m = Module("regs")
        d = m.input("d", 32)
        q = m.output("q", 32)
        r = m.reg("r", 32, next=Ref(d))
        m.assign(q, Ref(r))
        report = synth(m)
        assert report.n_ff == 32

    def test_pipelining_reduces_tclk(self):
        def chain(n_stages):
            m = Module(f"chain{n_stages}")
            a = m.input("a", 16)
            y = m.output("y", 16)
            current = ops.as_expr(a)
            for i in range(8):
                current = ops.trunc(ops.mul(current, 2841), 16)
                if n_stages and (i + 1) % (8 // n_stages) == 0:
                    current = Ref(m.reg(f"p{i}", 16, next=current))
            m.assign(y, ops.trunc(current, 16))
            return synth(m)

        comb = chain(0)
        piped = chain(4)
        assert piped.t_clk_ns < comb.t_clk_ns
        assert piped.n_ff > comb.n_ff

    def test_maxdsp_zero_moves_mults_to_luts(self):
        m = make_mult()
        with_dsp = synth(m)
        without = synth(m, max_dsp=0)
        assert with_dsp.n_dsp >= 1
        assert without.n_dsp == 0
        assert without.n_lut > with_dsp.n_lut

    def test_dsp_budget_allocates_biggest_first(self):
        m = Module("mults")
        a, b = m.input("a", 24), m.input("b", 24)
        c, d = m.input("c", 8), m.input("d", 8)
        big = ops.mul(a, Ref(b))
        small = ops.mul(c, Ref(d))
        y1 = m.output("y1", big.width)
        y2 = m.output("y2", small.width)
        m.assign(y1, big)
        m.assign(y2, small)
        tech = ULTRASCALE_PLUS
        need_big = mult_dsp_count(big, tech)
        report = synth(m, max_dsp=need_big)
        # Budget covers only the big multiplier; the small one goes to LUTs.
        assert report.n_dsp == need_big
        assert report.n_lut > 0

    def test_normalized_area_is_dsp_free(self):
        m = make_mult()
        area = normalized_area(elaborate(m))
        report = synth(m, max_dsp=0)
        assert area == report.n_lut + report.n_ff

    def test_shared_node_counted_once(self):
        m1 = Module("shared")
        a = m1.input("a", 16)
        product = ops.mul(a, 2841)
        for i in range(4):
            y = m1.output(f"y{i}", product.width)
            m1.assign(y, product)
        m2 = Module("copied")
        a2 = m2.input("a", 16)
        for i in range(4):
            y = m2.output(f"y{i}", 16 + 13)
            m2.assign(y, ops.mul(a2, 2841))
        shared = synth(m1, max_dsp=0)
        copied = synth(m2, max_dsp=0)
        assert copied.n_lut > 2 * shared.n_lut

    def test_small_memory_maps_to_lutram(self):
        m = Module("mem")
        addr = m.input("addr", 3)
        data = m.output("data", 16)
        mem = m.memory("buf", 8, 16)
        m.mem_write(mem, ops.const(0, 1), ops.const(0, 32), ops.const(0, 16))
        m.assign(data, MemRead(mem, Ref(addr)))
        report = synth(m)
        assert report.n_bram == 0
        assert report.n_lut > 0

    def test_large_memory_maps_to_bram(self):
        m = Module("mem")
        addr = m.input("addr", 10)
        data = m.output("data", 32)
        mem = m.memory("buf", 1024, 32)
        m.assign(data, MemRead(mem, Ref(addr)))
        report = synth(m)
        assert report.n_bram >= 1

    def test_device_capacity_enforced(self):
        tiny = Device(name="tiny", n_lut=4, n_ff=4, n_dsp=0, n_io=100, n_bram=0)
        m = Module("big")
        a, b = m.input("a", 32), m.input("b", 32)
        y = m.output("y", 32)
        m.assign(y, ops.add(a, b))
        with pytest.raises(SynthesisError):
            synth(m, device=tiny)

    def test_report_properties(self):
        report = synth(make_mult())
        assert report.area == report.n_lut + report.n_ff
        assert 0 <= report.utilization()["lut"] < 1
        assert "fmax" in report.summary()
        assert report.n_io > 0

    def test_deeper_logic_is_slower(self):
        def depth(n):
            m = Module(f"depth{n}")
            a = m.input("a", 16)
            y = m.output("y", 16)
            expr = ops.as_expr(a)
            for _ in range(n):
                expr = ops.trunc(ops.add(expr, 1), 16)
            m.assign(y, expr)
            return synth(m).t_clk_ns

        assert depth(8) > depth(2) > depth(0)

    def test_xcvu9p_matches_paper_envelope(self):
        assert XCVU9P.n_lut == 1_182_240
        assert XCVU9P.n_ff == 2_364_480
        assert XCVU9P.n_dsp == 6_840
        assert XCVU9P.n_io == 702
