"""Tests for ``repro.serve``: HTTP framing, the micro-batcher's
coalescing bound, engine bit-exactness, admission control (429), the
live obs endpoints, and the SIGTERM drain lifecycle."""

import http.client
import json
import math
import os
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import asyncio

import pytest

from repro import obs
from repro.api import Session
from repro.eval.verify import random_matrices
from repro.idct.reference import chen_wang_idct
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import render_prometheus
from repro.serve import EvalServer, MicroBatcher, ServeConfig, validate_blocks
from repro.serve.protocol import (
    ProtocolError,
    json_response,
    read_request,
)

DESIGN = "verilog-initial"


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.clear()
    yield
    obs.disable()
    obs.clear()


@pytest.fixture(scope="module")
def session():
    """One Session shared across the module: the warm start (a full
    measurement) happens once, later tests reuse the hot evaluator."""
    return Session()


def _blocks(n):
    return [[list(row) for row in matrix] for matrix in random_matrices(n)]


# ---------------------------------------------------------------------------
# protocol framing
# ---------------------------------------------------------------------------
def _parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestProtocol:
    def test_parses_request_line_headers_and_body(self):
        body = b'{"design": "d"}'
        request = _parse(
            b"POST /v1/idct?x=1 HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode() + body)
        assert request.method == "POST"
        assert request.path == "/v1/idct"
        assert request.query == "x=1"
        assert request.headers["content-type"] == "application/json"
        assert request.json() == {"design": "d"}
        assert request.keep_alive  # HTTP/1.1 default

    def test_connection_close_disables_keep_alive(self):
        request = _parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_malformed_request_line_is_400(self):
        with pytest.raises(ProtocolError) as err:
            _parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_unsupported_version_is_505(self):
        with pytest.raises(ProtocolError) as err:
            _parse(b"GET / HTTP/2.0\r\n\r\n")
        assert err.value.status == 505

    def test_oversized_body_is_413(self):
        # parse against a tiny limit so the test stays small
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(
                b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n")
            reader.feed_eof()
            return await read_request(reader, max_body=10)

        with pytest.raises(ProtocolError) as err:
            asyncio.run(go())
        assert err.value.status == 413

    def test_non_object_json_body_is_rejected(self):
        request = _parse(
            b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]")
        with pytest.raises(ProtocolError):
            request.json()

    def test_json_response_is_canonical(self):
        response = json_response({"b": 1, "a": 2})
        assert response.body == b'{"a": 2, "b": 1}\n'


# ---------------------------------------------------------------------------
# micro-batcher coalescing
# ---------------------------------------------------------------------------
class TestMicroBatcher:
    def _runner(self, calls):
        async def runner(key, blocks):
            calls.append(list(blocks))
            return [value * 10 for value in blocks]

        return runner

    def test_same_tick_burst_meets_the_coalescing_bound(self):
        """N concurrent submits -> <= ceil(N/max_batch) runner invocations.

        Submits issued before the first await all land in one window, so
        the flush takes every pending block: the bound is met with a
        single invocation, and each caller still gets exactly its own
        outputs back in order.
        """
        calls = []
        n, max_batch = 32, 8

        async def go():
            batcher = MicroBatcher(self._runner(calls), max_batch=max_batch,
                                   max_wait_s=0.05)
            return await asyncio.gather(
                *[batcher.submit("k", [i]) for i in range(n)])

        results = asyncio.run(go())
        assert len(calls) <= math.ceil(n / max_batch)
        assert sum(len(batch) for batch in calls) == n  # nothing dropped
        assert results == [[i * 10] for i in range(n)]

    def test_sequential_windows_flush_separately(self):
        calls = []

        async def go():
            batcher = MicroBatcher(self._runner(calls), max_batch=4,
                                   max_wait_s=0.5)
            first = await asyncio.gather(
                *[batcher.submit("k", [i]) for i in range(4)])
            second = await asyncio.gather(
                *[batcher.submit("k", [i + 4]) for i in range(4)])
            return first + second

        results = asyncio.run(go())
        assert [len(batch) for batch in calls] == [4, 4]
        assert results == [[i * 10] for i in range(8)]

    def test_max_latency_flushes_a_lone_request(self):
        calls = []

        async def go():
            batcher = MicroBatcher(self._runner(calls), max_batch=1000,
                                   max_wait_s=0.01)
            t0 = time.perf_counter()
            out = await batcher.submit("k", [7])
            return out, time.perf_counter() - t0

        out, elapsed = asyncio.run(go())
        assert out == [70]
        assert elapsed < 5.0  # flushed by the window, not the size bound

    def test_distinct_keys_never_share_a_batch(self):
        calls = []

        async def go():
            batcher = MicroBatcher(self._runner(calls), max_batch=8,
                                   max_wait_s=0.01)
            return await asyncio.gather(batcher.submit("a", [1]),
                                        batcher.submit("b", [2]))

        assert asyncio.run(go()) == [[10], [20]]
        assert sorted(calls) == [[1], [2]]

    def test_runner_failure_reaches_every_member(self):
        async def runner(key, blocks):
            raise RuntimeError("boom")

        async def go():
            batcher = MicroBatcher(runner, max_batch=8, max_wait_s=0.01)
            return await asyncio.gather(
                batcher.submit("k", [1]), batcher.submit("k", [2]),
                return_exceptions=True)

        results = asyncio.run(go())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_output_count_mismatch_is_an_error(self):
        async def runner(key, blocks):
            return blocks[:-1]  # one short

        async def go():
            batcher = MicroBatcher(runner, max_batch=8, max_wait_s=0.01)
            return await asyncio.gather(batcher.submit("k", [1, 2]),
                                        return_exceptions=True)

        (result,) = asyncio.run(go())
        assert isinstance(result, RuntimeError)


# ---------------------------------------------------------------------------
# block validation + evaluation engines
# ---------------------------------------------------------------------------
class TestEvaluator:
    def test_validate_blocks_rejects_bad_shapes_and_ranges(self):
        with pytest.raises(ValueError):
            validate_blocks([])
        with pytest.raises(ValueError):
            validate_blocks([[[0] * 8] * 7])  # 7 rows
        with pytest.raises(ValueError):
            validate_blocks([[[0] * 7] * 8])  # 7 columns
        with pytest.raises(ValueError):
            validate_blocks([[[0.5] + [0] * 7] + [[0] * 8] * 7])
        with pytest.raises(ValueError):
            validate_blocks([[[4096] + [0] * 7] + [[0] * 8] * 7])
        ok = validate_blocks([[[-2048, 2047] + [0] * 6] + [[0] * 8] * 7])
        assert len(ok) == 1

    def test_both_engines_match_the_golden_model(self, session):
        blocks = _blocks(3)
        expected = [chen_wang_idct(block) for block in blocks]
        assert session.idct(DESIGN, blocks, engine="model") == expected
        assert session.idct(DESIGN, blocks, engine="sim") == expected

    def test_batch_engine_matches_the_golden_model(self, session):
        blocks = _blocks(5)
        expected = [chen_wang_idct(block) for block in blocks]
        assert session.idct(DESIGN, blocks, engine="batch") == expected

    def test_unknown_engine_is_rejected(self, session):
        with pytest.raises(ValueError):
            session.idct(DESIGN, _blocks(1), engine="hopeful")

    def test_non_bit_exact_design_is_refused(self, session, monkeypatch):
        from types import SimpleNamespace

        from repro.core.errors import EvaluationError
        from repro.serve.evaluator import DesignEvaluator

        monkeypatch.setattr(
            session, "measure",
            lambda name: SimpleNamespace(bit_exact=False, name=name))
        with pytest.raises(EvaluationError):
            DesignEvaluator(DESIGN, session=session)


# ---------------------------------------------------------------------------
# prometheus exposition
# ---------------------------------------------------------------------------
class TestPrometheus:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("cache.hits", 3)
        registry.set_gauge("serve.queue_depth", 2)
        registry.observe("serve.batch_size", 3)
        registry.observe("serve.batch_size", 10)
        lines = render_prometheus(registry).splitlines()
        assert "# TYPE repro_cache_hits counter" in lines
        assert "repro_cache_hits 3" in lines
        assert "# TYPE repro_serve_queue_depth gauge" in lines
        assert "repro_serve_queue_depth 2" in lines
        assert "# TYPE repro_serve_batch_size histogram" in lines
        assert 'repro_serve_batch_size_bucket{le="4"} 1' in lines
        assert 'repro_serve_batch_size_bucket{le="16"} 2' in lines  # cumulative
        assert 'repro_serve_batch_size_bucket{le="+Inf"} 2' in lines
        assert "repro_serve_batch_size_sum 13" in lines
        assert "repro_serve_batch_size_count 2" in lines

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


# ---------------------------------------------------------------------------
# live server (in-process, real sockets)
# ---------------------------------------------------------------------------
class _LiveServer:
    """EvalServer on a background thread, stopped via request_drain."""

    def __init__(self, session, **config):
        self.server = EvalServer(session, ServeConfig(port=0, **config))
        self.host = self.port = None
        self.exit_code = None
        self._announced = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._announced.wait(120), "server never announced"

    def _run(self):
        def announce(host, port):
            self.host, self.port = host, port
            self._announced.set()

        self.exit_code = self.server.serve_forever(announce=announce)

    def request(self, method, path, payload=None, timeout=120):
        status, _headers, body = self.request_full(method, path, payload,
                                                   timeout=timeout)
        return status, body

    def request_full(self, method, path, payload=None, timeout=120):
        """Like :meth:`request`, but also returns the response headers
        (429 tests assert the computed ``Retry-After``)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            body = None if payload is None else json.dumps(payload).encode()
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return response.status, dict(response.headers), response.read()
        finally:
            conn.close()

    def stop(self, code=0):
        self.server.request_drain(code)
        self._thread.join(timeout=120)
        assert not self._thread.is_alive(), "server failed to drain"
        return self.exit_code


@pytest.fixture()
def live(session):
    servers = []

    def start(**config):
        server = _LiveServer(session, **config)
        servers.append(server)
        return server

    yield start
    for server in servers:
        if server._thread.is_alive():
            server.stop()


class TestLiveServer:
    def test_healthz_metrics_and_unknown_routes(self, live):
        server = live(batch_wait_s=0.0)
        status, body = server.request("GET", "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["inflight"] == 0
        status, body = server.request("GET", "/metrics")
        assert status == 200
        assert b"repro_serve_requests_total" in body
        status, _ = server.request("GET", "/v1/nope")
        assert status == 404
        status, _ = server.request("POST", "/healthz", payload={})
        assert status == 405
        status, _ = server.request(
            "POST", "/v1/idct", payload={"design": DESIGN, "blocks": "x"})
        assert status == 400
        assert server.stop() == 0

    def test_http_burst_coalesces_and_is_bit_exact(self, live):
        """Concurrent single-block requests for one design coalesce to
        <= ceil(N/max_batch) evaluator invocations (here: one), and every
        response is bit-identical to the golden model / serial path."""
        n, max_batch = 8, 64
        blocks = _blocks(n)
        expected = [chen_wang_idct(block) for block in blocks]
        server = live(max_batch=max_batch, batch_wait_s=0.75,
                      warm=(DESIGN,))
        before = obs_metrics.counter("serve.sim_invocations").value
        with ThreadPoolExecutor(max_workers=n) as pool:
            futures = [
                pool.submit(server.request, "POST", "/v1/idct",
                            {"design": DESIGN, "blocks": [block]})
                for block in blocks
            ]
            results = [future.result() for future in futures]
        for (status, body), exp in zip(results, expected):
            assert status == 200
            payload = json.loads(body)
            assert payload["design"] == DESIGN
            assert payload["outputs"] == [exp]
        invocations = (obs_metrics.counter("serve.sim_invocations").value
                       - before)
        assert 1 <= invocations <= math.ceil(n / max_batch)
        # the coalesced batch is visible in the obs histogram
        status, body = server.request("GET", "/metrics")
        assert f'repro_serve_batch_size_bucket{{le="+Inf"}}'.encode() in body
        assert server.stop() == 0

    def test_sim_engine_over_http_matches_model(self, live):
        server = live(batch_wait_s=0.0, warm=(DESIGN,))
        blocks = _blocks(2)
        status, body = server.request(
            "POST", "/v1/idct",
            {"design": DESIGN, "blocks": blocks, "engine": "sim"})
        assert status == 200
        assert json.loads(body)["outputs"] == [
            chen_wang_idct(block) for block in blocks]
        assert server.stop() == 0

    def test_batch_engine_over_http_matches_model(self, live):
        server = live(batch_wait_s=0.0, warm=(DESIGN,))
        blocks = _blocks(3)
        status, body = server.request(
            "POST", "/v1/idct",
            {"design": DESIGN, "blocks": blocks, "engine": "batch"})
        assert status == 200
        assert json.loads(body)["outputs"] == [
            chen_wang_idct(block) for block in blocks]
        assert server.stop() == 0

    def test_unknown_engine_is_a_400_not_a_breaker_failure(self, live):
        server = live(batch_wait_s=0.0, warm=(DESIGN,))
        status, body = server.request(
            "POST", "/v1/idct",
            {"design": DESIGN, "blocks": _blocks(1), "engine": "hopeful"})
        assert status == 400
        assert b"hopeful" in body
        # resolution happens before the breaker/batcher: a typo must not
        # count toward tripping the circuit breaker
        assert server.server.breaker.state == "closed"
        assert server.server.breaker._consecutive == 0
        assert server.stop() == 0

    def test_engines_endpoint_is_the_one_serialization(self, live):
        from repro.api import render_engines_json

        server = live(batch_wait_s=0.0)
        status, body = server.request("GET", "/v1/engines")
        assert status == 200
        assert body == render_engines_json().encode("utf-8")
        assert server.stop() == 0

    def test_overload_answers_429_with_queue_depth_gauge(self, live):
        """With max_inflight=1, a request parked in the batch window holds
        the only slot: the next request is turned away with 429 and the
        rejection/queue-depth show up in /metrics."""
        server = live(max_inflight=1, max_batch=64, batch_wait_s=1.5,
                      warm=(DESIGN,))
        block = _blocks(1)[0]
        with ThreadPoolExecutor(max_workers=1) as pool:
            parked = pool.submit(server.request, "POST", "/v1/idct",
                                 {"design": DESIGN, "blocks": [block]})
            deadline = time.time() + 10
            while (server.server.admission.inflight == 0
                   and time.time() < deadline):
                time.sleep(0.01)
            assert server.server.admission.inflight == 1
            status, headers, body = server.request_full(
                "POST", "/v1/idct", {"design": DESIGN, "blocks": [block]})
            assert status == 429
            assert b"overloaded" in body
            # turned-away clients are told when to come back, never hung
            assert int(headers["Retry-After"]) >= 1
            status, metrics_body = server.request("GET", "/metrics")
            text = metrics_body.decode()
            assert "repro_serve_rejected_total 1" in text
            assert "repro_serve_queue_depth 1" in text  # parked request
            status, body = parked.result()
        assert status == 200
        assert json.loads(body)["outputs"] == [chen_wang_idct(block)]
        assert server.stop() == 0

    def test_measure_body_is_byte_identical_to_cli_json(self, live, session):
        server = live(batch_wait_s=0.0)
        status, body = server.request("POST", "/v1/measure",
                                      {"design": DESIGN})
        assert status == 200
        assert body == session.measure(DESIGN).to_json().encode("utf-8")

    def test_verify_endpoint_reports_bit_exact(self, live):
        server = live(batch_wait_s=0.0)
        status, body = server.request("POST", "/v1/verify",
                                      {"design": DESIGN})
        assert status == 200
        payload = json.loads(body)
        assert payload["bit_exact"] is True
        assert payload["measured"]["name"] == DESIGN

    def test_unknown_design_is_400(self, live):
        server = live(batch_wait_s=0.0)
        status, body = server.request(
            "POST", "/v1/idct",
            {"design": "no-such-design", "blocks": _blocks(1)})
        assert status == 400
        assert b"unknown design" in body

    def test_jobs_lifecycle(self, live):
        server = live(batch_wait_s=0.0)
        status, _ = server.request("POST", "/v1/jobs", {"kind": "nope"})
        assert status == 400
        status, _ = server.request("GET", "/v1/jobs/job-999")
        assert status == 404
        status, body = server.request(
            "POST", "/v1/jobs", {"kind": "table2", "params": {"tools": []}})
        assert status == 202
        job = json.loads(body)
        assert job["status"] in ("queued", "running")
        deadline = time.time() + 300
        while time.time() < deadline:
            status, body = server.request("GET", f"/v1/jobs/{job['id']}")
            assert status == 200
            job = json.loads(body)
            if job["status"] in ("done", "failed"):
                break
            time.sleep(0.2)
        assert job["status"] == "done", job.get("error")
        assert "Verilog/Vivado" in job["output"]

    def test_draining_server_refuses_new_compute(self, live, session):
        server = live(batch_wait_s=0.0)
        # flip the drain flag directly (the async drain task only runs on
        # the server loop; here we only need the admission answer)
        server.server._draining = True
        response = server.server._admit()
        assert response is not None and response.status == 503
        server.server._draining = False
        assert server.stop() == 0


class TestCircuitBreakerHTTP:
    def test_flaky_evaluator_opens_circuit_503_with_retry_after(
            self, live, session):
        """Repeated chaos-injected evaluator faults must open the
        breaker: 422s for the failures themselves, then an immediate 503
        with a Retry-After header while the circuit is open."""
        from repro.chaos import ChaosPolicy
        from repro.chaos import activate as activate_chaos

        server = live(batch_wait_s=0.0, breaker_threshold=2,
                      breaker_cooldown_s=60.0)
        payload = {"design": DESIGN, "blocks": _blocks(1)}
        with activate_chaos(ChaosPolicy(seed=1, flaky=1.0)):
            for _ in range(2):
                status, body = server.request("POST", "/v1/idct", payload)
                assert status == 422
                assert b"injected evaluator fault" in body
        # Chaos is gone, but the circuit stays open through the cooldown.
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=120)
        try:
            conn.request("POST", "/v1/idct",
                         body=json.dumps(payload).encode())
            response = conn.getresponse()
            body = response.read()
        finally:
            conn.close()
        assert response.status == 503
        assert b"circuit open" in body
        retry_after = response.getheader("Retry-After")
        assert retry_after is not None and 1 <= int(retry_after) <= 60
        status, body = server.request("GET", "/healthz")
        assert status == 200
        assert json.loads(body)["breaker"] == "open"
        assert server.stop() == 0


class TestMultiProcessServing:
    def test_single_process_mode_reports_no_workers(self, live):
        """--workers 1 keeps the in-process compute thread: /healthz
        shows an empty worker list and the pool counters exist but stay
        zero (pre-registered, so dashboards see the series either way)."""
        server = live(batch_wait_s=0.0)
        status, body = server.request("GET", "/healthz")
        assert status == 200
        assert json.loads(body)["workers"] == []
        status, body = server.request("GET", "/metrics")
        text = body.decode()
        assert "repro_serve_worker_restarts 0" in text
        assert "repro_serve_worker_kills 0" in text
        assert server.stop() == 0

    def test_pool_burst_is_byte_identical_to_single_process(self, live):
        """The same coalesced burst, answered by the pre-forked pool,
        must be bit-identical to the in-process path (= golden model)."""
        n = 6
        blocks = _blocks(n)
        expected = [chen_wang_idct(block) for block in blocks]
        server = live(workers=2, warm=(DESIGN,), max_batch=64,
                      batch_wait_s=0.25)
        with ThreadPoolExecutor(max_workers=n) as pool:
            futures = [
                pool.submit(server.request, "POST", "/v1/idct",
                            {"design": DESIGN, "blocks": [block]})
                for block in blocks
            ]
            results = [future.result() for future in futures]
        for (status, body), exp in zip(results, expected):
            assert status == 200
            assert json.loads(body)["outputs"] == [exp]
        status, body = server.request("GET", "/healthz")
        workers = json.loads(body)["workers"]
        assert len(workers) == 2
        for worker in workers:
            assert worker["state"] in ("idle", "busy")
            assert worker["restarts"] == 0
            assert worker["inflight"] == 0
            assert isinstance(worker["pid"], int)
        assert server.stop() == 0

    def test_worker_crashes_trip_the_breaker(self):
        """Poison chaos kills both workers a request touches: each
        request is an honest 503 (quarantine), consecutive crashes trip
        the breaker, and the open circuit rejects without touching the
        pool.  /healthz carries both the breaker state and the per-worker
        restart counts; /metrics carries the pool counters."""
        from repro.chaos import ChaosPolicy

        session = Session(
            chaos=ChaosPolicy(seed=1, poison_targets=("serve:",)))
        server = _LiveServer(session, workers=2, warm=(DESIGN,),
                             batch_wait_s=0.0, breaker_threshold=2,
                             breaker_cooldown_s=60.0)
        try:
            payload = {"design": DESIGN, "blocks": _blocks(1)}
            for _ in range(2):
                status, body = server.request("POST", "/v1/idct", payload)
                assert status == 503
                assert b"quarantined" in body
            kills = server.server.pool.stats["kills"]
            assert kills == 4  # two attempts died per poisoned request
            conn = http.client.HTTPConnection(server.host, server.port,
                                              timeout=120)
            try:
                conn.request("POST", "/v1/idct",
                             body=json.dumps(payload).encode())
                response = conn.getresponse()
                body = response.read()
            finally:
                conn.close()
            assert response.status == 503
            assert b"circuit open" in body
            assert response.getheader("Retry-After") is not None
            # The open circuit rejected before the pool saw anything.
            assert server.server.pool.stats["kills"] == kills
            status, body = server.request("GET", "/healthz")
            health = json.loads(body)
            assert health["breaker"] == "open"
            assert len(health["workers"]) == 2
            assert sum(w["restarts"] for w in health["workers"]) >= 1
            status, body = server.request("GET", "/metrics")
            lines = body.decode().splitlines()
            restarts = [line for line in lines
                        if line.startswith("repro_serve_worker_restarts ")]
            killed = [line for line in lines
                      if line.startswith("repro_serve_worker_kills ")]
            assert restarts and float(restarts[0].split()[1]) >= 1
            assert killed and float(killed[0].split()[1]) >= 4
        finally:
            assert server.stop() == 0

    def test_half_open_probe_routes_prefer_fresh(self, session):
        """The breaker's half-open probe must test a *fresh* worker —
        the slot whose affinity accumulated the failures proves nothing."""
        server = EvalServer(session, ServeConfig(port=0))
        seen = []

        class FakePool:
            async def evaluate(self, design, engine, blocks,
                               prefer_fresh=False):
                seen.append(prefer_fresh)
                return [[0]]

        server.pool = FakePool()

        async def go():
            server.breaker.state = "half-open"
            await server._run_batch((DESIGN, "model"), [[[0] * 8] * 8])
            server.breaker.state = "closed"
            await server._run_batch((DESIGN, "model"), [[[0] * 8] * 8])

        asyncio.run(go())
        assert seen == [True, False]

    def test_drain_releases_an_inflight_probe(self, session):
        """A half-open probe still in flight when SIGTERM lands must not
        leave the breaker wedged 'probing' across the drain."""
        server = EvalServer(session, ServeConfig(port=0, drain_grace_s=0.1))
        server.breaker._probing = True
        asyncio.run(server._finish_drain(0))
        assert server.breaker._probing is False


class TestSignalDrain:
    def test_sigterm_mid_burst_drains_and_exits_zero(self, tmp_path):
        """A real `python -m repro serve` process: SIGTERM during a burst
        finishes the in-flight request and exits 0."""
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--batch-wait-ms", "200"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True, cwd=os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))))
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("serving on "), line
            host, _, port = line.rpartition(" ")[2].rpartition(":")

            block = _blocks(1)[0]
            result = {}

            def burst():
                conn = http.client.HTTPConnection(host, int(port),
                                                  timeout=120)
                conn.request("POST", "/v1/idct", body=json.dumps(
                    {"design": DESIGN, "blocks": [block]}).encode())
                response = conn.getresponse()
                result["status"] = response.status
                result["body"] = response.read()
                conn.close()

            thread = threading.Thread(target=burst)
            thread.start()
            time.sleep(0.05)  # let the request land in the batch window
            proc.send_signal(signal.SIGTERM)
            thread.join(timeout=120)
            assert proc.wait(timeout=120) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # the in-flight request was finished, not dropped
        assert result.get("status") == 200
        assert json.loads(result["body"])["outputs"] == [
            chen_wang_idct(block)]
