"""Tests for the ``repro.api`` Session facade, design-name resolution,
and the CLI exit-code contract (0 ok / 1 failure / 2 usage / 3 interrupt)."""

import pytest

from repro.api import (
    NAME_ALIASES,
    PREFIX_ALIASES,
    Session,
    UnknownDesignError,
    UnknownToolError,
    UsageError,
    canonical_name,
    design_names,
    find_design,
    resolve_design,
)
from repro.cli import main
from repro.core.errors import EvaluationError
from repro.eval.measure import clear_measure_cache
from repro.resilience.runner import RunnerConfig, SweepRunner

SMALL = dict(bsc_configs=1, bambu_configs=1, xls_stages=1)


class TestResolveDesign:
    def test_aliases_resolve(self):
        assert resolve_design("vlog-opt") == "verilog-opt"
        assert resolve_design("hc-initial") == "chisel-initial"
        assert resolve_design("rules-opt") == "bsv-opt"
        assert resolve_design("flow-initial") == "xls-s0"
        assert resolve_design("flow-opt") == "xls-s8"

    def test_canonical_names_pass_through(self):
        for name in ("verilog-initial", "chisel-opt", "maxj-initial"):
            assert resolve_design(name) == name

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(UnknownDesignError) as info:
            resolve_design("chisle-opt")
        assert "chisel-opt" in info.value.suggestions
        assert "chisel-opt" in str(info.value)
        assert isinstance(info.value, UsageError)

    def test_hopeless_name_raises_without_suggestions(self):
        with pytest.raises(UnknownDesignError) as info:
            resolve_design("zzzzzzzz")
        assert info.value.suggestions == []

    def test_canonical_name_is_purely_syntactic(self):
        assert canonical_name("vlog-whatever") == "verilog-whatever"
        assert canonical_name("unrelated") == "unrelated"

    def test_find_design_returns_pair_or_nones(self):
        design, factory = find_design("hc-opt")
        assert design.name == "chisel-opt" and callable(factory)
        assert find_design("nope") == (None, None)

    def test_design_names_covers_registry(self):
        names = design_names()
        assert "verilog-opt" in names and "maxj-initial" in names
        assert names == sorted(names)

    def test_alias_tables_are_public(self):
        assert PREFIX_ALIASES["vlog"] == "verilog"
        assert NAME_ALIASES["xls-initial"] == "xls-s0"


class TestDeprecatedCliShims:
    def test_cli_private_names_still_importable(self):
        from repro import cli

        assert cli._PREFIX_ALIASES is PREFIX_ALIASES
        assert cli._NAME_ALIASES is NAME_ALIASES
        assert cli._canonical_name("vlog-opt") == "verilog-opt"
        design, _ = cli._find_design("flow-opt")
        assert design.name == "xls-s8"


class TestSession:
    def test_build_and_measure(self, tmp_path):
        session = Session(cache=tmp_path / "cache")
        design = session.build("vlog-initial")
        assert design.name == "verilog-initial"
        clear_measure_cache()
        measured = session.measure("vlog-initial", n_matrices=2)
        assert measured.bit_exact
        assert session.cache.stats["puts"] > 0

    def test_verify_bypasses_caches(self):
        clear_measure_cache()
        measured = Session().verify("chisel-opt")
        assert measured.bit_exact and measured.periodicity == 8

    def test_unknown_design_raises_usage_error(self):
        with pytest.raises(UnknownDesignError):
            Session().build("no-such-design")

    def test_table2_rejects_unknown_tool(self):
        with pytest.raises(UnknownToolError) as info:
            Session().table2(tools=["Chisel/Chisle"])
        assert "Chisel/Chisel" in info.value.suggestions

    def test_runner_type_is_validated(self):
        with pytest.raises(TypeError):
            Session(runner="fast")
        fixed = SweepRunner(config=RunnerConfig(n_matrices=2))
        session = Session(runner=fixed, jobs=8)
        assert session._sweep_runner(None) is fixed
        assert session.last_runner is fixed

    def test_fig1_parallel_session_equals_serial_session(self):
        from repro.eval.experiments import render_fig1

        config = RunnerConfig(n_matrices=2)
        clear_measure_cache()
        serial = render_fig1(Session(runner=config).fig1(**SMALL))
        clear_measure_cache()
        parallel_session = Session(jobs=2, runner=config)
        parallel = render_fig1(parallel_session.fig1(**SMALL))
        assert parallel == serial
        assert parallel_session.last_runner.stats["ok"] > 0

    def test_summary_lines_report_cache(self, tmp_path):
        config = RunnerConfig(n_matrices=2)
        clear_measure_cache()
        session = Session(cache=tmp_path / "cache", runner=config)
        session.table2(tools=["Chisel/Chisel"])
        lines = session.summary_lines()
        assert any(line.startswith("cache:") for line in lines)


class TestExitCodeContract:
    """The documented contract: 0 ok, 1 failure, 2 usage, 3 interrupted."""

    def test_ok_is_zero(self):
        assert main(["table1"]) == 0

    def test_unknown_design_is_two(self, capsys):
        assert main(["verify", "no-such-design"]) == 2
        err = capsys.readouterr().err
        assert "unknown design" in err

    def test_unknown_design_suggests_near_miss(self, capsys):
        assert main(["verify", "chisle-opt"]) == 2
        assert "chisel-opt" in capsys.readouterr().err

    def test_unknown_tool_is_two(self, capsys):
        assert main(["table2", "--tools", "Nope/Nope"]) == 2
        assert "unknown tool" in capsys.readouterr().err

    def test_unknown_profile_design_is_two(self, capsys):
        assert main(["profile", "no-such-design"]) == 2

    def test_unknown_faults_design_is_two(self, capsys):
        assert main(["faults", "no-such-design", "--smoke"]) == 2

    def test_compliance_failure_is_one(self, capsys, monkeypatch):
        def boom(self, name, engine="compiled"):
            raise EvaluationError("golden mismatch", design=name,
                                  phase="eval.verify")

        monkeypatch.setattr(Session, "verify", boom)
        assert main(["verify", "chisel-opt"]) == 1
        assert "COMPLIANCE FAILURE" in capsys.readouterr().err

    def test_interrupted_sweep_is_three(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ABORT_AFTER", "2")
        path = tmp_path / "ck.jsonl"
        clear_measure_cache()
        assert main(["fig1", "--checkpoint", str(path)]) == 3
        err = capsys.readouterr().err
        assert "sweep interrupted" in err
        assert "--resume" in err
        assert path.exists()
