"""Tests for module construction and hierarchy elaboration."""

import pytest

from repro.core.errors import (
    CombinationalLoopError,
    DriverError,
    ElaborationError,
    WidthError,
)
from repro.rtl import Module, Netlist, elaborate, ops
from repro.rtl.ir import Ref, Signal, eval_expr


def make_adder(name="adder", width=8):
    m = Module(name)
    a = m.input("a", width)
    b = m.input("b", width)
    y = m.output("y", width)
    m.assign(y, ops.add(a, b))
    return m


class TestModuleConstruction:
    def test_ports_and_wires_get_unique_names(self):
        m = Module("m")
        first = m.wire("t", 4)
        second = m.wire("t", 4)
        assert first.name != second.name

    def test_double_assign_rejected(self):
        m = Module("m")
        w = m.wire("w", 4)
        m.assign(w, ops.const(1, 4))
        with pytest.raises(DriverError):
            m.assign(w, ops.const(2, 4))

    def test_assign_width_mismatch_rejected(self):
        m = Module("m")
        w = m.wire("w", 4)
        with pytest.raises(WidthError):
            m.assign(w, ops.const(0, 5))

    def test_assign_to_register_output_rejected(self):
        m = Module("m")
        r = m.reg("r", 4, next=ops.const(0, 4))
        with pytest.raises(DriverError):
            m.assign(r, ops.const(1, 4))

    def test_reg_feedback_via_set_next(self):
        m = Module("m")
        count = m.reg("count", 8)
        m.set_next(count, ops.add(count, 1))
        assert m.registers[0].next is not None

    def test_set_next_twice_rejected(self):
        m = Module("m")
        r = m.reg("r", 4, next=ops.const(0, 4))
        with pytest.raises(DriverError):
            m.set_next(r, ops.const(1, 4))

    def test_set_next_on_non_register_rejected(self):
        m = Module("m")
        w = m.wire("w", 4)
        with pytest.raises(ElaborationError):
            m.set_next(w, ops.const(0, 4))

    def test_reg_enable_must_be_one_bit(self):
        m = Module("m")
        wide = m.input("wide", 2)
        with pytest.raises(WidthError):
            m.reg("r", 4, next=ops.const(0, 4), en=Ref(wide))

    def test_connect_declares_and_drives(self):
        m = Module("m")
        a = m.input("a", 4)
        w = m.connect("w", 4, ops.add(a, 1))
        assert w in m.assigns

    def test_port_bits(self):
        m = make_adder(width=8)
        assert m.port_bits() == 24

    def test_memory_write_port_limit(self):
        m = Module("m")
        mem = m.memory("buf", 8, 16, max_write_ports=1)
        en = m.input("en", 1)
        m.mem_write(mem, en, ops.const(0, 32), ops.const(0, 16))
        with pytest.raises(ElaborationError):
            m.mem_write(mem, en, ops.const(1, 32), ops.const(0, 16))

    def test_mem_write_foreign_memory_rejected(self):
        m1, m2 = Module("m1"), Module("m2")
        mem = m1.memory("buf", 8, 16)
        with pytest.raises(ElaborationError):
            m2.mem_write(mem, ops.const(1, 1), ops.const(0, 32), ops.const(0, 16))


class TestInstanceConnections:
    def test_unknown_port_rejected(self):
        top = Module("top")
        child = make_adder()
        with pytest.raises(ElaborationError):
            top.instance(child, "u0", nope=ops.const(0, 8))

    def test_unconnected_port_rejected(self):
        top = Module("top")
        child = make_adder()
        a = top.input("a", 8)
        with pytest.raises(ElaborationError):
            top.instance(child, "u0", a=a)

    def test_output_must_be_signal(self):
        top = Module("top")
        child = make_adder()
        a = top.input("a", 8)
        with pytest.raises(ElaborationError):
            top.instance(child, "u0", a=a, b=a, y=ops.const(0, 8))

    def test_input_width_mismatch_rejected(self):
        top = Module("top")
        child = make_adder()
        a = top.input("a", 9)
        y = top.wire("y", 8)
        with pytest.raises(WidthError):
            top.instance(child, "u0", a=Ref(a), b=ops.const(0, 8), y=y)


def run_comb(netlist: Netlist, inputs: dict[str, int]) -> dict[str, int]:
    """Tiny helper: evaluate the combinational netlist once."""
    values = dict(inputs)

    def read(sig: Signal) -> int:
        return values[sig.name]

    for sig, expr in netlist.comb_order():
        values[sig.name] = eval_expr(expr, read)
    return values


class TestElaboration:
    def test_flat_adder(self):
        netlist = elaborate(make_adder())
        values = run_comb(netlist, {"a": 3, "b": 4})
        assert values["y"] == 7

    def test_hierarchy_two_instances(self):
        top = Module("top")
        a = top.input("a", 8)
        b = top.input("b", 8)
        c = top.input("c", 8)
        y = top.output("y", 8)
        partial = top.wire("partial", 8)
        child = make_adder()
        top.instance(child, "u0", a=Ref(a), b=Ref(b), y=partial)
        top.instance(child, "u1", a=Ref(partial), b=Ref(c), y=y)
        netlist = elaborate(top)
        values = run_comb(netlist, {"a": 1, "b": 2, "c": 3})
        assert values["y"] == 6

    def test_same_child_instantiated_twice_gets_fresh_signals(self):
        top = Module("top")
        a = top.input("a", 8)
        y0 = top.output("y0", 8)
        y1 = top.output("y1", 8)
        child = make_adder()
        top.instance(child, "u0", a=Ref(a), b=ops.const(1, 8), y=y0)
        top.instance(child, "u1", a=Ref(a), b=ops.const(2, 8), y=y1)
        netlist = elaborate(top)
        values = run_comb(netlist, {"a": 10})
        assert values["y0"] == 11
        assert values["y1"] == 12

    def test_nested_hierarchy_names_are_dotted(self):
        inner = make_adder("inner")
        middle = Module("middle")
        a = middle.input("a", 8)
        y = middle.output("y", 8)
        t = middle.wire("t", 8)
        middle.instance(inner, "i0", a=Ref(a), b=ops.const(5, 8), y=t)
        middle.assign(y, ops.add(t, 0))
        top = Module("top")
        ta = top.input("a", 8)
        ty = top.output("y", 8)
        top.instance(middle, "m0", a=Ref(ta), y=ty)
        netlist = elaborate(top)
        names = [sig.name for sig, _ in netlist.assigns]
        assert any(name.startswith("m0.") for name in names)
        values = run_comb(netlist, {"a": 7})
        assert values["y"] == 12

    def test_undriven_output_rejected(self):
        m = Module("m")
        m.input("a", 4)
        m.output("y", 4)
        with pytest.raises(DriverError):
            elaborate(m)

    def test_read_of_undriven_wire_rejected(self):
        m = Module("m")
        y = m.output("y", 4)
        ghost = m.wire("ghost", 4)
        m.assign(y, ops.add(ghost, 1))
        with pytest.raises(DriverError):
            elaborate(m)

    def test_register_without_next_rejected(self):
        m = Module("m")
        y = m.output("y", 4)
        r = m.reg("r", 4)
        m.assign(y, ops.add(r, 0))
        with pytest.raises(ElaborationError):
            elaborate(m)

    def test_combinational_loop_detected(self):
        m = Module("m")
        y = m.output("y", 4)
        a = m.wire("a", 4)
        b = m.wire("b", 4)
        m.assign(a, ops.add(b, 1))
        m.assign(b, ops.add(a, 1))
        m.assign(y, Ref(a))
        netlist = elaborate(m)
        with pytest.raises(CombinationalLoopError):
            netlist.comb_order()

    def test_register_breaks_loop(self):
        m = Module("m")
        y = m.output("y", 4)
        r = m.reg("r", 4)
        m.set_next(r, ops.add(r, 1))
        m.assign(y, Ref(r))
        netlist = elaborate(m)
        netlist.comb_order()  # must not raise

    def test_n_io_counts_ports_plus_clock_reset(self):
        netlist = elaborate(make_adder(width=8))
        assert netlist.n_io == 24 + 2

    def test_stats(self):
        m = Module("m")
        a = m.input("a", 4)
        y = m.output("y", 4)
        r = m.reg("r", 4, next=Ref(a))
        m.assign(y, Ref(r))
        stats = elaborate(m).stats()
        assert stats["registers"] == 1
        assert stats["reg_bits"] == 4
        assert stats["assigns"] == 1

    def test_memory_cloned_per_instance(self):
        child = Module("child")
        addr = child.input("addr", 3)
        data = child.output("data", 8)
        mem = child.memory("scratch", 8, 8, init=[i * 2 for i in range(8)])
        from repro.rtl.ir import MemRead

        child.assign(data, MemRead(mem, Ref(addr)))
        top = Module("top")
        a = top.input("addr", 3)
        d0 = top.output("d0", 8)
        d1 = top.output("d1", 8)
        top.instance(child, "u0", addr=Ref(a), data=d0)
        top.instance(child, "u1", addr=Ref(a), data=d1)
        netlist = elaborate(top)
        assert len(netlist.memories) == 2
        assert netlist.memories[0].name != netlist.memories[1].name

    def test_instance_output_drives_only_once(self):
        top = Module("top")
        a = top.input("a", 8)
        y = top.output("y", 8)
        child = make_adder()
        top.instance(child, "u0", a=Ref(a), b=ops.const(1, 8), y=y)
        top.instance(child, "u1", a=Ref(a), b=ops.const(2, 8), y=y)
        with pytest.raises(DriverError):
            elaborate(top)
