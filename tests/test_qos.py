"""Tests for ``repro.qos``: token-bucket admission with computed
``Retry-After``, weighted deficit-round-robin fairness (integer-only,
deterministic), API-key → tenant resolution, per-tenant job quotas,
preempt-at-cell-boundary → resume byte-identity, and the HTTP surface
(403 for unknown keys, 429 + ``Retry-After`` under throttle/quota,
tenant-labelled pre-registered metrics)."""

import http.client
import json
import threading
import time
from dataclasses import asdict

import pytest

from repro import obs
from repro.api import Session
from repro.chaos import ChaosPolicy
from repro.core.errors import UsageError
from repro.eval.experiments import render_fig1
from repro.eval.measure import clear_measure_cache
from repro.exec.tasks import table2_tasks
from repro.fabric import TaskBroker
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.qos import (ANON, Keyring, RateLimiter, Tenant, TokenBucket,
                       UnknownApiKeyError, WeightedFairQueue)
from repro.resilience.runner import RunnerConfig
from repro.serve import EvalServer, ServeConfig
from repro.serve.jobs import JobManager, JobQueueFull, JobQuotaExceeded

DESIGN = "verilog-initial"

#: Enough cells that a preemption after the first still leaves real work.
LIGHT_FIG1 = {"bsc_configs": 2, "bambu_configs": 2, "xls_stages": 2}
#: The smallest useful sweep — what the high-priority tenant submits.
VIP_FIG1 = {"bsc_configs": 0, "bambu_configs": 1, "xls_stages": 1}


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.clear()
    yield
    obs.disable()
    obs.clear()


@pytest.fixture(scope="module")
def clean_light() -> str:
    """Uninterrupted serial baseline the preempted runs must reproduce."""
    clear_measure_cache()
    return render_fig1(Session(jobs=1).fig1(**LIGHT_FIG1))


# ---------------------------------------------------------------------------
# token bucket (injectable clock; integer arithmetic)
# ---------------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_admits_then_computed_retry_after(self):
        clock = [0.0]
        bucket = TokenBucket(rate_per_s=1, burst=2, clock=lambda: clock[0])
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() == 1          # 1000ms to the next token
        clock[0] = 1.0                            # one token matures
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() == 1

    def test_partial_refill_never_rounds_retry_to_zero(self):
        clock = [0.0]
        bucket = TokenBucket(rate_per_s=1, burst=1, clock=lambda: clock[0])
        assert bucket.try_acquire() is None
        clock[0] = 0.4                            # 400 of 1000 milli-tokens
        retry = bucket.try_acquire()
        assert retry == 1                         # ceil, and always >= 1

    def test_zero_rate_is_unlimited(self):
        bucket = TokenBucket(rate_per_s=0, burst=1, clock=lambda: 0.0)
        assert all(bucket.try_acquire() is None for _ in range(100))

    def test_decisions_are_deterministic_for_equal_clocks(self):
        readings = [0.0, 0.0, 0.3, 0.9, 2.0, 2.0, 2.0]

        def run():
            state = [0.0]
            bucket = TokenBucket(rate_per_s=1, burst=1,
                                 clock=lambda: state[0])
            out = []
            for reading in readings:
                state[0] = reading
                out.append(bucket.try_acquire())
            return out

        assert run() == run()

    def test_limiter_keeps_tenants_in_separate_buckets(self):
        limiter = RateLimiter(clock=lambda: 0.0)
        heavy = Tenant("heavy", rate_per_s=1, burst=1)
        light = Tenant("light", rate_per_s=1, burst=1)
        free = Tenant("free")                     # rate 0: unlimited
        assert limiter.try_acquire(heavy) is None
        assert limiter.try_acquire(heavy) == 1    # heavy is out of tokens
        assert limiter.try_acquire(light) is None  # light is not
        assert all(limiter.try_acquire(free) is None for _ in range(10))


# ---------------------------------------------------------------------------
# weighted fair queue (deficit round-robin)
# ---------------------------------------------------------------------------
def _drain(queue: WeightedFairQueue) -> list:
    out = []
    while True:
        item = queue.pop()
        if item is None:
            return out
        out.append(item)


class TestWeightedFairQueue:
    def test_single_tenant_degrades_to_fifo(self):
        queue = WeightedFairQueue()
        for item in ("a", "b", "c"):
            queue.enqueue(ANON, item)
        assert _drain(queue) == ["a", "b", "c"]
        assert queue.pop() is None

    def test_priority_orders_within_a_tenant(self):
        queue = WeightedFairQueue()
        queue.enqueue("t", "low1")
        queue.enqueue("t", "high", priority=5)
        queue.enqueue("t", "low2")
        assert _drain(queue) == ["high", "low1", "low2"]

    def test_weighted_interleave_is_exact_and_deterministic(self):
        def build():
            queue = WeightedFairQueue()
            for item in ("A1", "A2", "A3"):
                queue.enqueue("anon", item, weight=1)
            for item in ("H1", "H2", "H3"):
                queue.enqueue("heavy", item, weight=2)
            return queue

        first, second = _drain(build()), _drain(build())
        # one DRR trace: anon spends its quantum of 1, heavy its 2, ...
        assert first == ["A1", "H1", "H2", "A2", "H3", "A3"]
        assert first == second                    # integer-only: no drift

    def test_saturating_tenant_cannot_starve_a_light_one(self):
        queue = WeightedFairQueue()
        for index in range(40):
            queue.enqueue("heavy", f"H{index}", weight=4)
        queue.enqueue("light", "light", weight=1)
        pops = _drain(queue)
        # the bound: at most `heavy.weight` dequeues before light's turn
        assert pops.index("light") <= 4
        assert len(pops) == 41

    def test_reenqueue_with_old_seq_keeps_queue_position(self):
        queue = WeightedFairQueue()
        seq_a = queue.enqueue("t", "a")
        queue.enqueue("t", "b")
        queue.enqueue("t", "c")
        assert queue.pop() == "a"
        queue.enqueue("t", "a", seq=seq_a)        # preempted: back to head
        assert _drain(queue) == ["a", "b", "c"]

    def test_ready_filter_skips_without_losing_items(self):
        queue = WeightedFairQueue()
        queue.enqueue("t", "backoff")
        queue.enqueue("t", "runnable")
        assert queue.pop(ready=lambda item: item != "backoff") == "runnable"
        assert queue.pop(ready=lambda item: False) is None
        assert queue.pop() == "backoff"
        assert len(queue) == 0

    def test_highest_priority_and_snapshot(self):
        queue = WeightedFairQueue()
        assert queue.highest_priority() is None
        queue.enqueue("a", "x")
        queue.enqueue("b", "y", priority=3)
        queue.enqueue("b", "z", priority=-1)
        assert queue.highest_priority() == 3
        assert queue.snapshot() == {"a": 1, "b": 2}


# ---------------------------------------------------------------------------
# keyring: API keys -> tenants
# ---------------------------------------------------------------------------
_RING = {
    "tenants": {
        "heavy": {"weight": 4, "rate_per_s": 10, "burst": 20,
                  "max_jobs": 2, "priority": 5},
        "light": {"weight": 1},
    },
    "keys": {"k-heavy": "heavy", "k-light": "light"},
}


class TestKeyring:
    def test_resolves_keys_to_policies(self):
        ring = Keyring.from_dict(_RING)
        heavy = ring.resolve("k-heavy")
        assert (heavy.name, heavy.weight, heavy.max_jobs,
                heavy.priority) == ("heavy", 4, 2, 5)
        assert ring.resolve("k-light").rate_per_s == 0

    def test_no_key_is_the_anonymous_default(self):
        ring = Keyring.from_dict(_RING, default=Tenant(weight=3))
        assert ring.resolve(None).name == ANON
        assert ring.resolve("").weight == 3

    def test_unknown_key_raises_never_demotes_to_anon(self):
        ring = Keyring.from_dict(_RING)
        with pytest.raises(UnknownApiKeyError):
            ring.resolve("k-heavy-typo")

    def test_bad_specs_are_usage_errors(self):
        with pytest.raises(UsageError):
            Keyring.from_dict([])                 # not an object
        with pytest.raises(UsageError):
            Keyring.from_dict(
                {"tenants": {"x": {"colour": "red"}}})  # unknown field
        with pytest.raises(UsageError):
            Keyring.from_dict(
                {"tenants": {}, "keys": {"k": "ghost"}})  # undeclared

    def test_load_rejects_missing_or_malformed_files(self, tmp_path):
        with pytest.raises(UsageError):
            Keyring.load(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(UsageError):
            Keyring.load(bad)
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_RING))
        assert Keyring.load(good).resolve("k-heavy").weight == 4

    def test_get_unknown_tenant_inherits_default_policy(self):
        ring = Keyring.from_dict(_RING, default=Tenant(weight=7, burst=3))
        ghost = ring.get("ghost")                 # journal-replayed tenant
        assert (ghost.name, ghost.weight, ghost.burst) == ("ghost", 7, 3)

    def test_all_tenants_is_default_first_then_sorted(self):
        ring = Keyring.from_dict(_RING)
        assert [t.name for t in ring.all_tenants()] == \
            [ANON, "heavy", "light"]


# ---------------------------------------------------------------------------
# job manager: quotas, fair-share dispatch, priority
# ---------------------------------------------------------------------------
class _GatedManager(JobManager):
    """JobManager whose jobs block on a gate and record execution order —
    lets a test queue work while the scheduler is provably busy, then
    release everything and inspect the dequeue order."""

    def __init__(self, *args, **kwargs):
        self.order = []
        self.gate = threading.Event()
        super().__init__(*args, **kwargs)

    def _execute(self, job):
        assert self.gate.wait(60), "test gate never opened"
        self.order.append(job.id)
        return f"ran {job.id}"


def _wait(predicate, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition never became true")


class TestJobManagerQoS:
    def test_scheduler_interleaves_tenants_by_weight(self):
        ring = Keyring.from_dict(
            {"tenants": {"heavy": {"weight": 2}}, "keys": {"hk": "heavy"}})
        manager = _GatedManager(Session(), max_queued=16, keyring=ring)
        blocker = manager.submit("fig1")
        _wait(lambda: blocker.status == "running")
        anon = [manager.submit("fig1") for _ in range(3)]
        heavy = [manager.submit("fig1", tenant=ring.resolve("hk"))
                 for _ in range(3)]
        manager.gate.set()
        manager.drain()
        a1, a2, a3 = (job.id for job in anon)
        h1, h2, h3 = (job.id for job in heavy)
        # the same DRR trace the queue unit test pins down, end to end
        assert manager.order == [blocker.id, a1, h1, h2, a2, h3, a3]
        assert all(job.status == "done" for job in manager.list())

    def test_priority_runs_first_within_a_tenant(self):
        manager = _GatedManager(Session(), max_queued=16)
        blocker = manager.submit("fig1")
        _wait(lambda: blocker.status == "running")
        low1 = manager.submit("fig1")
        high = manager.submit("fig1", priority=5)
        low2 = manager.submit("fig1")
        manager.gate.set()
        manager.drain()
        assert manager.order == [blocker.id, high.id, low1.id, low2.id]

    def test_quota_rejects_one_tenant_without_blocking_others(self):
        obs.enable()
        ring = Keyring.from_dict(
            {"tenants": {"limited": {"max_jobs": 1}},
             "keys": {"lk": "limited"}})
        manager = _GatedManager(Session(), max_queued=16, keyring=ring)
        first = manager.submit("fig1", tenant=ring.resolve("lk"))
        with pytest.raises(JobQuotaExceeded) as err:
            manager.submit("fig1", tenant=ring.resolve("lk"))
        assert isinstance(err.value, JobQueueFull)  # same 429 family
        assert err.value.retry_after >= 1
        other = manager.submit("fig1")            # anon is unaffected
        manager.gate.set()
        manager.drain()
        assert (first.status, other.status) == ("done", "done")
        counters = obs_metrics.snapshot()["counters"]
        assert counters["qos.quota_rejections"] == 1
        assert counters["qos.quota_rejections|tenant=limited"] == 1

    def test_journal_records_and_replays_tenant_and_priority(self, tmp_path):
        ring = Keyring.from_dict(
            {"tenants": {"heavy": {"weight": 2}}, "keys": {"hk": "heavy"}})
        journal = tmp_path / "jobs.jsonl"
        manager = _GatedManager(Session(), max_queued=8, journal=journal,
                                keyring=ring)
        job = manager.submit("fig1", tenant=ring.resolve("hk"), priority=7)
        manager.gate.set()
        _wait(lambda: job.status == "done")
        manager.drain()
        records = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        submitted = next(r for r in records if r["event"] == "submitted")
        assert (submitted["tenant"], submitted["priority"]) == ("heavy", 7)

        replayed = _GatedManager(Session(), max_queued=8, journal=journal,
                                 keyring=ring)
        back = replayed.get(job.id)
        assert (back.tenant, back.priority, back.status) == \
            ("heavy", 7, "done")
        replayed.drain()

    def test_resume_requeues_interrupted_job_with_its_tenant(self, tmp_path):
        journal = tmp_path / "jobs.jsonl"
        journal.write_text(json.dumps(
            {"event": "submitted", "id": "job-1", "kind": "fig1",
             "params": {}, "tenant": "heavy", "priority": 4}) + "\n")
        ring = Keyring.from_dict(
            {"tenants": {"heavy": {"weight": 2}}, "keys": {"hk": "heavy"}})
        manager = _GatedManager(Session(), max_queued=8, journal=journal,
                                resume=True, keyring=ring)
        job = manager.get("job-1")
        assert job.interrupted
        assert (job.tenant, job.priority) == ("heavy", 4)
        manager.gate.set()
        _wait(lambda: job.status == "done")
        manager.drain()


# ---------------------------------------------------------------------------
# preempt at a cell boundary -> resume byte-identical
# ---------------------------------------------------------------------------
def _preempt_scenario(base_session, clean: str):
    """Run the light sweep, preempt it with a VIP arrival synchronized
    off the first ``cell.done`` event, and assert the resumed output is
    byte-identical to an uninterrupted run."""
    obs.enable()
    ring = Keyring.from_dict(
        {"tenants": {"vip": {"priority": 5}}, "keys": {"vip-key": "vip"}})
    manager = JobManager(base_session, max_queued=8, keyring=ring)
    fired = threading.Event()
    vip_ids = []
    light = manager.submit("fig1", dict(LIGHT_FIG1))

    def arrive(event):
        if fired.is_set() or event.get("type") != "cell.done" \
                or event.get("job") != light.id:
            return
        fired.set()
        vip_ids.append(manager.submit(
            "fig1", dict(VIP_FIG1), tenant=ring.resolve("vip-key")).id)

    with obs_events.EVENTS.subscribe(arrive):
        _wait(lambda: fired.is_set() and all(
            job.status in ("done", "failed") for job in manager.list()),
            timeout=300)
    manager.drain()
    assert fired.is_set(), "light sweep finished before the VIP arrived"
    vip = manager.get(vip_ids[0])
    assert vip.status == "done", vip.error
    assert light.status == "done", light.error
    assert light.preemptions >= 1
    # the preemption actually reordered execution: VIP finished first
    assert vip.finished_at <= light.finished_at
    assert light.output == clean                  # byte-identical resume
    return light


class TestPreemptResume:
    def test_serial_sweep_resumes_byte_identical(self, clean_light):
        _preempt_scenario(Session(jobs=1), clean_light)
        counters = obs_metrics.snapshot()["counters"]
        assert counters["qos.preemptions"] >= 1
        assert counters["qos.preemptions|tenant=anon"] >= 1

    def test_parallel_sweep_resumes_byte_identical(self, clean_light):
        _preempt_scenario(Session(jobs=2), clean_light)

    def test_preemption_composes_with_kill_chaos(self, clean_light):
        """SIGKILL chaos on every first attempt plus a mid-sweep
        preemption: supervision re-dispatches, the checkpoint resumes,
        and the output still must not move by a byte."""
        session = Session(jobs=2, chaos=ChaosPolicy(seed=3, kill=1.0))
        _preempt_scenario(session, clean_light)


# ---------------------------------------------------------------------------
# fabric broker: fair-share leases
# ---------------------------------------------------------------------------
def _sweep_payload(n=1, priority=None):
    payload = {
        "tasks": [task.to_record() for task in table2_tasks()[:n]],
        "config": asdict(RunnerConfig()),
        "inject": [], "skip": [], "trace": False,
    }
    if priority is not None:
        payload["priority"] = priority
    return payload


class TestBrokerFairShare:
    def setup_method(self):
        self.clock = [0.0]
        self.broker = TaskBroker(lease_s=10.0, backoff_s=0.0,
                                 clock=lambda: self.clock[0])

    def test_bad_priority_is_a_value_error(self):
        with pytest.raises(ValueError):
            self.broker.submit(_sweep_payload(1, priority=True))
        with pytest.raises(ValueError):
            self.broker.submit(_sweep_payload(1, priority="high"))

    def test_leases_interleave_tenants_by_weight(self):
        anon_sweep = self.broker.submit(_sweep_payload(2))
        heavy_sweep = self.broker.submit(
            _sweep_payload(2), tenant=Tenant("heavy", weight=2))
        owners = [self.broker.tasks[lease["id"]].sweep
                  for lease in self.broker.lease("w1", limit=8)]
        assert owners == [anon_sweep, heavy_sweep, heavy_sweep, anon_sweep]

    def test_priority_orders_one_tenants_sweeps(self):
        first = self.broker.submit(_sweep_payload(1))
        urgent = self.broker.submit(_sweep_payload(1, priority=5))
        owners = [self.broker.tasks[lease["id"]].sweep
                  for lease in self.broker.lease("w1", limit=2)]
        assert owners == [urgent, first]

    def test_tenant_default_priority_applies_when_payload_is_silent(self):
        sweep = self.broker.submit(
            _sweep_payload(1), tenant=Tenant("vip", priority=7))
        assert self.broker.sweeps[sweep].priority == 7

    def test_expired_task_requeues_at_its_original_position(self):
        sweep = self.broker.submit(_sweep_payload(2))
        (first,) = self.broker.lease("w1", limit=1)
        self.clock[0] = 11.0
        assert self.broker.expire() == 1
        leases = self.broker.lease("w2", limit=2)
        # the retry leads: it kept its seq, it did not go to the back
        assert [lease["id"] for lease in leases] == \
            [first["id"], f"{sweep}-1"]
        assert leases[0]["attempt"] == 1


# ---------------------------------------------------------------------------
# HTTP surface (live in-process server)
# ---------------------------------------------------------------------------
class _LiveServer:
    """EvalServer on a background thread; requests carry headers and the
    response headers come back (``Retry-After`` assertions need them)."""

    def __init__(self, session, **config):
        self.server = EvalServer(session, ServeConfig(port=0, **config))
        self.host = self.port = None
        self.exit_code = None
        self._announced = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._announced.wait(120), "server never announced"

    def _run(self):
        def announce(host, port):
            self.host, self.port = host, port
            self._announced.set()

        self.exit_code = self.server.serve_forever(announce=announce)

    def request(self, method, path, payload=None, headers=None, timeout=120):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            body = None if payload is None else json.dumps(payload).encode()
            conn.request(method, path, body=body,
                         headers=dict(headers or ()))
            response = conn.getresponse()
            return response.status, dict(response.headers), response.read()
        finally:
            conn.close()

    def stop(self, code=0):
        self.server.request_drain(code)
        self._thread.join(timeout=120)
        assert not self._thread.is_alive(), "server failed to drain"
        return self.exit_code


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.fixture()
def live(session):
    servers = []

    def start(**config):
        server = _LiveServer(session, **config)
        servers.append(server)
        return server

    yield start
    for server in servers:
        if server._thread.is_alive():
            server.stop()


@pytest.fixture()
def keyfile(tmp_path):
    path = tmp_path / "keys.json"
    path.write_text(json.dumps({
        "tenants": {
            "heavy": {"weight": 4, "rate_per_s": 1, "burst": 1,
                      "priority": 5},
            "light": {"weight": 1},
        },
        "keys": {"heavy-key": "heavy", "light-key": "light"},
    }))
    return str(path)


class TestServeQoS:
    def test_unknown_key_is_403_known_key_resolves(self, live, keyfile):
        server = live(batch_wait_s=0.0, api_keys=keyfile)
        status, _, body = server.request(
            "GET", "/healthz", headers={"X-Api-Key": "heavy-key-typo"})
        assert status == 403
        assert b"unknown API key" in body
        status, _, _ = server.request(
            "GET", "/healthz", headers={"X-Api-Key": "heavy-key"})
        assert status == 200
        status, _, _ = server.request("GET", "/healthz")  # anon still works
        assert status == 200
        assert server.stop() == 0

    def test_throttle_answers_429_with_computed_retry_after(self, live,
                                                            keyfile):
        server = live(batch_wait_s=0.0, api_keys=keyfile)
        # frozen clock: heavy's burst-1 bucket admits exactly one request
        server.server.limiter = RateLimiter(clock=lambda: 100.0)
        key = {"X-Api-Key": "heavy-key"}
        status, _, _ = server.request(
            "POST", "/v1/measure", {"design": DESIGN}, headers=key)
        assert status == 200
        status, headers, body = server.request(
            "POST", "/v1/measure", {"design": DESIGN}, headers=key)
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        # a different tenant is untouched by heavy's empty bucket
        status, _, _ = server.request(
            "POST", "/v1/measure", {"design": DESIGN},
            headers={"X-Api-Key": "light-key"})
        assert status == 200
        status, _, body = server.request("GET", "/metrics")
        text = body.decode()
        assert 'repro_qos_throttled{tenant="heavy"} 1' in text
        assert server.stop() == 0

    def test_jobs_expose_tenant_priority_and_filter(self, live, keyfile):
        server = live(batch_wait_s=0.0, api_keys=keyfile)
        tiny = {"bsc_configs": 0, "bambu_configs": 1, "xls_stages": 1}
        status, _, body = server.request(
            "POST", "/v1/jobs", {"kind": "fig1", "params": tiny,
                                 "priority": 2},
            headers={"X-Api-Key": "heavy-key"})
        assert status == 202
        heavy_job = json.loads(body)
        assert (heavy_job["tenant"], heavy_job["priority"]) == ("heavy", 2)
        status, _, body = server.request(
            "POST", "/v1/jobs", {"kind": "fig1", "params": tiny})
        assert status == 202
        anon_job = json.loads(body)
        assert (anon_job["tenant"], anon_job["priority"]) == (ANON, 0)
        # a non-integer priority is a 400, not a silent coercion
        status, _, _ = server.request(
            "POST", "/v1/jobs", {"kind": "fig1", "priority": True})
        assert status == 400
        status, _, body = server.request("GET", "/v1/jobs?tenant=heavy")
        assert status == 200
        listed = json.loads(body)["jobs"]
        assert [job["id"] for job in listed] == [heavy_job["id"]]
        status, _, body = server.request("GET", "/v1/jobs")
        assert {job["id"] for job in json.loads(body)["jobs"]} == \
            {heavy_job["id"], anon_job["id"]}

        def both_done():
            _, _, out = server.request("GET", "/v1/jobs")
            return all(job["status"] in ("done", "failed")
                       for job in json.loads(out)["jobs"])

        _wait(both_done, timeout=300)
        assert server.stop() == 0

    def test_quota_429_retry_after_and_preregistered_series(self, live,
                                                            keyfile):
        server = live(batch_wait_s=0.0, api_keys=keyfile, tenant_quota=0)
        # every keyring tenant's QoS series exists at zero before any event
        status, _, body = server.request("GET", "/metrics")
        text = body.decode()
        for tenant in (ANON, "heavy", "light"):
            assert f'repro_qos_throttled{{tenant="{tenant}"}} 0' in text
            assert f'repro_qos_preemptions{{tenant="{tenant}"}} 0' in text
            assert f'repro_qos_quota_rejections{{tenant="{tenant}"}} 0' \
                in text
        status, headers, body = server.request(
            "POST", "/v1/jobs", {"kind": "fig1"})
        assert status == 429                      # anon quota is zero
        assert b"quota" in body
        assert int(headers["Retry-After"]) >= 1
        status, _, body = server.request("GET", "/metrics")
        text = body.decode()
        assert 'repro_qos_quota_rejections{tenant="anon"} 1' in text
        assert server.stop() == 0
