"""Cross-tool integration: every frontend computes the same function.

The paper's whole methodology assumes all implementations are the same
algorithm; here that is checked end-to-end: the same random matrices go
through all seven flows, and every output must be bit-identical to the
golden model (and therefore to each other).
"""

import pytest

from repro.axis import StreamHarness, every
from repro.eval.verify import random_matrices
from repro.idct import chen_wang_idct
from repro.sim import Simulator


def stream_designs():
    from repro.frontends.chls import vivado_opt
    from repro.frontends.hc import chisel_initial, chisel_opt
    from repro.frontends.rules import bsv_initial, bsv_opt
    from repro.frontends.flow import xls_design
    from repro.frontends.vlog import verilog_initial, verilog_opt, verilog_opt1

    return [
        verilog_initial, verilog_opt1, verilog_opt,
        chisel_initial, chisel_opt,
        bsv_initial, bsv_opt,
        lambda: xls_design(5),
        vivado_opt,
    ]


@pytest.mark.parametrize("factory", stream_designs(),
                         ids=lambda f: getattr(f, "__name__", "xls"))
def test_all_stream_tools_agree_with_golden(factory):
    design = factory()
    matrices = random_matrices(3, seed=77)
    harness = StreamHarness(Simulator(design.top), design.spec)
    outs, _timing = harness.run_matrices(matrices)
    assert outs == [chen_wang_idct(m) for m in matrices]


@pytest.mark.parametrize("factory", stream_designs()[:7],
                         ids=lambda f: getattr(f, "__name__", "xls"))
def test_tools_survive_randomish_throttling(factory):
    design = factory()
    matrices = random_matrices(2, seed=55)
    harness = StreamHarness(Simulator(design.top), design.spec)
    outs, _ = harness.run_matrices(
        matrices, valid_pattern=every(2), ready_pattern=every(3, offset=1),
        timeout=200_000,
    )
    assert outs == [chen_wang_idct(m) for m in matrices]


def test_maxj_agrees_with_golden():
    from repro.frontends.maxj import maxj_initial, maxj_opt, verify_maxj

    matrices = random_matrices(3, seed=99)
    assert verify_maxj(maxj_initial(), matrices)
    assert verify_maxj(maxj_opt(), matrices)


def test_slow_c_designs_agree_with_golden():
    from repro.frontends.chls import bambu_opt, vivado_initial

    matrices = random_matrices(2, seed=42)
    for factory in (bambu_opt, vivado_initial):
        design = factory()
        harness = StreamHarness(Simulator(design.top), design.spec)
        outs, _ = harness.run_matrices(matrices, timeout=50_000)
        assert outs == [chen_wang_idct(m) for m in matrices]


def test_interp_and_compiled_engines_agree_on_a_frontend_design():
    from repro.frontends.hc import chisel_opt
    from repro.rtl import elaborate

    design = chisel_opt()
    netlist = elaborate(design.top)
    matrices = random_matrices(2, seed=5)
    results = []
    for engine in ("compiled", "interp"):
        harness = StreamHarness(Simulator(netlist, engine=engine), design.spec)
        outs, _ = harness.run_matrices(matrices)
        results.append(outs)
    assert results[0] == results[1]
