"""Tests for the lane-packed batch simulator and the engine registry.

Covers the SWAR emitter op-by-op against the interpreter oracle, the
full design matrix (batch engine vs interp, every non-MaxJ frontend),
the B=1 scalar adapter behind ``Simulator(engine="batch")``, the engine
registry (resolution, suggestions, contexts, serialization), and the
``Session.verify`` cache-threading fix.
"""

import random

import pytest

from repro.api import (
    Session,
    UnknownEngineError,
    default_engine,
    design_names,
    engine_names,
    engines_payload,
    render_engines_json,
    resolve_engine,
)
from repro.axis import StreamHarness
from repro.core.errors import SimulationError, UsageError
from repro.eval.measure import _CACHE, clear_measure_cache, measure_design
from repro.eval.verify import random_matrices
from repro.frontends.vlog import verilog_initial, verilog_opt
from repro.idct.reference import chen_wang_idct
from repro.rtl import Module, ops
from repro.sim import (
    BatchSimulator,
    BatchStreamRunner,
    Simulator,
    compile_batch,
    scalar_adapter,
)

WIDTH = 12
# Multiplier constants chosen to hit every MULS-by-const emitter branch:
# zero, +/-1 (multiply elided), positive/negative magnitudes, and the
# two's-complement extremes of the constant's width.
MUL_CONSTS = (0, 1, -1, 3, -7, 181, 2047, -2048)


def make_alu():
    """Combinational module exercising every vectorized op shape."""
    m = Module("alu")
    a = m.input("a", WIDTH)
    b = m.input("b", WIDTH)
    m.assign(m.output("o_add", WIDTH), ops.add(a, b))
    m.assign(m.output("o_sub", WIDTH), ops.sub(a, b))
    m.assign(m.output("o_and", WIDTH), ops.band(a, b))
    m.assign(m.output("o_xor", WIDTH), ops.bxor(a, b))
    m.assign(m.output("o_not", WIDTH), ops.bnot(a))
    m.assign(m.output("o_mux", WIDTH), ops.mux(ops.lt(a, b), a, b))
    m.assign(m.output("o_shr", WIDTH), ops.ashr(a, 2))
    m.assign(m.output("o_lt", 1), ops.lt(a, b))
    m.assign(m.output("o_eq", 1), ops.eq(a, b))
    for i, c in enumerate(MUL_CONSTS):
        e = ops.mul(a, c)               # MULS by constant (SWAR path)
        m.assign(m.output(f"o_mul{i}", e.width), e)
    e = ops.mul(a, b)                   # MULS var*var (per-lane fallback)
    m.assign(m.output("o_mulv", e.width), e)
    return m


def make_accumulator(width=16):
    m = Module("acc")
    data = m.input("data", width)
    total = m.output("total", width)
    acc = m.reg("acc", width)
    m.set_next(acc, ops.add(acc, data))
    m.assign(total, ops.ref(acc))
    return m


def _lane_inputs(rng, lanes):
    return [rng.randrange(1 << WIDTH) for _ in range(lanes)]


# ---------------------------------------------------------------------------
# SWAR emitter vs the interpreter oracle
# ---------------------------------------------------------------------------
class TestSwarOps:
    def test_every_op_matches_interp_lanewise(self):
        module = make_alu()
        lanes = 8
        batch = BatchSimulator(module, lanes=lanes)
        oracle = Simulator(make_alu(), engine="interp")
        outputs = [s.name for s in batch.netlist.outputs]
        assert outputs, "ALU module elaborated with no outputs"
        rng = random.Random(20230317)
        for _ in range(16):
            a_vals = _lane_inputs(rng, lanes)
            b_vals = _lane_inputs(rng, lanes)
            batch.poke_lanes("a", a_vals)
            batch.poke_lanes("b", b_vals)
            for name in outputs:
                got = batch.peek_lanes(name)
                for lane in range(lanes):
                    oracle.poke("a", a_vals[lane])
                    oracle.poke("b", b_vals[lane])
                    assert got[lane] == oracle.peek(name).uint, (
                        f"{name} lane {lane}: a={a_vals[lane]} "
                        f"b={b_vals[lane]}")

    def test_muls_const_input_extremes(self):
        """The sign-split product formula at the input corner cases."""
        module = make_alu()
        lanes = 4
        batch = BatchSimulator(module, lanes=lanes)
        oracle = Simulator(make_alu(), engine="interp")
        extremes = [0, 1, (1 << (WIDTH - 1)) - 1,   # 0, 1, +max
                    1 << (WIDTH - 1),               # -min
                    (1 << WIDTH) - 1]               # -1
        outputs = [s.name for s in batch.netlist.outputs
                   if s.name.startswith("o_mul")]
        for at in range(0, len(extremes), lanes):
            chunk = (extremes[at:at + lanes] * lanes)[:lanes]
            batch.poke_lanes("a", chunk)
            batch.poke_lanes("b", chunk)
            for name in outputs:
                got = batch.peek_lanes(name)
                for lane, value in enumerate(chunk):
                    oracle.poke("a", value)
                    oracle.poke("b", value)
                    assert got[lane] == oracle.peek(name).uint, (
                        f"{name}: a={value}")

    def test_sequential_lanes_tick_independently(self):
        lanes = 4
        batch = BatchSimulator(make_accumulator(), lanes=lanes)
        streams = [[(lane + 1) * step for step in range(1, 6)]
                   for lane in range(lanes)]
        for step in range(5):
            batch.poke_lanes("data", [streams[l][step] for l in range(lanes)])
            batch.step()
        totals = batch.peek_lanes("total")
        assert totals == [sum(streams[l]) for l in range(lanes)]
        assert batch.cycles == 5

    def test_compiled_source_introspection(self):
        from repro.rtl import elaborate

        compiled = compile_batch(elaborate(make_alu()), lanes=4)
        assert compiled.lanes == 4
        assert "def settle" in compiled.source
        sim = BatchSimulator(make_alu(), lanes=4)
        assert "def settle" in sim.compiled_source
        adapter = scalar_adapter(elaborate(make_accumulator()))
        assert "def settle" in adapter.source


# ---------------------------------------------------------------------------
# full design matrix: batch engine vs the interp oracle, every frontend
# ---------------------------------------------------------------------------
def _sim_designs():
    """Every design the sim engines apply to (MaxJ takes the PCIe
    system path in measurement, not the AXI-Stream harness)."""
    return [n for n in design_names() if not n.startswith("maxj-")]


class TestDesignMatrix:
    @pytest.mark.parametrize("name", _sim_designs())
    def test_batch_matches_interp(self, name):
        design = Session().build(name)
        matrices = random_matrices(2, seed=11)
        oracle = StreamHarness(
            Simulator(design.top, engine="interp"), design.spec)
        want, _timing = oracle.run_matrices(matrices, timeout=50_000)
        runner = BatchStreamRunner(design.top, design.spec, lanes=4)
        got = runner.run_blocks([[list(r) for r in m] for m in matrices],
                                timeout=50_000)
        assert got == want
        # and both agree with the golden model, not just each other
        assert got == [chen_wang_idct(m) for m in matrices]


class TestStreamRunner:
    def test_uneven_block_counts_and_lane_shapes(self):
        design = verilog_opt()
        for n_blocks, lanes in ((5, 8), (10, 4)):
            blocks = [[list(r) for r in m]
                      for m in random_matrices(n_blocks, seed=n_blocks)]
            runner = BatchStreamRunner(design.top, design.spec, lanes=lanes)
            got = runner.run_blocks(blocks)
            assert got == [chen_wang_idct(b) for b in blocks]

    def test_simulator_batch_engine_matches_compiled_with_timing(self):
        design = verilog_initial()
        matrices = random_matrices(3, seed=9)
        results = []
        for engine in ("compiled", "batch"):
            harness = StreamHarness(
                Simulator(design.top, engine=engine), design.spec)
            outs, timing = harness.run_matrices(matrices)
            results.append((outs, timing.latency, timing.periodicity,
                            timing.total_cycles))
        assert results[0] == results[1]

    def test_simulator_rejects_unknown_engine(self):
        with pytest.raises(SimulationError):
            Simulator(make_accumulator(), engine="vector")


# ---------------------------------------------------------------------------
# engine registry
# ---------------------------------------------------------------------------
class TestEngineRegistry:
    def test_resolution_and_defaults(self):
        assert resolve_engine("batch") == "batch"
        assert resolve_engine("batch", "sim") == "batch"
        assert resolve_engine("batch", "serve") == "batch"
        assert default_engine("sim") == "compiled"
        assert default_engine("serve") == "model"
        assert engine_names("sim") == ("interp", "compiled", "batch")
        assert engine_names("serve") == ("batch", "model", "sim")

    def test_unknown_engine_suggests_near_miss(self):
        with pytest.raises(UnknownEngineError) as excinfo:
            resolve_engine("compield")
        assert "did you mean" in str(excinfo.value)
        assert "compiled" in excinfo.value.suggestions
        # the error satisfies both historical contracts
        assert isinstance(excinfo.value, ValueError)
        assert isinstance(excinfo.value, UsageError)

    def test_engine_outside_context_is_rejected(self):
        with pytest.raises(UnknownEngineError, match="not available"):
            resolve_engine("model", "sim")
        with pytest.raises(UnknownEngineError, match="not available"):
            resolve_engine("interp", "serve")

    def test_json_rendering_is_canonical(self):
        import json

        text = render_engines_json()
        assert text.endswith("\n")
        assert json.loads(text) == engines_payload()
        names = [spec["name"] for spec in json.loads(text)["engines"]]
        assert names == list(engine_names())

    def test_cli_engines_json_is_the_one_serialization(self, capsys):
        from repro.cli import main

        assert main(["engines", "--json"]) == 0
        assert capsys.readouterr().out == render_engines_json()

    def test_cli_engines_text_lists_every_engine(self, capsys):
        from repro.cli import main

        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in engine_names():
            assert name in out

    def test_cli_rejects_unknown_engine_with_exit_2(self, capsys):
        # argparse `choices` (fed from the registry) rejects it up front
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "verilog-initial", "--engine", "hopeful"])
        assert excinfo.value.code == 2
        assert "hopeful" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# cache threading through Session.verify and the measure memo
# ---------------------------------------------------------------------------
class TestVerifyCaching:
    def test_verify_defaults_to_session_cache(self, tmp_path):
        session = Session(cache=tmp_path / "cache")
        clear_measure_cache()
        cold = session.verify("verilog-initial")
        assert session.cache.stats["puts"] > 0
        clear_measure_cache()  # force the disk path, not the memo
        warm = session.verify("verilog-initial")
        assert warm == cold
        assert session.cache.stats["hits"] > 0

    def test_verify_use_cache_false_forces_fresh(self, tmp_path):
        from repro import obs
        from repro.obs import metrics as obs_metrics

        session = Session(cache=tmp_path / "cache")
        clear_measure_cache()
        session.verify("verilog-initial")
        clear_measure_cache()
        obs.enable()
        obs.clear()
        try:
            fresh = session.verify("verilog-initial", use_cache=False)
            # a full measurement ran — neither the memo nor the disk
            # "measured" artifact short-circuited it
            assert obs_metrics.counter("measure.designs").value == 1
        finally:
            obs.disable()
            obs.clear()
        assert ("verilog-initial", 4, "compiled") not in _CACHE
        assert fresh.bit_exact

    def test_measure_memo_is_engine_keyed(self):
        clear_measure_cache()
        design = verilog_initial()
        compiled = measure_design(design, engine="compiled")
        batch = measure_design(design, engine="batch")
        assert ((design.name, 4, "compiled") in _CACHE
                and (design.name, 4, "batch") in _CACHE)
        # two engines, one truth: identical measurements either way
        assert compiled == batch
        clear_measure_cache()
