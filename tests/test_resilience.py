"""Tests for ``repro.resilience``: taxonomy, budgets, runner, checkpoint
resume identity, and the fault-injection campaign."""

import json
from types import SimpleNamespace

import pytest

from repro.core.errors import (
    BudgetExceeded,
    BuildError,
    HarnessTimeout,
    ReproError,
    ScheduleError,
    SimulationError,
    SweepInterrupted,
)
from repro.resilience import budget as res_budget
from repro.resilience.checkpoint import (
    Checkpoint,
    measured_from_dict,
    measured_to_dict,
)
from repro.resilience.errors import failure_reason, failure_record
from repro.resilience.runner import DesignResult, RunnerConfig, SweepRunner


# ----------------------------------------------------------------------
# error taxonomy
# ----------------------------------------------------------------------

class TestTaxonomy:
    def test_hierarchy(self):
        # Schedule failures are build failures; harness timeouts are
        # simulation failures; everything is a ReproError.
        assert issubclass(ScheduleError, BuildError)
        assert issubclass(HarnessTimeout, SimulationError)
        for cls in (BuildError, SimulationError, BudgetExceeded,
                    SweepInterrupted):
            assert issubclass(cls, ReproError)

    def test_plain_message_unchanged(self):
        err = ScheduleError("out of ports")
        assert str(err) == "out of ports"
        assert err.design is None and err.phase is None and err.context == {}

    def test_context_suffix_and_record(self):
        err = ScheduleError("out of ports", design="d1", phase="chls.schedule",
                            array="mem", ports=2, bad=object())
        assert str(err) == "out of ports [design=d1, phase=chls.schedule]"
        record = err.record()
        assert record["type"] == "ScheduleError"
        assert record["design"] == "d1"
        assert record["context"] == {"array": "mem", "ports": 2}  # bad dropped

    def test_with_context_fills_but_never_overwrites(self):
        err = ReproError("x", phase="sim")
        err.with_context(design="d2", phase="other")
        assert err.design == "d2"
        assert err.phase == "sim"

    def test_harness_timeout_attributes(self):
        err = HarnessTimeout("hung", cycles=900, beats_in=5, beats_out=2)
        assert (err.cycles, err.beats_in, err.beats_out) == (900, 5, 2)
        assert isinstance(err, SimulationError)

    def test_failure_record_for_foreign_exception(self):
        record = failure_record(ValueError("boom"), design="d", phase="p")
        assert record == {"type": "ValueError", "message": "boom",
                          "design": "d", "phase": "p", "context": {}}
        assert failure_reason(record) == "ValueError"
        assert failure_reason({}) == "error"


# ----------------------------------------------------------------------
# budgets
# ----------------------------------------------------------------------

class TestBudget:
    def test_cycle_budget_raises_on_overflow(self):
        budget = res_budget.Budget(max_cycles=10, design="d", phase="measure")
        budget.charge(10)
        with pytest.raises(BudgetExceeded) as info:
            budget.charge()
        assert info.value.design == "d"
        assert info.value.context["limit_cycles"] == 10

    def test_wall_budget_checked_at_interval(self):
        budget = res_budget.Budget(wall_s=0.0)
        with pytest.raises(BudgetExceeded):
            budget.charge(res_budget.WALL_CHECK_INTERVAL)

    def test_charge_is_noop_when_unarmed(self):
        assert res_budget.active() is None
        res_budget.charge(10_000)  # must not raise

    def test_limit_arms_and_restores(self):
        budget = res_budget.Budget(max_cycles=5)
        with res_budget.limit(budget):
            assert res_budget.active() is budget
            with pytest.raises(BudgetExceeded):
                res_budget.charge(6)
        assert res_budget.active() is None

    def test_simulator_charges_active_budget(self):
        from repro.frontends.vlog import verilog_initial
        from repro.sim import Simulator

        sim = Simulator(verilog_initial().top)
        with res_budget.limit(res_budget.Budget(max_cycles=3)):
            sim.step(3)
            with pytest.raises(BudgetExceeded):
                sim.step()
        sim.step()  # unarmed again: no budget applies


# ----------------------------------------------------------------------
# harness timeout
# ----------------------------------------------------------------------

class TestHarnessTimeout:
    def test_timeout_carries_progress(self):
        from repro.axis.harness import StreamHarness
        from repro.eval.verify import random_matrices
        from repro.frontends.vlog import verilog_initial
        from repro.sim import Simulator

        design = verilog_initial()
        harness = StreamHarness(Simulator(design.top), design.spec)
        with pytest.raises(HarnessTimeout) as info:
            harness.run_matrices(random_matrices(2), timeout=4)
        err = info.value
        assert err.phase == "sim.stream"
        assert err.cycles > 4
        assert err.beats_out < 16  # never produced both matrices


# ----------------------------------------------------------------------
# sweep runner
# ----------------------------------------------------------------------

def _design(name="dut"):
    return SimpleNamespace(name=name, config="initial")


def _measured(name="dut"):
    from repro.eval.measure import Measured

    return Measured(name=name, language="V", tool="T", config="initial",
                    loc=10, fmax_mhz=100.0, t_clk_ns=10.0, latency=8,
                    periodicity=8, throughput_mops=1.5, lut_star=20,
                    ff_star=10, lut=20, ff=10, dsp=0, n_io=4)


class TestSweepRunner:
    def test_retry_then_success(self):
        calls = []

        def flaky(design, **kwargs):
            calls.append(kwargs)
            if len(calls) == 1:
                raise SimulationError("transient", phase="sim")
            return "measured"

        runner = SweepRunner(measure_fn=flaky)
        result = runner.measure(_design())
        assert result.ok and result.measured == "measured"
        assert result.attempts == 2 and not result.degraded
        assert runner.stats["retries"] == 1

    def test_degraded_final_attempt(self):
        def fails_unless_degraded(design, **kwargs):
            if kwargs.get("engine") != "interp":
                raise SimulationError("compiled engine broken")
            return "degraded-measure"

        runner = SweepRunner(measure_fn=fails_unless_degraded)
        result = runner.measure(_design())
        assert result.ok and result.degraded
        assert result.attempts == 3  # normal, retry, degraded

    def test_total_failure_is_contained(self):
        def always_fails(design, **kwargs):
            raise ScheduleError("no schedule", phase="chls.schedule")

        runner = SweepRunner(measure_fn=always_fails)
        result = runner.measure(_design())
        assert not result.ok
        assert result.error["type"] == "ScheduleError"
        assert result.reason == "ScheduleError"
        assert runner.stats["failed"] == 1

    def test_injected_failure_skips_measurement(self):
        def never_called(design, **kwargs):  # pragma: no cover
            raise AssertionError("measure_fn must not run for injected fault")

        runner = SweepRunner(measure_fn=never_called,
                             inject_failures={"dut"})
        result = runner.measure(_design())
        assert not result.ok and result.error["phase"] == "injected"

    def test_abort_after_raises_after_recording(self, tmp_path):
        checkpoint = Checkpoint(tmp_path / "ck.jsonl")
        runner = SweepRunner(measure_fn=lambda d, **kw: _measured(d.name),
                             checkpoint=checkpoint, abort_after=2)
        runner.measure(_design("a"))
        with pytest.raises(SweepInterrupted):
            runner.measure(_design("b"))
        # Both results were recorded before the interrupt fired.
        assert "a" in checkpoint and "b" in checkpoint

    def test_checkpoint_hit_skips_measure(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        first = SweepRunner(measure_fn=lambda d, **kw: _measured(d.name),
                            checkpoint=Checkpoint(path))
        first.measure(_design())

        def never_called(design, **kwargs):  # pragma: no cover
            raise AssertionError("resumed design must come from checkpoint")

        resumed = SweepRunner(measure_fn=never_called,
                              checkpoint=Checkpoint(path, resume=True))
        result = resumed.measure(_design())
        assert result.from_checkpoint
        assert resumed.stats["checkpoint_hits"] == 1


# ----------------------------------------------------------------------
# checkpoint store
# ----------------------------------------------------------------------

class TestCheckpoint:
    def test_measured_round_trip_is_exact(self):
        from repro.eval.measure import measure_design
        from repro.frontends.vlog import verilog_initial

        measured = measure_design(verilog_initial())
        data = json.loads(json.dumps(measured_to_dict(measured)))
        assert measured_from_dict(data) == measured

    def test_fresh_checkpoint_truncates(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        Checkpoint(path).record("a", status="ok")
        assert "a" in Checkpoint(path, resume=True)
        assert "a" not in Checkpoint(path, resume=False)

    def test_failure_record_round_trip(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        error = failure_record(ScheduleError("x", design="a", phase="p"))
        Checkpoint(path).record("a", status="failed", error=error, attempts=3)
        record = Checkpoint(path, resume=True).get("a")
        assert record["status"] == "failed"
        assert record["error"]["type"] == "ScheduleError"
        assert record["attempts"] == 3


# ----------------------------------------------------------------------
# interrupted-then-resumed sweep identity (the PR's core guarantee)
# ----------------------------------------------------------------------

class TestResumeIdentity:
    FIG1_SIZES = dict(bsc_configs=1, bambu_configs=1, xls_stages=1)

    def test_fig1_resumed_equals_uninterrupted(self, tmp_path):
        from repro.eval.experiments import generate_fig1, render_fig1
        from repro.eval.measure import clear_measure_cache

        config = RunnerConfig(n_matrices=2)
        clear_measure_cache()
        fresh = render_fig1(generate_fig1(
            runner=SweepRunner(config=config), **self.FIG1_SIZES))

        # Interrupt a checkpointed run partway through...
        path = tmp_path / "fig1.jsonl"
        clear_measure_cache()
        with pytest.raises(SweepInterrupted):
            generate_fig1(runner=SweepRunner(
                config=config, checkpoint=Checkpoint(path), abort_after=4),
                **self.FIG1_SIZES)
        assert 0 < len(Checkpoint(path, resume=True)) <= 4

        # ...then resume it with a fresh process-equivalent state.
        clear_measure_cache()
        resumed_runner = SweepRunner(config=config,
                                     checkpoint=Checkpoint(path, resume=True))
        resumed = render_fig1(generate_fig1(runner=resumed_runner,
                                            **self.FIG1_SIZES))
        assert resumed == fresh
        assert resumed_runner.stats["checkpoint_hits"] > 0

    def test_fig1_reports_injected_failure(self):
        from repro.eval.experiments import generate_fig1, render_fig1

        series = generate_fig1(
            runner=SweepRunner(config=RunnerConfig(n_matrices=2),
                               inject_failures={"chisel-opt"}),
            **self.FIG1_SIZES)
        chisel = next(s for s in series if s.tool == "Chisel")
        assert ("opt", "ScheduleError") in chisel.failures
        assert all(config != "opt" for config, _, _ in chisel.points)
        assert "FAILED(ScheduleError)" in render_fig1(series)


class TestTable2Failures:
    def test_failed_column_renders_failed_cells(self):
        from repro.eval.experiments import generate_table2, render_table2
        from repro.eval.report import table2_markdown, write_markdown_report

        runner = SweepRunner(config=RunnerConfig(n_matrices=2),
                             inject_failures={"chisel-initial"})
        table = generate_table2(tools=["Chisel/Chisel"], runner=runner)
        column = table.columns["Chisel/Chisel"]
        assert column.failed and column.failure_reason == "ScheduleError"
        assert "FAILED(" in render_table2(table)
        assert "FAILED(ScheduleError)" in table2_markdown(table)
        assert "FAILED(ScheduleError)" in write_markdown_report(table)

    def test_baseline_failure_raises(self):
        from repro.core.errors import EvaluationError
        from repro.eval.experiments import generate_table2

        runner = SweepRunner(config=RunnerConfig(n_matrices=2),
                             inject_failures={"verilog-initial"})
        with pytest.raises(EvaluationError):
            generate_table2(tools=["Verilog/Vivado"], runner=runner)


# ----------------------------------------------------------------------
# fault injection and the mutation campaign
# ----------------------------------------------------------------------

class TestFaults:
    def test_apply_fault_semantics(self):
        from repro.resilience.faults import apply_fault
        from repro.rtl.ir import Const, eval_expr

        value = Const(0b1010, 4)
        read = read_mem = None
        assert eval_expr(apply_fault(value, "stuck0", 1, 4), read, read_mem) \
            == 0b1000
        assert eval_expr(apply_fault(value, "stuck1", 0, 4), read, read_mem) \
            == 0b1011
        assert eval_expr(apply_fault(value, "flip", 3, 4), read, read_mem) \
            == 0b0010

    def test_inject_leaves_original_untouched(self):
        from repro.frontends.vlog import verilog_initial
        from repro.resilience.faults import enumerate_sites, inject
        from repro.rtl import elaborate

        netlist = elaborate(verilog_initial().top)
        site = enumerate_sites(netlist)[0]
        mutant = inject(netlist, site, "flip")
        assert mutant is not netlist
        assert netlist.assigns[site.index][1] is not mutant.assigns[site.index][1]
        # All other entries are shared, not copied.
        assert netlist.assigns[site.index + 1] is mutant.assigns[site.index + 1]

    def test_output_bit_flips_always_detected(self):
        from repro.frontends.vlog import verilog_initial
        from repro.resilience.campaign import run_mutant
        from repro.resilience.faults import inject, output_data_sites
        from repro.rtl import elaborate

        design = verilog_initial()
        netlist = elaborate(design.top)
        sites = output_data_sites(netlist)
        assert sites, "wrapped design must expose output data sites"
        for site in sites[:2]:
            verdict = run_mutant(design, inject(netlist, site, "flip"),
                                 n_matrices=1)
            assert verdict is not None, site.describe("flip")

    def test_pristine_netlist_passes_all_batteries(self):
        from repro.frontends.vlog import verilog_initial
        from repro.resilience.campaign import run_mutant
        from repro.rtl import elaborate

        design = verilog_initial()
        assert run_mutant(design, elaborate(design.top), n_matrices=1) is None


class TestCampaign:
    def test_verilog_initial_mutants_detected_or_equivalent(self):
        from repro.frontends.vlog import verilog_initial
        from repro.resilience.campaign import run_campaign

        report = run_campaign(verilog_initial(), limit=12, seed=1,
                              n_matrices=2, equiv_matrices=8)
        assert report.total == 12
        # The PR's acceptance bar: ≥95% of non-equivalent single-fault
        # mutants are flagged by verify_design; the rest are documented.
        assert report.detection_rate >= 0.95
        for outcome in report.outcomes:
            assert outcome.detected or outcome.verdict == "equivalent"
        payload = report.to_dict()
        assert payload["detection_rate"] >= 0.95
        assert set(payload) >= {"strict_rate", "equivalent", "escalated"}
