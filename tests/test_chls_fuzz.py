"""Differential fuzzing of the HLS compiler.

Hypothesis generates random mini-C programs (expressions, locals, loops,
conditionals, array traffic); each is compiled to hardware and executed
in the simulator, and the result is compared with a direct interpreter of
the same AST using C99 semantics (int32 wrap-around, short truncation,
arithmetic shifts).  Any divergence is a compiler bug by construction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontends.chls import HlsOptions, build_function_top, parse
from repro.frontends.chls.transform import inline_program
from repro.sim import Simulator


def w32(v):
    return ((v + 0x80000000) & 0xFFFFFFFF) - 0x80000000


def w16(v):
    return ((v + 0x8000) & 0xFFFF) - 0x8000


# ----------------------------------------------------------------------
# random program generation (as source text, so the parser is fuzzed too)
# ----------------------------------------------------------------------

_BINOPS = ["+", "-", "*", "&", "|", "^"]


@st.composite
def expr_text(draw, names, depth=2):
    if depth == 0 or draw(st.booleans()):
        if names and draw(st.booleans()):
            return draw(st.sampled_from(names))
        return str(draw(st.integers(-100, 100)))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        op = draw(st.sampled_from(_BINOPS))
        a = draw(expr_text(names, depth - 1))
        b = draw(expr_text(names, depth - 1))
        return f"({a} {op} {b})"
    if kind == 1:
        a = draw(expr_text(names, depth - 1))
        shift = draw(st.integers(0, 7))
        op = draw(st.sampled_from(["<<", ">>"]))
        return f"({a} {op} {shift})"
    if kind == 2:
        cond = draw(expr_text(names, depth - 1))
        a = draw(expr_text(names, depth - 1))
        b = draw(expr_text(names, depth - 1))
        return f"(({cond}) > 0 ? {a} : {b})"
    a = draw(expr_text(names, depth - 1))
    return f"(-({a}))"


@st.composite
def program_text(draw):
    lines = ["int top(int a, int b) {"]
    names = ["a", "b"]
    n_stmts = draw(st.integers(1, 5))
    for i in range(n_stmts):
        value = draw(expr_text(names))
        name = f"t{i}"
        lines.append(f"  int {name} = {value};")
        names.append(name)
    # Optionally a loop accumulating one of the values.
    if draw(st.booleans()):
        trip = draw(st.integers(1, 5))
        source = draw(st.sampled_from(names))
        lines.append("  int acc = 0;")
        lines.append(f"  for (i = 0; i < {trip}; i++)")
        lines.append(f"    acc = acc + {source};")
        names.append("acc")
    # Optionally a conditional update.
    if draw(st.booleans()):
        cond = draw(expr_text(names, depth=1))
        target = draw(st.sampled_from([n for n in names if n.startswith("t")]
                                      or names))
        lines.append(f"  if (({cond}) > 0) {{ {target} = {target} + 1; }}")
    result = draw(st.sampled_from(names))
    lines.append(f"  return {result};")
    lines.append("}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# AST interpreter with C semantics
# ----------------------------------------------------------------------

def interpret(source, a, b):
    from repro.frontends.chls.cast import (
        AssignStmt,
        BinExpr,
        Block,
        CondExpr,
        DeclStmt,
        ForStmt,
        IfStmt,
        NumExpr,
        ReturnStmt,
        UnExpr,
        VarExpr,
    )

    program = parse(source)
    fn = program.functions["top"]
    env = {"a": w32(a), "b": w32(b)}

    def ev(expr):
        if isinstance(expr, NumExpr):
            return w32(expr.value)
        if isinstance(expr, VarExpr):
            return env[expr.name]
        if isinstance(expr, UnExpr):
            v = ev(expr.operand)
            if expr.op == "-":
                return w32(-v)
            if expr.op == "~":
                return w32(~v)
            return int(not v)
        if isinstance(expr, CondExpr):
            return ev(expr.if_true) if ev(expr.cond) else ev(expr.if_false)
        if isinstance(expr, BinExpr):
            x, y = ev(expr.left), ev(expr.right)
            table = {
                "+": lambda: w32(x + y), "-": lambda: w32(x - y),
                "*": lambda: w32(x * y), "&": lambda: x & y,
                "|": lambda: x | y, "^": lambda: x ^ y,
                "<<": lambda: w32(x << y), ">>": lambda: x >> y,
                "<": lambda: int(x < y), "<=": lambda: int(x <= y),
                ">": lambda: int(x > y), ">=": lambda: int(x >= y),
                "==": lambda: int(x == y), "!=": lambda: int(x != y),
            }
            return table[expr.op]()
        raise NotImplementedError(type(expr).__name__)

    result = [0]

    def run(stmt):
        if isinstance(stmt, Block):
            for s in stmt.statements:
                run(s)
        elif isinstance(stmt, DeclStmt):
            env[stmt.name] = ev(stmt.init) if stmt.init is not None else 0
        elif isinstance(stmt, AssignStmt):
            env[stmt.name] = ev(stmt.value)
        elif isinstance(stmt, IfStmt):
            if ev(stmt.cond):
                run(stmt.then_body)
            elif stmt.else_body is not None:
                run(stmt.else_body)
        elif isinstance(stmt, ForStmt):
            env[stmt.var] = ev(stmt.start)
            while env[stmt.var] < ev(stmt.bound):
                run(stmt.body)
                env[stmt.var] = w32(env[stmt.var] + stmt.step)
        elif isinstance(stmt, ReturnStmt):
            result[0] = ev(stmt.value) if stmt.value is not None else 0
        else:
            raise NotImplementedError(type(stmt).__name__)

    run(fn.body)
    return result[0]


def run_hardware(source, a, b, options):
    flat, _ = inline_program(parse(source), "top")
    compiled = build_function_top(flat, options)
    sim = Simulator(compiled.module)
    sim.poke("arg_a", a & 0xFFFFFFFF)
    sim.poke("arg_b", b & 0xFFFFFFFF)
    sim.poke("start", 1)
    sim.run_until(lambda s: s.peek_int("done") == 1, timeout=2000)
    return sim.peek("retval").sint


@given(program_text(), st.integers(-(2**31), 2**31 - 1),
       st.integers(-(2**31), 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_fuzz_hls_matches_interpreter(source, a, b):
    expected = interpret(source, a, b)
    assert run_hardware(source, a, b, HlsOptions()) == expected


@given(program_text(), st.integers(-1000, 1000), st.integers(-1000, 1000))
@settings(max_examples=15, deadline=None)
def test_fuzz_chaining_off_matches_interpreter(source, a, b):
    expected = interpret(source, a, b)
    assert run_hardware(source, a, b, HlsOptions(chaining=False)) == expected
