"""The ``python -m repro work`` pull-worker loop.

A pull-worker owns no scheduling state: it asks the master for work
(``POST /v1/tasks/lease``), measures each leased task through the exact
same :func:`repro.exec.worker.run_task` path a forked pool worker uses,
uploads any cache artifacts it produced (``PUT /v1/artifacts/<key>``,
content-addressed), posts the result, and asks again.  A background
heartbeat extends the lease while a long measurement runs; if the
worker dies instead (SIGKILL, OOM, power loss), the heartbeat stops,
the lease expires, and the master re-queues the task — no worker-side
cleanup is ever required for correctness.

Process bootstrap is the shared :class:`repro.exec.worker.WorkerContext`
(cache handle, tracing off by default — leases carry the sweep's trace
flag per task — and an optional chaos policy for drills), so a
pull-worker cannot drift from the pool-worker flavors.

``run_worker_fleet`` is the ``--parallel N`` form: it forks N child
workers and respawns any that die (the ``chaos fabric-kill`` drill
SIGKILLs them mid-lease on purpose), under the usual crash-budget
arithmetic so a worker that can never start does not respawn forever.
"""

from __future__ import annotations

import hashlib
import os
import socket
import threading
import time

from .. import cache as cache_mod
from ..core.errors import UsageError
from ..exec import worker as worker_mod
from ..exec.worker import WorkerContext
from ..resilience.runner import RunnerConfig
from ..resilience.supervise import backoff_delay, default_crash_budget
from .client import FabricClient

__all__ = ["run_worker", "run_worker_fleet"]


def _default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _lease_payload(lease: dict) -> dict:
    """A lease body in the :func:`repro.exec.worker.run_task` shape."""
    return {
        "task": lease["task"],
        "config": RunnerConfig(**(lease.get("config") or {})),
        "inject": tuple(lease.get("inject") or ()),
        "skip": frozenset(lease.get("skip") or ()),
        "trace": bool(lease.get("trace")),
        "attempt": int(lease.get("attempt") or 0),
    }


def _heartbeat_loop(client: FabricClient, task_id: str, worker_id: str,
                    period_s: float, stop: threading.Event) -> None:
    while not stop.wait(period_s):
        try:
            status, reply = client.request(
                "POST", f"/v1/tasks/{task_id}/heartbeat",
                {"worker": worker_id})
        except OSError:
            continue  # transient wire trouble; the next beat retries
        if status != 200 or (isinstance(reply, dict) and reply.get("stale")):
            return    # lease already re-queued; stop flogging it


def _upload_artifacts(client: FabricClient, cache, mark: int) -> list[dict]:
    """Ship every cache entry written since ``mark``; returns the manifest."""
    manifest: list[dict] = []
    if cache is None:
        return manifest
    for relpath in cache.written[mark:]:
        try:
            with open(os.path.join(cache.root, relpath), "rb") as handle:
                data = handle.read()
        except OSError:
            continue
        key = hashlib.sha256(data).hexdigest()
        try:
            status, _ = client.request("PUT", f"/v1/artifacts/{key}",
                                       body=data)
        except OSError:
            continue
        if status in (200, 201):
            manifest.append({"path": relpath, "key": key})
    return manifest


def _run_lease(client: FabricClient, worker_id: str, lease: dict) -> None:
    payload = _lease_payload(lease)
    cache = cache_mod.active()
    mark = len(cache.written) if cache is not None else 0
    period = max(0.05, float(lease.get("deadline_s") or 30.0) / 3.0)
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(client, lease["id"], worker_id, period, stop), daemon=True)
    beat.start()
    try:
        output = worker_mod.run_task(payload)
    finally:
        stop.set()
        beat.join(timeout=period + 1.0)
    artifacts = _upload_artifacts(client, cache, mark)
    client.request("POST", f"/v1/tasks/{lease['id']}/result",
                   {"worker": worker_id, "output": output,
                    "artifacts": artifacts})


def run_worker(master: str, worker_id: str | None = None, *,
               batch: int = 1, cache_dir: str | None = None,
               chaos=None, poll_s: float = 0.2,
               max_idle_s: float | None = None, once: bool = False,
               bootstrap: bool = True,
               client: FabricClient | None = None) -> int:
    """Pull-and-run until the master goes away; returns tasks completed.

    ``once`` returns after the first idle poll that follows completed
    work (the smoke-test form); ``max_idle_s`` bounds how long a worker
    waits for its first task.  ``bootstrap=False`` skips the
    process-wide :class:`WorkerContext` install (for in-process tests
    that must not clobber the host's obs/cache state).
    """
    if bootstrap:
        WorkerContext(cache_dir=cache_dir, trace=False, chaos=chaos).apply()
    client = client or FabricClient(master)
    worker_id = worker_id or _default_worker_id()
    completed = 0
    connected = False
    idle_since: float | None = None
    while True:
        try:
            status, reply = client.request(
                "POST", "/v1/tasks/lease",
                {"worker": worker_id, "limit": max(1, int(batch))})
        except OSError as exc:
            if not connected:
                raise UsageError(
                    f"cannot reach fabric master at {master}: {exc}")
            return completed   # master gone: a worker has nothing to do
        connected = True
        leases = (reply.get("leases") if isinstance(reply, dict) else None) \
            or []
        if status != 200 or not leases:
            if once and completed:
                return completed
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if max_idle_s is not None and now - idle_since >= max_idle_s:
                return completed
            time.sleep(poll_s)
            continue
        idle_since = None
        for lease in leases:
            _run_lease(client, worker_id, lease)
            completed += 1


def run_worker_fleet(master: str, parallel: int, **kwargs) -> int:
    """Fork ``parallel`` pull-workers; respawn the ones that die.

    A child exiting cleanly means the master is gone (or ``once`` /
    ``max_idle_s`` fired) — the fleet winds down.  A child dying
    (SIGKILL, crash) respawns with exponential backoff under a crash
    budget, exactly the supervision stance the local pool takes.
    """
    import multiprocessing

    parallel = max(1, int(parallel))
    if parallel == 1:
        return run_worker(master, **kwargs)
    try:
        mp = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        mp = multiprocessing.get_context()

    def child(slot: int) -> None:
        run_worker(master, worker_id=f"{_default_worker_id()}.{slot}",
                   **kwargs)

    procs = {slot: mp.Process(target=child, args=(slot,), daemon=True)
             for slot in range(parallel)}
    for proc in procs.values():
        proc.start()
    budget = default_crash_budget(8 * parallel)
    crashes = 0
    try:
        while procs:
            time.sleep(0.05)
            for slot, proc in list(procs.items()):
                if proc.is_alive():
                    continue
                if proc.exitcode == 0:
                    # Clean exit: the master is gone — stop the fleet.
                    del procs[slot]
                    for other in procs.values():
                        other.terminate()
                    for other in procs.values():
                        other.join(timeout=5.0)
                    return 0
                crashes += 1
                if crashes > budget:
                    raise UsageError(
                        f"fabric workers died {crashes} times "
                        f"(budget {budget}); giving up")
                time.sleep(backoff_delay(crashes, 0.05))
                procs[slot] = mp.Process(target=child, args=(slot,),
                                         daemon=True)
                procs[slot].start()
        return 0
    finally:
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in procs.values():
            proc.join(timeout=5.0)
