"""The master-side task ledger behind the fabric HTTP surface.

:class:`TaskBroker` owns every sweep the serve tier has accepted for
distributed execution.  It is deliberately passive — plain method calls
from the (single-threaded) asyncio event loop, with an injectable clock
— so every transition is unit-testable without sockets or sleeps:

* ``submit``    — a client posts a wire sweep (task records + policy);
* ``lease``     — a pull-worker asks for up to N runnable tasks; each
  lease carries a deadline ``lease_s`` out;
* ``heartbeat`` — the worker extends a lease mid-run;
* ``result``    — the worker uploads the task's output (checkpoint
  record + obs buffers + artifact manifest);
* ``expire``    — the server's periodic tick; a lease past its deadline
  means the worker is presumed dead.

Expiry is the distributed spelling of a worker crash, so it reuses the
PR 5 supervision arithmetic: the task's attempt counter bumps, the task
re-queues after :func:`~repro.resilience.supervise.backoff_delay`, and a
task reaching :data:`~repro.exec.executor.POISON_ATTEMPTS` expiries is
poisoned — reported to the client as a ``{"crashed": n}`` sentinel that
becomes an honest ``FAILED(WorkerCrashError)`` cell.  Total expiries per
sweep are bounded by
:func:`~repro.resilience.supervise.default_crash_budget`; past that the
sweep fails instead of spinning forever.

Results commit **at most once per task** (a late upload from a
presumed-dead worker is answered ``stale``), and the client folds them
in task order, so the byte-identity invariant survives any interleaving
of worker deaths and re-dispatches.

When the serve tier runs with obs enabled, each submitted sweep gets a
synthetic ``fabric.dispatch`` span (stamped with the caller's trace id
from its ``traceparent``) and every result's span buffer is grafted
under it — ``GET /v1/traces/<trace-id>`` then assembles the whole
distributed run as one connected tree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..exec.executor import POISON_ATTEMPTS
from ..exec.tasks import SweepTask
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..qos import WeightedFairQueue
from ..resilience.supervise import backoff_delay, default_crash_budget

__all__ = ["TaskBroker"]


@dataclass
class _Task:
    """One design point's ledger entry."""

    id: str
    sweep: str
    index: int
    wire: dict                      # the SweepTask wire record
    attempt: int = 0
    state: str = "pending"          # pending | leased | done | poisoned
    worker: str | None = None
    deadline: float | None = None   # broker-clock lease deadline
    ready_at: float = 0.0           # earliest re-lease time (backoff)
    result: dict | None = None      # {"output": …} | {"crashed": n}
    seq: int = 0                    # fair-share queue position (stable)


@dataclass
class _Sweep:
    """One submitted sweep: shared policy plus its tasks."""

    id: str
    tasks: list[_Task]
    config: dict
    inject: list
    skip: list
    trace: bool
    budget: int
    state: str = "running"          # running | done | failed
    expiries: int = 0
    error: str | None = None
    trace_id: str = ""
    graft: int | None = None        # server-side fabric.dispatch span id
    tenant: str = "anon"            # owning tenant (from the API key)
    weight: int = 1                 # fair-share weight at lease time
    priority: int = 0               # within-tenant sweep priority


class TaskBroker:
    """Lease-based scheduler state for distributed sweeps."""

    def __init__(self, lease_s: float = 30.0, backoff_s: float = 0.05,
                 clock=time.monotonic, journal=None, cache=None) -> None:
        self.lease_s = max(0.1, float(lease_s))
        self.backoff_s = max(0.0, float(backoff_s))
        self.clock = clock
        self.journal = journal            # callable(event, **fields) | None
        self.cache = cache                # master ArtifactCache | None
        self.sweeps: dict[str, _Sweep] = {}
        self.tasks: dict[str, _Task] = {}
        self._seq = 0
        # Pending task ids, dequeued weighted-fair across tenants
        # (priority-ordered within a tenant) instead of plain FIFO.
        self._queue = WeightedFairQueue()

    # ------------------------------------------------------------------
    def _note(self, event: str, **fields) -> None:
        if self.journal is not None:
            self.journal(event, **fields)

    # ------------------------------------------------------------------
    def submit(self, payload: dict, traceparent: str | None = None,
               tenant=None) -> str:
        """Accept a wire sweep; returns its id.

        ``tenant`` (a :class:`~repro.qos.Tenant`, resolved from the
        request's ``X-Api-Key``) owns the sweep for fair-share purposes;
        the payload's ``priority`` orders the tenant's own sweeps.

        Raises ``ValueError`` for a malformed body and
        :class:`~repro.exec.tasks.TaskSchemaError` for task records this
        build cannot interpret — both surface as HTTP 400.
        """
        records = payload.get("tasks")
        if not isinstance(records, list) or not records:
            raise ValueError("sweep needs a non-empty 'tasks' list")
        config = payload.get("config")
        if not isinstance(config, dict):
            raise ValueError("sweep needs a 'config' object")
        raw_priority = payload.get("priority", 0)
        if isinstance(raw_priority, bool) \
                or not isinstance(raw_priority, (int, type(None))):
            raise ValueError("'priority' must be an integer")
        priority = int(raw_priority or 0)
        for record in records:
            SweepTask.from_record(record)  # validate schema up front
        self._seq += 1
        sweep_id = f"s{self._seq}"
        trace_id = ""
        ctx = None
        if traceparent:
            ctx = obs_trace.TraceContext.from_traceparent(traceparent)
            if ctx is not None:
                trace_id = ctx.trace_id
        graft = self._dispatch_span(sweep_id, len(records), trace_id)
        tasks = [
            _Task(id=f"{sweep_id}-{index}", sweep=sweep_id, index=index,
                  wire=record)
            for index, record in enumerate(records)
        ]
        tenant_name = getattr(tenant, "name", None) or "anon"
        weight = max(1, int(getattr(tenant, "weight", 1) or 1))
        if not priority:
            priority = int(getattr(tenant, "priority", 0) or 0)
        sweep = _Sweep(
            id=sweep_id, tasks=tasks, config=config,
            inject=sorted(payload.get("inject") or []),
            skip=sorted(payload.get("skip") or []),
            trace=bool(payload.get("trace")),
            budget=default_crash_budget(len(tasks)),
            trace_id=trace_id, graft=graft,
            tenant=tenant_name, weight=weight, priority=priority)
        self.sweeps[sweep_id] = sweep
        for task in tasks:
            self.tasks[task.id] = task
            task.seq = self._queue.enqueue(tenant_name, task.id,
                                           weight=weight, priority=priority)
        self._note("fabric.submitted", id=sweep_id, tasks=len(tasks),
                   trace=trace_id)
        obs_events.emit("fabric.submitted", sweep=sweep_id,
                        tasks=len(tasks))
        return sweep_id

    def _dispatch_span(self, sweep_id: str, tasks: int,
                       trace_id: str) -> int | None:
        """Synthesize the sweep's ``fabric.dispatch`` grouping span.

        Worker span buffers graft under this node as results arrive, so
        the trace endpoint shows one connected tree per distributed run.
        The ingest assigns the span a local id; reading the tracer's
        next-id counter first (safe: the event loop is the only writer)
        tells us what it will be.
        """
        if not obs_trace.enabled():
            return None
        graft = obs_trace.TRACER._next_id
        obs_trace.TRACER.ingest([{
            "span_id": 1, "parent_id": None, "depth": 0,
            "name": "fabric.dispatch",
            "t_wall": round(time.time(), 6),
            "t_start": round(time.perf_counter(), 6),
            "dur_us": 0.0, "kind": "span", "status": "ok",
            "attrs": {"sweep": sweep_id, "tasks": tasks},
            "trace_id": trace_id,
        }])
        return graft

    # ------------------------------------------------------------------
    def lease(self, worker: str, limit: int = 1) -> list[dict]:
        """Hand ``worker`` up to ``limit`` runnable tasks.

        Dequeue order is weighted deficit round-robin across tenants
        (priority-ordered within each), so a saturating tenant cannot
        starve a light one of worker capacity.
        """
        now = self.clock()
        limit = max(1, int(limit))
        leases: list[dict] = []

        def ready(task_id: str) -> bool:
            return self.tasks[task_id].ready_at <= now

        while len(leases) < limit:
            task_id = self._queue.pop(ready=ready)
            if task_id is None:
                break
            task = self.tasks[task_id]
            sweep = self.sweeps[task.sweep]
            if task.state != "pending" or sweep.state != "running":
                # Stale queue entry (task re-leased elsewhere, or its
                # sweep already failed): drop it without charging the
                # worker's limit.
                continue
            task.state = "leased"
            task.worker = worker
            task.deadline = now + self.lease_s
            obs_metrics.inc("fabric.leases")
            self._note("fabric.lease", id=task.id, worker=worker,
                       attempt=task.attempt)
            leases.append({
                "id": task.id, "deadline_s": self.lease_s,
                "attempt": task.attempt, "task": task.wire,
                "config": sweep.config, "inject": sweep.inject,
                "skip": sweep.skip, "trace": sweep.trace,
            })
        return leases

    def heartbeat(self, task_id: str, worker: str) -> dict | None:
        """Extend a live lease; ``None`` for unknown tasks, ``stale``
        (in the returned dict) when the lease is no longer this worker's."""
        task = self.tasks.get(task_id)
        if task is None:
            return None
        if task.state != "leased" or task.worker != worker:
            return {"stale": True}
        task.deadline = self.clock() + self.lease_s
        return {"stale": False, "deadline_s": self.lease_s}

    # ------------------------------------------------------------------
    def result(self, task_id: str, worker: str, output: dict,
               artifacts: list | None = None) -> dict | None:
        """Commit one task's output; at most one commit ever wins."""
        task = self.tasks.get(task_id)
        if task is None:
            return None
        if task.state != "leased" or task.worker != worker:
            # A presumed-dead worker finishing late, or a double upload:
            # the ledger already moved on, so this result must not land.
            return {"stale": True}
        task.state = "done"
        task.result = {"output": output}
        self._note("fabric.result", id=task_id, worker=worker)
        self._install_artifacts(artifacts or [])
        sweep = self.sweeps[task.sweep]
        if obs_trace.enabled():
            if output.get("spans"):
                obs_trace.TRACER.ingest(output["spans"], under=sweep.graft)
            if output.get("events"):
                obs_events.EVENTS.ingest(output["events"])
            if output.get("metrics"):
                obs_metrics.REGISTRY.merge_snapshot(output["metrics"])
        self._maybe_finish(sweep)
        return {"stale": False}

    def _install_artifacts(self, manifest: list) -> None:
        """Copy uploaded blobs into the master's cache tree.

        Every entry was already verified against its SHA-256 address by
        the artifact endpoint; :meth:`ArtifactCache.install` sanitizes
        the relative path, and read-time checksum verification still
        guards the sealed content.
        """
        if self.cache is None:
            return
        for entry in manifest:
            if not isinstance(entry, dict):
                continue
            path, key = entry.get("path"), entry.get("key")
            if not isinstance(path, str) or not isinstance(key, str):
                continue
            blob = self.cache.get_blob(key)
            if blob is not None:
                self.cache.install(path, blob)

    # ------------------------------------------------------------------
    def expire(self) -> int:
        """Re-queue or poison every task whose lease deadline passed."""
        now = self.clock()
        expired = 0
        for task in self.tasks.values():
            if task.state != "leased" or task.deadline is None \
                    or task.deadline > now:
                continue
            expired += 1
            sweep = self.sweeps[task.sweep]
            sweep.expiries += 1
            task.attempt += 1
            task.worker = None
            task.deadline = None
            obs_metrics.inc("fabric.expiries")
            obs_events.emit("fabric.expiry", task=task.id,
                            attempt=task.attempt)
            self._note("fabric.expiry", id=task.id, attempt=task.attempt)
            if task.attempt >= POISON_ATTEMPTS:
                # Two workers (or one worker, twice) died holding this
                # task: quarantine it instead of killing a third.
                task.state = "poisoned"
                task.result = {"crashed": task.attempt}
                self._note("fabric.poisoned", id=task.id,
                           crashes=task.attempt)
            else:
                task.state = "pending"
                task.ready_at = now + backoff_delay(sweep.expiries,
                                                    self.backoff_s)
                # Re-enter the fair-share queue at the original seq so
                # the retry keeps its place within the tenant's line.
                self._queue.enqueue(sweep.tenant, task.id,
                                    weight=sweep.weight,
                                    priority=sweep.priority, seq=task.seq)
                obs_metrics.inc("fabric.requeues")
            if sweep.expiries > sweep.budget and sweep.state == "running":
                sweep.state = "failed"
                sweep.error = (
                    f"fabric sweep lost {sweep.expiries} leases "
                    f"(budget {sweep.budget}); aborting sweep")
                self._note("fabric.failed", id=sweep.id,
                           expiries=sweep.expiries)
            else:
                self._maybe_finish(sweep)
        return expired

    def _maybe_finish(self, sweep: _Sweep) -> None:
        if sweep.state != "running":
            return
        if all(task.state in ("done", "poisoned") for task in sweep.tasks):
            sweep.state = "done"
            self._note("fabric.done", id=sweep.id, expiries=sweep.expiries)
            obs_events.emit("fabric.done", sweep=sweep.id,
                            expiries=sweep.expiries)

    # ------------------------------------------------------------------
    def status(self, sweep_id: str) -> dict | None:
        sweep = self.sweeps.get(sweep_id)
        if sweep is None:
            return None
        done = sum(1 for task in sweep.tasks
                   if task.state in ("done", "poisoned"))
        return {"id": sweep.id, "state": sweep.state,
                "total": len(sweep.tasks), "done": done,
                "expiries": sweep.expiries, "error": sweep.error}

    def results(self, sweep_id: str) -> list | None:
        """Per-task outcomes in task order, once the sweep is done."""
        sweep = self.sweeps.get(sweep_id)
        if sweep is None or sweep.state != "done":
            return None
        return [task.result for task in sweep.tasks]

    def snapshot(self) -> dict:
        """The ``fabric`` block of ``/healthz``."""
        leased = [task for task in self.tasks.values()
                  if task.state == "leased"]
        pending = sum(1 for task in self.tasks.values()
                      if task.state == "pending")
        return {
            "workers": sorted({task.worker for task in leased
                               if task.worker}),
            "leases": len(leased),
            "pending": pending,
            "sweeps": {state: sum(1 for s in self.sweeps.values()
                                  if s.state == state)
                       for state in ("running", "done", "failed")},
            "expiries": sum(s.expiries for s in self.sweeps.values()),
        }
