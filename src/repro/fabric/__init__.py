"""``repro.fabric`` — pull-based distributed sweep execution.

The fabric splits a sweep across machines without giving up the repo's
core guarantee: rendered output is byte-identical to a clean serial run,
or honestly ``FAILED(…)`` — never silently wrong.

* :mod:`repro.fabric.broker` — :class:`TaskBroker`, the master-side
  lease ledger the serve tier exposes over HTTP (sweeps in, leases out,
  results back, deadline-driven re-queue);
* :mod:`repro.fabric.client` — :class:`FabricClient` (the thin HTTP
  wire) and :class:`FabricExecutor`, the
  :class:`repro.exec.executor.Executor` implementation that routes a
  :class:`~repro.exec.parallel.ParallelSweepRunner` sweep through a
  remote master;
* :mod:`repro.fabric.worker` — the ``python -m repro work`` pull-worker
  loop: lease → run via :func:`repro.exec.worker.run_task` → upload
  artifacts + result → repeat.

Crash safety is the PR 5 supervision arithmetic verbatim: a lease
expiring is the distributed spelling of "the worker died", so expired
tasks re-queue with exponential backoff under a crash budget, and a task
whose lease expires twice is quarantined as a ``FAILED(WorkerCrashError)``
cell.
"""

from .broker import TaskBroker
from .client import FabricClient, FabricExecutor
from .worker import run_worker, run_worker_fleet

__all__ = ["TaskBroker", "FabricClient", "FabricExecutor",
           "run_worker", "run_worker_fleet"]
