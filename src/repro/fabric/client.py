"""Client side of the fabric: the HTTP wire and the sweep executor.

:class:`FabricExecutor` is the distributed implementation of the
:class:`repro.exec.executor.Executor` protocol: it serializes the
sweep's tasks into their versioned wire form, submits them to a fabric
master (``POST /v1/sweeps``), and polls until the master reports the
sweep done — pull-workers attached to that master do the measuring.
Results come back as worker-output dicts in task order, so
:class:`~repro.exec.parallel.ParallelSweepRunner` merges them through
exactly the code path a local pool uses, and rendered output stays
byte-identical to a serial run.

Supervision symmetry: the master counts lease expiries the way the pool
counts worker crashes, so ``stats["worker_restarts"]`` reports them and
a sweep whose expiry budget is exhausted raises
:class:`~repro.core.errors.WorkerCrashError` here, mirroring
:class:`~repro.exec.executor.PoolExecutor`.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from dataclasses import asdict

from ..core.errors import UsageError, WorkerCrashError
from ..obs import trace as obs_trace

__all__ = ["FabricClient", "FabricExecutor"]


class FabricClient:
    """Minimal blocking JSON/bytes HTTP client for one fabric master."""

    def __init__(self, master: str, timeout_s: float = 60.0) -> None:
        url = master if "//" in master else f"http://{master}"
        parsed = urllib.parse.urlparse(url)
        if parsed.scheme not in ("", "http") or not parsed.hostname:
            raise UsageError(f"unsupported fabric master URL: {master!r}")
        self.master = master
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout_s = timeout_s

    def request(self, method: str, path: str, payload: dict | None = None,
                body: bytes | None = None,
                headers: dict | None = None) -> tuple[int, object]:
        """One request/response exchange; JSON bodies decoded for the
        caller, anything else returned as raw bytes."""
        data = body
        send_headers = dict(headers or ())
        if payload is not None:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            send_headers.setdefault("Content-Type", "application/json")
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            conn.request(method, path, body=data, headers=send_headers)
            response = conn.getresponse()
            raw = response.read()
            ctype = response.headers.get("Content-Type", "")
            if "json" in ctype:
                try:
                    return response.status, json.loads(raw.decode("utf-8"))
                except ValueError:
                    return response.status, {}
            return response.status, raw
        finally:
            conn.close()


class FabricExecutor:
    """Route a sweep through a fabric master and its pull-workers."""

    def __init__(self, master: str, poll_s: float = 0.05,
                 timeout_s: float | None = None,
                 client: FabricClient | None = None,
                 api_key: str | None = None, priority: int = 0) -> None:
        self.master = master
        self.poll_s = max(0.01, float(poll_s))
        self.timeout_s = timeout_s
        self.client = client or FabricClient(master)
        self.api_key = api_key          # identifies the QoS tenant
        self.priority = int(priority)   # within-tenant sweep priority
        self.stats = {"worker_restarts": 0, "pools": 0}

    def run(self, tasks, base, context) -> list[dict | None]:
        payload = {
            "tasks": [task.to_record() for task in tasks],
            "config": asdict(base["config"]),
            "inject": sorted(base["inject"]),
            "skip": sorted(base["skip"]),
            "trace": bool(base["trace"]),
            "priority": self.priority,
        }
        headers = {}
        if self.api_key:
            headers["X-Api-Key"] = self.api_key
        if base["trace"]:
            headers["traceparent"] = \
                obs_trace.current_context().to_traceparent()
        try:
            status, reply = self.client.request(
                "POST", "/v1/sweeps", payload, headers=headers)
        except OSError as exc:
            raise UsageError(
                f"cannot reach fabric master at {self.master}: {exc}")
        if status != 200:
            raise UsageError(
                f"fabric master rejected the sweep ({status}): "
                f"{reply.get('error') if isinstance(reply, dict) else reply}")
        sweep_id = reply["id"]
        info = self._wait(sweep_id)
        self.stats["worker_restarts"] += int(info.get("expiries") or 0)
        if info["state"] == "failed":
            raise WorkerCrashError(
                info.get("error") or "fabric sweep failed",
                phase="fabric.supervise")
        status, outcomes = self.client.request(
            "GET", f"/v1/sweeps/{sweep_id}/results")
        if status != 200 or not isinstance(outcomes, dict):
            raise WorkerCrashError(
                f"fabric master lost sweep {sweep_id} ({status})",
                phase="fabric.client")
        results: list[dict | None] = []
        for outcome in outcomes.get("results") or []:
            if not isinstance(outcome, dict):
                results.append(None)
            elif outcome.get("crashed"):
                results.append({"crashed": outcome["crashed"]})
            else:
                results.append(outcome.get("output"))
        return results

    def _wait(self, sweep_id: str) -> dict:
        """Poll sweep status until terminal; returns the final status."""
        started = time.monotonic()
        while True:
            try:
                status, info = self.client.request(
                    "GET", f"/v1/sweeps/{sweep_id}")
            except OSError as exc:
                raise WorkerCrashError(
                    f"lost the fabric master mid-sweep: {exc}",
                    phase="fabric.client")
            if status != 200 or not isinstance(info, dict):
                raise WorkerCrashError(
                    f"fabric master lost sweep {sweep_id} ({status})",
                    phase="fabric.client")
            if info.get("state") in ("done", "failed"):
                return info
            if self.timeout_s is not None \
                    and time.monotonic() - started > self.timeout_s:
                raise WorkerCrashError(
                    f"fabric sweep {sweep_id} did not finish within "
                    f"{self.timeout_s:.0f}s "
                    f"({info.get('done')}/{info.get('total')} tasks done)",
                    phase="fabric.client")
            time.sleep(self.poll_s)
