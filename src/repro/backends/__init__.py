"""Netlist export backends (Verilog, DOT)."""

from .dot import emit_dot
from .verilog import emit_verilog

__all__ = ["emit_verilog", "emit_dot"]
