"""Verilog-2001 emission from a flat netlist.

The emitter produces synthesizable single-clock Verilog: one module with
``clk``/``rst`` ports, ``assign`` statements for combinational logic, one
``always @(posedge clk)`` block per register, and ``reg`` arrays with write
processes for memories.  Hierarchical dots in flat signal names become
underscores (re-uniquified).

This backend exists for interoperability and debugging — the simulator and
synthesis model consume the IR directly — but it is also the measurement
basis for the paper's "lines of Verilog" comparisons on generated code.
"""

from __future__ import annotations

import io

from ..core.naming import Namespace
from ..rtl.elaborate import Netlist
from ..rtl.ir import (
    BinOp,
    BinOpKind,
    Cat,
    Const,
    Expr,
    Ext,
    MemRead,
    Mux,
    Ref,
    Signal,
    Slice,
    UnOp,
    UnOpKind,
)

__all__ = ["emit_verilog"]

_SIGNED_BINOPS = {
    BinOpKind.MULS: "*",
    BinOpKind.SLT: "<",
    BinOpKind.SLE: "<=",
    BinOpKind.SGT: ">",
    BinOpKind.SGE: ">=",
}
_UNSIGNED_BINOPS = {
    BinOpKind.ADD: "+",
    BinOpKind.SUB: "-",
    BinOpKind.MUL: "*",
    BinOpKind.AND: "&",
    BinOpKind.OR: "|",
    BinOpKind.XOR: "^",
    BinOpKind.SHL: "<<",
    BinOpKind.LSHR: ">>",
    BinOpKind.EQ: "==",
    BinOpKind.NE: "!=",
    BinOpKind.ULT: "<",
    BinOpKind.ULE: "<=",
    BinOpKind.UGT: ">",
    BinOpKind.UGE: ">=",
}


class _VerilogNamer:
    """Maps flat netlist signals to legal, unique Verilog identifiers."""

    def __init__(self) -> None:
        self._ns = Namespace()
        self._names: dict[Signal, str] = {}
        for keyword in ("module", "input", "output", "wire", "reg", "assign",
                        "always", "begin", "end", "if", "else", "case"):
            self._ns.reserve(keyword)

    def __call__(self, sig: Signal) -> str:
        name = self._names.get(sig)
        if name is None:
            name = self._ns.fresh(sig.name.replace(".", "_"))
            self._names[sig] = name
        return name


def _emit_expr(expr: Expr, name_of: _VerilogNamer, mem_names: dict[int, str]) -> str:
    if isinstance(expr, Const):
        return f"{expr.width}'d{expr.value}"
    if isinstance(expr, Ref):
        return name_of(expr.signal)
    if isinstance(expr, BinOp):
        a = _emit_expr(expr.a, name_of, mem_names)
        b = _emit_expr(expr.b, name_of, mem_names)
        if expr.kind in _SIGNED_BINOPS:
            op = _SIGNED_BINOPS[expr.kind]
            return f"($signed({a}) {op} $signed({b}))"
        if expr.kind is BinOpKind.ASHR:
            return f"($signed({a}) >>> ({b}))"
        op = _UNSIGNED_BINOPS[expr.kind]
        return f"(({a}) {op} ({b}))"
    if isinstance(expr, UnOp):
        a = _emit_expr(expr.a, name_of, mem_names)
        symbol = {
            UnOpKind.NOT: "~",
            UnOpKind.NEG: "-",
            UnOpKind.REDOR: "|",
            UnOpKind.REDAND: "&",
            UnOpKind.REDXOR: "^",
        }[expr.kind]
        return f"({symbol}({a}))"
    if isinstance(expr, Mux):
        sel = _emit_expr(expr.sel, name_of, mem_names)
        t = _emit_expr(expr.if_true, name_of, mem_names)
        f = _emit_expr(expr.if_false, name_of, mem_names)
        return f"(({sel}) ? ({t}) : ({f}))"
    if isinstance(expr, Cat):
        inner = ", ".join(_emit_expr(p, name_of, mem_names) for p in expr.parts)
        return f"{{{inner}}}"
    if isinstance(expr, Slice):
        a = _emit_expr(expr.a, name_of, mem_names)
        # Verilog cannot slice arbitrary expressions; shift-and-mask instead.
        msk = (1 << expr.width) - 1
        if expr.lo == 0:
            return f"(({a}) & {expr.a.width}'d{msk})"
        return f"((({a}) >> {expr.lo}) & {expr.a.width}'d{msk})"
    if isinstance(expr, Ext):
        a = _emit_expr(expr.a, name_of, mem_names)
        if expr.signed:
            pad = expr.width - expr.a.width
            if pad == 0:
                return a
            return f"{{{{{pad}{{({a})[{expr.a.width - 1}]}}}}, ({a})}}"
        return f"{{{expr.width - expr.a.width}'d0, ({a})}}" if expr.width > expr.a.width else a
    if isinstance(expr, MemRead):
        addr = _emit_expr(expr.addr, name_of, mem_names)
        return f"{mem_names[id(expr.memory)]}[{addr}]"
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def emit_verilog(netlist: Netlist) -> str:
    """Render ``netlist`` as a Verilog-2001 module."""
    name_of = _VerilogNamer()
    out = io.StringIO()
    ports = ["clk", "rst"]
    ports += [name_of(sig) for sig in netlist.inputs]
    ports += [name_of(sig) for sig in netlist.outputs]
    out.write(f"module {netlist.name.replace('.', '_')} (\n")
    out.write(",\n".join(f"  {p}" for p in ports))
    out.write("\n);\n\n")
    out.write("  input clk;\n  input rst;\n")
    for sig in netlist.inputs:
        out.write(f"  input [{sig.width - 1}:0] {name_of(sig)};\n")
    for sig in netlist.outputs:
        out.write(f"  output [{sig.width - 1}:0] {name_of(sig)};\n")
    out.write("\n")

    reg_signals = {reg.signal for reg in netlist.registers}
    for sig, _expr in netlist.assigns:
        if sig not in netlist.outputs:
            out.write(f"  wire [{sig.width - 1}:0] {name_of(sig)};\n")
    for reg in netlist.registers:
        out.write(f"  reg [{reg.signal.width - 1}:0] {name_of(reg.signal)};\n")

    mem_names: dict[int, str] = {}
    for mem in netlist.memories:
        mem_name = mem.name.replace(".", "_")
        mem_names[id(mem)] = mem_name
        out.write(f"  reg [{mem.width - 1}:0] {mem_name} [0:{mem.depth - 1}];\n")
    out.write("\n")

    for mem in netlist.memories:
        if mem.init:
            out.write("  integer i;\n")
            break
    for mem in netlist.memories:
        if mem.init:
            out.write("  initial begin\n")
            for i, word in enumerate(mem.init):
                out.write(f"    {mem_names[id(mem)]}[{i}] = {mem.width}'d{word & ((1 << mem.width) - 1)};\n")
            out.write("  end\n")
    out.write("\n")

    # Outputs driven by assigns need wire declarations handled: outputs are
    # declared as output (wire by default), so a plain assign works.
    for sig, expr in netlist.assigns:
        out.write(f"  assign {name_of(sig)} = {_emit_expr(expr, name_of, mem_names)};\n")
    out.write("\n")

    if netlist.registers or any(mem.writes for mem in netlist.memories):
        out.write("  always @(posedge clk) begin\n")
        out.write("    if (rst) begin\n")
        for reg in netlist.registers:
            out.write(
                f"      {name_of(reg.signal)} <= {reg.signal.width}'d{reg.init};\n"
            )
        out.write("    end else begin\n")
        for reg in netlist.registers:
            next_code = _emit_expr(reg.next, name_of, mem_names)
            if reg.en is None:
                out.write(f"      {name_of(reg.signal)} <= {next_code};\n")
            else:
                en_code = _emit_expr(reg.en, name_of, mem_names)
                out.write(
                    f"      if ({en_code}) {name_of(reg.signal)} <= {next_code};\n"
                )
        for mem in netlist.memories:
            for write in mem.writes:
                en_code = _emit_expr(write.en, name_of, mem_names)
                addr_code = _emit_expr(write.addr, name_of, mem_names)
                data_code = _emit_expr(write.data, name_of, mem_names)
                out.write(
                    f"      if ({en_code}) {mem_names[id(mem)]}[{addr_code}] <= {data_code};\n"
                )
        out.write("    end\n")
        out.write("  end\n")

    out.write("\nendmodule\n")
    return out.getvalue()
