"""Graphviz DOT rendering of a netlist's signal-level dataflow graph."""

from __future__ import annotations

import io

from ..rtl.elaborate import Netlist
from ..rtl.ir import expr_signals

__all__ = ["emit_dot"]


def emit_dot(netlist: Netlist) -> str:
    """Render the signal dependency graph of ``netlist`` as DOT text.

    Nodes are signals (inputs as triangles, registers as boxes, wires as
    ellipses); edges follow combinational and sequential data dependencies.
    """
    out = io.StringIO()
    out.write(f'digraph "{netlist.name}" {{\n')
    out.write("  rankdir=LR;\n")

    def node_id(name: str) -> str:
        return '"' + name.replace('"', "'") + '"'

    reg_signals = {reg.signal for reg in netlist.registers}
    for sig in netlist.inputs:
        out.write(f"  {node_id(sig.name)} [shape=triangle, label=\"{sig.name}\\n{sig.width}b\"];\n")
    for sig in netlist.outputs:
        out.write(f"  {node_id(sig.name)} [shape=invtriangle, label=\"{sig.name}\\n{sig.width}b\"];\n")
    for reg in netlist.registers:
        out.write(
            f"  {node_id(reg.signal.name)} [shape=box, style=filled, "
            f"fillcolor=lightblue, label=\"{reg.signal.name}\\n{reg.signal.width}b\"];\n"
        )
    for sig, _expr in netlist.assigns:
        if sig not in reg_signals and sig not in netlist.outputs:
            out.write(f"  {node_id(sig.name)} [shape=ellipse];\n")

    for sig, expr in netlist.assigns:
        for source in expr_signals(expr):
            out.write(f"  {node_id(source.name)} -> {node_id(sig.name)};\n")
    for reg in netlist.registers:
        for source in expr_signals(reg.next):
            out.write(
                f"  {node_id(source.name)} -> {node_id(reg.signal.name)} [style=dashed];\n"
            )
        if reg.en is not None:
            for source in expr_signals(reg.en):
                out.write(
                    f"  {node_id(source.name)} -> {node_id(reg.signal.name)} "
                    f"[style=dotted, label=en];\n"
                )
    out.write("}\n")
    return out.getvalue()
