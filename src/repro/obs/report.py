"""Profiling report layer: flame-style text summary and file exporters.

Consumes the default tracer/registry (or explicit ones) and renders:

* :func:`render_profile` — indented span tree with durations and percent
  of total, followed by a metrics summary (the ``python -m repro profile``
  output);
* :func:`phase_breakdown` — per-design, per-phase wall time aggregated
  from spans, attributing each span to its nearest ancestor carrying a
  ``design`` attribute (this is what ``table2 --metrics`` exports);
* :func:`write_trace_jsonl` / :func:`write_metrics_json` — the
  ``trace.jsonl`` / ``metrics.json`` artifacts;
* :func:`render_prometheus` — the registry snapshot in Prometheus text
  exposition format (what ``GET /metrics`` on the evaluation service
  returns).
"""

from __future__ import annotations

import json
import re

from . import metrics as _metrics
from . import trace as _trace
from .trace import SpanRecord

__all__ = [
    "render_profile",
    "phase_breakdown",
    "write_trace_jsonl",
    "write_metrics_json",
    "render_prometheus",
]


def _span_tree(events: list[SpanRecord]):
    """(roots, children-by-id), each level sorted by start time."""
    children: dict[int, list[SpanRecord]] = {}
    by_id = {rec.span_id: rec for rec in events}
    roots: list[SpanRecord] = []
    for rec in events:
        if rec.parent_id is not None and rec.parent_id in by_id:
            children.setdefault(rec.parent_id, []).append(rec)
        else:
            roots.append(rec)
    for bucket in children.values():
        bucket.sort(key=lambda r: r.t_start)
    roots.sort(key=lambda r: r.t_start)
    return roots, children


def _attr_summary(attrs: dict, limit: int = 4) -> str:
    parts = []
    for key, value in attrs.items():
        text = f"{key}={value}"
        if len(text) > 40:
            text = text[:37] + "..."
        parts.append(text)
        if len(parts) >= limit:
            break
    return "  ".join(parts)


def render_profile(
    events: list[SpanRecord] | None = None,
    registry: _metrics.MetricsRegistry | None = None,
) -> str:
    """Flame-style text profile plus a metrics summary."""
    if events is None:
        events = _trace.events()
    if registry is None:
        registry = _metrics.REGISTRY
    spans = [rec for rec in events if rec.kind == "span"]
    roots, children = _span_tree(spans)
    total = sum(rec.duration for rec in roots) or 1e-12

    lines = ["== phase profile =="]
    if not spans:
        lines.append("(no spans recorded — is tracing enabled?)")

    def emit(rec: SpanRecord, depth: int) -> None:
        pct = rec.duration / total * 100
        flag = "" if rec.status == "ok" else "  [ERROR]"
        name = "  " * depth + rec.name
        lines.append(
            f"{name:<36s} {rec.duration * 1000:10.2f} ms {pct:6.1f}%"
            f"  {_attr_summary(rec.attrs)}{flag}"
        )
        for child in children.get(rec.span_id, ()):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)

    snap = registry.snapshot()
    if snap["counters"] or snap["gauges"] or snap["histograms"]:
        lines.append("")
        lines.append("== metrics ==")
        for name, value in snap["counters"].items():
            lines.append(f"{name:<36s} {value:>14,d}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name:<36s} {value:>14g}")
        for name, hist in snap["histograms"].items():
            lines.append(
                f"{name:<36s} count={hist['count']} mean={hist['mean']:g} "
                f"min={hist['min']:g} max={hist['max']:g}"
            )
    return "\n".join(lines)


def phase_breakdown(
    events: list[SpanRecord] | None = None,
) -> dict[str, dict[str, dict]]:
    """``{design: {phase: {"calls": n, "seconds": s}}}`` from span records.

    A span's design is its own ``design`` attribute or the nearest
    ancestor's; spans with no design in scope land under ``"-"``.
    """
    if events is None:
        events = _trace.events()
    spans = [rec for rec in events if rec.kind == "span"]
    by_id = {rec.span_id: rec for rec in spans}

    def design_of(rec: SpanRecord) -> str:
        node: SpanRecord | None = rec
        while node is not None:
            design = node.attrs.get("design")
            if design:
                return str(design)
            node = by_id.get(node.parent_id) if node.parent_id else None
        return "-"

    out: dict[str, dict[str, dict]] = {}
    for rec in spans:
        slot = out.setdefault(design_of(rec), {}).setdefault(
            rec.name, {"calls": 0, "seconds": 0.0}
        )
        slot["calls"] += 1
        slot["seconds"] += rec.duration
    for phases in out.values():
        for slot in phases.values():
            slot["seconds"] = round(slot["seconds"], 6)
    return out


def _prom_name(name: str, prefix: str = "repro_") -> str:
    """Map a dotted instrument name onto the Prometheus grammar."""
    return prefix + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def render_prometheus(registry: _metrics.MetricsRegistry | None = None) -> str:
    """The registry snapshot in Prometheus text exposition format.

    Dotted instrument names become underscored with a ``repro_`` prefix
    (``cache.hits`` → ``repro_cache_hits``).  Histograms keep their
    power-of-two buckets, emitted cumulatively with the conventional
    ``_bucket{le=…}`` / ``_sum`` / ``_count`` series.
    """
    snap = (registry or _metrics.REGISTRY).snapshot()
    lines: list[str] = []
    for name, value in snap["counters"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in snap["gauges"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value:g}")
    for name, hist in snap["histograms"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        running = 0
        for le, count in sorted((int(k), v) for k, v in hist["buckets"].items()):
            running += count
            lines.append(f'{prom}_bucket{{le="{le}"}} {running}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{prom}_sum {hist['sum']:g}")
        lines.append(f"{prom}_count {hist['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def write_trace_jsonl(path, tracer: _trace.Tracer | None = None) -> int:
    """Export the trace ring buffer as JSON lines; returns record count."""
    return (tracer or _trace.TRACER).export_jsonl(path)


def write_metrics_json(
    path,
    registry: _metrics.MetricsRegistry | None = None,
    events: list[SpanRecord] | None = None,
    extra: dict | None = None,
) -> dict:
    """Write ``{metrics, phases, **extra}`` as pretty JSON."""
    payload = dict(extra or {})
    payload["metrics"] = (registry or _metrics.REGISTRY).snapshot()
    payload["phases"] = phase_breakdown(events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
