"""Profiling report layer: flame-style text summary and file exporters.

Consumes the default tracer/registry (or explicit ones) and renders:

* :func:`render_profile` — indented span tree with durations and percent
  of total, followed by a metrics summary (the ``python -m repro profile``
  output);
* :func:`phase_breakdown` — per-design, per-phase wall time aggregated
  from spans, attributing each span to its nearest ancestor carrying a
  ``design`` attribute (this is what ``table2 --metrics`` exports);
* :func:`write_trace_jsonl` / :func:`write_metrics_json` — the
  ``trace.jsonl`` / ``metrics.json`` artifacts;
* :func:`render_prometheus` — the registry snapshot in Prometheus text
  exposition format (what ``GET /metrics`` on the evaluation service
  returns).
"""

from __future__ import annotations

import json
import re

from . import metrics as _metrics
from . import trace as _trace
from .trace import SpanRecord

__all__ = [
    "render_profile",
    "phase_breakdown",
    "write_trace_jsonl",
    "write_metrics_json",
    "render_prometheus",
    "ensure_default_instruments",
    "span_tree_payload",
    "profile_payload",
    "render_profile_json",
    "render_tree",
]


def _span_tree(events: list[SpanRecord]):
    """(roots, children-by-id), each level sorted by start time."""
    children: dict[int, list[SpanRecord]] = {}
    by_id = {rec.span_id: rec for rec in events}
    roots: list[SpanRecord] = []
    for rec in events:
        if rec.parent_id is not None and rec.parent_id in by_id:
            children.setdefault(rec.parent_id, []).append(rec)
        else:
            roots.append(rec)
    for bucket in children.values():
        bucket.sort(key=lambda r: r.t_start)
    roots.sort(key=lambda r: r.t_start)
    return roots, children


def _attr_summary(attrs: dict, limit: int = 4) -> str:
    parts = []
    for key, value in attrs.items():
        text = f"{key}={value}"
        if len(text) > 40:
            text = text[:37] + "..."
        parts.append(text)
        if len(parts) >= limit:
            break
    return "  ".join(parts)


def render_profile(
    events: list[SpanRecord] | None = None,
    registry: _metrics.MetricsRegistry | None = None,
) -> str:
    """Flame-style text profile plus a metrics summary."""
    if events is None:
        events = _trace.events()
    if registry is None:
        registry = _metrics.REGISTRY
    spans = [rec for rec in events if rec.kind == "span"]
    roots, children = _span_tree(spans)
    total = sum(rec.duration for rec in roots) or 1e-12

    lines = ["== phase profile =="]
    if not spans:
        lines.append("(no spans recorded — is tracing enabled?)")

    def emit(rec: SpanRecord, depth: int) -> None:
        pct = rec.duration / total * 100
        flag = "" if rec.status == "ok" else "  [ERROR]"
        name = "  " * depth + rec.name
        lines.append(
            f"{name:<36s} {rec.duration * 1000:10.2f} ms {pct:6.1f}%"
            f"  {_attr_summary(rec.attrs)}{flag}"
        )
        for child in children.get(rec.span_id, ()):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)

    snap = registry.snapshot()
    if snap["counters"] or snap["gauges"] or snap["histograms"]:
        lines.append("")
        lines.append("== metrics ==")
        for name, value in snap["counters"].items():
            lines.append(f"{name:<36s} {value:>14,d}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name:<36s} {value:>14g}")
        for name, hist in snap["histograms"].items():
            lines.append(
                f"{name:<36s} count={hist['count']} mean={hist['mean']:g} "
                f"min={hist['min']:g} max={hist['max']:g}"
            )
    return "\n".join(lines)


def phase_breakdown(
    events: list[SpanRecord] | None = None,
) -> dict[str, dict[str, dict]]:
    """``{design: {phase: {"calls": n, "seconds": s}}}`` from span records.

    A span's design is its own ``design`` attribute or the nearest
    ancestor's; spans with no design in scope land under ``"-"``.
    """
    if events is None:
        events = _trace.events()
    spans = [rec for rec in events if rec.kind == "span"]
    by_id = {rec.span_id: rec for rec in spans}

    def design_of(rec: SpanRecord) -> str:
        node: SpanRecord | None = rec
        while node is not None:
            design = node.attrs.get("design")
            if design:
                return str(design)
            node = by_id.get(node.parent_id) if node.parent_id else None
        return "-"

    out: dict[str, dict[str, dict]] = {}
    for rec in spans:
        slot = out.setdefault(design_of(rec), {}).setdefault(
            rec.name, {"calls": 0, "seconds": 0.0}
        )
        slot["calls"] += 1
        slot["seconds"] += rec.duration
    for phases in out.values():
        for slot in phases.values():
            slot["seconds"] = round(slot["seconds"], 6)
    return out


def span_tree_payload(
    events: list[SpanRecord] | None = None,
    trace_id: str | None = None,
) -> dict:
    """JSON-ready nested span tree (what ``GET /v1/traces/<id>`` returns).

    With ``trace_id`` given, only records stamped with that trace are
    assembled; otherwise the whole buffer.  Each node carries its own
    timing/attrs plus recursively nested ``children``.
    """
    if events is None:
        events = _trace.events()
    if trace_id:
        events = [rec for rec in events if rec.trace_id == trace_id]
    spans = [rec for rec in events if rec.kind == "span"]
    roots, children = _span_tree(spans)

    def node(rec: SpanRecord) -> dict:
        return {
            "span_id": rec.span_id,
            "name": rec.name,
            "t_wall": round(rec.t_wall, 6),
            "dur_us": round(rec.duration * 1e6, 3),
            "status": rec.status,
            "attrs": rec.attrs,
            "children": [node(child)
                         for child in children.get(rec.span_id, ())],
        }

    return {"trace": trace_id or "", "count": len(spans),
            "spans": [node(root) for root in roots]}


def render_tree(
    events: list[SpanRecord] | None = None,
    trace_id: str | None = None,
) -> str:
    """Text rendering of one trace's span tree (the ``obs tree`` CLI)."""
    payload = span_tree_payload(events, trace_id)
    lines = [f"== trace {payload['trace'] or '(all)'} — "
             f"{payload['count']} spans =="]
    if not payload["spans"]:
        lines.append("(no spans recorded for this trace)")

    def emit(node: dict, depth: int) -> None:
        name = "  " * depth + node["name"]
        flag = "" if node["status"] == "ok" else "  [ERROR]"
        lines.append(f"{name:<36s} {node['dur_us'] / 1000:10.2f} ms"
                     f"  {_attr_summary(node['attrs'])}{flag}")
        for child in node["children"]:
            emit(child, depth + 1)

    for root in payload["spans"]:
        emit(root, 0)
    return "\n".join(lines)


def profile_payload(
    events: list[SpanRecord] | None = None,
    registry: _metrics.MetricsRegistry | None = None,
) -> dict:
    """The machine-readable profile report (``profile <design> --json``).

    One serialization path: the span tree nests through
    :func:`span_tree_payload`, per-phase totals come from
    :func:`phase_breakdown`, and ``total_ms`` sums the same root spans
    the text report's percent column divides by — the two reports are
    views of identical numbers.
    """
    if events is None:
        events = _trace.events()
    registry = registry or _metrics.REGISTRY
    spans = [rec for rec in events if rec.kind == "span"]
    roots, _children = _span_tree(spans)
    total = sum(rec.duration for rec in roots)
    return {
        "total_ms": round(total * 1000, 3),
        "profile": span_tree_payload(events)["spans"],
        "phases": phase_breakdown(events),
        "metrics": registry.snapshot(),
    }


def render_profile_json(
    events: list[SpanRecord] | None = None,
    registry: _metrics.MetricsRegistry | None = None,
    extra: dict | None = None,
) -> str:
    """Canonical JSON text of :func:`profile_payload` (sorted keys)."""
    payload = dict(extra or {})
    payload.update(profile_payload(events, registry))
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _prom_name(name: str, prefix: str = "repro_") -> str:
    """Map a dotted instrument name onto the Prometheus grammar."""
    return prefix + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _prom_series(name: str) -> tuple[str, str, str]:
    """``(family, labels, series)`` for a possibly-labelled instrument.

    Labelled instruments encode their labels after a ``|`` in the
    registry name (``serve.blocks_total|design=verilog-initial,
    engine=model``); the family is the base name, the labels render in
    the conventional ``{k="v",…}`` form.
    """
    base, _, label_spec = name.partition("|")
    family = _prom_name(base)
    if not label_spec:
        return family, "", family
    pairs = []
    for item in label_spec.split(","):
        key, _, value = item.partition("=")
        pairs.append(f'{re.sub(r"[^a-zA-Z0-9_]", "_", key.strip())}'
                     f'="{value.strip()}"')
    labels = "{" + ",".join(pairs) + "}"
    return family, labels, family + labels


#: Explanations emitted as ``# HELP`` lines (one per metric family).
PROM_HELP = {
    "cache.hits": "Artifact-cache reads satisfied from disk.",
    "cache.misses": "Artifact-cache reads that fell through to recompute.",
    "cache.puts": "Artifacts written to the content-addressed cache.",
    "cache.corrupt": "Cache artifacts failing checksum verification, "
                     "quarantined to <cache>/corrupt/.",
    "exec.worker_restarts": "Pool workers lost to crashes whose tasks "
                            "were re-dispatched.",
    "exec.poisoned_tasks": "Tasks quarantined as FAILED cells after "
                           "repeatedly killing workers.",
    "resilience.failures": "Design points that exhausted every attempt.",
    "resilience.retries": "Per-design measurement retries.",
    "resilience.degraded_runs": "Final attempts under a degraded config.",
    "serve.requests_total": "HTTP requests handled by the evaluation "
                            "service.",
    "serve.rejected_total": "Requests turned away by admission control.",
    "serve.sim_invocations": "Evaluator invocations (batches, not blocks).",
    "serve.blocks_total": "8x8 blocks evaluated across all batches.",
    "serve.breaker_opened": "Circuit-breaker open transitions.",
    "serve.queue_depth": "Admitted compute requests currently in flight.",
    "serve.batch_size": "Blocks coalesced per evaluator invocation.",
    "serve.worker_restarts": "Serve pool evaluator workers respawned.",
    "serve.worker_kills": "Serve pool evaluator worker deaths observed.",
    "fabric.leases": "Sweep tasks leased to fabric pull-workers.",
    "fabric.expiries": "Fabric task leases that expired (worker presumed "
                       "dead).",
    "fabric.requeues": "Expired fabric tasks re-queued for another worker.",
    "sweep.cells_done": "Sweep design points committed (per design).",
    "qos.throttled": "Requests rejected 429 by a tenant's token bucket "
                     "(per-tenant series carry a tenant label).",
    "qos.preemptions": "Running sweeps paused at a cell boundary for a "
                       "higher-priority arrival (per-tenant labelled).",
    "qos.quota_rejections": "Job submissions rejected 429 over a "
                            "tenant's concurrent-job quota "
                            "(per-tenant labelled).",
}

#: Counters pre-registered before serving ``/metrics`` so supervision
#: and integrity counts are visible (as honest zeros) from the first
#: scrape, not only after the first crash/corruption.
DEFAULT_COUNTERS = (
    "exec.worker_restarts",
    "exec.poisoned_tasks",
    "cache.corrupt",
    "cache.hits",
    "cache.misses",
    "resilience.failures",
    "serve.worker_restarts",
    "serve.worker_kills",
    "fabric.leases",
    "fabric.expiries",
    "fabric.requeues",
    "qos.throttled",
    "qos.preemptions",
    "qos.quota_rejections",
)


def ensure_default_instruments(
        registry: _metrics.MetricsRegistry | None = None) -> None:
    """Pre-register :data:`DEFAULT_COUNTERS` (the serve ``/metrics``
    endpoint calls this so zero-valued supervision counters render)."""
    registry = registry or _metrics.REGISTRY
    for name in DEFAULT_COUNTERS:
        registry.counter(name)


def render_prometheus(registry: _metrics.MetricsRegistry | None = None) -> str:
    """The registry snapshot in Prometheus text exposition format.

    Dotted instrument names become underscored with a ``repro_`` prefix
    (``cache.hits`` → ``repro_cache_hits``); a ``|k=v,…`` suffix becomes
    labels (``serve.blocks_total|design=d,engine=model`` →
    ``repro_serve_blocks_total{design="d",engine="model"}``), with one
    ``# HELP``/``# TYPE`` header per family.  Histograms keep their
    power-of-two buckets, emitted cumulatively with the conventional
    ``_bucket{le=…}`` / ``_sum`` / ``_count`` series.
    """
    snap = (registry or _metrics.REGISTRY).snapshot()
    lines: list[str] = []
    seen_families: set[str] = set()

    def header(name: str, family: str, kind: str) -> None:
        if family in seen_families:
            return
        seen_families.add(family)
        help_text = PROM_HELP.get(name.partition("|")[0])
        if help_text:
            lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} {kind}")

    for name, value in snap["counters"].items():
        family, _labels, series = _prom_series(name)
        header(name, family, "counter")
        lines.append(f"{series} {value}")
    for name, value in snap["gauges"].items():
        family, _labels, series = _prom_series(name)
        header(name, family, "gauge")
        lines.append(f"{series} {value:g}")
    for name, hist in snap["histograms"].items():
        family, labels, _series = _prom_series(name)
        header(name, family, "histogram")
        label_prefix = labels[:-1] + "," if labels else "{"
        running = 0
        for le, count in sorted((int(k), v) for k, v in hist["buckets"].items()):
            running += count
            lines.append(f'{family}_bucket{label_prefix}le="{le}"}} {running}')
        lines.append(f'{family}_bucket{label_prefix}le="+Inf"}} '
                     f'{hist["count"]}')
        lines.append(f"{family}_sum{labels} {hist['sum']:g}")
        lines.append(f"{family}_count{labels} {hist['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def write_trace_jsonl(path, tracer: _trace.Tracer | None = None) -> int:
    """Export the trace ring buffer as JSON lines; returns record count."""
    return (tracer or _trace.TRACER).export_jsonl(path)


def write_metrics_json(
    path,
    registry: _metrics.MetricsRegistry | None = None,
    events: list[SpanRecord] | None = None,
    extra: dict | None = None,
) -> dict:
    """Write ``{metrics, phases, **extra}`` as pretty JSON."""
    payload = dict(extra or {})
    payload["metrics"] = (registry or _metrics.REGISTRY).snapshot()
    payload["phases"] = phase_breakdown(events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
