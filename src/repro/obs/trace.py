"""Structured span/event tracer with a bounded in-memory ring buffer.

Spans nest lexically::

    with trace.span("elaborate", design="vlog-opt"):
        ...

Each completed span records wall-clock and monotonic start timestamps, a
duration, free-form attributes, and its position in the span tree
(``span_id``/``parent_id``/``depth``).  Records land in a ``deque`` ring
buffer (oldest evicted first) and export as JSON lines.

The tracer is deliberately single-threaded (like the rest of the
framework) and zero-dependency.  While :func:`enabled` is false,
:meth:`Tracer.span` returns one shared no-op context manager and
:meth:`Tracer.event` returns before touching its arguments' storage, so
disabled-mode overhead is a single global read per call site.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "TRACER",
    "enable",
    "disable",
    "enabled",
    "span",
    "event",
    "events",
    "clear",
    "ingest",
    "new_trace",
    "current_context",
    "to_jsonl",
    "export_jsonl",
]

_ENABLED = False


def enable() -> None:
    """Turn tracing (and guarded metrics) on, process-wide."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn tracing off; already-recorded events are kept."""
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return _ENABLED


@dataclass(frozen=True)
class TraceContext:
    """W3C-traceparent-style causal context crossing process boundaries.

    ``trace_id`` names one logical operation (a CLI invocation, an HTTP
    request, a sweep job); ``span_id`` is the id — in the *minting*
    process's id space — of the span that parented the remote work.  The
    pair is what a :class:`~repro.exec.tasks.SweepTask` carries into pool
    workers and what the serve tier reads from/writes to ``traceparent``
    headers, so merged spans assemble into one causally-linked tree
    instead of disjoint per-process fragments.
    """

    trace_id: str
    span_id: int | None = None

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header form (version 00, sampled)."""
        parent = (self.span_id or 0) & 0xFFFFFFFFFFFFFFFF
        return f"00-{self.trace_id:0>32s}-{parent:016x}-01"

    @classmethod
    def from_traceparent(cls, header: str) -> "TraceContext | None":
        """Parse a ``traceparent`` header; ``None`` if malformed."""
        parts = header.strip().split("-")
        if len(parts) != 4 or len(parts[1]) != 32 or len(parts[2]) != 16:
            return None
        try:
            span_id = int(parts[2], 16)
            int(parts[1], 16)
        except ValueError:
            return None
        return cls(trace_id=parts[1].lstrip("0") or "0",
                   span_id=span_id or None)


def mint_trace_id() -> str:
    """A fresh 16-hex-digit trace id (random, never reused)."""
    return os.urandom(8).hex()


@dataclass
class SpanRecord:
    """One completed span (or point event, ``duration == 0``)."""

    span_id: int
    parent_id: int | None
    depth: int
    name: str
    t_wall: float          # epoch seconds at span start
    t_start: float         # monotonic seconds at span start
    duration: float        # seconds; 0.0 for point events
    kind: str = "span"     # "span" | "event"
    status: str = "ok"     # "error" when an exception escaped the span
    attrs: dict = field(default_factory=dict)
    trace_id: str = ""     # the TraceContext trace this span belongs to

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "t_wall": round(self.t_wall, 6),
            "t_start": round(self.t_start, 6),
            "dur_us": round(self.duration * 1e6, 3),
            "kind": self.kind,
            "status": self.status,
            "attrs": self.attrs,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        return cls(
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            depth=data["depth"],
            name=data["name"],
            t_wall=data["t_wall"],
            t_start=data["t_start"],
            duration=data["dur_us"] / 1e6,
            kind=data.get("kind", "span"),
            status=data.get("status", "ok"),
            attrs=data.get("attrs", {}),
            trace_id=data.get("trace_id", ""),
        )


class _NullSpan:
    """Shared do-nothing context manager for disabled mode."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, **_attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _Span:
    """A live span: context manager that records itself on exit."""

    __slots__ = ("_tracer", "_t0", "name", "attrs", "span_id",
                 "parent_id", "depth", "t_wall")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> "_Span":
        """Attach attributes discovered mid-span (e.g. result sizes)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        self.span_id = tracer._next_id
        tracer._next_id += 1
        stack.append(self)
        self.t_wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        duration = time.perf_counter() - self._t0
        tracer = self._tracer
        if self in tracer._stack:
            # Pop abandoned children (spans opened inside this one that an
            # exception skipped past) along with this span itself.
            while tracer._stack.pop() is not self:
                pass
        tracer._events.append(SpanRecord(
            span_id=self.span_id,
            parent_id=self.parent_id,
            depth=self.depth,
            name=self.name,
            t_wall=self.t_wall,
            t_start=self._t0,
            duration=duration,
            status="error" if exc_type is not None else "ok",
            attrs=self.attrs,
            trace_id=tracer.trace_id,
        ))
        return False


class Tracer:
    """Ring-buffered span recorder (one global instance: :data:`TRACER`)."""

    def __init__(self, capacity: int = 65536) -> None:
        self._events: deque[SpanRecord] = deque(maxlen=capacity)
        self._stack: list[_Span] = []
        self._next_id = 1
        self.trace_id = ""

    # -- trace context -------------------------------------------------
    def new_trace(self, trace_id: str | None = None) -> str:
        """Start (or adopt) a trace: subsequent records carry this id."""
        self.trace_id = trace_id or mint_trace_id()
        return self.trace_id

    def current_context(self) -> TraceContext:
        """The context a child process/request should inherit: the
        current trace id plus the innermost open span's id (``None`` at
        the top level)."""
        span_id = self._stack[-1].span_id if self._stack else None
        return TraceContext(trace_id=self.trace_id, span_id=span_id)

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attrs) -> _Span | _NullSpan:
        """Open a nested span; a no-op singleton while disabled."""
        if not _ENABLED:
            return NULL_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous point event under the current span."""
        if not _ENABLED:
            return
        parent = self._stack[-1].span_id if self._stack else None
        self._events.append(SpanRecord(
            span_id=self._next_id,
            parent_id=parent,
            depth=len(self._stack),
            name=name,
            t_wall=time.time(),
            t_start=time.perf_counter(),
            duration=0.0,
            kind="event",
            attrs=attrs,
            trace_id=self.trace_id,
        ))
        self._next_id += 1

    # -- inspection / export -------------------------------------------
    def events(self) -> list[SpanRecord]:
        """Completed records, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._stack.clear()
        self._next_id = 1
        self.trace_id = ""

    def ingest(self, records: list[dict],
               under: int | None = None) -> int:
        """Merge foreign span records (a worker's shipped buffer).

        Records must be in the :meth:`SpanRecord.to_dict` shape; buffer
        order (innermost spans complete first) is fine — ids are mapped
        in a first pass, so a child may precede its parent.  Span ids
        are renumbered into this tracer's id space, preserving
        parent/child structure.  A record whose parent is outside the
        batch is attached to the local span ``under`` (the cross-process
        graft point — how a worker's ``exec.task`` subtree hangs off the
        parent's dispatch span) or becomes a root when ``under`` is
        ``None``.  The merge is deterministic given the input order,
        which is how the sharded sweep executor keeps trace artifacts
        reproducible: it ingests worker buffers in task order, not
        completion order.
        """
        parsed = [SpanRecord.from_dict(data) for data in records]
        id_map: dict[int, int] = {}
        for rec in parsed:
            id_map[rec.span_id] = self._next_id
            self._next_id += 1
        for rec in parsed:
            rec.span_id = id_map[rec.span_id]
            if rec.parent_id is not None:
                rec.parent_id = id_map.get(rec.parent_id, under)
            elif under is not None:
                rec.parent_id = under
            if not rec.trace_id:
                rec.trace_id = self.trace_id
            self._events.append(rec)
        return len(records)

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(rec.to_dict(), sort_keys=True)
                         for rec in self._events)

    def export_jsonl(self, path) -> int:
        """Write all records as JSON lines; returns the record count."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            if text:
                handle.write(text + "\n")
        return len(self._events)


TRACER = Tracer()

# Module-level conveniences bound to the default tracer.
span = TRACER.span
event = TRACER.event
events = TRACER.events
clear = TRACER.clear
ingest = TRACER.ingest
new_trace = TRACER.new_trace
current_context = TRACER.current_context
to_jsonl = TRACER.to_jsonl
export_jsonl = TRACER.export_jsonl
