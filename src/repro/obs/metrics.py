"""Named counters, gauges, and histograms.

A :class:`MetricsRegistry` holds instruments by dotted name
(``sim.cycles``, ``synth.cells_mapped``, ``chls.schedule.iterations`` …).
Histograms bucket observations by power-of-two upper bound (``le``), which
keeps the math exact and testable without configuration.

Two layers:

* **instance methods** (``registry.inc(...)``) always record — used by
  code that owns its own registry (e.g. the benchmark exporter);
* **module functions** (``metrics.inc(...)``) forward to the default
  :data:`REGISTRY` only while :func:`repro.obs.trace.enabled` — these are
  what pipeline instrumentation calls, so disabled mode records nothing.
"""

from __future__ import annotations

import json
import math

from .trace import enabled

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "inc",
    "set_gauge",
    "observe",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "merge_snapshot",
    "clear",
    "export_json",
]


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


def bucket_le(value: float) -> int:
    """Power-of-two bucket upper bound containing ``value``."""
    if value <= 1:
        return 1
    return 2 ** math.ceil(math.log2(value))


class Histogram:
    """Log2-bucketed distribution with exact count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        le = bucket_le(value)
        self.buckets[le] = self.buckets.get(le, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": round(self.mean, 6),
            "buckets": {str(le): n for le, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Instruments by name, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors ------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    # -- recording shorthands ------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters and histogram contents add; gauges take the incoming
        value (last write wins, matching their semantics).  The sharded
        sweep executor uses this to merge worker registries in task
        order, keeping merged metrics deterministic.
        """
        for name, value in snap.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snap.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, data in snap.get("histograms", {}).items():
            hist = self.histogram(name)
            count = data.get("count", 0)
            if not count:
                continue
            hist.count += count
            hist.total += data.get("sum", 0.0)
            if data.get("min") is not None and data["min"] < hist.min:
                hist.min = data["min"]
            if data.get("max") is not None and data["max"] > hist.max:
                hist.max = data["max"]
            for le, n in data.get("buckets", {}).items():
                le = int(le)
                hist.buckets[le] = hist.buckets.get(le, 0) + n

    # -- inspection / export -------------------------------------------
    def snapshot(self) -> dict:
        """All instrument values as one JSON-ready dict."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {k: h.to_dict()
                           for k, h in sorted(self._histograms.items())},
        }

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def export_json(self, path, extra: dict | None = None) -> dict:
        payload = dict(extra or {})
        payload["metrics"] = self.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return payload


REGISTRY = MetricsRegistry()


# Guarded module-level conveniences: no-ops while tracing is disabled, so
# instrumented pipeline code records nothing (and allocates nothing) by
# default.
def inc(name: str, n: int = 1) -> None:
    if enabled():
        REGISTRY.inc(name, n)


def set_gauge(name: str, value: float) -> None:
    if enabled():
        REGISTRY.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    if enabled():
        REGISTRY.observe(name, value)


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return REGISTRY.histogram(name)


def snapshot() -> dict:
    return REGISTRY.snapshot()


def merge_snapshot(snap: dict) -> None:
    REGISTRY.merge_snapshot(snap)


def clear() -> None:
    REGISTRY.clear()


def export_json(path, extra: dict | None = None) -> dict:
    return REGISTRY.export_json(path, extra)
