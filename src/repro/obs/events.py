"""Structured event log: typed, trace-stamped, append-only.

Where spans answer *how long*, events answer *what happened*: each entry
is one JSON-ready dict with a monotonically increasing ``seq``, a wall
timestamp, a ``type`` from a small vocabulary (``cell.done``,
``cell.retry``, ``cell.degrade``, ``phase.start``/``phase.end``,
``worker.restart``, ``worker.poison``, ``cache.corrupt``,
``breaker.state``, ``chaos.inject``, …), the emitting trace context
(``trace`` id + innermost open ``span`` id), and free-form fields.

The log is the substrate for three consumers:

* the ``obs tail`` CLI reads the JSONL file an attached sink appends to
  (``--events PATH`` on sweeps, ``--event-log`` on serve);
* ``GET /v1/jobs/<id>/events`` streams per-job events live (the
  :class:`~repro.serve.jobs.JobManager` subscribes and scopes);
* sharded sweep workers ship their buffers back for a deterministic
  task-order :meth:`EventLog.ingest`, exactly like span buffers.

Module-level :func:`emit` is guarded by :func:`repro.obs.trace.enabled`
— disabled mode pays one global read, records nothing, and allocates
nothing, preserving the <2% overhead guarantee.  All instance methods
are thread-safe (serve emits from the event loop, the job thread, and
the compute thread concurrently).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager

from .trace import TRACER, enabled

__all__ = ["EventLog", "EVENTS", "emit", "clear"]


class EventLog:
    """Ring-buffered, optionally file-backed structured event sink."""

    def __init__(self, capacity: int = 65536) -> None:
        self._lock = threading.Lock()
        self._events: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._file = None
        self._subscribers: list = []
        self._scope = threading.local()

    # -- recording -----------------------------------------------------
    def record(self, type_: str, **fields) -> dict:
        """Append one event (unguarded — callers own the policy).

        The event is stamped with the current trace context and any
        active :meth:`scope` fields, sequenced, mirrored to the attached
        file sink, and fanned out to subscribers.
        """
        event = {"ts": round(time.time(), 6), "type": type_}
        trace_id = TRACER.trace_id
        if trace_id:
            event["trace"] = trace_id
        stack = TRACER._stack
        if stack:
            event["span"] = stack[-1].span_id
        for frame in getattr(self._scope, "frames", ()):
            event.update(frame)
        event.update(fields)
        self._append(event)
        return event

    def _append(self, event: dict) -> None:
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            self._events.append(event)
            if self._file is not None:
                self._file.write(json.dumps(event, sort_keys=True) + "\n")
                self._file.flush()
            subscribers = list(self._subscribers)
        for callback in subscribers:
            callback(event)

    def ingest(self, records: list[dict]) -> int:
        """Merge foreign events (a worker's shipped buffer) in order.

        Each record is re-sequenced into this log's ``seq`` space and
        picks up the caller's active scope fields, so events a pool
        worker emitted surface under the parent's job/sweep scope.
        """
        scope_fields: dict = {}
        for frame in getattr(self._scope, "frames", ()):
            scope_fields.update(frame)
        for data in records:
            event = dict(data)
            event.pop("seq", None)
            for key, value in scope_fields.items():
                event.setdefault(key, value)
            self._append(event)
        return len(records)

    # -- scoping and subscription --------------------------------------
    @contextmanager
    def scope(self, **fields):
        """Attach ``fields`` to every event this thread emits inside."""
        frames = getattr(self._scope, "frames", None)
        if frames is None:
            frames = self._scope.frames = []
        frames.append(fields)
        try:
            yield
        finally:
            frames.pop()

    @contextmanager
    def subscribe(self, callback):
        """Call ``callback(event)`` for every event while subscribed."""
        with self._lock:
            self._subscribers.append(callback)
        try:
            yield
        finally:
            with self._lock:
                self._subscribers.remove(callback)

    # -- file sink -----------------------------------------------------
    def attach(self, path) -> None:
        """Append every subsequent event to ``path`` as JSON lines."""
        self.detach()
        with self._lock:
            self._file = open(path, "a", encoding="utf-8")

    def detach(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    # -- inspection / export -------------------------------------------
    def events(self, **filters) -> list[dict]:
        """Recorded events, oldest first, matching all ``filters``."""
        with self._lock:
            snapshot = list(self._events)
        if not filters:
            return snapshot
        return [event for event in snapshot
                if all(event.get(k) == v for k, v in filters.items())]

    def since(self, seq: int, **filters) -> tuple[list[dict], int]:
        """``(events with seq > given, highest seq seen)`` — the polling
        primitive behind the live ``/v1/jobs/<id>/events`` stream."""
        with self._lock:
            snapshot = list(self._events)
            latest = self._seq
        fresh = [event for event in snapshot if event["seq"] > seq
                 and all(event.get(k) == v for k, v in filters.items())]
        return fresh, latest

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._seq = 0

    def export_jsonl(self, path) -> int:
        """Write all retained events as JSON lines; returns the count."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)


EVENTS = EventLog()


def emit(type_: str, **fields) -> None:
    """Record a typed event while instrumentation is enabled."""
    if enabled():
        EVENTS.record(type_, **fields)


def clear() -> None:
    EVENTS.clear()
