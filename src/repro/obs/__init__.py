"""Observability substrate: structured tracing, metrics, and profiling.

The pipeline (frontend build → elaborate → synth → simulate → evaluate)
is instrumented with nested spans and named counters so that any Table II
cell or Fig. 1 point can be explained with a per-phase breakdown:

* :mod:`repro.obs.trace`   — span/event tracer with a ring buffer,
  JSON-lines export, and cross-process :class:`~repro.obs.trace.\
TraceContext` propagation (trace id + parent span id);
* :mod:`repro.obs.metrics` — counters, gauges, and log2-bucketed
  histograms in a named registry;
* :mod:`repro.obs.events`  — the structured event log: typed,
  trace-stamped JSONL events (``cell.done``, ``worker.restart``,
  ``cache.corrupt``, ``breaker.state``, …);
* :mod:`repro.obs.report`  — flame-style text profile and file exporters.

Everything is **off by default**: while disabled, ``trace.span`` returns a
shared null context manager, ``trace.event`` / ``metrics.inc`` return
immediately, and nothing is recorded, so timing-sensitive code pays one
flag check per *run*, not per cycle.  Enable with :func:`enable` (the CLI
does this for ``profile`` and the ``--trace``/``--metrics`` flags).
"""

from . import events, metrics, report, trace
from .trace import disable, enable, enabled

__all__ = ["trace", "metrics", "events", "report", "enable", "disable",
           "enabled", "clear"]


def clear() -> None:
    """Drop all recorded events and metric values (flag is untouched)."""
    trace.clear()
    metrics.clear()
    events.clear()
