"""Measuring one design point: simulation timing + synthesis estimates.

``measure_design`` produces everything one Table II column cell needs:
functional verification against the golden model, measured latency and
periodicity, model-estimated clock and area (with and without DSP
inference), and the paper's throughput ``P = ν_max / T_P``.

MaxJ designs take the system path: ticks-per-op from the kernel shape and
throughput through the PCIe manager model, with the PCIe pin count as
N_IO (the paper's 59).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from .. import cache as artifact_cache
from ..frontends.base import Design
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..rtl import elaborate
from ..synth import SynthReport, synthesize
from .loc import design_loc
from .verify import verify_design

__all__ = ["Measured", "measure_design", "clear_measure_cache"]


@dataclass
class Measured:
    """All per-design quantities reported in the paper's Table II."""

    name: str
    language: str
    tool: str
    config: str
    loc: int
    fmax_mhz: float
    t_clk_ns: float
    latency: int
    periodicity: int
    throughput_mops: float
    lut_star: int        # N*_LUT (maxdsp=0)
    ff_star: int         # N*_FF (maxdsp=0)
    lut: int             # N_LUT (DSP inference allowed)
    ff: int
    dsp: int
    n_io: int
    bram: int = 0
    bit_exact: bool = True
    extra: dict = field(default_factory=dict)

    @property
    def area(self) -> int:
        """The paper's A = N*_LUT + N*_FF."""
        return self.lut_star + self.ff_star

    @property
    def quality(self) -> float:
        """Q = P / A, in the paper's OPS-per-(LUT+FF) unit."""
        return self.throughput_mops * 1e6 / self.area

    def to_dict(self) -> dict:
        """Flatten into JSON-ready primitives (exact float round-trip)."""
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        """Canonical JSON text, newline-terminated.

        This is the *one* serialization the CLI (``measure --json``) and
        the evaluation service (``POST /v1/measure``) both emit, so the
        two can be compared byte-for-byte.
        """
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "Measured":
        """Rebuild from :meth:`to_dict` output; unknown keys are ignored."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


# Keyed by (design name, n_matrices, engine) — two engines' measurements
# of the same design must not shadow each other (the disk key already
# includes both parameters).
_CACHE: dict[tuple[str, int, str], Measured] = {}


def clear_measure_cache() -> None:
    """Drop the per-process measurement cache (e.g. before a traced run)."""
    _CACHE.clear()


def measure_design(design: Design, n_matrices: int = 4,
                   use_cache: bool = True, engine: str = "compiled") -> Measured:
    """Fully characterize ``design`` (cached per process by name).

    When an artifact cache is active (:func:`repro.cache.active`) the
    result is also looked up on — and persisted to — disk, keyed by the
    design identity, the measurement parameters, and the source-tree
    code digest, so repeat sweeps (and other commands measuring the same
    design points) skip simulation and synthesis entirely.
    """
    memo_key = (design.name, n_matrices, engine)
    if use_cache and memo_key in _CACHE:
        obs_trace.event("measure.cache_hit", design=design.name)
        obs_metrics.inc("measure.cache_hits")
        return _CACHE[memo_key]
    disk = artifact_cache.active() if use_cache else None
    key = None
    if disk is not None:
        key = artifact_cache.artifact_key(
            "measured", design.name, design.config,
            n_matrices=n_matrices, engine=engine)
        payload = disk.get_json("measured", key)
        if payload is not None:
            obs_trace.event("measure.disk_cache_hit", design=design.name)
            measured = Measured.from_dict(payload)
            _CACHE[memo_key] = measured
            return measured
    with obs_trace.span("measure", design=design.name, tool=design.tool,
                        config=design.config):
        if "maxj" in design.meta:
            measured = _measure_maxj(design)
        else:
            measured = _measure_stream(design, n_matrices, engine)
        obs_metrics.inc("measure.designs")
    if use_cache:
        _CACHE[memo_key] = measured
    if disk is not None:
        disk.put_json("measured", key, measured.to_dict())
    return measured


def _synth_pair(design: Design) -> tuple[SynthReport, SynthReport]:
    disk = artifact_cache.active()
    key = None
    netlist = None
    if disk is not None:
        key = artifact_cache.artifact_key("netlist", design.name, design.config)
        netlist = disk.get_pickle("netlist", key)
    if netlist is None:
        netlist = elaborate(design.top)
        if disk is not None:
            disk.put_pickle("netlist", key, netlist)
    return synthesize(netlist), synthesize(netlist, max_dsp=0)


def _measure_stream(design: Design, n_matrices: int,
                    engine: str = "compiled") -> Measured:
    run = verify_design(design, n_matrices=n_matrices, engine=engine)
    with_dsp, no_dsp = _synth_pair(design)
    return Measured(
        name=design.name,
        language=design.language,
        tool=design.tool,
        config=design.config,
        loc=design_loc(design),
        fmax_mhz=with_dsp.fmax_mhz,
        t_clk_ns=with_dsp.t_clk_ns,
        latency=run.latency,
        periodicity=run.periodicity,
        throughput_mops=with_dsp.fmax_mhz / run.periodicity,
        lut_star=no_dsp.n_lut,
        ff_star=no_dsp.n_ff,
        lut=with_dsp.n_lut,
        ff=with_dsp.n_ff,
        dsp=with_dsp.n_dsp,
        n_io=with_dsp.n_io,
        bram=with_dsp.n_bram,
        bit_exact=run.bit_exact,
    )


def _measure_maxj(design: Design) -> Measured:
    from ..eval.verify import random_matrices
    from ..frontends.maxj import system_throughput, verify_maxj

    meta = design.meta["maxj"]
    bit_exact = verify_maxj(design, random_matrices(3))
    with_dsp, no_dsp = _synth_pair(design)
    manager = system_throughput(
        with_dsp.fmax_mhz, meta["ticks_per_op"], meta["input_bits"], meta["link"]
    )
    return Measured(
        name=design.name,
        language=design.language,
        tool=design.tool,
        config=design.config,
        loc=design_loc(design),
        fmax_mhz=with_dsp.fmax_mhz,
        t_clk_ns=with_dsp.t_clk_ns,
        latency=meta["pipeline_depth"],
        periodicity=meta["ticks_per_op"],
        throughput_mops=manager.throughput_mops,
        lut_star=no_dsp.n_lut,
        ff_star=no_dsp.n_ff,
        lut=with_dsp.n_lut,
        ff=with_dsp.n_ff,
        dsp=with_dsp.n_dsp,
        n_io=meta["link"].pins,
        bram=with_dsp.n_bram,
        bit_exact=bit_exact,
        extra={"bound": manager.bound, "link_mops": manager.link_mops,
               "kernel_mops": manager.kernel_mops},
    )
