"""Design verification and timing measurement for evaluated designs.

Every design point in the study is validated the same way before its
metrics are reported: stream IEEE-1180-style random matrices through the
AXI-Stream top, check bit-exactness against the Chen-Wang golden model,
and measure latency/periodicity from the same run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..axis.harness import StreamHarness, StreamTiming, always
from ..core.errors import EvaluationError
from ..idct.ieee1180 import Ieee1180Generator
from ..idct.reference import chen_wang_idct
from ..frontends.base import Design
from ..sim import Simulator

__all__ = ["VerifyResult", "verify_design", "random_matrices"]


def random_matrices(count: int, seed: int = 1, low: int = 256, high: int = 255,
                    sign: int = 1):
    """IEEE-1180-style random input matrices.

    ``low``/``high``/``sign`` select one of the standard's input
    conditions (range ``[-L, H]``, optionally negated).
    """
    gen = Ieee1180Generator(seed)
    return [gen.block(low, high, sign) for _ in range(count)]


@dataclass
class VerifyResult:
    """Outcome of one verification run."""

    design: str
    matrices: int
    bit_exact: bool
    timing: StreamTiming
    mismatches: int = 0

    @property
    def latency(self) -> int:
        return self.timing.latency

    @property
    def periodicity(self) -> int:
        return self.timing.periodicity


def verify_design(
    design: Design,
    n_matrices: int = 6,
    seed: int = 1,
    simulator: Simulator | None = None,
    strict: bool = True,
    engine: str = "compiled",
    low: int = 256,
    high: int = 255,
    sign: int = 1,
    matrices=None,
) -> VerifyResult:
    """Run ``design`` on random matrices; check against the golden model.

    Raises :class:`EvaluationError` on a functional mismatch when
    ``strict`` (the default) — a design whose output is wrong must never
    contribute numbers to a reproduction table.  ``engine`` selects the
    simulator evaluation engine when no ``simulator`` is supplied;
    ``low``/``high``/``sign`` pick the IEEE 1180 input condition the
    stimulus is drawn from, or pass explicit ``matrices`` (used by the
    fault-injection campaign's directed batteries).
    """
    sim = simulator or Simulator(design.top, engine=engine)
    harness = StreamHarness(sim, design.spec)
    if matrices is None:
        matrices = random_matrices(n_matrices, seed, low, high, sign)
    else:
        n_matrices = len(matrices)
    outputs, timing = harness.run_matrices(matrices, always, always)
    expected = [chen_wang_idct(m) for m in matrices]
    mismatches = sum(1 for got, want in zip(outputs, expected) if got != want)
    result = VerifyResult(
        design=design.name,
        matrices=n_matrices,
        bit_exact=mismatches == 0,
        timing=timing,
        mismatches=mismatches,
    )
    if strict and not result.bit_exact:
        raise EvaluationError(
            f"{design.name}: {mismatches}/{n_matrices} matrices mismatch the "
            f"golden model"
        )
    return result
