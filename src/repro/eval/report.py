"""Report writers: Markdown and CSV renderings of the evaluation results.

``write_markdown_report`` produces a self-contained document with Table I,
Table II (both orientations), the derived metrics, and per-design notes —
the artifact a user drops into a lab notebook or CI summary.
"""

from __future__ import annotations

import io

from .experiments import Table2, ToolColumn, render_table1

__all__ = ["table2_markdown", "write_markdown_report"]


def _fmt(value, digits=1):
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def table2_markdown(table: Table2) -> str:
    """Table II as a GitHub-flavoured Markdown table (tools as rows)."""
    out = io.StringIO()
    out.write(
        "| tool | config | L | α % | f MHz | P MOPS | T_L | T_P | "
        "A (N\\*LUT+N\\*FF) | N_DSP | Q | C_Q % | F_Q |\n"
    )
    out.write("|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
    for key, column in table.columns.items():
        if column.failed:
            out.write(
                f"| {key} | — | FAILED({column.failure_reason}) "
                + "| — " * 10 + "|\n"
            )
            continue
        for measured, alpha in (
            (column.initial, column.automation_initial),
            (column.optimized, column.automation_opt),
        ):
            out.write(
                f"| {key} | {measured.config} | {measured.loc} "
                f"| {_fmt(alpha)} | {_fmt(measured.fmax_mhz, 2)} "
                f"| {_fmt(measured.throughput_mops, 2)} "
                f"| {measured.latency} | {measured.periodicity} "
                f"| {measured.area} | {measured.dsp} "
                f"| {_fmt(measured.quality, 0)} "
                f"| {_fmt(column.controllability)} "
                f"| {_fmt(column.flexibility)} |\n"
            )
    return out.getvalue()


def _column_notes(column: ToolColumn) -> str:
    if column.failed:
        return f"FAILED({column.failure_reason})"
    notes = []
    if column.optimized.periodicity == 9:
        notes.append("one-cycle scheduling bubble (periodicity 9)")
    if column.optimized.periodicity > 100:
        notes.append("sequential memory-bound schedule")
    if column.initial.n_io == 59:
        notes.append("PCIe system interface (no AXI wrapper)")
    if column.optimized.ff_star > 4 * column.optimized.lut_star:
        notes.append("flip-flop-dominated (deep pipelining)")
    return "; ".join(notes) if notes else "—"


def write_markdown_report(table: Table2, path: str | None = None) -> str:
    """Render the full evaluation report; optionally write it to ``path``."""
    out = io.StringIO()
    out.write("# HLS vs HC evaluation report\n\n")
    out.write("## Table I — languages and tools\n\n```\n")
    out.write(render_table1())
    out.write("\n```\n\n## Table II — evaluation results\n\n")
    out.write(table2_markdown(table))
    out.write("\n## Notes per tool\n\n")
    for key, column in table.columns.items():
        out.write(f"* **{key}**: ΔL={column.delta_loc}; {_column_notes(column)}\n")
    text = out.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
