"""Evaluation harness: metrics, measurement, and the paper's artifacts."""

from .experiments import (
    Fig1Series,
    PAIRS,
    TOOL_TABLE,
    Table2,
    ToolColumn,
    ToolEntry,
    fig1_design_lists,
    generate_fig1,
    generate_table1,
    generate_table2,
    render_fig1,
    render_table1,
    render_table2,
)
from .loc import count_loc, delta_loc, design_loc
from .measure import Measured, clear_measure_cache, measure_design
from .report import table2_markdown, write_markdown_report
from .verify import VerifyResult, random_matrices, verify_design

__all__ = [
    "count_loc",
    "design_loc",
    "delta_loc",
    "Measured",
    "measure_design",
    "clear_measure_cache",
    "VerifyResult",
    "verify_design",
    "random_matrices",
    "ToolEntry",
    "TOOL_TABLE",
    "generate_table1",
    "render_table1",
    "Table2",
    "ToolColumn",
    "generate_table2",
    "render_table2",
    "Fig1Series",
    "fig1_design_lists",
    "generate_fig1",
    "render_fig1",
    "PAIRS",
    "table2_markdown",
    "write_markdown_report",
]
