"""The paper's experiments: Table I, Table II, and Figure 1.

The registry maps each evaluated language/tool pair to its initial and
optimized designs (plus each tool's configuration sweep for the DSE
figure).  Everything is regenerated from scratch: the designs are built,
simulated against the golden model, and run through the synthesis cost
model, then the paper's derived metrics (α, Q, C_Q, F_Q) are computed
per equations (1)-(3).

Sweeps are fault-tolerant: every design point is measured through a
:class:`~repro.resilience.runner.SweepRunner`, which contains per-design
failures (budgets, retries, checkpoint/resume) so one broken configuration
renders as ``FAILED(<reason>)`` instead of aborting the table or figure.
Pass your own ``runner=`` to set budgets, inject faults, or resume from a
checkpoint; the default runner retries once, then once degraded, with no
budget limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.errors import EvaluationError, ReproError
from ..frontends.base import Design
from ..obs import trace as obs_trace
from .loc import delta_loc
from .measure import Measured, measure_design

__all__ = [
    "ToolEntry",
    "TOOL_TABLE",
    "ToolColumn",
    "generate_table1",
    "generate_table2",
    "Table2",
    "Fig1Series",
    "fig1_design_lists",
    "generate_fig1",
    "render_table1",
    "render_table2",
    "render_fig1",
]


# ----------------------------------------------------------------------
# Table I — languages and tools under evaluation
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ToolEntry:
    language: str
    paradigm: str
    tool: str
    tool_type: str   # LS/PR | HC | HLS
    openness: str


TOOL_TABLE: tuple[ToolEntry, ...] = (
    ToolEntry("Verilog", "Classical RTL", "Vivado", "LS/PR", "Commercial"),
    ToolEntry("Chisel", "Functional/RTL", "Chisel", "HC", "Open-source"),
    ToolEntry("BSV", "Rule-based/RTL", "BSC", "HC", "Open-source"),
    ToolEntry("DSLX", "Functional", "XLS", "HLS", "Open-source"),
    ToolEntry("MaxJ", "Dataflow", "MaxCompiler", "HLS", "Commercial"),
    ToolEntry("C", "Imperative", "Bambu", "HLS", "Open-source"),
    ToolEntry("C", "Imperative", "Vivado HLS", "HLS", "Commercial"),
)


def generate_table1() -> tuple[ToolEntry, ...]:
    return TOOL_TABLE


def render_table1() -> str:
    header = f"{'Language':10s} {'Paradigm':16s} {'Tool':12s} {'Type':6s} {'Openness'}"
    lines = [header, "-" * len(header)]
    for entry in TOOL_TABLE:
        lines.append(
            f"{entry.language:10s} {entry.paradigm:16s} {entry.tool:12s} "
            f"{entry.tool_type:6s} {entry.openness}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# design registry
# ----------------------------------------------------------------------

def _verilog_pair() -> tuple[Design, Design]:
    from ..frontends.vlog import verilog_initial, verilog_opt

    return verilog_initial(), verilog_opt()


def _chisel_pair() -> tuple[Design, Design]:
    from ..frontends.hc import chisel_initial, chisel_opt

    return chisel_initial(), chisel_opt()


def _bsv_pair() -> tuple[Design, Design]:
    from ..frontends.rules import bsv_initial, bsv_opt

    return bsv_initial(), bsv_opt()


def _xls_pair() -> tuple[Design, Design]:
    from ..frontends.flow import xls_design, xls_initial

    return xls_initial(), xls_design(8, config="opt")


def _maxj_pair() -> tuple[Design, Design]:
    from ..frontends.maxj import maxj_initial, maxj_opt

    return maxj_initial(), maxj_opt()


def _bambu_pair() -> tuple[Design, Design]:
    from ..frontends.chls import bambu_initial, bambu_opt

    return bambu_initial(), bambu_opt()


def _vivado_hls_pair() -> tuple[Design, Design]:
    from ..frontends.chls import vivado_initial, vivado_opt

    return vivado_initial(), vivado_opt()


PAIRS: dict[str, Callable[[], tuple[Design, Design]]] = {
    "Verilog/Vivado": _verilog_pair,
    "Chisel/Chisel": _chisel_pair,
    "BSV/BSC": _bsv_pair,
    "DSLX/XLS": _xls_pair,
    "MaxJ/MaxCompiler": _maxj_pair,
    "C/Bambu": _bambu_pair,
    "C/Vivado HLS": _vivado_hls_pair,
}


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------

@dataclass
class ToolColumn:
    """One tool's pair of Table II columns plus the derived metrics.

    ``initial``/``optimized`` are ``None`` when that design point failed;
    the matching ``*_error`` then holds the runner's failure record and the
    column renders as ``FAILED(<reason>)``.
    """

    key: str
    initial: Measured | None
    optimized: Measured | None
    delta_loc: int = 0
    automation_initial: float = 0.0
    automation_opt: float = 0.0
    controllability: float = 0.0
    flexibility: float = 0.0
    initial_error: dict | None = None
    optimized_error: dict | None = None

    @property
    def failed(self) -> bool:
        return self.initial is None or self.optimized is None

    @property
    def failure_reason(self) -> str:
        from ..resilience.errors import failure_reason

        for record in (self.initial_error, self.optimized_error):
            if record is not None:
                return failure_reason(record)
        return "unknown"


@dataclass
class Table2:
    columns: dict[str, ToolColumn] = field(default_factory=dict)

    def column(self, key: str) -> ToolColumn:
        return self.columns[key]


def _measure_column(key: str, runner) -> ToolColumn:
    """Build and measure one tool pair, containing any typed failure."""
    from ..resilience.errors import failure_record

    try:
        initial, optimized = PAIRS[key]()
    except ReproError as exc:
        record = failure_record(exc, design=key, phase="frontend.build")
        obs_trace.event("table2.column_failed", column=key,
                        reason=record["type"])
        return ToolColumn(key=key, initial=None, optimized=None,
                          initial_error=record, optimized_error=record)
    res_initial = runner.measure(initial)
    res_optimized = runner.measure(optimized)
    return ToolColumn(
        key=key,
        initial=res_initial.measured,
        optimized=res_optimized.measured,
        delta_loc=delta_loc(initial, optimized),
        initial_error=res_initial.error,
        optimized_error=res_optimized.error,
    )


def generate_table2(tools: list[str] | None = None, runner=None) -> Table2:
    """Measure every tool pair and compute α, C_Q, F_Q per the paper.

    Each design point runs through ``runner`` (a
    :class:`~repro.resilience.runner.SweepRunner`; a default one is built
    when omitted).  A failed point leaves its column with ``None``
    measurements and a failure record instead of raising — except the
    Verilog/Vivado baseline, which every derived metric normalizes
    against, so its failure raises :class:`EvaluationError`.
    """
    from ..resilience.runner import SweepRunner

    if runner is None:
        runner = SweepRunner()
    keys = tools or list(PAIRS)
    if "Verilog/Vivado" not in keys:
        keys = ["Verilog/Vivado"] + keys
    table = Table2()
    for key in keys:
        table.columns[key] = _measure_column(key, runner)
    baseline = table.columns["Verilog/Vivado"]
    if baseline.failed:
        raise EvaluationError(
            "Verilog/Vivado baseline failed; Table II cannot be normalized",
            design="Verilog/Vivado", phase="eval.table2",
            reason=baseline.failure_reason,
        )
    for column in table.columns.values():
        if column.failed:
            continue
        column.automation_initial = (
            (baseline.initial.loc - column.initial.loc) / baseline.initial.loc * 100
        )
        column.automation_opt = (
            (baseline.optimized.loc - column.optimized.loc)
            / baseline.optimized.loc * 100
        )
        column.controllability = (
            column.optimized.quality / baseline.optimized.quality * 100
        )
        if column.delta_loc:
            column.flexibility = (
                (column.optimized.quality - column.initial.quality)
                / column.delta_loc
            )
    return table


_ROWS: list[tuple[str, Callable[[ToolColumn], tuple]]] = [
    ("LOC, incl. options", lambda c: (c.initial.loc, c.optimized.loc)),
    ("Modification dL", lambda c: (c.delta_loc, "")),
    ("Automation a, %", lambda c: (round(c.automation_initial, 1),
                                   round(c.automation_opt, 1))),
    ("Quality Q=P/A", lambda c: (round(c.initial.quality), round(c.optimized.quality))),
    ("Controllability C_Q, %", lambda c: (round(c.controllability, 1), "")),
    ("Flexibility F_Q", lambda c: (round(c.flexibility, 1), "")),
    ("Frequency, MHz", lambda c: (round(c.initial.fmax_mhz, 2),
                                  round(c.optimized.fmax_mhz, 2))),
    ("Throughput, MOPS", lambda c: (round(c.initial.throughput_mops, 2),
                                    round(c.optimized.throughput_mops, 2))),
    ("Latency, cycles", lambda c: (c.initial.latency, c.optimized.latency)),
    ("Periodicity, cycles", lambda c: (c.initial.periodicity, c.optimized.periodicity)),
    ("Area N*LUT+N*FF", lambda c: (c.initial.area, c.optimized.area)),
    ("N*LUT (maxdsp=0)", lambda c: (c.initial.lut_star, c.optimized.lut_star)),
    ("N*FF (maxdsp=0)", lambda c: (c.initial.ff_star, c.optimized.ff_star)),
    ("N_LUT", lambda c: (c.initial.lut, c.optimized.lut)),
    ("N_FF", lambda c: (c.initial.ff, c.optimized.ff)),
    ("N_DSP", lambda c: (c.initial.dsp, c.optimized.dsp)),
    ("N_IO", lambda c: (c.initial.n_io, c.optimized.n_io)),
]


def render_table2(table: Table2) -> str:
    keys = list(table.columns)
    width = 17
    lines = []
    header = f"{'':24s}" + "".join(f"{k:>{2 * width}s}" for k in keys)
    lines.append(header)
    sub = f"{'':24s}" + "".join(
        f"{'Initial':>{width}s}{'Opt':>{width}s}" for _ in keys
    )
    lines.append(sub)
    lines.append("-" * len(sub))
    for label, getter in _ROWS:
        cells = []
        for key in keys:
            column = table.columns[key]
            if column.failed:
                # Keep the cell inside the column width, parenthesis closed.
                cell = f"FAILED({column.failure_reason[: width - 10]})"
                cells.append(f"{cell:>{width}s}{cell:>{width}s}")
                continue
            initial, optimized = getter(column)
            cells.append(f"{initial!s:>{width}s}{optimized!s:>{width}s}")
        lines.append(f"{label:24s}" + "".join(cells))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 1 — design space exploration in the Performance x Area plane
# ----------------------------------------------------------------------

@dataclass
class Fig1Series:
    """One tool's scatter points: (throughput MOPS, area) per design.

    ``failures`` lists ``(config, reason)`` for design points that could
    not be built or measured; the sweep continues past them.
    """

    tool: str
    points: list[tuple[str, float, int]] = field(default_factory=list)
    failures: list[tuple[str, str]] = field(default_factory=list)


def fig1_design_lists(
    bsc_configs: int = 26,
    bambu_configs: int = 42,
    xls_stages: int = 18,
) -> list[tuple[str, list]]:
    """The ordered ``(tool, design points)`` structure behind Figure 1.

    A point is either a built :class:`Design` or a ``(config, factory)``
    pair deferring construction so build-time failures (e.g. a schedule
    that does not fit) are contained per point.  This enumeration is the
    unit of work the sharded executor (:mod:`repro.exec`) distributes:
    workers rebuild the identical structure from the same sizes, so a
    ``(tool, index)`` pair addresses the same design point in every
    process.
    """
    from ..frontends.chls import (
        bambu_design,
        bambu_sweep,
        vivado_initial,
        vivado_opt,
    )
    from ..frontends.flow import xls_design
    from ..frontends.hc import chisel_initial, chisel_opt
    from ..frontends.maxj import maxj_initial, maxj_opt
    from ..frontends.rules import bsc_sweep, bsv_initial, bsv_opt
    from ..frontends.vlog import all_designs as verilog_designs

    return [
        ("Vivado", verilog_designs()),
        ("Chisel", [chisel_initial(), chisel_opt()]),
        ("BSC", [bsv_initial(), bsv_opt()] + bsc_sweep()[:bsc_configs]),
        ("XLS", [(f"pipe{n}", lambda n=n: xls_design(n))
                 for n in range(0, xls_stages + 1)]),
        ("MaxCompiler", [maxj_initial(), maxj_opt()]),
        ("Bambu", [(f"sweep{i}", lambda cfg=cfg, i=i: bambu_design(cfg, f"sweep{i}"))
                   for i, cfg in enumerate(bambu_sweep()[:bambu_configs])]),
        ("Vivado HLS", [vivado_initial(), vivado_opt()]),
    ]


def generate_fig1(
    bsc_configs: int = 26,
    bambu_configs: int = 42,
    xls_stages: int = 18,
    runner=None,
    design_lists: list[tuple[str, list]] | None = None,
) -> list[Fig1Series]:
    """All DSE sweeps of the paper's Figure 1 (sizes configurable).

    Every design point goes through ``runner``
    (:class:`~repro.resilience.runner.SweepRunner`, default-constructed
    when omitted), so a single failed configuration records a
    ``(config, reason)`` failure on its series instead of aborting the
    whole figure.  ``design_lists`` lets a caller that already built the
    :func:`fig1_design_lists` enumeration (the sharded executor) reuse it
    instead of building every design twice.

    When the runner prefetched results for deferred points (it exposes a
    ``deferred_result`` hook, as :class:`repro.exec.ParallelSweepRunner`
    does), their factories are never invoked here — the build happened in
    a worker process — which keeps the serial consume pass cheap.
    """
    from ..resilience.errors import failure_reason, failure_record
    from ..resilience.runner import SweepRunner

    if runner is None:
        runner = SweepRunner()
    if design_lists is None:
        design_lists = fig1_design_lists(bsc_configs=bsc_configs,
                                         bambu_configs=bambu_configs,
                                         xls_stages=xls_stages)
    deferred_hook = getattr(runner, "deferred_result", None)
    series: list[Fig1Series] = []

    def fail(entry: Fig1Series, tool: str, config: str, reason: str) -> None:
        entry.failures.append((config, reason))
        obs_trace.event("fig1.point_failed", tool=tool, config=config,
                        reason=reason)

    def add(tool: str, designs: list) -> None:
        entry = Fig1Series(tool=tool)
        for item in designs:
            if isinstance(item, tuple):
                config, factory = item
                pre = deferred_hook(tool, config) if deferred_hook else None
                if pre is not None:
                    if pre.build_error is not None:
                        fail(entry, tool, config,
                             failure_reason(pre.build_error))
                        continue
                    result = pre.result
                    config = pre.config
                else:
                    try:
                        design = factory()
                    except ReproError as exc:
                        record = failure_record(exc, design=config,
                                                phase="frontend.build")
                        fail(entry, tool, config, failure_reason(record))
                        continue
                    config = design.config
                    result = runner.measure(design)
            else:
                design = item
                config = design.config
                result = runner.measure(design)
            if result.ok:
                measured = result.measured
                entry.points.append(
                    (config, measured.throughput_mops, measured.area)
                )
            else:
                fail(entry, tool, config, result.reason)
        series.append(entry)

    for tool, designs in design_lists:
        add(tool, designs)
    return series


def render_fig1(series: list[Fig1Series]) -> str:
    """Text rendering of the DSE scatter (P in MOPS, A in LUT+FF)."""
    lines = ["Design space exploration (Performance x Area)"]
    for entry in series:
        lines.append(f"\n{entry.tool}:")
        for config, throughput, area in entry.points:
            lines.append(f"  {config:24s} P={throughput:10.3f} MOPS  A={area:7d}")
        for config, reason in entry.failures:
            lines.append(f"  {config:24s} FAILED({reason})")
    return "\n".join(lines)
