"""Lines-of-code measurement (the paper's L metric).

The paper counts non-comment, non-blank source lines, *including* tool
settings (configuration files and pragmas).  Our artifacts mix languages
(Python-embedded DSLs, mini-C, config files), so the counter strips the
comment syntaxes of all of them: ``//``, ``/* */``, ``#`` line comments,
and Python docstrings.
"""

from __future__ import annotations

import difflib
import re

from ..frontends.base import Design, SourceArtifact

__all__ = ["count_loc", "design_loc", "delta_loc"]

_TRIPLE = re.compile(r'("""|\'\'\')')


def _strip_python_docstrings(text: str) -> str:
    """Remove triple-quoted strings that start a logical line."""
    out: list[str] = []
    in_doc: str | None = None
    for line in text.splitlines():
        stripped = line.strip()
        if in_doc is not None:
            if in_doc in stripped:
                in_doc = None
            continue
        match = _TRIPLE.match(stripped)
        if match:
            quote = match.group(1)
            rest = stripped[len(quote):]
            if quote not in rest:
                in_doc = quote
            continue
        out.append(line)
    return "\n".join(out)


def count_loc(text: str, *, strip_docstrings: bool = True) -> int:
    """Count non-comment, non-blank lines of ``text``."""
    if strip_docstrings:
        text = _strip_python_docstrings(text)
    # Block comments.
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("//"):
            continue
        if stripped.startswith("#") and not stripped.startswith("#pragma"):
            # Preprocessor-style / Python comments, but HLS pragmas are
            # tool settings and count (the paper includes them in L).
            continue
        # Trailing line comments.
        code = re.sub(r"//.*$", "", stripped).strip()
        code = re.sub(r"(?<!#)#(?!pragma).*$", "", code).strip()
        if code:
            count += 1
    return count


def design_loc(design: Design) -> int:
    """Total L of a design: all counted source artifacts."""
    return sum(count_loc(s.text) for s in design.sources)


def _normalized_lines(sources: list[SourceArtifact]) -> list[str]:
    lines: list[str] = []
    for artifact in sources:
        text = _strip_python_docstrings(artifact.text)
        text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
        for line in text.splitlines():
            stripped = re.sub(r"//.*$", "", line.strip()).strip()
            if stripped and not stripped.startswith("//"):
                lines.append(stripped)
    return lines


def delta_loc(initial: Design, optimized: Design) -> int:
    """The paper's ΔL: changed lines (added + removed) between configs."""
    a = _normalized_lines(initial.sources)
    b = _normalized_lines(optimized.sources)
    matcher = difflib.SequenceMatcher(a=a, b=b, autojunk=False)
    added = removed = 0
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag in ("replace", "delete"):
            removed += i2 - i1
        if tag in ("replace", "insert"):
            added += j2 - j1
    return added + removed
