"""AXI-Stream wrapper generation around matrix kernels.

The generated module implements the paper's row-by-row interface: an
AXI-Stream slave accepts one matrix row per beat, the kernel transforms the
matrix, and an AXI-Stream master emits one result row per beat.

Flow control uses a global clock-enable (``run``): whenever the output
register holds a beat the sink has not consumed, every register in the
wrapper *and* the kernel freezes.  This keeps TDATA/TVALID stable during
stalls and never drops data, for any sink behaviour, without per-stage
skid buffers.

Timing in the streaming steady state (always-valid source, always-ready
sink) for a combinational kernel: latency 17 cycles, initiation interval 8
— exactly the paper's initial Verilog design.  ``allow_capture_overlap=
False`` inserts the one-cycle bubble (period 9) that the paper observes in
the BSV implementation.
"""

from __future__ import annotations

from ..core.errors import FrontendError
from ..rtl import Module, ops
from ..rtl.ir import Expr, Ref, Signal
from .spec import KernelSpec, KernelStyle

__all__ = ["build_axis_wrapper", "AxisPorts"]


class AxisPorts:
    """Names of the generated wrapper's stream ports (fixed convention)."""

    S_TDATA = "s_tdata"
    S_TVALID = "s_tvalid"
    S_TLAST = "s_tlast"
    S_TREADY = "s_tready"
    M_TDATA = "m_tdata"
    M_TVALID = "m_tvalid"
    M_TLAST = "m_tlast"
    M_TREADY = "m_tready"
    ERROR = "error"


def _count_width(max_value: int) -> int:
    return max(1, max_value.bit_length())


def _kernel_port_names(kernel: Module) -> set[str]:
    return {sig.name for sig in kernel.inputs + kernel.outputs}


def build_axis_wrapper(
    kernel: Module,
    spec: KernelSpec,
    name: str | None = None,
    allow_capture_overlap: bool = True,
) -> Module:
    """Wrap ``kernel`` (matching ``spec``) in a row-by-row AXI-Stream shell."""
    if spec.style in (KernelStyle.COMB_MATRIX, KernelStyle.PIPELINED_MATRIX):
        return _build_matrix_wrapper(kernel, spec, name, allow_capture_overlap)
    if spec.style is KernelStyle.ROW_SERIAL:
        return _build_row_serial_wrapper(kernel, spec, name)
    raise FrontendError(f"unsupported kernel style {spec.style}")


def _declare_stream_ports(m: Module, spec: KernelSpec):
    s_tdata = m.input(AxisPorts.S_TDATA, spec.in_row_bits)
    s_tvalid = m.input(AxisPorts.S_TVALID, 1)
    s_tlast = m.input(AxisPorts.S_TLAST, 1)
    m_tready = m.input(AxisPorts.M_TREADY, 1)
    s_tready = m.output(AxisPorts.S_TREADY, 1)
    m_tdata = m.output(AxisPorts.M_TDATA, spec.out_row_bits)
    m_tvalid = m.output(AxisPorts.M_TVALID, 1)
    m_tlast = m.output(AxisPorts.M_TLAST, 1)
    error = m.output(AxisPorts.ERROR, 1)
    return s_tdata, s_tvalid, s_tlast, m_tready, s_tready, m_tdata, m_tvalid, m_tlast, error


def _row_mux(m: Module, buf: Signal, count: Signal, rows: int, row_bits: int) -> Expr:
    """Select row ``count`` from the packed buffer (log-depth mux tree)."""
    rows_exprs = [
        ops.bits(buf, (r + 1) * row_bits - 1, r * row_bits) for r in range(rows)
    ]
    return ops.select(count, rows_exprs, signed=False)


def _build_matrix_wrapper(
    kernel: Module,
    spec: KernelSpec,
    name: str | None,
    allow_capture_overlap: bool,
) -> Module:
    ports = _kernel_port_names(kernel)
    if "in_mat" not in ports or "out_mat" not in ports:
        raise FrontendError(
            f"matrix kernel {kernel.name} must expose in_mat/out_mat ports"
        )
    rows = spec.rows
    m = Module(name or f"{kernel.name}_axis")
    (s_tdata, s_tvalid, s_tlast, m_tready,
     s_tready, m_tdata, m_tvalid, m_tlast, error) = _declare_stream_ports(m, spec)

    in_cnt_w = _count_width(rows - 1)
    out_cnt_w = _count_width(rows)

    out_reg_valid = m.reg("out_reg_valid", 1)
    run = m.connect("run", 1, ops.bor(ops.bnot(out_reg_valid), Ref(m_tready)))

    in_count = m.reg("in_count", in_cnt_w)
    out_count = m.reg("out_count", out_cnt_w, init=rows)
    out_buf = m.reg("out_buf", spec.out_mat_bits)
    out_reg = m.reg("out_reg", spec.out_row_bits)
    out_last = m.reg("out_last", 1)
    err_sticky = m.reg("err_sticky", 1)

    last_in = m.connect("last_in", 1, ops.eq(in_count, ops.const(rows - 1, in_cnt_w)))
    out_done = m.connect("out_done", 1, ops.eq(out_count, ops.const(rows, out_cnt_w)))
    out_penult = m.connect(
        "out_penult", 1, ops.eq(out_count, ops.const(rows - 1, out_cnt_w))
    )
    # The final row of a matrix may be accepted while the previous result
    # is still draining, as long as the drain completes before the new
    # result lands: ``latency`` cycles after issue for a pipelined kernel,
    # immediately for a combinational one.
    latency = spec.latency if spec.style is KernelStyle.PIPELINED_MATRIX else 0
    lead = latency + (1 if allow_capture_overlap else 0)
    threshold = rows - lead
    if threshold <= 0:
        capture_ok = m.connect("capture_ok", 1, ops.const(1, 1))
    else:
        capture_ok = m.connect(
            "capture_ok",
            1,
            ops.bor(
                out_done,
                ops.ge(out_count, ops.const(threshold, out_cnt_w), signed=False),
            ),
        )

    s_tready_int = m.connect(
        "s_tready_int",
        1,
        ops.band(run, ops.bor(ops.bnot(last_in), capture_ok)),
    )
    m.assign(s_tready, Ref(s_tready_int))
    accept = m.connect("accept", 1, ops.band(Ref(s_tvalid), Ref(s_tready_int)))
    issue = m.connect("issue", 1, ops.band(accept, last_in))

    # ------------------------------------------------------------------
    # input row registers (rows-1 of them; the last row feeds the kernel
    # straight off the bus so a matrix issues the cycle its last row lands)
    # ------------------------------------------------------------------
    in_rows: list[Signal] = []
    for r in range(rows - 1):
        row_reg = m.reg(
            f"in_row{r}",
            spec.in_row_bits,
            next=Ref(s_tdata),
            en=ops.band(
                ops.band(run, accept),
                ops.eq(in_count, ops.const(r, in_cnt_w)),
            ),
        )
        in_rows.append(row_reg)
    in_mat = m.connect(
        "in_mat",
        spec.in_mat_bits,
        ops.cat(Ref(s_tdata), *[Ref(r) for r in reversed(in_rows)]),
    )

    m.set_next(
        in_count,
        ops.mux(
            accept,
            ops.mux(last_in, ops.const(0, in_cnt_w), ops.add(in_count, 1)),
            Ref(in_count),
        ),
        en=run,
    )

    # ------------------------------------------------------------------
    # kernel instance
    # ------------------------------------------------------------------
    out_mat = m.wire("out_mat", spec.out_mat_bits)
    conns: dict[str, object] = {"in_mat": Ref(in_mat), "out_mat": out_mat}
    if "ce" in ports:
        conns["ce"] = Ref(run)
    m.instance(kernel, "kernel", **conns)

    if spec.style is KernelStyle.PIPELINED_MATRIX:
        # Delay line tracking matrices through the kernel pipeline.
        valid_chain: Expr = Ref(issue)
        for stage in range(spec.latency):
            valid_chain = Ref(m.reg(f"vld{stage}", 1, next=valid_chain, en=run))
        kernel_out_valid = m.connect("kernel_out_valid", 1, valid_chain)
    else:
        kernel_out_valid = m.connect("kernel_out_valid", 1, Ref(issue))

    capture = m.connect("capture", 1, ops.band(run, Ref(kernel_out_valid)))
    m.set_next(out_buf, Ref(out_mat), en=capture)

    # Overflow: the kernel produced a matrix while the previous one was
    # still draining (possible only with pathological latency/period
    # combinations; surfaced as a sticky error rather than silent loss).
    if spec.style is KernelStyle.PIPELINED_MATRIX:
        # Capturing while the final drain transfer fires is safe (the last
        # row moves to the output register the same edge), so only a capture
        # before the penultimate row has drained loses data.
        drain_safe = ops.bor(out_done, out_penult)
        overflow = ops.band(Ref(kernel_out_valid), ops.bnot(drain_safe))
    else:
        overflow = ops.const(0, 1)

    # TLAST alignment check on the input stream.
    tlast_bad = ops.band(
        accept,
        ops.bxor(Ref(s_tlast), Ref(last_in)),
    )
    m.set_next(
        err_sticky,
        ops.bor(Ref(err_sticky), ops.bor(overflow, tlast_bad)),
    )
    m.assign(error, Ref(err_sticky))

    # ------------------------------------------------------------------
    # output drain: move rows from out_buf into the output register
    # ------------------------------------------------------------------
    transfer = m.connect("transfer", 1, ops.bnot(out_done))
    m.set_next(
        out_count,
        ops.mux(
            Ref(capture),
            ops.const(0, out_cnt_w),
            ops.mux(transfer, ops.add(out_count, 1), Ref(out_count)),
        ),
        en=run,
    )
    row_bits = spec.out_row_bits
    safe_count = m.connect(
        "row_sel",
        out_cnt_w,
        Ref(out_count),
    )
    selected = _row_mux(m, out_buf, safe_count, rows, row_bits)
    m.set_next(out_reg, selected, en=ops.band(run, transfer))
    m.set_next(out_reg_valid, Ref(transfer), en=run)
    m.set_next(out_last, Ref(out_penult), en=run)

    m.assign(m_tdata, Ref(out_reg))
    m.assign(m_tvalid, Ref(out_reg_valid))
    m.assign(m_tlast, ops.band(Ref(out_last), Ref(out_reg_valid)))
    return m


def _build_row_serial_wrapper(
    kernel: Module,
    spec: KernelSpec,
    name: str | None,
) -> Module:
    ports = _kernel_port_names(kernel)
    needed = {"in_row", "in_valid", "out_row", "out_valid"}
    if not needed <= ports:
        raise FrontendError(
            f"row-serial kernel {kernel.name} must expose {sorted(needed)} ports"
        )
    rows = spec.rows
    m = Module(name or f"{kernel.name}_axis")
    (s_tdata, s_tvalid, s_tlast, m_tready,
     s_tready, m_tdata, m_tvalid, m_tlast, error) = _declare_stream_ports(m, spec)

    out_reg_valid = m.reg("out_reg_valid", 1)
    run = m.connect("run", 1, ops.bor(ops.bnot(out_reg_valid), Ref(m_tready)))
    m.assign(s_tready, Ref(run))
    accept = m.connect("accept", 1, ops.band(Ref(s_tvalid), Ref(run)))

    # TLAST alignment on the input.
    in_cnt_w = _count_width(rows - 1)
    in_count = m.reg("in_count", in_cnt_w)
    last_in = m.connect("last_in", 1, ops.eq(in_count, ops.const(rows - 1, in_cnt_w)))
    m.set_next(
        in_count,
        ops.mux(
            accept,
            ops.mux(last_in, ops.const(0, in_cnt_w), ops.add(in_count, 1)),
            Ref(in_count),
        ),
        en=run,
    )
    err_sticky = m.reg("err_sticky", 1)
    m.set_next(
        err_sticky,
        ops.bor(Ref(err_sticky), ops.band(accept, ops.bxor(Ref(s_tlast), Ref(last_in)))),
    )
    m.assign(error, Ref(err_sticky))

    # Kernel hookup.
    out_row = m.wire("out_row", spec.out_row_bits)
    out_valid = m.wire("out_valid", 1)
    conns: dict[str, object] = {
        "in_row": Ref(s_tdata),
        "in_valid": Ref(accept),
        "out_row": out_row,
        "out_valid": out_valid,
    }
    if "ce" in ports:
        conns["ce"] = Ref(run)
    m.instance(kernel, "kernel", **conns)

    # Output register + TLAST generation.
    out_cnt = m.reg("out_row_count", in_cnt_w)
    last_out = m.connect("last_out", 1, ops.eq(out_cnt, ops.const(rows - 1, in_cnt_w)))
    m.set_next(
        out_cnt,
        ops.mux(
            Ref(out_valid),
            ops.mux(last_out, ops.const(0, in_cnt_w), ops.add(out_cnt, 1)),
            Ref(out_cnt),
        ),
        en=run,
    )
    out_reg = m.reg("out_reg", spec.out_row_bits, next=Ref(out_row),
                    en=ops.band(run, Ref(out_valid)))
    out_last = m.reg("out_last", 1, next=Ref(last_out), en=ops.band(run, Ref(out_valid)))
    m.set_next(out_reg_valid, Ref(out_valid), en=run)

    m.assign(m_tdata, Ref(out_reg))
    m.assign(m_tvalid, Ref(out_reg_valid))
    m.assign(m_tlast, ops.band(Ref(out_last), Ref(out_reg_valid)))
    return m
