"""AXI-Stream system integration: kernel specs, wrapper generator, harness."""

from .harness import StreamHarness, StreamTiming, always, every, pack_row, unpack_row
from .spec import MATRIX_SPEC_12_9, KernelSpec, KernelStyle
from .elastic import build_elastic_wrapper
from .fifo import build_fifo
from .wrapper import AxisPorts, build_axis_wrapper

__all__ = [
    "KernelSpec",
    "KernelStyle",
    "MATRIX_SPEC_12_9",
    "build_axis_wrapper",
    "build_elastic_wrapper",
    "build_fifo",
    "AxisPorts",
    "StreamHarness",
    "StreamTiming",
    "always",
    "every",
    "pack_row",
    "unpack_row",
]
