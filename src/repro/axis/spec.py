"""Kernel interface conventions for AXI-Stream system wrappers.

The paper wraps every IDCT implementation in a row-by-row AXI-Stream
adapter before measuring it.  Our wrapper generator supports the three
kernel shapes the evaluated designs take:

* ``COMB_MATRIX``     — a combinational whole-matrix transform
  (port ``in_mat`` -> ``out_mat``); the paper's "initial" RTL designs.
* ``PIPELINED_MATRIX`` — the same dataflow cut into ``latency`` register
  stages (XLS-style auto-pipelined kernels); ports ``in_mat``/``out_mat``
  plus a clock-enable ``ce``.
* ``ROW_SERIAL``      — processes one row per cycle with internal
  transposition (ports ``in_row``/``in_valid``/``out_row``/``out_valid``
  and ``ce``); the paper's "optimized" 1xIDCTrow + 1xIDCTcol designs.

Kernels with state must expose a 1-bit ``ce`` input and gate every internal
register with it: the wrapper freezes the whole pipeline on output
backpressure, which keeps the AXI-Stream contract airtight under any sink
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..core.errors import FrontendError

__all__ = ["KernelStyle", "KernelSpec", "MATRIX_SPEC_12_9"]


class KernelStyle(Enum):
    COMB_MATRIX = "comb_matrix"
    PIPELINED_MATRIX = "pipelined_matrix"
    ROW_SERIAL = "row_serial"


@dataclass(frozen=True)
class KernelSpec:
    """Shape and element widths of a matrix kernel."""

    style: KernelStyle
    rows: int = 8
    cols: int = 8
    in_width: int = 12
    out_width: int = 9
    latency: int = 0  # pipeline depth for PIPELINED_MATRIX / ROW_SERIAL info

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 1:
            raise FrontendError("matrix kernels need rows >= 2 and cols >= 1")
        if self.style is KernelStyle.PIPELINED_MATRIX and self.latency < 1:
            raise FrontendError("pipelined kernels need latency >= 1")

    @property
    def in_row_bits(self) -> int:
        """Bits per input stream beat (one matrix row)."""
        return self.cols * self.in_width

    @property
    def out_row_bits(self) -> int:
        """Bits per output stream beat (one matrix row)."""
        return self.cols * self.out_width

    @property
    def in_mat_bits(self) -> int:
        return self.rows * self.in_row_bits

    @property
    def out_mat_bits(self) -> int:
        return self.rows * self.out_row_bits


#: The paper's IDCT shape: 8x8, 12-bit inputs, 9-bit outputs.
MATRIX_SPEC_12_9 = KernelSpec(
    style=KernelStyle.COMB_MATRIX, rows=8, cols=8, in_width=12, out_width=9
)
