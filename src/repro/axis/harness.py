"""Stream testbench harness: drivers, protocol monitor, timing measurement.

:class:`StreamHarness` pushes matrices through a generated AXI-Stream
wrapper, applies configurable valid/ready patterns, checks the AXI-Stream
protocol rules every cycle, and measures the paper's timing indicators:

* latency ``T_L``     — cycles from a matrix's first accepted input beat to
  its last output beat (inclusive), "including I/O transmission";
* periodicity ``T_P`` — steady-state distance in cycles between the starts
  (first accepted beats) of consecutive operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.bits import to_signed, to_unsigned
from ..core.errors import HarnessTimeout, ProtocolError, SimulationError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..sim import Simulator
from .spec import KernelSpec
from .wrapper import AxisPorts

__all__ = ["StreamTiming", "StreamHarness", "pack_row", "unpack_row", "always", "every"]


def pack_row(values: Sequence[int], width: int) -> int:
    """Pack signed element values into one stream beat (element 0 = LSBs)."""
    word = 0
    for i, value in enumerate(values):
        word |= to_unsigned(value, width) << (i * width)
    return word


def unpack_row(word: int, count: int, width: int, signed: bool = True) -> list[int]:
    """Unpack one stream beat into element values."""
    out = []
    for i in range(count):
        raw = (word >> (i * width)) & ((1 << width) - 1)
        out.append(to_signed(raw, width) if signed else raw)
    return out


def always(_cycle: int) -> bool:
    """Valid/ready pattern: asserted every cycle."""
    return True


def every(n: int, offset: int = 0) -> Callable[[int], bool]:
    """Valid/ready pattern: asserted one cycle in ``n``."""
    def pattern(cycle: int) -> bool:
        return (cycle + offset) % n == 0
    return pattern


@dataclass
class StreamTiming:
    """Measured timing of a streamed run."""

    latency: int          # T_L of the first matrix
    periodicity: int      # steady-state T_P (max start distance after warm-up)
    start_cycles: list[int] = field(default_factory=list)
    finish_cycles: list[int] = field(default_factory=list)
    total_cycles: int = 0
    out_stalls: int = 0   # cycles the design had output valid but no ready
    in_stalls: int = 0    # cycles input was offered but the design stalled it


class StreamHarness:
    """Drives one wrapped design through a sequence of matrices."""

    def __init__(self, simulator: Simulator, spec: KernelSpec) -> None:
        self.sim = simulator
        self.spec = spec

    # ------------------------------------------------------------------
    def run_matrices(
        self,
        matrices: Sequence[Sequence[Sequence[int]]],
        valid_pattern: Callable[[int], bool] = always,
        ready_pattern: Callable[[int], bool] = always,
        timeout: int | None = None,
        signed_output: bool = True,
    ) -> tuple[list[list[list[int]]], StreamTiming]:
        """Stream ``matrices`` in and collect the same number out.

        Returns ``(output_matrices, timing)``.  Raises
        :class:`ProtocolError` on any AXI-Stream violation (TVALID
        retraction, TDATA instability during a stall, TLAST misalignment,
        or the wrapper's sticky error flag), and
        :class:`~repro.core.errors.HarnessTimeout` — carrying the cycles
        elapsed and beats consumed/produced — when the stream does not
        complete within ``timeout`` cycles.  Either propagates through the
        enclosing ``sim.stream`` span, which records the error status.
        """
        with obs_trace.span("sim.stream", matrices=len(matrices)) as span:
            settles_before = self.sim.settles
            outputs, timing = self._run_matrices(
                matrices, valid_pattern, ready_pattern, timeout, signed_output
            )
            if obs_trace.enabled():
                cycles = timing.total_cycles
                obs_metrics.inc("sim.runs")
                obs_metrics.inc("sim.cycles", cycles)
                obs_metrics.inc("axis.stalls", timing.out_stalls)
                obs_metrics.inc("axis.backpressure", timing.in_stalls)
                settles = self.sim.settles - settles_before
                obs_metrics.set_gauge(
                    "sim.evals_per_cycle", round(settles / max(1, cycles), 3)
                )
                span.set(cycles=cycles, latency=timing.latency,
                         periodicity=timing.periodicity,
                         stalls=timing.out_stalls,
                         backpressure=timing.in_stalls)
            return outputs, timing

    def _run_matrices(
        self,
        matrices: Sequence[Sequence[Sequence[int]]],
        valid_pattern: Callable[[int], bool],
        ready_pattern: Callable[[int], bool],
        timeout: int | None,
        signed_output: bool,
    ) -> tuple[list[list[list[int]]], StreamTiming]:
        sim, spec = self.sim, self.spec
        rows, cols = spec.rows, spec.cols
        beats: list[tuple[int, bool]] = []
        for matrix in matrices:
            if len(matrix) != rows:
                raise SimulationError(f"matrix must have {rows} rows",
                                      phase="sim.stream")
            for r, row in enumerate(matrix):
                beats.append((pack_row(row, spec.in_width), r == rows - 1))

        expected_out_beats = len(matrices) * rows
        out_beats: list[int] = []
        out_beat_cycles: list[int] = []
        in_beat_cycles: list[int] = []
        next_beat = 0
        cycle = 0
        if timeout is None:
            timeout = 64 * (len(beats) + 64)

        prev_m_valid = False
        prev_m_ready = True
        prev_m_data = 0
        prev_m_last = 0
        out_row_in_frame = 0
        out_stalls = 0
        in_stalls = 0

        while len(out_beats) < expected_out_beats:
            if cycle > timeout:
                obs_trace.event("sim.stream.timeout", cycles=cycle,
                                beats_in=next_beat, beats_out=len(out_beats),
                                expected_out=expected_out_beats)
                obs_metrics.inc("sim.stream.timeouts")
                raise HarnessTimeout(
                    f"stream run timed out at cycle {cycle} "
                    f"({next_beat}/{len(beats)} beats in, "
                    f"{len(out_beats)}/{expected_out_beats} beats out)",
                    phase="sim.stream", cycles=cycle,
                    beats_in=next_beat, beats_out=len(out_beats),
                )
            # Drive inputs for this cycle.
            want_valid = next_beat < len(beats) and valid_pattern(cycle)
            data, last = beats[next_beat] if next_beat < len(beats) else (0, False)
            sim.poke(AxisPorts.S_TVALID, int(want_valid))
            sim.poke(AxisPorts.S_TDATA, data)
            sim.poke(AxisPorts.S_TLAST, int(last))
            ready = ready_pattern(cycle)
            sim.poke(AxisPorts.M_TREADY, int(ready))

            # Observe the settled cycle.
            s_tready = bool(sim.peek_int(AxisPorts.S_TREADY))
            m_tvalid = bool(sim.peek_int(AxisPorts.M_TVALID))
            m_tdata = sim.peek_int(AxisPorts.M_TDATA)
            m_tlast = sim.peek_int(AxisPorts.M_TLAST)

            # Protocol monitor: no TVALID retraction / TDATA change while
            # stalled.
            if prev_m_valid and not prev_m_ready:
                if not m_tvalid:
                    raise ProtocolError(f"TVALID retracted during stall at cycle {cycle}")
                if m_tdata != prev_m_data or m_tlast != prev_m_last:
                    raise ProtocolError(f"TDATA/TLAST changed during stall at cycle {cycle}")

            if want_valid and s_tready:
                in_beat_cycles.append(cycle)
                next_beat += 1
            elif want_valid:
                in_stalls += 1
            if m_tvalid and not ready:
                out_stalls += 1
            if m_tvalid and ready:
                out_beats.append(m_tdata)
                out_beat_cycles.append(cycle)
                expect_last = out_row_in_frame == rows - 1
                if bool(m_tlast) != expect_last:
                    raise ProtocolError(
                        f"TLAST misaligned at output beat {len(out_beats) - 1} "
                        f"(cycle {cycle})"
                    )
                out_row_in_frame = 0 if expect_last else out_row_in_frame + 1

            prev_m_valid, prev_m_ready = m_tvalid, ready
            prev_m_data, prev_m_last = m_tdata, m_tlast

            sim.step()
            cycle += 1

            if sim.peek_int(AxisPorts.ERROR):
                raise ProtocolError(f"wrapper raised sticky error at cycle {cycle}")

        # Unpack outputs.
        outputs: list[list[list[int]]] = []
        for mi in range(len(matrices)):
            matrix = []
            for r in range(rows):
                word = out_beats[mi * rows + r]
                matrix.append(unpack_row(word, cols, spec.out_width, signed_output))
            outputs.append(matrix)

        starts = [in_beat_cycles[mi * rows] for mi in range(len(matrices))]
        finishes = [out_beat_cycles[(mi + 1) * rows - 1] for mi in range(len(matrices))]
        latency = finishes[0] - starts[0] + 1
        if len(starts) >= 3:
            # Steady state: skip the first interval (pipeline warm-up).
            deltas = [b - a for a, b in zip(starts[1:], starts[2:])]
            periodicity = max(deltas)
        elif len(starts) == 2:
            periodicity = starts[1] - starts[0]
        else:
            periodicity = latency
        timing = StreamTiming(
            latency=latency,
            periodicity=periodicity,
            start_cycles=starts,
            finish_cycles=finishes,
            total_cycles=cycle,
            out_stalls=out_stalls,
            in_stalls=in_stalls,
        )
        return outputs, timing
