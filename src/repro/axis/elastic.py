"""Elastic (credit + FIFO) AXI-Stream wrapper — the global-stall alternative.

:mod:`repro.axis.wrapper` freezes the whole kernel on backpressure via a
global clock enable.  The classic alternative never stalls the kernel:
an output FIFO absorbs in-flight results and a credit counter throttles
the *input* so the FIFO can never overflow — the scheme BSV programs get
from ``mkFIFO`` and latency-insensitive design advocates by default.

Both wrappers are functionally interchangeable for ROW_SERIAL kernels;
the ablation benchmark compares their costs (FIFO area vs enable fanout).
"""

from __future__ import annotations

from ..core.errors import FrontendError
from ..rtl import Module, ops
from ..rtl.ir import Ref
from .fifo import build_fifo
from .spec import KernelSpec, KernelStyle
from .wrapper import AxisPorts

__all__ = ["build_elastic_wrapper"]


def build_elastic_wrapper(
    kernel: Module,
    spec: KernelSpec,
    name: str | None = None,
    fifo_margin: int = 4,
) -> Module:
    """Wrap a ROW_SERIAL kernel with an output FIFO and input credits.

    The FIFO holds ``latency + rows + fifo_margin`` beats, enough for
    every row that can be in flight when the sink stops; the credit
    counter admits exactly that many unacknowledged rows.
    """
    if spec.style is not KernelStyle.ROW_SERIAL:
        raise FrontendError("the elastic wrapper supports ROW_SERIAL kernels")
    ports = {sig.name for sig in kernel.inputs + kernel.outputs}
    needed = {"in_row", "in_valid", "out_row", "out_valid"}
    if not needed <= ports:
        raise FrontendError(
            f"row-serial kernel {kernel.name} must expose {sorted(needed)} ports"
        )

    rows = spec.rows
    depth = spec.latency + rows + fifo_margin
    m = Module(name or f"{kernel.name}_axis_elastic")
    s_tdata = m.input(AxisPorts.S_TDATA, spec.in_row_bits)
    s_tvalid = m.input(AxisPorts.S_TVALID, 1)
    s_tlast = m.input(AxisPorts.S_TLAST, 1)
    m_tready = m.input(AxisPorts.M_TREADY, 1)
    s_tready = m.output(AxisPorts.S_TREADY, 1)
    m_tdata = m.output(AxisPorts.M_TDATA, spec.out_row_bits)
    m_tvalid = m.output(AxisPorts.M_TVALID, 1)
    m_tlast = m.output(AxisPorts.M_TLAST, 1)
    error = m.output(AxisPorts.ERROR, 1)

    # ------------------------------------------------------------------
    # credit accounting: one credit per FIFO slot not yet spoken for
    # ------------------------------------------------------------------
    credit_w = depth.bit_length()
    credits = m.reg("credits", credit_w, init=depth)
    have_credit = m.connect("have_credit", 1,
                            ops.ne(credits, ops.const(0, credit_w)))
    m.assign(s_tready, Ref(have_credit))
    accept = m.connect("accept", 1, ops.band(Ref(s_tvalid), Ref(have_credit)))

    # ------------------------------------------------------------------
    # kernel runs freely (never stalled)
    # ------------------------------------------------------------------
    out_row = m.wire("out_row", spec.out_row_bits)
    out_valid = m.wire("out_valid", 1)
    conns: dict[str, object] = {
        "in_row": Ref(s_tdata),
        "in_valid": Ref(accept),
        "out_row": out_row,
        "out_valid": out_valid,
    }
    if "ce" in ports:
        conns["ce"] = ops.const(1, 1)
    m.instance(kernel, "kernel", **conns)

    # ------------------------------------------------------------------
    # output FIFO + TLAST framing
    # ------------------------------------------------------------------
    fifo = build_fifo(f"{kernel.name}_ofifo", spec.out_row_bits, depth)
    fifo_wr_ready = m.wire("fifo_wr_ready", 1)
    fifo_rd_data = m.wire("fifo_rd_data", spec.out_row_bits)
    fifo_rd_valid = m.wire("fifo_rd_valid", 1)
    m.instance(
        fifo,
        "ofifo",
        wr_data=Ref(out_row),
        wr_valid=Ref(out_valid),
        rd_ready=Ref(m_tready),
        wr_ready=fifo_wr_ready,
        rd_data=fifo_rd_data,
        rd_valid=fifo_rd_valid,
    )
    out_fire = m.connect("out_fire", 1,
                         ops.band(Ref(fifo_rd_valid), Ref(m_tready)))
    delta = ops.sub(ops.zext(Ref(out_fire), credit_w),
                    ops.zext(Ref(accept), credit_w))
    m.set_next(credits, ops.trunc(ops.add(credits, delta), credit_w))

    out_cnt = m.reg("out_cnt", 4)
    last_out = m.connect("last_out", 1,
                         ops.eq(out_cnt, ops.const(rows - 1, 4)))
    m.set_next(
        out_cnt,
        ops.mux(Ref(out_fire),
                ops.mux(last_out, ops.const(0, 4),
                        ops.trunc(ops.add(out_cnt, 1), 4)),
                Ref(out_cnt)),
    )

    # TLAST alignment check on the input.
    in_cnt = m.reg("in_cnt", 4)
    last_in = m.connect("last_in", 1, ops.eq(in_cnt, ops.const(rows - 1, 4)))
    m.set_next(
        in_cnt,
        ops.mux(Ref(accept),
                ops.mux(last_in, ops.const(0, 4),
                        ops.trunc(ops.add(in_cnt, 1), 4)),
                Ref(in_cnt)),
    )
    err = m.reg("err", 1)
    overflow = ops.band(Ref(out_valid), ops.bnot(Ref(fifo_wr_ready)))
    m.set_next(
        err,
        ops.bor(Ref(err),
                ops.bor(ops.band(Ref(accept),
                                 ops.bxor(Ref(s_tlast), Ref(last_in))),
                        overflow)),
    )

    m.assign(m_tdata, Ref(fifo_rd_data))
    m.assign(m_tvalid, Ref(fifo_rd_valid))
    m.assign(m_tlast, ops.band(Ref(fifo_rd_valid), Ref(last_out)))
    m.assign(error, Ref(err))
    return m
