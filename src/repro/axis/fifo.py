"""Synchronous FIFO generator.

A parameterizable single-clock FIFO with registered occupancy, the basic
elastic element of stream architectures (BSV's ``mkFIFO``, Vivado HLS's
``hls::stream``).  Used by the elastic wrapper variant and available as a
library block for custom kernels.

Interface convention of the generated module::

    in:  wr_data[width], wr_valid, rd_ready
    out: wr_ready, rd_data[width], rd_valid

``wr_valid & wr_ready`` enqueues; ``rd_valid & rd_ready`` dequeues; both
may fire in the same cycle (including when full: simultaneous enq+deq is
legal because the dequeue frees the slot).
"""

from __future__ import annotations

from ..core.errors import FrontendError
from ..rtl import Module, ops
from ..rtl.ir import Ref

__all__ = ["build_fifo"]


def build_fifo(name: str, width: int, depth: int) -> Module:
    """Generate a ``depth``-entry FIFO of ``width``-bit words."""
    if depth < 1:
        raise FrontendError("FIFO depth must be at least 1")
    if width < 1:
        raise FrontendError("FIFO width must be at least 1")

    m = Module(name)
    wr_data = m.input("wr_data", width)
    wr_valid = m.input("wr_valid", 1)
    rd_ready = m.input("rd_ready", 1)
    wr_ready = m.output("wr_ready", 1)
    rd_data = m.output("rd_data", width)
    rd_valid = m.output("rd_valid", 1)

    ptr_w = max(1, (depth - 1).bit_length())
    cnt_w = depth.bit_length()

    count = m.reg("count", cnt_w)
    rd_ptr = m.reg("rd_ptr", ptr_w)
    wr_ptr = m.reg("wr_ptr", ptr_w)
    slots = [m.reg(f"slot{i}", width) for i in range(depth)]

    not_empty = m.connect("not_empty", 1, ops.ne(count, ops.const(0, cnt_w)))
    not_full = m.connect("not_full", 1, ops.ne(count, ops.const(depth, cnt_w)))

    do_deq = m.connect("do_deq", 1, ops.band(Ref(rd_ready), not_empty))
    # Enqueue is allowed when not full, or when a simultaneous dequeue
    # frees a slot.
    can_enq = m.connect("can_enq", 1, ops.bor(not_full, do_deq))
    do_enq = m.connect("do_enq", 1, ops.band(Ref(wr_valid), can_enq))

    def bump(ptr):
        return ops.mux(
            ops.eq(ptr, ops.const(depth - 1, ptr_w)),
            ops.const(0, ptr_w),
            ops.trunc(ops.add(ptr, 1), ptr_w),
        )

    m.set_next(rd_ptr, ops.mux(do_deq, bump(rd_ptr), Ref(rd_ptr)))
    m.set_next(wr_ptr, ops.mux(do_enq, bump(wr_ptr), Ref(wr_ptr)))
    delta = ops.sub(ops.zext(do_enq, cnt_w), ops.zext(do_deq, cnt_w))
    m.set_next(count, ops.trunc(ops.add(count, delta), cnt_w))

    for i, slot in enumerate(slots):
        hit = ops.band(do_enq, ops.eq(wr_ptr, ops.const(i, ptr_w)))
        m.set_next(slot, Ref(wr_data), en=hit)

    m.assign(wr_ready, can_enq)
    m.assign(rd_valid, not_empty)
    m.assign(rd_data, ops.select(Ref(rd_ptr), [Ref(s) for s in slots],
                                 signed=False))
    return m
