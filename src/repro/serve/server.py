"""The asyncio evaluation server: routing, admission control, lifecycle.

:class:`EvalServer` binds a :class:`~repro.api.Session` to a TCP port and
exposes the pipeline as JSON-over-HTTP endpoints:

====== ==================== ===========================================
method path                 purpose
====== ==================== ===========================================
POST   ``/v1/idct``         evaluate 8×8 blocks against a named design,
                            micro-batched across concurrent requests
GET    ``/v1/engines``      the engine registry listing; byte-identical
                            to ``python -m repro engines --json``
POST   ``/v1/verify``       fresh compliance verification of one design
POST   ``/v1/measure``      full characterization; body is byte-identical
                            to ``python -m repro measure <d> --json``
POST   ``/v1/jobs``         start an async ``table2``/``fig1`` sweep
GET    ``/v1/jobs``         list retained jobs (journal-recovered too)
GET    ``/v1/jobs/<id>``    poll a sweep job
GET    ``/v1/jobs/<id>/events``  chunked NDJSON stream of the job's
                            structured events: replay first, then live
                            per-cell events until the job is terminal
GET    ``/v1/traces/<id>``  the assembled span tree for one trace id
POST   ``/v1/sweeps``       submit a distributed sweep (wire-form tasks)
                            to the fabric broker
GET    ``/v1/sweeps/<id>``  fabric sweep status (``/results`` once done)
POST   ``/v1/tasks/lease``  pull-worker lease: up to N runnable tasks,
                            each with a ``fabric_lease_s`` deadline
POST   ``/v1/tasks/<id>/heartbeat``  extend a live lease mid-run
POST   ``/v1/tasks/<id>/result``     upload a task's record + obs
                            buffers + artifact manifest (stale → 409)
GET    ``/v1/artifacts/<key>``  fetch a content-addressed blob
PUT    ``/v1/artifacts/<key>``  upload one; bytes must hash to ``key``
                            or the upload is rejected and quarantined
GET    ``/healthz``         liveness + drain state + fabric lease block
GET    ``/metrics``         live obs snapshot, Prometheus text format
                            (with per-design/per-engine label series)
====== ==================== ===========================================

Requests may carry a W3C ``traceparent`` header; the server parses it
into a :class:`~repro.obs.trace.TraceContext`, stamps the request's
span record with the caller's trace id (so ``/v1/traces/<id>`` can
assemble cross-process trees), and echoes the header back.

Three policies wrap the endpoints:

* **batching** — concurrent ``/v1/idct`` requests for one design
  coalesce through :class:`~repro.serve.batcher.MicroBatcher` into
  single vectorized evaluations (window: ``max_batch`` blocks or
  ``batch_wait_s`` seconds, whichever closes first);
* **admission control** — at most ``max_inflight`` compute requests are
  admitted; past that the server answers **429** immediately (the
  ``serve.queue_depth`` gauge tracks the admitted depth, and
  ``serve.rejected_total`` counts the turn-aways).  Each admitted
  request runs under an optional wall-clock budget
  (:mod:`repro.resilience.budget`); exhaustion answers **504**;
* **lifecycle** — construction warm-starts the configured designs
  through the artifact cache; ``SIGTERM`` stops accepting work (new
  compute requests answer **503**), finishes everything in flight, and
  exits 0.  ``SIGINT`` drains the same way but exits 3, matching the
  CLI's interrupt contract.

All simulation/measurement runs on a single dedicated compute thread —
the event loop only parses, batches, and answers, so ``/healthz`` and
``/metrics`` stay live while the simulator is busy.

With ``--workers N`` (N > 1) the batched ``/v1/idct`` evaluations move
to a pre-forked :class:`~repro.serve.pool.WorkerPool` instead: each
coalesced batch routes to an evaluator process by (design, engine)
affinity, supervised by the heartbeat → soft cancel → SIGTERM → SIGKILL
→ respawn ladder.  A batch in flight on a dying worker is retried once
on a fresh worker or answered with an honest **503**; verify/measure,
jobs, the journal, the breaker, and the batcher all stay in the parent.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..core.errors import BudgetExceeded, EvaluationError, WorkerCrashError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.trace import TraceContext
from ..resilience import budget as res_budget
from ..engines import resolve_engine
from ..qos import Keyring, RateLimiter, Tenant, UnknownApiKeyError
from .batcher import MicroBatcher
from .breaker import CircuitBreaker
from .evaluator import validate_blocks
from .jobs import JobManager, JobQueueFull, UnknownJobKind
from .pool import PoolConfig, WorkerPool
from .protocol import (
    ProtocolError,
    Request,
    Response,
    error_response,
    json_response,
    read_request,
    write_response,
)

__all__ = ["ServeConfig", "EvalServer"]


@dataclass
class ServeConfig:
    """Tunable policy of one :class:`EvalServer`."""

    host: str = "127.0.0.1"
    port: int = 8349
    max_batch: int = 16          # blocks per /v1/idct batch window
    batch_wait_s: float = 0.005  # max extra latency a request may wait
    max_inflight: int = 64       # admitted compute requests (429 past this)
    max_jobs: int = 8            # queued+running sweep jobs (429 past this)
    request_budget_s: float | None = None  # per-request wall budget (504)
    warm: tuple = ()             # design names measured at startup
    drain_grace_s: float = 30.0  # max seconds to wait for in-flight work
    obs: bool = True             # enable live metrics/span recording
    breaker_threshold: int = 5   # consecutive evaluator failures to open
    breaker_cooldown_s: float = 30.0  # open time before the half-open probe
    job_journal: str | None = None    # JSONL write-ahead journal for jobs
    resume_jobs: bool = False    # re-run journaled interrupted jobs
    job_retained: int = 64       # terminal jobs kept in memory
    job_ttl_s: float | None = None    # terminal-job time-to-live
    workers: int = 1             # >1: pre-forked evaluator worker pool
    worker_deadline_s: float = 300.0  # per-batch wall deadline in the pool
    worker_soft_grace_s: float = 1.0  # SIGINT answer window (the ladder)
    worker_term_grace_s: float = 2.0  # SIGTERM death window (the ladder)
    worker_ping_s: float = 5.0   # idle-worker heartbeat period
    worker_crash_budget: int | None = None  # pool-wide deaths before 503s
    fabric_lease_s: float = 30.0  # fabric task lease before a worker is
    #                               presumed dead and the task re-queues
    fabric_backoff_s: float = 0.05  # expiry → re-queue backoff base
    api_keys: str | None = None  # keyring file (X-Api-Key -> tenant)
    tenant_quota: int | None = None   # anon concurrent-job quota
    tenant_rate: int = 0         # anon requests/s (0 = unlimited)
    tenant_burst: int = 8        # anon token-bucket burst
    tenant_weight: int = 1       # anon fair-share weight


class _Admission:
    """Bounded in-flight request counter with obs gauges."""

    def __init__(self, limit: int) -> None:
        self.limit = max(1, int(limit))
        self.inflight = 0
        self.idle = asyncio.Event()
        self.idle.set()

    def try_acquire(self) -> bool:
        if self.inflight >= self.limit:
            obs_metrics.inc("serve.rejected_total")
            return False
        self.inflight += 1
        self.idle.clear()
        obs_metrics.set_gauge("serve.queue_depth", self.inflight)
        return True

    def release(self) -> None:
        self.inflight -= 1
        obs_metrics.set_gauge("serve.queue_depth", self.inflight)
        if self.inflight == 0:
            self.idle.set()


class EvalServer:
    """One listening evaluation service over a configured Session."""

    def __init__(self, session=None, config: ServeConfig | None = None) -> None:
        if session is None:
            from ..api import Session

            session = Session()
        self.session = session
        self.config = config or ServeConfig()
        self.port: int | None = None          # actual port once listening
        self.batcher = MicroBatcher(self._run_batch,
                                    max_batch=self.config.max_batch,
                                    max_wait_s=self.config.batch_wait_s)
        anon = Tenant(weight=self.config.tenant_weight,
                      rate_per_s=self.config.tenant_rate,
                      burst=self.config.tenant_burst,
                      max_jobs=self.config.tenant_quota)
        self.keyring = (Keyring.load(self.config.api_keys, default=anon)
                        if self.config.api_keys else Keyring(default=anon))
        self.limiter = RateLimiter()
        self.jobs = JobManager(session, max_queued=self.config.max_jobs,
                               journal=self.config.job_journal,
                               resume=self.config.resume_jobs,
                               max_retained=self.config.job_retained,
                               ttl_s=self.config.job_ttl_s,
                               keyring=self.keyring)
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s)
        self.admission = _Admission(self.config.max_inflight)
        from ..fabric.broker import TaskBroker

        self.fabric = TaskBroker(
            lease_s=self.config.fabric_lease_s,
            backoff_s=self.config.fabric_backoff_s,
            journal=self.jobs._journal,
            cache=getattr(session, "cache", None))
        self._fabric_tick: asyncio.Task | None = None
        self.pool: WorkerPool | None = None   # built in run() when workers>1
        self._compute = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-eval")
        self._draining = False
        self._exit: asyncio.Future | None = None
        self._started = time.monotonic()
        self._conns: set[asyncio.StreamWriter] = set()
        self._listener: asyncio.base_events.Server | None = None

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def serve_forever(self, announce=None) -> int:
        """Run until drained; returns the process exit code (0 or 3)."""
        return asyncio.run(self.run(announce=announce))

    async def run(self, announce=None) -> int:
        """Async body of :meth:`serve_forever` (tests drive this directly)."""
        loop = asyncio.get_running_loop()
        self._exit = loop.create_future()
        was_enabled = obs_trace.enabled()
        if self.config.obs:
            from .. import obs

            obs.enable()
        self._ensure_qos_series()
        try:
            for name in self.config.warm:
                await loop.run_in_executor(
                    self._compute, self.session.evaluator, name)
            if self.config.workers > 1:
                # Fork AFTER the parent's warm loop so every child
                # inherits the warm measurement memos for free.
                await self._start_pool()
            self._listener = await asyncio.start_server(
                self._handle_conn, self.config.host, self.config.port)
            self.port = self._listener.sockets[0].getsockname()[1]
            self._started = time.monotonic()
            self._fabric_tick = loop.create_task(self._fabric_expiry_loop())
            handled_signals = []
            for signum, code in ((signal.SIGTERM, 0), (signal.SIGINT, 3)):
                try:
                    loop.add_signal_handler(
                        signum, self._begin_drain, code)
                    handled_signals.append(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-main thread (tests) or unsupported platform
            if announce is not None:
                announce(self.config.host, self.port)
            try:
                return await self._exit
            finally:
                for signum in handled_signals:
                    loop.remove_signal_handler(signum)
                await self._close_everything()
        finally:
            if self.config.obs and not was_enabled:
                from .. import obs

                obs.disable()

    def request_drain(self, code: int = 0) -> None:
        """Thread-safe drain trigger (what tests use instead of SIGTERM)."""
        loop = self._exit.get_loop() if self._exit is not None else None
        if loop is not None:
            loop.call_soon_threadsafe(self._begin_drain, code)

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def _start_pool(self) -> None:
        """Fork the ``--workers N`` evaluator pool and warm it."""
        from ..api import canonical_name

        deadline = (self.config.request_budget_s + 5.0
                    if self.config.request_budget_s is not None
                    else self.config.worker_deadline_s)
        self.pool = WorkerPool(
            self.session.pool_init(obs=self.config.obs,
                                   budget_s=self.config.request_budget_s),
            PoolConfig(size=self.config.workers,
                       deadline_s=deadline,
                       soft_grace_s=self.config.worker_soft_grace_s,
                       term_grace_s=self.config.worker_term_grace_s,
                       ping_interval_s=self.config.worker_ping_s,
                       crash_budget=self.config.worker_crash_budget))
        await self.pool.start(
            warm=tuple(canonical_name(n) for n in self.config.warm))

    def _begin_drain(self, code: int) -> None:
        if self._draining:
            return
        self._draining = True
        obs_metrics.set_gauge("serve.draining", 1)
        obs_trace.event("serve.drain", code=code)
        if self._listener is not None:
            self._listener.close()
        asyncio.get_running_loop().create_task(self._finish_drain(code))

    async def _finish_drain(self, code: int) -> None:
        grace = self.config.drain_grace_s
        try:
            await asyncio.wait_for(self.admission.idle.wait(), grace)
        except asyncio.TimeoutError:
            obs_trace.event("serve.drain_grace_expired",
                            inflight=self.admission.inflight)
        await self.batcher.drain()
        loop = asyncio.get_running_loop()
        # Finish the running sweep job, cancel queued ones (their journal
        # entries stay non-terminal: a restart reports them interrupted).
        await loop.run_in_executor(
            None, lambda: self.jobs.drain(cancel=True))
        if self.pool is not None:
            await self.pool.drain()
        # A half-open probe still in flight when the drain started has
        # been answered or failed by now; release its slot so the breaker
        # is never left wedged "probing" across a restart.
        self.breaker.cancel()
        if self._exit is not None and not self._exit.done():
            self._exit.set_result(code)

    async def _fabric_expiry_loop(self) -> None:
        """Periodic lease sweep: expired leases re-queue or poison."""
        interval = min(0.5, self.config.fabric_lease_s / 4.0)
        while True:
            await asyncio.sleep(interval)
            self.fabric.expire()

    async def _close_everything(self) -> None:
        if self._fabric_tick is not None:
            self._fabric_tick.cancel()
            try:
                await self._fabric_tick
            except asyncio.CancelledError:
                pass
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        for writer in list(self._conns):
            writer.close()
        if self.pool is not None:
            await self.pool.drain()   # idempotent
        self._compute.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self._conns.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    await write_response(
                        writer, error_response(str(exc), exc.status),
                        keep_alive=False)
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                keep = (request.keep_alive and not self._draining
                        and response.stream is None)
                await write_response(writer, response, keep_alive=keep)
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request) -> Response:
        t_wall = time.time()
        t0 = time.perf_counter()
        ctx = None
        header = request.headers.get("traceparent")
        if header:
            ctx = TraceContext.from_traceparent(header)
        try:
            request.tenant = self.keyring.resolve(
                request.headers.get("x-api-key"))
            response = await self._route(request)
        except UnknownApiKeyError as exc:
            # Never demote a typo'd credential to anonymous silently.
            response = error_response(str(exc), 403)
        except ProtocolError as exc:
            response = error_response(str(exc), exc.status)
        except Exception as exc:  # noqa: BLE001 - never kill the connection
            response = error_response(f"internal error: {exc}", 500)
        self._record_request(request, response, t_wall, t0, ctx)
        if ctx is not None:
            # Echo the caller's context so intermediaries see one trace.
            response.headers.setdefault("traceparent", ctx.to_traceparent())
        return response

    def _record_request(self, request: Request, response: Response,
                        t_wall: float, t0: float,
                        ctx: TraceContext | None = None) -> None:
        if not obs_trace.enabled():
            return
        duration = time.perf_counter() - t0
        obs_metrics.inc("serve.requests_total")
        obs_metrics.inc(f"serve.status.{response.status}")
        obs_metrics.observe("serve.request_us", round(duration * 1e6, 3))
        # A true span record per request, ingested rather than opened on
        # the tracer stack: the stack belongs to the compute thread's
        # evaluation spans, which requests overlap arbitrarily.  A caller
        # `traceparent` stamps its trace id; otherwise the ingest
        # backfills the server's own trace.
        obs_trace.TRACER.ingest([{
            "span_id": 1, "parent_id": None, "depth": 0,
            "name": "serve.request",
            "t_wall": round(t_wall, 6), "t_start": round(t0, 6),
            "dur_us": round(duration * 1e6, 3), "kind": "span",
            "status": "ok" if response.status < 500 else "error",
            "attrs": {"method": request.method, "path": request.path,
                      "http_status": response.status},
            "trace_id": ctx.trace_id if ctx is not None else "",
        }])

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(self, request: Request) -> Response:
        path, method = request.path, request.method
        if path == "/healthz":
            if method != "GET":
                return error_response("use GET", 405)
            return self._healthz()
        if path == "/metrics":
            if method != "GET":
                return error_response("use GET", 405)
            return self._metrics()
        if path == "/v1/engines":
            if method != "GET":
                return error_response("use GET", 405)
            return self._engines()
        if path == "/v1/idct":
            if method != "POST":
                return error_response("use POST", 405)
            return await self._idct(request)
        if path == "/v1/verify":
            if method != "POST":
                return error_response("use POST", 405)
            return await self._verify(request)
        if path == "/v1/measure":
            if method != "POST":
                return error_response("use POST", 405)
            return await self._measure(request)
        if path == "/v1/jobs":
            if method == "GET":
                return self._list_jobs(request)
            if method != "POST":
                return error_response("use POST or GET", 405)
            return self._submit_job(request)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return error_response("use GET", 405)
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                return self._job_events(rest[:-len("/events")])
            return self._get_job(rest)
        if path.startswith("/v1/traces/"):
            if method != "GET":
                return error_response("use GET", 405)
            return self._get_trace(path[len("/v1/traces/"):])
        if path == "/v1/sweeps":
            if method != "POST":
                return error_response("use POST", 405)
            return self._submit_sweep(request)
        if path.startswith("/v1/sweeps/"):
            if method != "GET":
                return error_response("use GET", 405)
            rest = path[len("/v1/sweeps/"):]
            if rest.endswith("/results"):
                return self._sweep_results(rest[:-len("/results")])
            return self._sweep_status(rest)
        if path == "/v1/tasks/lease":
            if method != "POST":
                return error_response("use POST", 405)
            return self._lease_tasks(request)
        if path.startswith("/v1/tasks/"):
            if method != "POST":
                return error_response("use POST", 405)
            rest = path[len("/v1/tasks/"):]
            if rest.endswith("/heartbeat"):
                return self._task_heartbeat(
                    rest[:-len("/heartbeat")], request)
            if rest.endswith("/result"):
                return self._task_result(rest[:-len("/result")], request)
        if path.startswith("/v1/artifacts/"):
            if method not in ("GET", "PUT"):
                return error_response("use GET or PUT", 405)
            return self._artifact(method, path[len("/v1/artifacts/"):],
                                  request)
        return error_response(f"no such endpoint: {method} {path}", 404)

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def _healthz(self) -> Response:
        return json_response({
            "status": "draining" if self._draining else "ok",
            "inflight": self.admission.inflight,
            "open_batches": self.batcher.open_windows,
            "designs": sorted(self.session.loaded_evaluators()),
            "breaker": self.breaker.state,
            "workers": (self.pool.snapshot()
                        if self.pool is not None else []),
            "fabric": self.fabric.snapshot(),
            "qos": {"tenants": self.jobs.qos_snapshot()},
            "uptime_s": round(time.monotonic() - self._started, 3),
        })

    def _engines(self) -> Response:
        # One-serialization-path rule: exactly the bytes that
        # `python -m repro engines --json` prints.
        from ..engines import render_engines_json

        return Response(body=render_engines_json().encode("utf-8"))

    def _metrics(self) -> Response:
        from ..obs.report import ensure_default_instruments, render_prometheus

        ensure_default_instruments()
        self._ensure_qos_series()
        obs_metrics.set_gauge("serve.queue_depth", self.admission.inflight)
        obs_metrics.set_gauge("serve.uptime_s",
                              round(time.monotonic() - self._started, 3))
        body = render_prometheus().encode("utf-8")
        return Response(body=body,
                        content_type="text/plain; version=0.0.4; charset=utf-8")

    def _admit(self) -> Response | None:
        """503 while draining, 429 past the queue-depth bound, else admit."""
        if self._draining:
            return error_response("server is draining", 503)
        if not self.admission.try_acquire():
            return _retry_later(error_response(
                f"overloaded: {self.admission.inflight} requests in flight "
                f"(limit {self.admission.limit})", 429))
        return None

    def _throttle(self, request: Request) -> Response | None:
        """Per-tenant token-bucket gate on the compute endpoints.

        Over the limit answers 429 immediately with the bucket's
        *computed* ``Retry-After`` — a throttled tenant is told exactly
        when its next token matures, and never holds a connection open.
        """
        tenant = getattr(request, "tenant", None)
        if tenant is None:
            return None
        retry_after = self.limiter.try_acquire(tenant)
        if retry_after is None:
            return None
        obs_metrics.inc("qos.throttled")
        obs_metrics.inc(f"qos.throttled|tenant={tenant.name}")
        from ..obs import events as obs_events

        obs_events.emit("qos.throttled", tenant=tenant.name,
                        path=request.path, retry_after_s=retry_after)
        return _retry_later(error_response(
            f"tenant {tenant.name!r} over its rate limit "
            f"({tenant.rate_per_s}/s, burst {tenant.burst}); "
            f"retry in {retry_after}s", 429), retry_after)

    def _ensure_qos_series(self) -> None:
        """Pre-register zero-valued per-tenant QoS counters so
        dashboards see every series from the first scrape, not only
        after the first throttle/preemption/rejection."""
        for tenant in self.keyring.all_tenants():
            for base in ("qos.throttled", "qos.preemptions",
                         "qos.quota_rejections"):
                obs_metrics.counter(f"{base}|tenant={tenant.name}")

    async def _idct(self, request: Request) -> Response:
        payload = request.json()
        name = payload.get("design")
        if not isinstance(name, str) or not name:
            return error_response("missing 'design'", 400)
        try:
            # Resolve before the breaker/batcher are involved: a typo'd
            # engine is a client error, not an evaluator failure.
            engine = resolve_engine(payload.get("engine", "model"), "serve")
            blocks = validate_blocks(payload.get("blocks"))
        except ValueError as exc:
            return error_response(str(exc), 400)
        from ..api import canonical_name

        key = (canonical_name(name), engine)
        rejected = self._throttle(request)
        if rejected is not None:
            return rejected
        rejected = self._breaker_reject()
        if rejected is None:
            rejected = self._admit()
            if rejected is not None:
                # The breaker admitted (possibly its half-open probe) but
                # admission control said 429: the request never ran, so
                # release the probe slot without recording an outcome.
                self.breaker.cancel()
        if rejected is not None:
            return rejected
        try:
            outputs = await self.batcher.submit(key, blocks)
        except Exception as exc:  # noqa: BLE001 - mapped to HTTP below
            self.breaker.record_failure(exc)
            return self._compute_error(exc)
        finally:
            self.admission.release()
        self.breaker.record_success()
        return json_response({"design": key[0], "engine": engine,
                              "count": len(outputs), "outputs": outputs})

    def _breaker_reject(self) -> Response | None:
        """503 + ``Retry-After`` while the evaluator circuit is open."""
        retry_after = self.breaker.admit()
        if retry_after is None:
            return None
        response = error_response(
            f"evaluator circuit open after repeated failures; retry in "
            f"{retry_after:.0f}s", 503)
        response.headers["Retry-After"] = str(max(1, math.ceil(retry_after)))
        return response

    async def _verify(self, request: Request) -> Response:
        payload = request.json()
        name = payload.get("design")
        if not isinstance(name, str) or not name:
            return error_response("missing 'design'", 400)
        try:
            engine = resolve_engine(payload.get("engine", "compiled"), "sim")
        except ValueError as exc:
            return error_response(str(exc), 400)
        rejected = self._throttle(request)
        if rejected is not None:
            return rejected
        rejected = self._admit()
        if rejected is not None:
            return rejected
        try:
            measured = await self._in_compute(
                self.session.verify, name, engine=engine)
        except EvaluationError as exc:
            if isinstance(exc, BudgetExceeded) or _is_usage(exc):
                return self._compute_error(exc)
            return json_response({"design": name, "bit_exact": False,
                                  "error": str(exc)}, status=422)
        except Exception as exc:  # noqa: BLE001
            return self._compute_error(exc)
        finally:
            self.admission.release()
        return json_response({"design": measured.name,
                              "bit_exact": measured.bit_exact,
                              "measured": measured.to_dict()})

    async def _measure(self, request: Request) -> Response:
        payload = request.json()
        name = payload.get("design")
        if not isinstance(name, str) or not name:
            return error_response("missing 'design'", 400)
        rejected = self._throttle(request)
        if rejected is not None:
            return rejected
        rejected = self._admit()
        if rejected is not None:
            return rejected
        try:
            measured = await self._in_compute(self.session.measure, name)
        except Exception as exc:  # noqa: BLE001
            return self._compute_error(exc)
        finally:
            self.admission.release()
        # Byte-identical to `python -m repro measure <design> --json`.
        return Response(body=measured.to_json().encode("utf-8"))

    def _submit_job(self, request: Request) -> Response:
        if self._draining:
            return error_response("server is draining", 503)
        throttled = self._throttle(request)
        if throttled is not None:
            return throttled
        payload = request.json()
        kind = payload.get("kind")
        if not isinstance(kind, str):
            return error_response("missing 'kind'", 400)
        priority = payload.get("priority")
        if priority is not None and (isinstance(priority, bool)
                                     or not isinstance(priority, int)):
            return error_response("'priority' must be an integer", 400)
        try:
            job = self.jobs.submit(kind, payload.get("params"),
                                   tenant=getattr(request, "tenant", None),
                                   priority=priority)
        except UnknownJobKind as exc:
            return error_response(str(exc), 400)
        except JobQueueFull as exc:
            return _retry_later(error_response(str(exc), 429),
                                getattr(exc, "retry_after", 1))
        return json_response(job.to_dict(), status=202)

    def _get_job(self, job_id: str) -> Response:
        job = self.jobs.get(job_id)
        if job is None:
            return error_response(f"no such job: {job_id}", 404)
        return json_response(job.to_dict())

    def _list_jobs(self, request: Request) -> Response:
        """Every retained job (journal-recovered ones included);
        ``?tenant=<name>`` narrows the listing to one tenant's jobs."""
        tenant = None
        if request.query:
            import urllib.parse

            params = urllib.parse.parse_qs(request.query)
            tenant = (params.get("tenant") or [None])[0]
        return json_response(
            {"jobs": [job.to_dict()
                      for job in self.jobs.list(tenant=tenant)]})

    def _job_events(self, job_id: str) -> Response:
        """Chunked NDJSON stream of one job's structured events.

        Replays everything captured so far (journal-recovered events
        included), then keeps the connection open pushing live events as
        the sweep emits them, closing once the job reaches a terminal
        state with nothing left to send.
        """
        job = self.jobs.get(job_id)
        if job is None:
            return error_response(f"no such job: {job_id}", 404)

        async def stream():
            sent = 0
            while True:
                events = job.events
                while sent < len(events):
                    yield (json.dumps(events[sent], sort_keys=True)
                           + "\n").encode("utf-8")
                    sent += 1
                if (job.status not in ("queued", "running")
                        and sent >= len(job.events)):
                    return
                await asyncio.sleep(0.05)

        return Response(content_type="application/x-ndjson",
                        stream=stream())

    def _get_trace(self, trace_id: str) -> Response:
        """The assembled span tree for one trace id."""
        from ..obs.report import span_tree_payload

        if not trace_id:
            return error_response("missing trace id", 404)
        payload = span_tree_payload(trace_id=trace_id)
        if not payload["spans"]:
            return error_response(f"no spans for trace: {trace_id}", 404)
        return json_response(payload)

    # ------------------------------------------------------------------
    # fabric task surface
    # ------------------------------------------------------------------
    def _submit_sweep(self, request: Request) -> Response:
        from ..exec.tasks import TaskSchemaError

        if self._draining:
            return error_response("server is draining", 503)
        throttled = self._throttle(request)
        if throttled is not None:
            return throttled
        try:
            sweep_id = self.fabric.submit(
                request.json(), request.headers.get("traceparent"),
                tenant=getattr(request, "tenant", None))
        except (ValueError, TaskSchemaError) as exc:
            return error_response(str(exc), 400)
        info = self.fabric.status(sweep_id) or {}
        return json_response({"id": sweep_id,
                              "tasks": info.get("total", 0)})

    def _sweep_status(self, sweep_id: str) -> Response:
        info = self.fabric.status(sweep_id)
        if info is None:
            return error_response(f"no such sweep: {sweep_id}", 404)
        return json_response(info)

    def _sweep_results(self, sweep_id: str) -> Response:
        info = self.fabric.status(sweep_id)
        if info is None:
            return error_response(f"no such sweep: {sweep_id}", 404)
        results = self.fabric.results(sweep_id)
        if results is None:
            return error_response(
                f"sweep {sweep_id} is {info['state']}, not done", 409)
        return json_response({"id": sweep_id, "results": results})

    def _lease_tasks(self, request: Request) -> Response:
        payload = request.json()
        worker = payload.get("worker")
        if not isinstance(worker, str) or not worker:
            return error_response("missing 'worker'", 400)
        if self._draining:
            # A draining master hands out no new work; workers idle and
            # exit on their own schedule.
            return json_response({"leases": []})
        try:
            limit = int(payload.get("limit", 1))
        except (TypeError, ValueError):
            return error_response("bad 'limit'", 400)
        return json_response({"leases": self.fabric.lease(worker, limit)})

    def _task_heartbeat(self, task_id: str, request: Request) -> Response:
        payload = request.json()
        worker = payload.get("worker")
        if not isinstance(worker, str) or not worker:
            return error_response("missing 'worker'", 400)
        reply = self.fabric.heartbeat(task_id, worker)
        if reply is None:
            return error_response(f"no such task: {task_id}", 404)
        if reply.get("stale"):
            return error_response(
                f"lease on {task_id} is no longer held by {worker}", 409)
        return json_response(reply)

    def _task_result(self, task_id: str, request: Request) -> Response:
        payload = request.json()
        worker = payload.get("worker")
        output = payload.get("output")
        if not isinstance(worker, str) or not worker:
            return error_response("missing 'worker'", 400)
        if not isinstance(output, dict):
            return error_response("missing 'output'", 400)
        reply = self.fabric.result(task_id, worker, output,
                                   payload.get("artifacts"))
        if reply is None:
            return error_response(f"no such task: {task_id}", 404)
        if reply.get("stale"):
            return error_response(
                f"lease on {task_id} is no longer held by {worker}; "
                f"result discarded", 409)
        return json_response({"ok": True})

    def _artifact(self, method: str, key: str, request: Request) -> Response:
        if len(key) != 64 or any(c not in "0123456789abcdef" for c in key):
            return error_response(
                "artifact keys are 64 lowercase hex chars (SHA-256)", 400)
        cache = getattr(self.session, "cache", None)
        if cache is None:
            return error_response(
                "no artifact cache configured on this master", 503)
        if method == "GET":
            data = cache.get_blob(key)
            if data is None:
                return error_response(f"no such artifact: {key}", 404)
            return Response(body=data,
                            content_type="application/octet-stream")
        try:
            cache.put_blob(request.body, key)
        except ValueError as exc:
            # Tampered or truncated upload: the bytes do not hash to the
            # claimed address.  The cache quarantined them already.
            return error_response(str(exc), 400)
        return json_response({"key": key})

    # ------------------------------------------------------------------
    # compute plumbing
    # ------------------------------------------------------------------
    async def _run_batch(self, key, blocks):
        """Batcher runner: one evaluation on the compute thread, or — with
        ``--workers N`` — on the affine pool worker."""
        design, engine = key
        if self.pool is not None:
            # A half-open breaker probe must test a *fresh* worker, not
            # the slot whose affinity just accumulated the failures.
            return await self.pool.evaluate(
                design, engine, blocks,
                prefer_fresh=self.breaker.state == "half-open")
        return await self._in_compute(self._evaluate_sync, design, engine,
                                      blocks)

    def _evaluate_sync(self, design: str, engine: str, blocks):
        evaluator = self.session.evaluator(design)
        with res_budget.limit(self._request_budget(evaluator.name)):
            return evaluator.evaluate(blocks, engine=engine)

    async def _in_compute(self, fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        if kwargs:
            import functools

            fn = functools.partial(fn, *args, **kwargs)
            return await loop.run_in_executor(self._compute, fn)
        return await loop.run_in_executor(self._compute, fn, *args)

    def _request_budget(self, design: str):
        if self.config.request_budget_s is None:
            return None
        return res_budget.Budget(wall_s=self.config.request_budget_s,
                                 design=design, phase="serve.request")

    def _compute_error(self, exc: BaseException) -> Response:
        if _is_usage(exc) or isinstance(exc, ValueError):
            return error_response(str(exc), 400)
        if isinstance(exc, BudgetExceeded):
            return error_response(f"request budget exhausted: {exc}", 504)
        if isinstance(exc, WorkerCrashError):
            # The request killed its workers (or the pool's crash budget
            # is spent) — honest unavailability, never a hung connection.
            return error_response(str(exc), 503)
        if isinstance(exc, EvaluationError):
            return error_response(str(exc), 422)
        return error_response(f"internal error: {exc}", 500)


def _retry_later(response: Response, seconds: int = 1) -> Response:
    """Stamp a computed ``Retry-After`` on an admission-control 429."""
    response.headers["Retry-After"] = str(max(1, int(seconds)))
    return response


def _is_usage(exc: BaseException) -> bool:
    from ..api import UsageError

    return isinstance(exc, UsageError)
