"""Circuit breaker guarding the service's evaluator path.

The classic three-state machine, tuned for the single event loop that
drives ``/v1/idct`` (no locking: :meth:`CircuitBreaker.admit` and the
``record_*`` callbacks all run on the loop, while the evaluation itself
happens on the compute thread):

* **closed** — requests flow; consecutive
  :class:`~repro.core.errors.ReproError` failures are counted and reset
  on any success.  Reaching ``threshold`` opens the circuit.
* **open** — requests are rejected immediately (the server answers
  **503** with a ``Retry-After`` header) until ``cooldown_s`` has
  elapsed.
* **half-open** — after the cooldown, exactly one probe request is
  admitted; its success closes the circuit, its failure re-opens it
  (restarting the cooldown).  Concurrent requests while the probe is in
  flight are rejected as if open.

Only :class:`~repro.core.errors.ReproError` counts as a failure —
client mistakes (``ValueError`` from a bad engine name, usage errors)
say nothing about evaluator health.  State transitions record the
``serve.breaker_state`` gauge (0=closed, 1=half-open, 2=open) and the
``serve.breaker_opened`` counter.
"""

from __future__ import annotations

import time

from ..core.errors import ReproError
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = ["CircuitBreaker"]

_STATE_GAUGE = {"closed": 0, "half-open": 1, "open": 2}


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe."""

    def __init__(self, threshold: int = 5, cooldown_s: float = 30.0,
                 clock=time.monotonic) -> None:
        self.threshold = max(1, int(threshold))
        self.cooldown_s = max(0.0, float(cooldown_s))
        self._clock = clock
        self.state = "closed"
        self.stats = {"opened": 0, "rejected": 0, "probes": 0}
        self._consecutive = 0
        self._opened_at = 0.0
        self._probing = False

    # ------------------------------------------------------------------
    def admit(self) -> float | None:
        """``None`` to admit; otherwise the Retry-After seconds."""
        if self.state == "closed":
            return None
        if self.state == "open":
            remaining = self._opened_at + self.cooldown_s - self._clock()
            if remaining > 0:
                return self._reject(remaining)
            self._set_state("half-open")
        # half-open: admit a single probe, reject everyone else until
        # its outcome is recorded.
        if self._probing:
            return self._reject(self.cooldown_s)
        self._probing = True
        self.stats["probes"] += 1
        return None

    def cancel(self) -> None:
        """An admitted request never ran (e.g. admission control said
        429 after :meth:`admit`): release the probe slot without
        recording an outcome."""
        self._probing = False

    def record_success(self) -> None:
        """An admitted request succeeded."""
        self._probing = False
        self._consecutive = 0
        if self.state != "closed":
            self._set_state("closed")

    def record_failure(self, exc: BaseException) -> None:
        """An admitted request failed; only ``ReproError`` trips the
        breaker (anything else is the client's problem, not the
        evaluator's)."""
        if not isinstance(exc, ReproError):
            # The request ran, so the probe slot must be released either
            # way — otherwise a half-open probe failing with, say, a
            # client-side ValueError would wedge the breaker "probing"
            # forever, rejecting everything after it.
            self._probing = False
            return
        was_probe = self._probing
        self._probing = False
        self._consecutive += 1
        if was_probe or self.state == "half-open" \
                or self._consecutive >= self.threshold:
            self._open()

    def retry_after(self) -> float:
        """Seconds a rejected client should wait before retrying."""
        if self.state != "open":
            return self.cooldown_s
        return max(0.0, self._opened_at + self.cooldown_s - self._clock())

    # ------------------------------------------------------------------
    def _reject(self, retry_after: float) -> float:
        self.stats["rejected"] += 1
        obs_metrics.inc("serve.breaker_rejected")
        return max(retry_after, 0.001)

    def _open(self) -> None:
        self._opened_at = self._clock()
        if self.state != "open":
            self.stats["opened"] += 1
            obs_metrics.inc("serve.breaker_opened")
            self._set_state("open")

    def _set_state(self, state: str) -> None:
        self.state = state
        obs_metrics.set_gauge("serve.breaker_state", _STATE_GAUGE[state])
        obs_trace.event("serve.breaker", state=state,
                        failures=self._consecutive)
        obs_events.emit("breaker.state", state=state,
                        failures=self._consecutive)
