"""Asynchronous sweep jobs: ``POST /v1/jobs`` + ``GET /v1/jobs/<id>``.

A job runs one of the paper's sweep artifacts (``table2`` or ``fig1``)
through the server's :class:`~repro.api.Session` — inheriting its
``jobs``/cache/budget policy, so a service started with ``--jobs 4``
executes sweep jobs on the sharded
:class:`~repro.exec.ParallelSweepRunner` — and stores the rendered text
(exactly what the CLI would print) as the job result.

Jobs execute on a dedicated single-thread executor: one sweep at a time,
never blocking the event loop or the ``/v1/idct`` compute thread.  The
queue is bounded (:attr:`JobManager.max_queued`); past that, submission
reports overload and the server answers 429.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..obs import metrics as obs_metrics

__all__ = ["Job", "JobManager", "JobQueueFull", "UnknownJobKind"]

#: Sweep parameters a job may set, per kind (anything else is a 400).
ALLOWED_PARAMS = {
    "table2": {"tools"},
    "fig1": {"full", "bsc_configs", "bambu_configs", "xls_stages"},
}


class JobQueueFull(Exception):
    """Too many queued jobs; the server answers 429."""


class UnknownJobKind(Exception):
    """Job kind is not ``table2`` or ``fig1``; the server answers 400."""


@dataclass
class Job:
    """One submitted sweep and its lifecycle state."""

    id: str
    kind: str
    params: dict
    status: str = "queued"       # queued | running | done | failed
    output: str | None = None
    error: str | None = None
    summary: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        payload = {"id": self.id, "kind": self.kind, "params": self.params,
                   "status": self.status}
        if self.output is not None:
            payload["output"] = self.output
        if self.error is not None:
            payload["error"] = self.error
        if self.summary:
            payload["summary"] = self.summary
        return payload


class JobManager:
    """Bounded FIFO of sweep jobs over one worker thread."""

    def __init__(self, session, max_queued: int = 8) -> None:
        self.session = session
        self.max_queued = max_queued
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-job")

    # ------------------------------------------------------------------
    def submit(self, kind: str, params: dict | None = None) -> Job:
        params = dict(params or {})
        allowed = ALLOWED_PARAMS.get(kind)
        if allowed is None:
            raise UnknownJobKind(
                f"unknown job kind {kind!r} "
                f"(choices: {', '.join(ALLOWED_PARAMS)})")
        unknown = sorted(set(params) - allowed)
        if unknown:
            raise UnknownJobKind(
                f"unknown {kind} parameter {unknown[0]!r} "
                f"(choices: {', '.join(sorted(allowed))})")
        with self._lock:
            waiting = sum(1 for job in self._jobs.values()
                          if job.status in ("queued", "running"))
            if waiting >= self.max_queued:
                raise JobQueueFull(
                    f"{waiting} jobs already queued (limit {self.max_queued})")
            job = Job(id=f"job-{next(self._ids)}", kind=kind, params=params)
            self._jobs[job.id] = job
        obs_metrics.inc("serve.jobs_submitted")
        self._executor.submit(self._run, job)
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def drain(self, timeout: float | None = None) -> None:
        """Finish queued work and stop accepting more."""
        self._executor.shutdown(wait=timeout is None or timeout > 0)

    # ------------------------------------------------------------------
    def _run(self, job: Job) -> None:
        job.status = "running"
        obs_metrics.set_gauge("serve.jobs_running", 1)
        try:
            if job.kind == "table2":
                from ..eval import render_table2

                table = self.session.table2(tools=job.params.get("tools"))
                job.output = render_table2(table)
            else:
                from ..eval.experiments import render_fig1

                series = self.session.fig1(**job.params)
                job.output = render_fig1(series)
            job.summary = self.session.summary_lines()
            job.status = "done"
            obs_metrics.inc("serve.jobs_done")
        except Exception as exc:  # noqa: BLE001 - reported via the job record
            job.error = str(exc)
            job.status = "failed"
            obs_metrics.inc("serve.jobs_failed")
        finally:
            obs_metrics.set_gauge("serve.jobs_running", 0)
