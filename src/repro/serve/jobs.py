"""Asynchronous sweep jobs: ``POST /v1/jobs`` + ``GET /v1/jobs[/<id>]``.

A job runs one of the paper's sweep artifacts (``table2`` or ``fig1``)
through the server's :class:`~repro.api.Session` — inheriting its
``jobs``/cache/budget policy, so a service started with ``--jobs 4``
executes sweep jobs on the sharded
:class:`~repro.exec.ParallelSweepRunner` — and stores the rendered text
(exactly what the CLI would print) as the job result.

Jobs execute on a dedicated scheduler thread: one sweep at a time,
never blocking the event loop or the ``/v1/idct`` compute thread.  The
queue is bounded (:attr:`JobManager.max_queued`); past that, submission
reports overload and the server answers 429.

**Multi-tenant QoS.**  Every job belongs to a tenant (resolved from the
request's ``X-Api-Key`` by the server; anonymous by default) and carries
a ``priority``.  The scheduler dequeues across tenants with a
weighted deficit-round-robin :class:`~repro.qos.WeightedFairQueue` —
integer-only, deterministic, starvation-free — and orders one tenant's
jobs by descending priority.  Per-tenant ``max_jobs`` quotas raise
:class:`JobQuotaExceeded` (a 429 with ``Retry-After``).  Each job's
sweep runs on a *derived* session with a per-job JSONL checkpoint and a
preemption hook: when a strictly-higher-priority job arrives, the
running sweep raises
:class:`~repro.core.errors.SweepPreempted` at the next cell boundary,
the job re-queues (keeping its scheduler position), and its re-run
resumes from the checkpoint — stdout byte-identical to an uninterrupted
run, the PR 2 invariant now exercised by the scheduler itself.

**Durability.**  With a journal path configured, every lifecycle event is
appended to a JSONL write-ahead journal (``submitted`` → ``running`` →
``done``/``failed``, plus ``resumed``/``preempted``) and fsynced before
the in-memory state advances, so a SIGKILL'd server loses nothing it
acknowledged.  ``submitted`` records carry the job's tenant and
priority, so ``--resume-jobs`` restores both.  On restart the journal
is replayed: terminal jobs come back verbatim, non-terminal ones are
listed with the honest status ``interrupted`` (and an
``"interrupted": true`` marker that survives a later re-run), and —
with ``resume=True`` (``--resume-jobs``) — interrupted jobs are
re-submitted in id order.  A torn final line (the crash happened
mid-append) is skipped, never fatal.

**Eviction.**  Terminal (``done``/``failed``) jobs are pruned once more
than ``max_retained`` of them accumulate (oldest first), or once older
than ``ttl_s``; retained jobs keep a stable ``to_dict`` shape.  This
bounds the memory of a long-running service that previously kept every
completed sweep output forever.  Two guards keep eviction honest under
``--resume-jobs``: a job being re-run after a crash is exempt from the
sweep until its re-run reaches a terminal state (resumed jobs carry the
*lowest* ids, so the overflow rule would otherwise evict them first,
mid-resume), and every terminal transition — status, result, journal
record, ``finished_at`` — commits atomically under the manager lock so a
concurrent prune can never observe a "done" job whose journal record is
not yet durable.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..core.errors import SweepPreempted
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..qos import Keyring, Tenant, WeightedFairQueue

__all__ = ["Job", "JobManager", "JobQueueFull", "JobQuotaExceeded",
           "UnknownJobKind"]

#: Sweep parameters a job may set, per kind (anything else is a 400).
ALLOWED_PARAMS = {
    "table2": {"tools"},
    "fig1": {"full", "bsc_configs", "bambu_configs", "xls_stages"},
}

#: Job states that will never change again (and are eligible to evict).
TERMINAL_STATUSES = ("done", "failed")


class JobQueueFull(Exception):
    """Too many queued jobs; the server answers 429 (+ ``Retry-After``)."""

    retry_after = 1


class JobQuotaExceeded(JobQueueFull):
    """One tenant's concurrent-job quota is spent; 429 for that tenant
    only — other tenants keep submitting."""


class UnknownJobKind(Exception):
    """Job kind is not ``table2`` or ``fig1``; the server answers 400."""


@dataclass
class Job:
    """One submitted sweep and its lifecycle state."""

    id: str
    kind: str
    params: dict
    status: str = "queued"   # queued | running | done | failed | interrupted
    tenant: str = "anon"           # owning tenant (from the API key)
    priority: int = 0              # higher runs first within the tenant
    output: str | None = None
    error: str | None = None
    summary: list[str] = field(default_factory=list)
    interrupted: bool = False      # survived a server crash at some point
    preemptions: int = 0           # times paused for a higher priority
    finished_at: float | None = None
    trace: str | None = None       # trace id minted for this job's sweep
    events: list = field(default_factory=list)   # captured obs events
    seq: int = 0                   # fair-share queue position (stable)

    def to_dict(self) -> dict:
        payload = {"id": self.id, "kind": self.kind, "params": self.params,
                   "status": self.status, "tenant": self.tenant,
                   "priority": self.priority}
        if self.output is not None:
            payload["output"] = self.output
        if self.error is not None:
            payload["error"] = self.error
        if self.summary:
            payload["summary"] = self.summary
        if self.interrupted:
            payload["interrupted"] = True
        if self.preemptions:
            payload["preemptions"] = self.preemptions
        if self.trace:
            payload["trace"] = self.trace
        return payload


def _job_seq(job: Job) -> int:
    """Numeric submission order from a ``job-N`` id (journal replays)."""
    try:
        return int(job.id.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return 0


class JobManager:
    """Bounded fair-share queue of sweep jobs over one scheduler thread."""

    def __init__(self, session, max_queued: int = 8,
                 journal: str | os.PathLike | None = None,
                 resume: bool = False, max_retained: int = 64,
                 ttl_s: float | None = None,
                 keyring: Keyring | None = None) -> None:
        self.session = session
        self.max_queued = max_queued
        self.max_retained = max_retained
        self.ttl_s = ttl_s
        self.keyring = keyring or Keyring()
        self._jobs: dict[str, Job] = {}
        # Jobs being --resume-jobs-re-run: exempt from eviction until
        # their re-run is terminal (they carry the lowest ids, so the
        # max_retained overflow rule would evict them first otherwise).
        self._resuming: set[str] = set()
        # RLock: journal appends nest under the submit/prune lock.
        self._lock = threading.RLock()
        self._cv = threading.Condition(self._lock)
        self._queue = WeightedFairQueue()
        self._stop = False
        self._cancel = False
        self._last_session = None   # derived session of the running job
        self._ck_dir: str | None = None
        self._journal_path = os.fspath(journal) if journal else None
        self._journal_file = None
        last_id = 0
        interrupted: list[Job] = []
        if self._journal_path and os.path.exists(self._journal_path):
            last_id, interrupted = self._replay()
        self._ids = itertools.count(last_id + 1)
        if self._journal_path:
            parent = os.path.dirname(os.path.abspath(self._journal_path))
            os.makedirs(parent, exist_ok=True)
            self._journal_file = open(self._journal_path, "a",
                                      encoding="utf-8")
        self._scheduler = threading.Thread(
            target=self._loop, name="repro-serve-job", daemon=True)
        self._scheduler.start()
        if resume:
            for job in interrupted:
                self._resume(job)

    # ------------------------------------------------------------------
    def submit(self, kind: str, params: dict | None = None, *,
               tenant: Tenant | None = None,
               priority: int | None = None) -> Job:
        params = dict(params or {})
        allowed = ALLOWED_PARAMS.get(kind)
        if allowed is None:
            raise UnknownJobKind(
                f"unknown job kind {kind!r} "
                f"(choices: {', '.join(ALLOWED_PARAMS)})")
        unknown = sorted(set(params) - allowed)
        if unknown:
            raise UnknownJobKind(
                f"unknown {kind} parameter {unknown[0]!r} "
                f"(choices: {', '.join(sorted(allowed))})")
        tenant = tenant or self.keyring.default
        with self._cv:
            waiting = sum(1 for job in self._jobs.values()
                          if job.status in ("queued", "running"))
            if waiting >= self.max_queued:
                raise JobQueueFull(
                    f"{waiting} jobs already queued (limit {self.max_queued})")
            if tenant.max_jobs is not None:
                mine = sum(1 for job in self._jobs.values()
                           if job.status in ("queued", "running")
                           and job.tenant == tenant.name)
                if mine >= tenant.max_jobs:
                    obs_metrics.inc("qos.quota_rejections")
                    obs_metrics.inc(
                        f"qos.quota_rejections|tenant={tenant.name}")
                    obs_events.emit("qos.quota", tenant=tenant.name,
                                    inflight=mine, limit=tenant.max_jobs)
                    raise JobQuotaExceeded(
                        f"tenant {tenant.name!r} already has {mine} jobs "
                        f"queued or running (quota {tenant.max_jobs})")
            job = Job(id=f"job-{next(self._ids)}", kind=kind, params=params,
                      tenant=tenant.name,
                      priority=(tenant.priority if priority is None
                                else int(priority)))
            self._jobs[job.id] = job
            self._journal("submitted", id=job.id, kind=kind, params=params,
                          tenant=job.tenant, priority=job.priority)
            self._prune()
            self._enqueue(job)
        obs_metrics.inc("serve.jobs_submitted")
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self, tenant: str | None = None) -> list[Job]:
        """Retained jobs in submission order, optionally one tenant's."""
        with self._lock:
            jobs = sorted(self._jobs.values(), key=_job_seq)
        if tenant is not None:
            jobs = [job for job in jobs if job.tenant == tenant]
        return jobs

    def drain(self, timeout: float | None = None,
              cancel: bool = False) -> None:
        """Finish queued work and stop accepting more.

        ``cancel=True`` drops still-queued jobs (the running one
        finishes): their journal entries stay non-terminal, so a
        journaled restart lists them as ``interrupted`` — honest, and
        recoverable with ``resume``.
        """
        with self._cv:
            self._stop = True
            self._cancel = cancel
            self._cv.notify_all()
        if timeout is None or timeout > 0:
            self._scheduler.join()
        with self._lock:
            if self._journal_file is not None:
                self._journal_file.close()
                self._journal_file = None

    def qos_snapshot(self) -> dict:
        """Queued/running job counts per tenant (``/healthz``)."""
        with self._lock:
            counts: dict[str, dict] = {}
            for job in self._jobs.values():
                if job.status in ("queued", "running"):
                    entry = counts.setdefault(job.tenant,
                                              {"queued": 0, "running": 0})
                    entry[job.status] += 1
            return counts

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _enqueue(self, job: Job) -> None:
        """Queue ``job`` for the scheduler thread (caller holds the lock).

        A re-enqueued (preempted/resumed) job passes its original ``seq``
        so it returns to the head of its tenant/priority class rather
        than the back of the line it already waited in.
        """
        tenant = self.keyring.get(job.tenant)
        job.seq = self._queue.enqueue(
            job.tenant, job, weight=tenant.weight, priority=job.priority,
            seq=job.seq or None)
        self._cv.notify_all()

    def _loop(self) -> None:
        """Scheduler body: fair-share pop, run, repeat until drained."""
        while True:
            with self._cv:
                while True:
                    if self._stop and (self._cancel or not len(self._queue)):
                        return
                    job = self._queue.pop()
                    if job is not None:
                        break
                    self._cv.wait(0.05)
            self._run(job)

    def _should_preempt(self, job: Job) -> bool:
        """True when a strictly-higher-priority job is waiting (the
        running sweep polls this at every cell boundary)."""
        with self._lock:
            if self._stop:
                return False   # draining: finish, don't thrash
            top = self._queue.highest_priority()
            return top is not None and top > job.priority

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def _journal(self, event: str, **fields) -> None:
        """Append one event, flushed and fsynced before returning."""
        if self._journal_file is None:
            return
        record = {"event": event, **fields}
        with self._lock:
            if self._journal_file is None:  # drained concurrently
                return
            self._journal_file.write(
                json.dumps(record, sort_keys=True) + "\n")
            self._journal_file.flush()
            os.fsync(self._journal_file.fileno())

    def _replay(self) -> tuple[int, list[Job]]:
        """Rebuild job state from the journal; returns
        ``(highest_id, interrupted_jobs_in_order)``."""
        jobs: dict[str, Job] = {}
        with open(self._journal_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue  # torn final line from a crashed server
                job_id = event.get("id")
                kind = event.get("event")
                if not isinstance(job_id, str) or not isinstance(kind, str):
                    continue
                if kind == "submitted":
                    priority = event.get("priority")
                    jobs[job_id] = Job(
                        id=job_id, kind=event.get("kind", "?"),
                        params=event.get("params") or {},
                        tenant=event.get("tenant") or "anon",
                        priority=(int(priority)
                                  if isinstance(priority, int) else 0))
                    continue
                job = jobs.get(job_id)
                if job is None:
                    continue
                if kind == "running":
                    job.status = "running"
                    job.trace = event.get("trace") or job.trace
                elif kind == "event":
                    data = event.get("data")
                    if isinstance(data, dict):
                        job.events.append(data)
                elif kind == "resumed":
                    job.status = "queued"
                    job.events = []
                elif kind == "preempted":
                    job.status = "queued"
                    job.preemptions += 1
                elif kind == "done":
                    job.status = "done"
                    job.output = event.get("output")
                    job.summary = event.get("summary") or []
                    job.error = None
                elif kind == "failed":
                    job.status = "failed"
                    job.error = event.get("error")
        last_id = max((_job_seq(job) for job in jobs.values()), default=0)
        interrupted = []
        for job in jobs.values():
            if job.status in TERMINAL_STATUSES:
                # The journal does not record wall-clock times; TTL for
                # replayed terminal jobs measures from recovery, so a
                # long-dead server's results survive long enough to read.
                job.finished_at = time.time()
            else:
                job.status = "interrupted"
                job.interrupted = True
                interrupted.append(job)
        interrupted.sort(key=_job_seq)
        self._jobs = jobs
        if jobs:
            obs_metrics.inc("serve.jobs_recovered", len(jobs))
        return last_id, interrupted

    def _resume(self, job: Job) -> None:
        """Re-queue one interrupted job (keeps its id and marker)."""
        with self._cv:
            job.status = "queued"
            job.error = None
            self._resuming.add(job.id)
            self._journal("resumed", id=job.id)
            self._enqueue(job)
        obs_metrics.inc("serve.jobs_resumed")

    def _prune(self) -> None:
        """Evict old terminal jobs (caller holds the lock).

        Jobs in ``_resuming`` are never candidates: between the resume
        decision and the re-run's terminal transition the job may look
        terminal to this sweep (replayed state, or a mid-transition
        race), and evicting it would orphan the in-flight re-run.
        """
        terminal = sorted(
            (job for job in self._jobs.values()
             if job.status in TERMINAL_STATUSES
             and job.id not in self._resuming), key=_job_seq)
        drop = []
        if self.ttl_s is not None:
            cutoff = time.time() - self.ttl_s
            drop = [job for job in terminal
                    if job.finished_at is not None
                    and job.finished_at < cutoff]
        kept = [job for job in terminal if job not in drop]
        if self.max_retained is not None:
            overflow = len(kept) - self.max_retained
            if overflow > 0:
                drop.extend(kept[:overflow])
        for job in drop:
            del self._jobs[job.id]
            self._discard_checkpoint(job)
            obs_metrics.inc("serve.jobs_evicted")

    # ------------------------------------------------------------------
    def _run(self, job: Job) -> None:
        job.status = "running"
        self._last_session = None
        obs_on = obs_trace.enabled()
        previous_trace = obs_trace.TRACER.trace_id
        if obs_on:
            # One trace per job: spans/events the sweep records (pool
            # workers included) carry this id, so /v1/traces/<id> can
            # assemble the job's tree.  Re-runs of a resumed job mint a
            # fresh id — its event capture starts over too.
            job.trace = obs_trace.new_trace()
            job.events = []
        self._journal("running", id=job.id, trace=job.trace)
        obs_metrics.set_gauge("serve.jobs_running", 1)

        def capture(event: dict) -> None:
            if event.get("job") == job.id:
                job.events.append(event)
                self._journal("event", id=job.id, data=event)

        scope = (obs_events.EVENTS.scope(job=job.id) if obs_on
                 else nullcontext())
        subscription = (obs_events.EVENTS.subscribe(capture) if obs_on
                        else nullcontext())
        try:
            with scope, subscription:
                output = self._execute(job)
            summary = self._summary_lines()
            # Atomic terminal transition: a concurrent prune must never
            # see status "done" before the journal record is durable and
            # finished_at is set (the old ordering could evict a resumed
            # job mid-commit and lose its result).
            with self._lock:
                job.output = output
                job.summary = summary
                job.error = None
                job.finished_at = time.time()
                job.status = "done"
                self._journal("done", id=job.id, output=job.output,
                              summary=job.summary)
                self._resuming.discard(job.id)
                self._discard_checkpoint(job)
            obs_metrics.inc("serve.jobs_done")
        except SweepPreempted:
            # A higher-priority job arrived: the sweep stopped at a cell
            # boundary with its checkpoint durable.  Re-queue at the old
            # scheduler position; the re-run resumes from the checkpoint
            # so its output stays byte-identical to an uninterrupted run.
            with self._cv:
                job.status = "queued"
                job.preemptions += 1
                self._journal("preempted", id=job.id,
                              preemptions=job.preemptions)
                self._enqueue(job)
            obs_metrics.inc("qos.preemptions")
            obs_metrics.inc(f"qos.preemptions|tenant={job.tenant}")
            obs_events.emit("qos.preempt", job=job.id, tenant=job.tenant,
                            priority=job.priority)
        except Exception as exc:  # noqa: BLE001 - reported via the job record
            with self._lock:
                job.error = str(exc)
                job.finished_at = time.time()
                job.status = "failed"
                self._journal("failed", id=job.id, error=job.error)
                self._resuming.discard(job.id)
                self._discard_checkpoint(job)
            obs_metrics.inc("serve.jobs_failed")
        finally:
            if obs_on:
                obs_trace.TRACER.trace_id = previous_trace
            obs_metrics.set_gauge("serve.jobs_running", 0)
            with self._lock:
                self._prune()

    def _summary_lines(self) -> list[str]:
        session = self._last_session or self.session
        return session.summary_lines()

    # ------------------------------------------------------------------
    # per-job checkpoints (the preempt/resume substrate)
    # ------------------------------------------------------------------
    def _checkpoint_path(self, job: Job) -> str:
        if self._ck_dir is None:
            if self._journal_path:
                # Journal-adjacent: survives a crash, so --resume-jobs
                # re-runs pick up the interrupted sweep's partial work.
                self._ck_dir = os.path.abspath(self._journal_path) + ".ck"
            else:
                self._ck_dir = tempfile.mkdtemp(prefix="repro-jobs-ck-")
            os.makedirs(self._ck_dir, exist_ok=True)
        return os.path.join(self._ck_dir, f"{job.id}.jsonl")

    def _discard_checkpoint(self, job: Job) -> None:
        """Best-effort removal of a terminal job's checkpoint file."""
        if self._ck_dir is None:
            return
        try:
            os.remove(os.path.join(self._ck_dir, f"{job.id}.jsonl"))
        except OSError:
            pass

    def _job_session(self, job: Job):
        """A derived session mirroring the server's execution policy,
        plus this job's checkpoint (``resume=True`` replays any cells a
        previous preempted/interrupted run committed) and preempt hook."""
        from ..api import Session

        base = self.session
        return Session(
            jobs=getattr(base, "jobs", 1),
            cache=getattr(base, "cache", None),
            runner=getattr(base, "runner_config", None),
            checkpoint=self._checkpoint_path(job),
            resume=True,
            inject_faults=getattr(base, "inject_faults", ()),
            max_tasks_per_child=getattr(base, "max_tasks_per_child", None),
            chaos=getattr(base, "chaos", None),
            fabric=getattr(base, "fabric", None),
            preempt=lambda: self._should_preempt(job),
        )

    def _execute(self, job: Job) -> str:
        """Produce the rendered sweep text (overridable in tests)."""
        session = self._job_session(job)
        self._last_session = session
        if job.kind == "table2":
            from ..eval import render_table2

            return render_table2(session.table2(
                tools=job.params.get("tools")))
        from ..eval.experiments import render_fig1

        return render_fig1(session.fig1(**job.params))
