"""Asynchronous sweep jobs: ``POST /v1/jobs`` + ``GET /v1/jobs[/<id>]``.

A job runs one of the paper's sweep artifacts (``table2`` or ``fig1``)
through the server's :class:`~repro.api.Session` — inheriting its
``jobs``/cache/budget policy, so a service started with ``--jobs 4``
executes sweep jobs on the sharded
:class:`~repro.exec.ParallelSweepRunner` — and stores the rendered text
(exactly what the CLI would print) as the job result.

Jobs execute on a dedicated single-thread executor: one sweep at a time,
never blocking the event loop or the ``/v1/idct`` compute thread.  The
queue is bounded (:attr:`JobManager.max_queued`); past that, submission
reports overload and the server answers 429.

**Durability.**  With a journal path configured, every lifecycle event is
appended to a JSONL write-ahead journal (``submitted`` → ``running`` →
``done``/``failed``, plus ``resumed``) and fsynced before the in-memory
state advances, so a SIGKILL'd server loses nothing it acknowledged.  On
restart the journal is replayed: terminal jobs come back verbatim,
non-terminal ones are listed with the honest status ``interrupted`` (and
an ``"interrupted": true`` marker that survives a later re-run), and —
with ``resume=True`` (``--resume-jobs``) — interrupted jobs are
re-submitted in id order.  A torn final line (the crash happened
mid-append) is skipped, never fatal.

**Eviction.**  Terminal (``done``/``failed``) jobs are pruned once more
than ``max_retained`` of them accumulate (oldest first), or once older
than ``ttl_s``; retained jobs keep a stable ``to_dict`` shape.  This
bounds the memory of a long-running service that previously kept every
completed sweep output forever.  Two guards keep eviction honest under
``--resume-jobs``: a job being re-run after a crash is exempt from the
sweep until its re-run reaches a terminal state (resumed jobs carry the
*lowest* ids, so the overflow rule would otherwise evict them first,
mid-resume), and every terminal transition — status, result, journal
record, ``finished_at`` — commits atomically under the manager lock so a
concurrent prune can never observe a "done" job whose journal record is
not yet durable.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = ["Job", "JobManager", "JobQueueFull", "UnknownJobKind"]

#: Sweep parameters a job may set, per kind (anything else is a 400).
ALLOWED_PARAMS = {
    "table2": {"tools"},
    "fig1": {"full", "bsc_configs", "bambu_configs", "xls_stages"},
}

#: Job states that will never change again (and are eligible to evict).
TERMINAL_STATUSES = ("done", "failed")


class JobQueueFull(Exception):
    """Too many queued jobs; the server answers 429."""


class UnknownJobKind(Exception):
    """Job kind is not ``table2`` or ``fig1``; the server answers 400."""


@dataclass
class Job:
    """One submitted sweep and its lifecycle state."""

    id: str
    kind: str
    params: dict
    status: str = "queued"   # queued | running | done | failed | interrupted
    output: str | None = None
    error: str | None = None
    summary: list[str] = field(default_factory=list)
    interrupted: bool = False      # survived a server crash at some point
    finished_at: float | None = None
    trace: str | None = None       # trace id minted for this job's sweep
    events: list = field(default_factory=list)   # captured obs events

    def to_dict(self) -> dict:
        payload = {"id": self.id, "kind": self.kind, "params": self.params,
                   "status": self.status}
        if self.output is not None:
            payload["output"] = self.output
        if self.error is not None:
            payload["error"] = self.error
        if self.summary:
            payload["summary"] = self.summary
        if self.interrupted:
            payload["interrupted"] = True
        if self.trace:
            payload["trace"] = self.trace
        return payload


def _job_seq(job: Job) -> int:
    """Numeric submission order from a ``job-N`` id (journal replays)."""
    try:
        return int(job.id.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return 0


class JobManager:
    """Bounded FIFO of sweep jobs over one worker thread."""

    def __init__(self, session, max_queued: int = 8,
                 journal: str | os.PathLike | None = None,
                 resume: bool = False, max_retained: int = 64,
                 ttl_s: float | None = None) -> None:
        self.session = session
        self.max_queued = max_queued
        self.max_retained = max_retained
        self.ttl_s = ttl_s
        self._jobs: dict[str, Job] = {}
        # Jobs being --resume-jobs-re-run: exempt from eviction until
        # their re-run is terminal (they carry the lowest ids, so the
        # max_retained overflow rule would evict them first otherwise).
        self._resuming: set[str] = set()
        # RLock: journal appends nest under the submit/prune lock.
        self._lock = threading.RLock()
        self._journal_path = os.fspath(journal) if journal else None
        self._journal_file = None
        last_id = 0
        interrupted: list[Job] = []
        if self._journal_path and os.path.exists(self._journal_path):
            last_id, interrupted = self._replay()
        self._ids = itertools.count(last_id + 1)
        if self._journal_path:
            parent = os.path.dirname(os.path.abspath(self._journal_path))
            os.makedirs(parent, exist_ok=True)
            self._journal_file = open(self._journal_path, "a",
                                      encoding="utf-8")
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-job")
        if resume:
            for job in interrupted:
                self._resume(job)

    # ------------------------------------------------------------------
    def submit(self, kind: str, params: dict | None = None) -> Job:
        params = dict(params or {})
        allowed = ALLOWED_PARAMS.get(kind)
        if allowed is None:
            raise UnknownJobKind(
                f"unknown job kind {kind!r} "
                f"(choices: {', '.join(ALLOWED_PARAMS)})")
        unknown = sorted(set(params) - allowed)
        if unknown:
            raise UnknownJobKind(
                f"unknown {kind} parameter {unknown[0]!r} "
                f"(choices: {', '.join(sorted(allowed))})")
        with self._lock:
            waiting = sum(1 for job in self._jobs.values()
                          if job.status in ("queued", "running"))
            if waiting >= self.max_queued:
                raise JobQueueFull(
                    f"{waiting} jobs already queued (limit {self.max_queued})")
            job = Job(id=f"job-{next(self._ids)}", kind=kind, params=params)
            self._jobs[job.id] = job
            self._journal("submitted", id=job.id, kind=kind, params=params)
            self._prune()
        obs_metrics.inc("serve.jobs_submitted")
        self._executor.submit(self._run, job)
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> list[Job]:
        """All retained jobs in submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=_job_seq)

    def drain(self, timeout: float | None = None,
              cancel: bool = False) -> None:
        """Finish queued work and stop accepting more.

        ``cancel=True`` drops still-queued jobs (the running one
        finishes): their journal entries stay non-terminal, so a
        journaled restart lists them as ``interrupted`` — honest, and
        recoverable with ``resume``.
        """
        self._executor.shutdown(wait=timeout is None or timeout > 0,
                                cancel_futures=cancel)
        with self._lock:
            if self._journal_file is not None:
                self._journal_file.close()
                self._journal_file = None

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def _journal(self, event: str, **fields) -> None:
        """Append one event, flushed and fsynced before returning."""
        if self._journal_file is None:
            return
        record = {"event": event, **fields}
        with self._lock:
            if self._journal_file is None:  # drained concurrently
                return
            self._journal_file.write(
                json.dumps(record, sort_keys=True) + "\n")
            self._journal_file.flush()
            os.fsync(self._journal_file.fileno())

    def _replay(self) -> tuple[int, list[Job]]:
        """Rebuild job state from the journal; returns
        ``(highest_id, interrupted_jobs_in_order)``."""
        jobs: dict[str, Job] = {}
        with open(self._journal_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue  # torn final line from a crashed server
                job_id = event.get("id")
                kind = event.get("event")
                if not isinstance(job_id, str) or not isinstance(kind, str):
                    continue
                if kind == "submitted":
                    jobs[job_id] = Job(
                        id=job_id, kind=event.get("kind", "?"),
                        params=event.get("params") or {})
                    continue
                job = jobs.get(job_id)
                if job is None:
                    continue
                if kind == "running":
                    job.status = "running"
                    job.trace = event.get("trace") or job.trace
                elif kind == "event":
                    data = event.get("data")
                    if isinstance(data, dict):
                        job.events.append(data)
                elif kind == "resumed":
                    job.status = "queued"
                    job.events = []
                elif kind == "done":
                    job.status = "done"
                    job.output = event.get("output")
                    job.summary = event.get("summary") or []
                    job.error = None
                elif kind == "failed":
                    job.status = "failed"
                    job.error = event.get("error")
        last_id = max((_job_seq(job) for job in jobs.values()), default=0)
        interrupted = []
        for job in jobs.values():
            if job.status in TERMINAL_STATUSES:
                # The journal does not record wall-clock times; TTL for
                # replayed terminal jobs measures from recovery, so a
                # long-dead server's results survive long enough to read.
                job.finished_at = time.time()
            else:
                job.status = "interrupted"
                job.interrupted = True
                interrupted.append(job)
        interrupted.sort(key=_job_seq)
        self._jobs = jobs
        if jobs:
            obs_metrics.inc("serve.jobs_recovered", len(jobs))
        return last_id, interrupted

    def _resume(self, job: Job) -> None:
        """Re-queue one interrupted job (keeps its id and marker)."""
        job.status = "queued"
        job.error = None
        self._resuming.add(job.id)
        self._journal("resumed", id=job.id)
        obs_metrics.inc("serve.jobs_resumed")
        self._executor.submit(self._run, job)

    def _prune(self) -> None:
        """Evict old terminal jobs (caller holds the lock).

        Jobs in ``_resuming`` are never candidates: between the resume
        decision and the re-run's terminal transition the job may look
        terminal to this sweep (replayed state, or a mid-transition
        race), and evicting it would orphan the in-flight re-run.
        """
        terminal = sorted(
            (job for job in self._jobs.values()
             if job.status in TERMINAL_STATUSES
             and job.id not in self._resuming), key=_job_seq)
        drop = []
        if self.ttl_s is not None:
            cutoff = time.time() - self.ttl_s
            drop = [job for job in terminal
                    if job.finished_at is not None
                    and job.finished_at < cutoff]
        kept = [job for job in terminal if job not in drop]
        if self.max_retained is not None:
            overflow = len(kept) - self.max_retained
            if overflow > 0:
                drop.extend(kept[:overflow])
        for job in drop:
            del self._jobs[job.id]
            obs_metrics.inc("serve.jobs_evicted")

    # ------------------------------------------------------------------
    def _run(self, job: Job) -> None:
        job.status = "running"
        obs_on = obs_trace.enabled()
        previous_trace = obs_trace.TRACER.trace_id
        if obs_on:
            # One trace per job: spans/events the sweep records (pool
            # workers included) carry this id, so /v1/traces/<id> can
            # assemble the job's tree.  Re-runs of a resumed job mint a
            # fresh id — its event capture starts over too.
            job.trace = obs_trace.new_trace()
            job.events = []
        self._journal("running", id=job.id, trace=job.trace)
        obs_metrics.set_gauge("serve.jobs_running", 1)

        def capture(event: dict) -> None:
            if event.get("job") == job.id:
                job.events.append(event)
                self._journal("event", id=job.id, data=event)

        scope = (obs_events.EVENTS.scope(job=job.id) if obs_on
                 else nullcontext())
        subscription = (obs_events.EVENTS.subscribe(capture) if obs_on
                        else nullcontext())
        try:
            with scope, subscription:
                output = self._execute(job)
            summary = self.session.summary_lines()
            # Atomic terminal transition: a concurrent prune must never
            # see status "done" before the journal record is durable and
            # finished_at is set (the old ordering could evict a resumed
            # job mid-commit and lose its result).
            with self._lock:
                job.output = output
                job.summary = summary
                job.error = None
                job.finished_at = time.time()
                job.status = "done"
                self._journal("done", id=job.id, output=job.output,
                              summary=job.summary)
                self._resuming.discard(job.id)
            obs_metrics.inc("serve.jobs_done")
        except Exception as exc:  # noqa: BLE001 - reported via the job record
            with self._lock:
                job.error = str(exc)
                job.finished_at = time.time()
                job.status = "failed"
                self._journal("failed", id=job.id, error=job.error)
                self._resuming.discard(job.id)
            obs_metrics.inc("serve.jobs_failed")
        finally:
            if obs_on:
                obs_trace.TRACER.trace_id = previous_trace
            obs_metrics.set_gauge("serve.jobs_running", 0)
            with self._lock:
                self._prune()

    def _execute(self, job: Job) -> str:
        """Produce the rendered sweep text (overridable in tests)."""
        if job.kind == "table2":
            from ..eval import render_table2

            return render_table2(self.session.table2(
                tools=job.params.get("tools")))
        from ..eval.experiments import render_fig1

        return render_fig1(self.session.fig1(**job.params))
