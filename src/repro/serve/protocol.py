"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The evaluation service speaks just enough HTTP for its JSON endpoints:
request line + headers + ``Content-Length`` body in, status line +
headers + body out, with keep-alive connections.  There is deliberately
no routing framework or TLS — the protocol layer stays small enough that
the test suite can drive it through a pair of in-memory streams.

Responses come in two framings:

* **Content-Length** (the default) — the body is fully known up front;
* **chunked transfer encoding** — a :class:`Response` whose ``stream``
  is an async byte-chunk iterator (what ``GET /v1/jobs/<id>/events``
  uses to push live events as they happen).  Each yielded chunk is
  framed and flushed immediately; the connection closes after the
  terminal chunk.

Errors while *parsing* raise :class:`ProtocolError` carrying the HTTP
status the connection handler should answer with (400 malformed, 413 too
large, 505 unsupported version) before closing the connection.

Besides HTTP, this module owns the **worker IPC framing**: the parent ↔
pre-forked-evaluator conversation (:mod:`repro.serve.pool`) is
length-prefixed JSON — a 4-byte big-endian length followed by a UTF-8
JSON object.  The async side (:func:`read_frame`/:func:`write_frame`)
runs on the parent's event loop; the blocking side
(:func:`recv_frame`/:func:`send_frame`) runs in the worker's plain
``socket`` loop.  A clean EOF reads as ``None`` — that is how the parent
detects a dead worker and how an orphaned worker notices its parent is
gone.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass, field

__all__ = [
    "Request",
    "Response",
    "ProtocolError",
    "read_request",
    "write_response",
    "json_response",
    "error_response",
    "encode_frame",
    "read_frame",
    "write_frame",
    "recv_frame",
    "send_frame",
    "MAX_HEADER_BYTES",
    "MAX_BODY_BYTES",
    "MAX_FRAME_BYTES",
]

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Largest worker IPC frame; a batch of 8×8 int blocks plus shipped obs
#: buffers stays far below this, so anything bigger is a framing bug.
MAX_FRAME_BYTES = 64 * 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Content",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    505: "HTTP Version Not Supported",
}


class ProtocolError(Exception):
    """A malformed or oversized request; ``status`` is the HTTP answer."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: str
    headers: dict[str, str]
    body: bytes
    #: Resolved QoS tenant (set by the server's dispatch, not the parser).
    tenant: object = None

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> dict:
        """The body as a JSON object; raises :class:`ProtocolError` (400)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        return payload


@dataclass
class Response:
    """One response ready to serialize.

    With ``stream`` set (an async iterator of ``bytes``), the response
    is sent with ``Transfer-Encoding: chunked`` — ``body`` is ignored
    and the connection always closes after the terminal chunk.
    """

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)
    stream: object | None = None   # async iterator of bytes chunks


async def read_request(reader: asyncio.StreamReader,
                       max_body: int = MAX_BODY_BYTES) -> Request | None:
    """Parse one request; ``None`` on a clean EOF before the request line."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("truncated request line")
    except asyncio.LimitOverrunError:
        raise ProtocolError("request line too long", status=413)
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported version {version}", status=505)

    headers: dict[str, str] = {}
    total = 0
    while True:
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise ProtocolError("truncated headers")
        if raw == b"\r\n":
            break
        total += len(raw)
        if total > MAX_HEADER_BYTES:
            raise ProtocolError("headers too large", status=413)
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()

    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise ProtocolError("bad Content-Length")
    if length < 0:
        raise ProtocolError("bad Content-Length")
    if length > max_body:
        raise ProtocolError(f"body exceeds {max_body} bytes", status=413)
    body = await reader.readexactly(length) if length else b""

    path, _, query = target.partition("?")
    return Request(method=method.upper(), path=path, query=query,
                   headers=headers, body=body)


async def write_response(writer: asyncio.StreamWriter, response: Response,
                         keep_alive: bool = True) -> None:
    """Serialize ``response`` (Content-Length or chunked) and flush."""
    if response.stream is not None:
        await _write_streaming(writer, response)
        return
    reason = REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in response.headers.items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(response.body)
    await writer.drain()


async def _write_streaming(writer: asyncio.StreamWriter,
                           response: Response) -> None:
    """Chunked transfer encoding: frame and flush each yielded chunk.

    The stream iterator drives pacing — a live event stream yields as
    events arrive and returns when the source completes.  The connection
    never keeps alive after a stream (the client saw the terminal
    ``0\\r\\n\\r\\n`` chunk and everything before it flushed eagerly).
    """
    reason = REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            "Transfer-Encoding: chunked",
            "Connection: close"]
    for name, value in response.headers.items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    await writer.drain()
    async for chunk in response.stream:
        if not chunk:
            continue
        writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
        writer.write(chunk)
        writer.write(b"\r\n")
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()


# ----------------------------------------------------------------------
# worker IPC framing (length-prefixed JSON over a socketpair)
# ----------------------------------------------------------------------

def encode_frame(payload: dict) -> bytes:
    """One IPC frame: 4-byte big-endian length + UTF-8 JSON object."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"IPC frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return struct.pack(">I", len(body)) + body


def _decode_frame_body(body: bytes) -> dict:
    payload = json.loads(body.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ProtocolError("IPC frame must be a JSON object")
    return payload


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame from a worker stream; ``None`` on a clean EOF.

    EOF *inside* a frame also reads as ``None``: a worker that dies
    mid-write delivered nothing usable, and the caller's reaction (treat
    the worker as dead) is identical either way.
    """
    try:
        head = await reader.readexactly(4)
        (length,) = struct.unpack(">I", head)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"IPC frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        return None
    return _decode_frame_body(body)


async def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    """Serialize and flush one frame on the parent side."""
    writer.write(encode_frame(payload))
    await writer.drain()


def _recv_exact(sock, length: int) -> bytes | None:
    chunks = []
    remaining = length
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> dict | None:
    """Blocking frame read on the worker side; ``None`` on EOF."""
    head = _recv_exact(sock, 4)
    if head is None:
        return None
    (length,) = struct.unpack(">I", head)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"IPC frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length)
    if body is None:
        return None
    return _decode_frame_body(body)


def send_frame(sock, payload: dict) -> None:
    """Blocking frame write on the worker side."""
    sock.sendall(encode_frame(payload))


def json_response(payload: dict, status: int = 200) -> Response:
    """A canonical (sorted-keys) JSON response."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return Response(status=status, body=body)


def error_response(message: str, status: int) -> Response:
    return json_response({"error": message}, status=status)
