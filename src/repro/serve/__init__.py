"""``repro.serve`` — a long-running asyncio evaluation service.

Turns the one-shot pipeline into a server (``python -m repro serve``)
whose endpoints expose :class:`~repro.api.Session` operations over a
stdlib-only JSON/HTTP protocol:

* :mod:`repro.serve.protocol`  — HTTP/1.1 framing over asyncio streams;
* :mod:`repro.serve.evaluator` — hot per-design evaluation state
  (vectorized model / compiled simulator engines);
* :mod:`repro.serve.batcher`   — the ``/v1/idct`` micro-batch window;
* :mod:`repro.serve.jobs`      — async ``table2``/``fig1`` sweep jobs;
* :mod:`repro.serve.pool`      — the ``--workers N`` pre-forked
  evaluator pool with its kill/restart supervision ladder;
* :mod:`repro.serve.server`    — routing, admission control (429),
  per-request budgets (504), and the SIGTERM drain lifecycle.

See the README's "Evaluation service" section for the endpoint and
exit-code contracts.
"""

from .batcher import MicroBatcher
from .evaluator import DesignEvaluator, validate_blocks
from .jobs import Job, JobManager
from .pool import PoolConfig, WorkerInit, WorkerPool
from .server import EvalServer, ServeConfig

__all__ = [
    "EvalServer",
    "ServeConfig",
    "MicroBatcher",
    "DesignEvaluator",
    "validate_blocks",
    "Job",
    "JobManager",
    "WorkerPool",
    "WorkerInit",
    "PoolConfig",
]
