"""Request coalescing: the micro-batcher behind ``POST /v1/idct``.

Concurrent requests for the same ``(design, engine)`` key are merged into
one vectorized evaluation.  A batch flushes when either window closes:

* **max-size** — the pending batch holds at least ``max_batch`` blocks
  (a flush takes *everything* pending, so a burst arriving faster than
  the flusher runs may evaluate in batches larger than ``max_batch``;
  coalescing only ever lowers the invocation count);
* **max-latency** — ``max_wait_s`` elapsed since the batch opened, so a
  lone request is never parked behind a window that might not fill.

``submit`` resolves to exactly the outputs for the caller's own blocks,
in order.  If the batch evaluation fails, every member request receives
the same exception — the server maps budget exhaustion to 504 and
anything else to 500.

The batcher is a pure asyncio component: it owns no threads and calls
an async ``runner(key, blocks)`` the server wires to its compute
executor.  Determinism note for tests: ``submit`` never yields before
enqueueing, so N submits issued in one task before the first ``await``
always coalesce into ⌈N·blocks/max_batch⌉ invocations.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Hashable

from ..obs import metrics as obs_metrics

__all__ = ["MicroBatcher"]

Runner = Callable[[Hashable, list], Awaitable[list]]


class _Pending:
    """One open batch window for a key."""

    __slots__ = ("items", "blocks", "ready", "task")

    def __init__(self) -> None:
        self.items: list[tuple[list, asyncio.Future]] = []
        self.blocks = 0
        self.ready = asyncio.Event()
        self.task: asyncio.Task | None = None


class MicroBatcher:
    """Coalesce concurrent same-key submissions into one runner call."""

    def __init__(self, runner: Runner, max_batch: int = 16,
                 max_wait_s: float = 0.005) -> None:
        self.runner = runner
        self.max_batch = max(1, int(max_batch))
        self.max_wait_s = max(0.0, float(max_wait_s))
        self._pending: dict[Hashable, _Pending] = {}
        self._flushes: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    async def submit(self, key: Hashable, blocks: list) -> list:
        """Queue ``blocks`` under ``key``; resolves to their outputs."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        pend = self._pending.get(key)
        if pend is None:
            pend = self._pending[key] = _Pending()
            pend.task = loop.create_task(self._flush_window(key, pend))
            self._flushes.add(pend.task)
            pend.task.add_done_callback(self._flushes.discard)
        pend.items.append((blocks, future))
        pend.blocks += len(blocks)
        obs_metrics.set_gauge(
            "serve.batch_pending",
            sum(p.blocks for p in self._pending.values()))
        if pend.blocks >= self.max_batch:
            pend.ready.set()
        return await future

    async def drain(self) -> None:
        """Flush and await every open window (used at shutdown)."""
        for pend in self._pending.values():
            pend.ready.set()
        if self._flushes:
            await asyncio.gather(*list(self._flushes), return_exceptions=True)

    @property
    def open_windows(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    async def _flush_window(self, key: Hashable, pend: _Pending) -> None:
        if self.max_wait_s > 0:
            try:
                await asyncio.wait_for(pend.ready.wait(), self.max_wait_s)
            except asyncio.TimeoutError:
                pass
        else:
            # Zero-latency window: still yield once so a same-tick burst
            # (submits issued before any await) coalesces.
            await asyncio.sleep(0)
        # Close the window first: later submits open a fresh batch.
        if self._pending.get(key) is pend:
            del self._pending[key]
        obs_metrics.set_gauge(
            "serve.batch_pending",
            sum(p.blocks for p in self._pending.values()))
        batch: list = []
        for blocks, _future in pend.items:
            batch.extend(blocks)
        try:
            outputs = await self.runner(key, batch)
        except BaseException as exc:  # noqa: BLE001 - forwarded per request
            for _blocks, future in pend.items:
                if not future.done():
                    future.set_exception(exc)
            return
        if len(outputs) != len(batch):
            mismatch = RuntimeError(
                f"runner returned {len(outputs)} outputs for {len(batch)} "
                f"blocks")
            for _blocks, future in pend.items:
                if not future.done():
                    future.set_exception(mismatch)
            return
        offset = 0
        for blocks, future in pend.items:
            share = outputs[offset:offset + len(blocks)]
            offset += len(blocks)
            if not future.done():
                future.set_result(share)
