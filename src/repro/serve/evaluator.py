"""Hot per-design evaluation state for the service's ``/v1/idct`` path.

A :class:`DesignEvaluator` is built once per design name and then serves
every batch that the :class:`~repro.serve.batcher.MicroBatcher` coalesces
for that design.  Construction is the *warm start*: the design is built,
fully measured through :func:`~repro.eval.measure.measure_design` (which
consults the content-addressed artifact cache when one is active), and
rejected outright unless it verified bit-exact against the golden model —
a service must never serve blocks through a design whose hardware output
is wrong.

Three evaluation engines (the ``"serve"`` context of the
:mod:`repro.engines` registry) share one results contract (bit-identical
output):

* ``"model"`` (default) — the vectorized :func:`repro.idct.batch.\
batch_chen_wang` twin of the golden model, valid precisely because the
  warm start proved the design bit-exact against it.  One numpy call per
  batch, so throughput grows with batch size.
* ``"sim"`` — the compiled cycle-accurate simulator: all blocks of the
  batch are streamed through the design's AXI wrapper in a single
  :meth:`~repro.axis.harness.StreamHarness.run_matrices` run, amortizing
  pipeline fill across the batch.
* ``"batch"`` — the lane-packed compiled simulator
  (:class:`repro.sim.batch.BatchStreamRunner`): the batch's blocks run in
  lockstep lanes of one settle/tick pass each cycle, so a coalesced
  window is cycle-accurate *and* amortizes the per-cycle Python cost
  across lanes.

Every invocation records ``serve.sim_invocations`` / ``serve.blocks_total``
counters and the ``serve.batch_size`` histogram, which is how both the
coalescing test and the service benchmark argue batching wins from obs
metrics rather than ad-hoc timing.
"""

from __future__ import annotations

from .. import chaos as chaos_mod
from ..core.errors import EvaluationError
from ..engines import engine_names, resolve_engine
from ..idct.constants import INPUT_MAX, INPUT_MIN, SIZE
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = ["DesignEvaluator", "validate_blocks"]

Block = list[list[int]]


def validate_blocks(blocks) -> list[Block]:
    """Check shape (n×8×8) and the 12-bit signed input range.

    Raises ``ValueError`` with a client-presentable message; the server
    maps it to a 400 response.
    """
    if not isinstance(blocks, (list, tuple)) or not blocks:
        raise ValueError("'blocks' must be a non-empty list of 8x8 matrices")
    for b, block in enumerate(blocks):
        if not isinstance(block, (list, tuple)) or len(block) != SIZE:
            raise ValueError(f"blocks[{b}] must have {SIZE} rows")
        for r, row in enumerate(block):
            if not isinstance(row, (list, tuple)) or len(row) != SIZE:
                raise ValueError(f"blocks[{b}][{r}] must have {SIZE} values")
            for value in row:
                if not isinstance(value, int) or isinstance(value, bool):
                    raise ValueError(
                        f"blocks[{b}][{r}] contains a non-integer value")
                if not INPUT_MIN <= value <= INPUT_MAX:
                    raise ValueError(
                        f"blocks[{b}][{r}] value {value} outside "
                        f"[{INPUT_MIN}, {INPUT_MAX}]")
    return [list(map(list, block)) for block in blocks]


class DesignEvaluator:
    """One verified design point, kept hot for batched block evaluation."""

    ENGINES = engine_names("serve")

    def __init__(self, name: str, session=None) -> None:
        if session is None:
            from ..api import Session

            session = Session()
        self.design = session.build(name)
        self.name = self.design.name
        # Warm start: a full (cache-aware) measurement doubles as the
        # bit-exactness proof that licenses the vectorized model engine.
        self.measured = session.measure(self.name)
        if not self.measured.bit_exact:
            raise EvaluationError(
                f"{self.name} is not bit-exact against the golden model; "
                f"refusing to serve it", design=self.name, phase="serve.warm")
        self._sim = None
        self._harness = None
        self._batch_runner = None

    # ------------------------------------------------------------------
    def _sim_harness(self):
        if self._harness is None:
            from ..axis.harness import StreamHarness
            from ..sim import Simulator

            self._sim = Simulator(self.design.top)
            self._harness = StreamHarness(self._sim, self.design.spec)
        return self._harness

    def _batch(self):
        if self._batch_runner is None:
            from ..sim.batch import BatchStreamRunner

            self._batch_runner = BatchStreamRunner(
                self.design.top, self.design.spec, lanes=16)
        return self._batch_runner

    # ------------------------------------------------------------------
    def evaluate(self, blocks: list[Block], engine: str = "model") -> list[Block]:
        """Evaluate one (possibly coalesced) batch of 8×8 blocks.

        Exactly one "simulator invocation" regardless of batch size:
        one vectorized model call, or one streamed simulator run.
        """
        # UnknownEngineError subclasses ValueError, preserving this
        # method's documented exception contract.
        engine = resolve_engine(engine, "serve")
        policy = chaos_mod.active()
        if policy is not None:
            # Chaos drill: injected latency and/or an EvaluationError the
            # server maps to 422 (and counts toward the circuit breaker).
            policy.evaluator_fault(f"{self.name}:{engine}")
        with obs_trace.span("serve.evaluate", design=self.name,
                            engine=engine, blocks=len(blocks)):
            obs_metrics.inc("serve.sim_invocations")
            obs_metrics.inc("serve.blocks_total", len(blocks))
            # Labelled twins: rendered by /metrics as
            # repro_serve_blocks_total{design="…",engine="…"} series.
            obs_metrics.inc(
                f"serve.blocks_total|design={self.name},engine={engine}",
                len(blocks))
            obs_metrics.inc(
                f"serve.sim_invocations|design={self.name},engine={engine}")
            obs_metrics.observe("serve.batch_size", len(blocks))
            if engine == "model":
                return self._evaluate_model(blocks)
            if engine == "batch":
                return self._batch().run_blocks(blocks)
            return self._evaluate_sim(blocks)

    def _evaluate_model(self, blocks: list[Block]) -> list[Block]:
        import numpy as np

        from ..idct.batch import batch_chen_wang

        out = batch_chen_wang(np.asarray(blocks, dtype=np.int64))
        return [[[int(v) for v in row] for row in block] for block in out]

    def _evaluate_sim(self, blocks: list[Block]) -> list[Block]:
        harness = self._sim_harness()
        self._sim.reset()
        outputs, _timing = harness.run_matrices(blocks)
        return outputs
