"""Pre-forked evaluator worker pool behind the asyncio serve front end.

``serve --workers N`` (N > 1) forks N evaluator processes at startup —
after the parent's warm loop, so every child inherits the warm
measurement memos for free — and routes each coalesced ``/v1/idct``
batch to a worker over length-prefixed JSON IPC
(:func:`repro.serve.protocol.read_frame` and friends).  The parent owns
everything stateful: the HTTP front end, the micro-batcher, the circuit
breaker, admission control, and the durable job journal (a single
writer, so ``--resume-jobs`` holds under SIGKILL of any worker).  The
content-addressed artifact cache stays the shared substrate: workers
open the same cache directory, whose atomic writes make concurrent
producers safe.

**Routing.**  Batches have (design, engine) affinity: a stable SHA-256
hash picks the worker, so one design's compiled simulator state stays
hot in one process while different designs evaluate genuinely in
parallel — multiplying the batcher's coalescing win by core count.  A
half-open circuit-breaker probe instead prefers the *freshest* worker
(most recently spawned), because the probe exists to test whether a
respawned evaluator is healthy.

**Supervision ladder.**  Idle workers are heartbeat-pinged.  A request
that outlives its wall-clock deadline escalates: soft cancel (SIGINT —
the worker answers an honest ``cancelled`` error and survives), then
SIGTERM, then SIGKILL.  A dead worker (EOF on its socket, however it
died) is respawned with exponential backoff under a pool-wide
:class:`~repro.resilience.supervise.CrashBudget`; a request in flight on
a dying worker is retried once on a fresh worker, and a request that
kills two workers is quarantined — the caller gets an honest
:class:`~repro.core.errors.WorkerCrashError` (HTTP 503), never a hung
connection or a silently wrong body.  Chaos drills hook the same
:meth:`~repro.chaos.ChaosPolicy.should_kill` decision as ``exec`` pool
workers, keyed by ``serve:<design>:<engine>:<seq>`` task ids.

**Observability.**  Each eval reply ships the worker's span buffer,
event log, and metrics snapshot; the parent ingests them so
``/v1/traces/<id>`` stays one connected tree and ``/metrics`` aggregates
worker counters.  Pool state surfaces as ``/healthz``'s ``workers``
array and the ``serve.worker_restarts`` / ``serve.worker_kills``
counters (pre-registered, so they render zero-valued under
``--workers 1``).
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import multiprocessing
import os
import signal
import socket
import time
from dataclasses import dataclass, field

from ..core.errors import (
    BudgetExceeded,
    EvaluationError,
    ReproError,
    WorkerCrashError,
)
from ..engines import UnknownEngineError
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..resilience.supervise import CrashBudget, default_crash_budget
from .protocol import read_frame, recv_frame, send_frame, write_frame

__all__ = ["PoolConfig", "WorkerInit", "WorkerHandle", "WorkerPool",
           "pool_worker_main"]


@dataclass(frozen=True)
class WorkerInit:
    """Picklable bootstrap state a forked evaluator worker mirrors.

    ``cache_dir``/``chaos`` re-activate the parent session's substrate in
    the child (explicitly, like :func:`repro.exec.worker.init_worker` —
    fork inheritance of globals is never relied on); ``obs`` selects
    whether the worker records spans/metrics to ship back; ``budget_s``
    is the per-request wall budget the worker arms around each
    evaluation (the parent's deadline ladder is the backstop above it).
    """

    cache_dir: str | None = None
    chaos: object | None = None
    obs: bool = False
    budget_s: float | None = None


@dataclass
class PoolConfig:
    """Tunable supervision policy of one :class:`WorkerPool`."""

    size: int = 2                  # evaluator processes
    deadline_s: float = 300.0      # per-request wall deadline (ladder past it)
    soft_grace_s: float = 1.0      # SIGINT answer window before SIGTERM
    term_grace_s: float = 2.0      # SIGTERM death window before SIGKILL
    ping_interval_s: float = 5.0   # idle heartbeat period
    ping_timeout_s: float = 2.0    # pong deadline before the ladder
    crash_budget: int | None = None    # pool-wide deaths before giving up
    backoff_base_s: float = 0.05   # respawn backoff base (doubles per crash)


class _WorkerGone(Exception):
    """Internal: the worker died (or is unusable) for this request."""


# ----------------------------------------------------------------------
# child side
# ----------------------------------------------------------------------

def _close_inherited_fds(keep: frozenset) -> None:
    """Close every fd the fork inherited except ``keep`` and std streams.

    The child must not hold the parent's listener, client connections,
    or *other workers'* IPC sockets — a stray duplicate would defeat the
    EOF-based death detection those sockets exist for.
    """
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except (OSError, ValueError):  # pragma: no cover - non-procfs platform
        return
    for fd in fds:
        if fd > 2 and fd not in keep:
            try:
                os.close(fd)
            except OSError:
                pass


def _error_payload(exc: BaseException) -> dict:
    """Classify an evaluation exception for the wire (type name + text)."""
    from ..api import UsageError

    if isinstance(exc, BudgetExceeded):
        kind = "BudgetExceeded"
    elif isinstance(exc, UnknownEngineError):
        # Its own wire kind: the rebuilt exception must stay both a
        # UsageError (HTTP 400) and a ValueError (pool.evaluate contract).
        kind = "UnknownEngineError"
    elif isinstance(exc, UsageError):
        kind = "UsageError"
    elif isinstance(exc, ReproError):
        kind = "EvaluationError" if isinstance(exc, EvaluationError) \
            else "ReproError"
    elif isinstance(exc, ValueError):
        kind = "ValueError"
    else:
        kind = "RuntimeError"
    return {"type": kind, "message": str(exc)}


def _rebuild_error(err: dict, design: str) -> Exception:
    """The parent-side twin of :func:`_error_payload`: a worker error
    frame becomes the exception class the server's HTTP mapping and the
    circuit breaker already understand."""
    kind = err.get("type", "RuntimeError")
    message = err.get("message") or "worker error"
    if kind == "cancelled":
        return BudgetExceeded(
            f"evaluation cancelled by the worker deadline ladder: {message}",
            design=design, phase="serve.pool")
    if kind == "BudgetExceeded":
        return BudgetExceeded(message)
    if kind == "UnknownEngineError":
        return UnknownEngineError(message, name="")
    if kind == "UsageError":
        from ..api import UsageError

        return UsageError(message)
    if kind == "ValueError":
        return ValueError(message)
    if kind in ("EvaluationError", "ReproError"):
        return EvaluationError(message)
    return RuntimeError(message)


def pool_worker_main(conn: socket.socket, init: WorkerInit) -> None:
    """Blocking main loop of one forked evaluator worker.

    Speaks the frame protocol over ``conn``: ``ping`` → pong, ``warm``
    → build the design's evaluator, ``eval`` → one batched evaluation
    (obs buffers shipped in the reply), ``sleep`` → supervision drill
    (how tests exercise the ladder), ``exit`` → clean shutdown.  EOF on
    ``conn`` means the parent is gone; the worker exits rather than
    orphan itself.  SIGINT mid-evaluation answers an honest
    ``cancelled`` error frame; SIGINT while idle (or SIGTERM any time)
    just exits.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.default_int_handler)
    try:
        signal.set_wakeup_fd(-1)  # don't write into the parent's self-pipe
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    _close_inherited_fds(keep=frozenset({conn.fileno()}))

    from .. import chaos as chaos_mod
    from .. import obs
    from ..api import Session
    from ..exec.worker import WorkerContext
    from ..resilience import budget as res_budget

    WorkerContext(cache_dir=init.cache_dir, trace=init.obs,
                  chaos=init.chaos).apply()
    session = Session()

    def handle_eval(req: dict) -> dict:
        policy = chaos_mod.active()
        task = req.get("task") or ""
        if policy is not None and task \
                and policy.should_kill(task, req.get("attempt", 0)):
            # Chaos drill: die the way a segfault/OOM-kill would — no
            # unwinding, no reply — so the parent's ladder, retry, and
            # quarantine paths see the real EOF.
            os.kill(os.getpid(), signal.SIGKILL)
        out = {"id": req.get("id"), "ok": True, "pid": os.getpid(),
               "spans": [], "events": [], "metrics": None}
        trace_on = obs_trace.enabled()
        if trace_on:
            obs.clear()
            if req.get("trace"):
                obs_trace.new_trace(req["trace"])
        try:
            evaluator = session.evaluator(req["design"])
            budget = None
            if init.budget_s is not None:
                budget = res_budget.Budget(wall_s=init.budget_s,
                                           design=evaluator.name,
                                           phase="serve.request")
            with res_budget.limit(budget):
                out["outputs"] = evaluator.evaluate(
                    req["blocks"], engine=req.get("engine", "model"))
        except KeyboardInterrupt:
            out["ok"] = False
            out["error"] = {"type": "cancelled",
                            "message": f"soft-cancelled {task or 'request'}"}
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            out["ok"] = False
            out["error"] = _error_payload(exc)
        finally:
            if trace_on:
                out["spans"] = [rec.to_dict() for rec in obs_trace.events()]
                out["events"] = obs_events.EVENTS.events()
                out["metrics"] = obs_metrics.snapshot()
                obs.clear()
        return out

    def handle_sleep(req: dict) -> dict:
        # Supervision drill: hold the worker busy.  "wedged" also masks
        # the polite signals, forcing the ladder all the way to SIGKILL.
        if req.get("wedged"):
            signal.pthread_sigmask(
                signal.SIG_BLOCK, {signal.SIGINT, signal.SIGTERM})
        deadline = time.monotonic() + float(req.get("s", 0.0))
        try:
            while time.monotonic() < deadline:
                time.sleep(0.02)
        except KeyboardInterrupt:
            return {"id": req.get("id"), "ok": False, "pid": os.getpid(),
                    "error": {"type": "cancelled",
                              "message": "soft-cancelled sleep"}}
        return {"id": req.get("id"), "ok": True, "pid": os.getpid()}

    try:
        while True:
            try:
                req = recv_frame(conn)
            except KeyboardInterrupt:
                return
            if req is None or req.get("op") == "exit":
                return
            op = req.get("op")
            if op == "ping":
                out = {"id": req.get("id"), "ok": True, "pid": os.getpid()}
            elif op == "warm":
                try:
                    session.evaluator(req["design"])
                    out = {"id": req.get("id"), "ok": True,
                           "pid": os.getpid()}
                except KeyboardInterrupt:
                    return
                except BaseException as exc:  # noqa: BLE001
                    out = {"id": req.get("id"), "ok": False,
                           "pid": os.getpid(), "error": _error_payload(exc)}
            elif op == "eval":
                out = handle_eval(req)
            elif op == "sleep":
                out = handle_sleep(req)
            else:
                out = {"id": req.get("id"), "ok": False, "pid": os.getpid(),
                       "error": {"type": "RuntimeError",
                                 "message": f"unknown op {op!r}"}}
            try:
                send_frame(conn, out)
            except (KeyboardInterrupt, BrokenPipeError, ConnectionError):
                return
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

@dataclass
class WorkerHandle:
    """Parent-side state of one pool slot (the process behind it may be
    respawned many times; the slot and its affinity are stable)."""

    index: int
    proc: object | None = None
    reader: asyncio.StreamReader | None = None
    writer: asyncio.StreamWriter | None = None
    pid: int | None = None
    state: str = "dead"       # idle | busy | dead | failed | stopped
    restarts: int = 0         # respawns of this slot
    inflight: int = 0
    spawned_at: float = 0.0   # monotonic; prefer_fresh routes to the max
    respawn_delay: float = 0.0
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)

    def snapshot(self) -> dict:
        return {"pid": self.pid, "state": self.state,
                "inflight": self.inflight, "restarts": self.restarts}


class WorkerPool:
    """Supervised pre-forked evaluator processes with affinity routing."""

    def __init__(self, init: WorkerInit,
                 config: PoolConfig | None = None) -> None:
        self.init = init
        self.config = config or PoolConfig()
        size = max(2, int(self.config.size))
        limit = (self.config.crash_budget
                 if self.config.crash_budget is not None
                 else default_crash_budget(size))
        self.budget = CrashBudget(limit, base_s=self.config.backoff_base_s)
        self.workers = [WorkerHandle(index=i) for i in range(size)]
        self.stats = {"kills": 0, "restarts": 0, "retries": 0,
                      "quarantined": 0}
        self.quarantined: list[str] = []
        self._seq = itertools.count(1)
        self._draining = False
        self._heartbeat: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self, warm: tuple = ()) -> None:
        """Fork every worker, warm the named designs, start heartbeats."""
        for worker in self.workers:
            async with worker.lock:
                await self._spawn(worker, respawn=False)
        if warm:
            await asyncio.gather(*(self._warm(worker, warm)
                                   for worker in self.workers))
        self._heartbeat = asyncio.get_running_loop().create_task(
            self._heartbeat_loop())

    async def _warm(self, worker: WorkerHandle, designs: tuple) -> None:
        for name in designs:
            try:
                await self._call(worker, {"op": "warm", "design": name},
                                 self.config.deadline_s)
            except _WorkerGone:
                return  # it will respawn (cold) on first use

    async def drain(self) -> None:
        """Stop the pool: polite exit frames, then escalate to signals."""
        if self._draining:
            return
        self._draining = True
        if self._heartbeat is not None:
            self._heartbeat.cancel()
            try:
                await self._heartbeat
            except asyncio.CancelledError:
                pass
        grace = self.config.term_grace_s
        for worker in self.workers:
            if worker.state in ("dead", "failed", "stopped"):
                continue
            try:
                await asyncio.wait_for(worker.lock.acquire(),
                                       self.config.soft_grace_s)
            except asyncio.TimeoutError:
                self._signal(worker, signal.SIGTERM)
            else:
                try:
                    if worker.writer is not None:
                        await write_frame(worker.writer, {"op": "exit"})
                except (ConnectionError, OSError):
                    pass
                finally:
                    worker.lock.release()
        loop = asyncio.get_running_loop()
        for worker in self.workers:
            proc = worker.proc
            if proc is not None and proc.is_alive():
                await loop.run_in_executor(None, proc.join, grace)
                if proc.is_alive():
                    self._signal(worker, signal.SIGTERM)
                    await loop.run_in_executor(None, proc.join, grace)
                if proc.is_alive():
                    self._signal(worker, signal.SIGKILL)
                    await loop.run_in_executor(None, proc.join, None)
            self._close_transport(worker)
            worker.state = "stopped"

    def snapshot(self) -> list[dict]:
        """Per-worker state for ``/healthz``'s ``workers`` array."""
        return [worker.snapshot() for worker in self.workers]

    # -- the public request path ---------------------------------------
    async def evaluate(self, design: str, engine: str, blocks,
                       *, prefer_fresh: bool = False):
        """One batched evaluation, retried once across a worker death.

        Raises the same exception family the in-process path would; a
        request whose two attempts both killed their worker raises
        :class:`WorkerCrashError` (the server answers an honest 503) and
        is quarantined like ``exec``'s poison tasks.
        """
        seq = next(self._seq)
        task = f"serve:{design}:{engine}:{seq}"
        for attempt in (0, 1):
            worker = self._pick(design, engine, prefer_fresh=prefer_fresh)
            payload = {"op": "eval", "id": seq, "design": design,
                       "engine": engine, "blocks": blocks, "task": task,
                       "attempt": attempt,
                       "trace": obs_trace.TRACER.trace_id or None}
            try:
                reply = await self._call(worker, payload,
                                         self.config.deadline_s)
            except _WorkerGone as exc:
                if attempt == 0:
                    self.stats["retries"] += 1
                    obs_trace.event("serve.worker_retry", task=task)
                    continue
                self._quarantine(task)
                raise WorkerCrashError(
                    "request killed two workers and was quarantined",
                    design=design, phase="serve.pool", task=task) from exc
            return self._accept(reply, design)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- routing -------------------------------------------------------
    def _pick(self, design: str, engine: str,
              prefer_fresh: bool = False) -> WorkerHandle:
        if prefer_fresh:
            # Half-open probe: test the freshest (most recently spawned)
            # worker, not the slot whose affinity just saw the failures.
            return max(self.workers, key=lambda w: w.spawned_at)
        digest = hashlib.sha256(f"{design}|{engine}".encode()).hexdigest()
        return self.workers[int(digest[:8], 16) % len(self.workers)]

    # -- one framed round-trip, with the ladder ------------------------
    async def _call(self, worker: WorkerHandle, payload: dict,
                    deadline_s: float | None) -> dict:
        async with worker.lock:
            if worker.state == "dead" and not self._draining:
                await self._respawn(worker)
            if worker.state != "idle":
                raise _WorkerGone(
                    f"worker {worker.index} is {worker.state}")
            worker.state = "busy"
            worker.inflight += 1
            try:
                await write_frame(worker.writer, payload)
                reply = await self._await_reply(worker, deadline_s)
                if reply is None:
                    self._note_death(worker, "died mid-request")
                    raise _WorkerGone(f"worker {worker.index} died")
                return reply
            except (ConnectionError, OSError) as exc:
                self._note_death(worker, f"connection lost: {exc}")
                raise _WorkerGone(str(exc)) from exc
            finally:
                worker.inflight -= 1
                if worker.state == "busy":
                    worker.state = "idle"

    async def _await_reply(self, worker: WorkerHandle,
                           deadline_s: float | None) -> dict | None:
        if deadline_s is None:
            return await read_frame(worker.reader)
        try:
            return await asyncio.wait_for(read_frame(worker.reader),
                                          deadline_s)
        except asyncio.TimeoutError:
            return await self._ladder(worker)

    async def _ladder(self, worker: WorkerHandle) -> dict | None:
        """Deadline blown: SIGINT → SIGTERM → SIGKILL, each with a grace
        window.  A reply here is the worker's soft-cancel answer (it
        survives); ``None`` means it is dead."""
        obs_trace.event("serve.worker_ladder", index=worker.index,
                        pid=worker.pid)
        obs_events.emit("worker.ladder", domain="serve",
                        index=worker.index, pid=worker.pid)
        for signum, grace in ((signal.SIGINT, self.config.soft_grace_s),
                              (signal.SIGTERM, self.config.term_grace_s)):
            if not self._signal(worker, signum):
                return None
            try:
                return await asyncio.wait_for(read_frame(worker.reader),
                                              grace)
            except asyncio.TimeoutError:
                continue
            except (ConnectionError, OSError):
                return None
        self._signal(worker, signal.SIGKILL)
        try:
            # EOF lands as soon as the kernel reaps the socket.
            return await asyncio.wait_for(read_frame(worker.reader), 10.0)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            return None

    # -- spawning / death bookkeeping ----------------------------------
    async def _spawn(self, worker: WorkerHandle, respawn: bool) -> None:
        """Fork one worker into ``worker`` (caller holds its lock)."""
        parent_sock, child_sock = socket.socketpair()
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=pool_worker_main,
                           args=(child_sock, self.init),
                           name=f"repro-serve-worker-{worker.index}",
                           daemon=True)
        proc.start()
        child_sock.close()
        reader, writer = await asyncio.open_connection(sock=parent_sock)
        worker.proc, worker.reader, worker.writer = proc, reader, writer
        worker.pid = proc.pid
        worker.state = "idle"
        worker.spawned_at = time.monotonic()
        if respawn:
            worker.restarts += 1
            self.stats["restarts"] += 1
            obs_metrics.inc("serve.worker_restarts")
            obs_trace.event("serve.worker_restart", index=worker.index,
                            pid=worker.pid, restarts=worker.restarts)
            obs_events.emit("worker.restart", domain="serve",
                            index=worker.index, pid=worker.pid,
                            restarts=worker.restarts)

    async def _respawn(self, worker: WorkerHandle) -> None:
        """Bring a dead slot back (caller holds its lock), with backoff;
        an exhausted crash budget parks the slot as ``failed``."""
        if self.budget.exhausted:
            worker.state = "failed"
            obs_events.emit("worker.budget_exhausted", domain="serve",
                            index=worker.index, crashes=self.budget.crashes)
            return
        if worker.respawn_delay:
            await asyncio.sleep(worker.respawn_delay)
            worker.respawn_delay = 0.0
        await self._spawn(worker, respawn=True)

    def _note_death(self, worker: WorkerHandle, reason: str) -> None:
        """Record one observed worker death (idempotent per incarnation)."""
        if worker.state in ("dead", "failed", "stopped"):
            return
        worker.state = "dead"
        worker.respawn_delay = self.budget.note()
        self.stats["kills"] += 1
        obs_metrics.inc("serve.worker_kills")
        obs_trace.event("serve.worker_death", index=worker.index,
                        pid=worker.pid, reason=reason)
        obs_events.emit("worker.kill", domain="serve", index=worker.index,
                        pid=worker.pid, reason=reason)
        self._close_transport(worker)
        if worker.proc is not None:
            worker.proc.join(timeout=0)  # reap if already waitable

    def _close_transport(self, worker: WorkerHandle) -> None:
        if worker.writer is not None:
            try:
                worker.writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass
        worker.reader = worker.writer = None

    def _signal(self, worker: WorkerHandle, signum: int) -> bool:
        if worker.pid is None:
            return False
        try:
            os.kill(worker.pid, signum)
        except ProcessLookupError:
            return False
        return True

    def _quarantine(self, task: str) -> None:
        self.stats["quarantined"] += 1
        self.quarantined.append(task)
        obs_metrics.inc("serve.quarantined_requests")
        obs_events.emit("worker.poison", domain="serve", task=task)

    # -- heartbeat -----------------------------------------------------
    async def _heartbeat_loop(self) -> None:
        """Ping idle workers; respawn dead slots proactively.  A worker
        that cannot answer a ping while idle is wedged — the ladder
        (inside :meth:`_call`, via the ping's deadline) takes it down
        and the next round respawns it."""
        while not self._draining:
            await asyncio.sleep(self.config.ping_interval_s)
            for worker in self.workers:
                if self._draining:
                    return
                if worker.lock.locked() or worker.state == "failed":
                    continue
                try:
                    await self._call(worker, {"op": "ping"},
                                     self.config.ping_timeout_s)
                except _WorkerGone:
                    continue

    # -- reply handling ------------------------------------------------
    def _accept(self, reply: dict, design: str):
        self._ingest(reply)
        if reply.get("ok"):
            outputs = reply.get("outputs")
            if not isinstance(outputs, list):
                raise EvaluationError("worker returned a malformed reply",
                                      design=design, phase="serve.pool")
            return outputs
        raise _rebuild_error(reply.get("error") or {}, design)

    def _ingest(self, reply: dict) -> None:
        """Merge the worker's shipped obs buffers into the parent's
        substrate (span ids remapped; trace ids already stamped)."""
        if not obs_trace.enabled():
            return
        spans = reply.get("spans")
        if spans:
            obs_trace.TRACER.ingest(spans)
        events = reply.get("events")
        if events:
            obs_events.EVENTS.ingest(events)
        snap = reply.get("metrics")
        if snap:
            obs_metrics.merge_snapshot(snap)
