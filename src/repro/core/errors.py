"""Exception hierarchy shared by every repro subsystem.

Each layer of the framework raises a subclass of :class:`ReproError` so that
callers can distinguish "the design is malformed" from "the tool mis-behaved"
without string matching.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro framework."""


class WidthError(ReproError):
    """A bit-width rule was violated (mismatched or non-positive widths)."""


class ElaborationError(ReproError):
    """The module hierarchy could not be flattened into a legal netlist."""


class DriverError(ElaborationError):
    """A signal is driven zero times or more than once."""


class CombinationalLoopError(ElaborationError):
    """The combinational assignment graph contains a cycle."""


class SimulationError(ReproError):
    """The simulator was used incorrectly (unknown signal, bad poke, ...)."""


class SynthesisError(ReproError):
    """The synthesis cost model could not process a netlist."""


class ProtocolError(ReproError):
    """An AXI-Stream protocol rule was violated during simulation."""


class FrontendError(ReproError):
    """A frontend DSL construct was used incorrectly."""


class HlsError(FrontendError):
    """The mini-C HLS compiler rejected the input program or pragmas."""


class ScheduleError(HlsError):
    """No legal schedule exists under the given constraints."""


class EvaluationError(ReproError):
    """The evaluation harness was configured inconsistently."""
