"""Exception hierarchy shared by every repro subsystem.

Each layer of the framework raises a subclass of :class:`ReproError` so that
callers can distinguish "the design is malformed" from "the tool mis-behaved"
without string matching.

Every :class:`ReproError` carries structured context — the design name, the
pipeline phase that raised, and free-form key/value details — so the
resilience runner (:mod:`repro.resilience`) can record *where* a sweep lost a
design without parsing messages.  Context is optional: ``raise WidthError("…")``
works exactly as before.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "WidthError",
    "BuildError",
    "ElaborationError",
    "DriverError",
    "CombinationalLoopError",
    "SimulationError",
    "HarnessTimeout",
    "SynthesisError",
    "ProtocolError",
    "FrontendError",
    "HlsError",
    "ScheduleError",
    "EvaluationError",
    "UsageError",
    "BudgetExceeded",
    "SweepInterrupted",
    "SweepPreempted",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro framework.

    ``design``/``phase``/``**context`` attach machine-readable provenance
    used by failure records and obs events; the rendered message gains a
    ``[design=…, phase=…]`` suffix only when such context is present.
    """

    def __init__(
        self,
        message: str = "",
        *,
        design: str | None = None,
        phase: str | None = None,
        **context,
    ) -> None:
        self.message = message
        self.design = design
        self.phase = phase
        self.context = context
        tags = []
        if design is not None:
            tags.append(f"design={design}")
        if phase is not None:
            tags.append(f"phase={phase}")
        rendered = f"{message} [{', '.join(tags)}]" if tags else message
        super().__init__(rendered)

    def with_context(self, design: str | None = None,
                     phase: str | None = None) -> "ReproError":
        """Fill in missing provenance in place (never overwrites)."""
        if design is not None and self.design is None:
            self.design = design
        if phase is not None and self.phase is None:
            self.phase = phase
        return self

    def record(self) -> dict:
        """JSON-ready summary used by checkpoints and failure cells."""
        return {
            "type": type(self).__name__,
            "message": self.message,
            "design": self.design,
            "phase": self.phase,
            "context": {k: v for k, v in self.context.items()
                        if isinstance(v, (str, int, float, bool, type(None)))},
        }


class WidthError(ReproError):
    """A bit-width rule was violated (mismatched or non-positive widths)."""


class BuildError(ReproError):
    """A design could not be constructed (frontend or elaboration failure)."""


class ElaborationError(BuildError):
    """The module hierarchy could not be flattened into a legal netlist."""


class DriverError(ElaborationError):
    """A signal is driven zero times or more than once."""


class CombinationalLoopError(ElaborationError):
    """The combinational assignment graph contains a cycle."""


class SimulationError(ReproError):
    """The simulator was used incorrectly (unknown signal, bad poke, ...)."""


class HarnessTimeout(SimulationError):
    """A streamed run did not complete within its cycle timeout.

    Carries the elapsed ``cycles`` and the input/output beat counts at the
    moment the harness gave up, so sweep failure records can say how far a
    hung design got.
    """

    def __init__(self, message: str = "", *, cycles: int = 0,
                 beats_in: int = 0, beats_out: int = 0, **kwargs) -> None:
        super().__init__(message, cycles=cycles, beats_in=beats_in,
                         beats_out=beats_out, **kwargs)
        self.cycles = cycles
        self.beats_in = beats_in
        self.beats_out = beats_out


class SynthesisError(ReproError):
    """The synthesis cost model could not process a netlist."""


class ProtocolError(ReproError):
    """An AXI-Stream protocol rule was violated during simulation."""


class FrontendError(BuildError):
    """A frontend DSL construct was used incorrectly."""


class HlsError(FrontendError):
    """The mini-C HLS compiler rejected the input program or pragmas."""


class ScheduleError(HlsError):
    """No legal schedule exists under the given constraints."""


class EvaluationError(ReproError):
    """The evaluation harness was configured inconsistently."""


class UsageError(EvaluationError):
    """A user-supplied name was not recognized (CLI exit code 2).

    Lives here (rather than :mod:`repro.api`, which re-exports it) so
    that leaf modules like the engine registry can raise it without
    importing the session facade.
    """


class BudgetExceeded(ReproError):
    """A per-design wall-clock or simulation-cycle budget was exhausted."""


class SweepInterrupted(ReproError):
    """A sweep was deliberately stopped mid-run (checkpoint left on disk)."""


class SweepPreempted(SweepInterrupted):
    """A higher-priority arrival paused this sweep at a cell boundary.

    Raised by the runner's ``preempt`` hook *after* the boundary cell's
    checkpoint record is durable, so re-running the sweep with
    ``resume=True`` replays every committed cell and the resumed run's
    stdout stays byte-identical to an uninterrupted one.  The scheduler
    (``repro.serve.jobs``) catches this to re-queue the job rather than
    fail it.
    """


class WorkerCrashError(ReproError):
    """A sweep worker process died (SIGKILL/segfault) running one task.

    Raised by the supervised parallel executor when a task keeps killing
    its workers (the quarantine record renders as
    ``FAILED(WorkerCrashError)``), or when the crash budget for a whole
    sweep is exhausted.
    """
