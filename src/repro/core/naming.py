"""Deterministic, collision-free name generation for hardware objects."""

from __future__ import annotations

import re

__all__ = ["Namespace", "legalize"]

_IDENT_RE = re.compile(r"[^A-Za-z0-9_.]")


def legalize(name: str) -> str:
    """Normalize a string into an identifier.

    Dots are preserved — they separate hierarchy levels in flat netlists;
    backends that need strictly legal Verilog identifiers re-legalize with
    their own namespace.
    """
    name = _IDENT_RE.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


class Namespace:
    """Hands out unique identifiers within one scope.

    >>> ns = Namespace()
    >>> ns.fresh("tmp"), ns.fresh("tmp"), ns.fresh("other")
    ('tmp', 'tmp_1', 'other')
    """

    def __init__(self) -> None:
        self._used: set[str] = set()
        self._counters: dict[str, int] = {}

    def fresh(self, base: str) -> str:
        """Return ``base`` if unused, otherwise ``base_N`` for the next N."""
        base = legalize(base)
        if base not in self._used:
            self._used.add(base)
            return base
        count = self._counters.get(base, 0)
        while True:
            count += 1
            candidate = f"{base}_{count}"
            if candidate not in self._used:
                self._counters[base] = count
                self._used.add(candidate)
                return candidate

    def reserve(self, name: str) -> None:
        """Mark ``name`` as taken without returning it."""
        self._used.add(legalize(name))

    def __contains__(self, name: str) -> bool:
        return name in self._used
