"""Fixed-width bit-vector values.

:class:`BV` is the value type exchanged between testbenches and simulated
hardware.  It is an immutable two's-complement bit pattern of an explicit,
positive width.  All arithmetic wraps modulo ``2**width`` exactly like the
hardware it models; nothing here ever grows a width implicitly.

The simulator itself operates on plain masked integers for speed; ``BV`` is
the user-facing boundary type with the convenience accessors (``uint``,
``sint``, slicing, concatenation) a testbench needs.
"""

from __future__ import annotations

from .errors import WidthError

__all__ = ["BV", "mask", "to_signed", "to_unsigned", "min_width_unsigned", "min_width_signed"]


def mask(width: int) -> int:
    """Return the all-ones bit mask for ``width`` bits."""
    if width <= 0:
        raise WidthError(f"width must be positive, got {width}")
    return (1 << width) - 1


def to_signed(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value &= mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int) -> int:
    """Wrap an arbitrary integer into the unsigned range of ``width`` bits."""
    return value & mask(width)


def min_width_unsigned(value: int) -> int:
    """Minimum width able to hold ``value`` as an unsigned number."""
    if value < 0:
        raise ValueError(f"negative value {value} has no unsigned width")
    return max(1, value.bit_length())


def min_width_signed(value: int) -> int:
    """Minimum width able to hold ``value`` as a two's-complement number."""
    if value >= 0:
        return value.bit_length() + 1
    return (~value).bit_length() + 1


class BV:
    """An immutable fixed-width bit vector.

    >>> BV(5, 4)
    BV(0x5, 4)
    >>> BV(-1, 4).uint
    15
    >>> BV(0b1010, 4)[3]
    BV(0x1, 1)
    >>> (BV(7, 4) + BV(12, 4)).uint    # wraps at 16
    3
    """

    __slots__ = ("_value", "_width")

    def __init__(self, value: int, width: int) -> None:
        if width <= 0:
            raise WidthError(f"BV width must be positive, got {width}")
        self._value = value & ((1 << width) - 1)
        self._width = width

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def uint(self) -> int:
        """The value as an unsigned integer."""
        return self._value

    @property
    def sint(self) -> int:
        """The value as a two's-complement signed integer."""
        return to_signed(self._value, self._width)

    @property
    def width(self) -> int:
        """The number of bits."""
        return self._width

    def bit(self, index: int) -> int:
        """Return bit ``index`` (0 = LSB) as a plain 0/1 integer."""
        if not 0 <= index < self._width:
            raise IndexError(f"bit {index} out of range for width {self._width}")
        return (self._value >> index) & 1

    def __getitem__(self, key: int | slice) -> "BV":
        if isinstance(key, int):
            if key < 0:
                key += self._width
            return BV(self.bit(key), 1)
        if isinstance(key, slice):
            if key.step is not None:
                raise WidthError("BV slices must be contiguous (no step)")
            lo = 0 if key.start is None else key.start
            hi = self._width - 1 if key.stop is None else key.stop
            if lo < 0 or hi >= self._width or hi < lo:
                raise WidthError(
                    f"slice [{hi}:{lo}] out of range for width {self._width}"
                )
            return BV(self._value >> lo, hi - lo + 1)
        raise TypeError(f"BV indices must be int or slice, not {type(key).__name__}")

    def slice(self, hi: int, lo: int) -> "BV":
        """Verilog-style ``[hi:lo]`` slice (both bounds inclusive)."""
        return self[lo:hi]

    # ------------------------------------------------------------------
    # width adjustment
    # ------------------------------------------------------------------
    def zext(self, width: int) -> "BV":
        """Zero-extend (or keep) to ``width`` bits; never truncates."""
        if width < self._width:
            raise WidthError(f"zext to {width} would truncate width {self._width}")
        return BV(self._value, width)

    def sext(self, width: int) -> "BV":
        """Sign-extend (or keep) to ``width`` bits; never truncates."""
        if width < self._width:
            raise WidthError(f"sext to {width} would truncate width {self._width}")
        return BV(self.sint, width)

    def trunc(self, width: int) -> "BV":
        """Keep only the low ``width`` bits."""
        if width > self._width:
            raise WidthError(f"trunc to {width} would widen width {self._width}")
        return BV(self._value, width)

    def cat(self, *others: "BV") -> "BV":
        """Concatenate ``self`` (MSBs) with ``others`` (descending to LSBs)."""
        value, width = self._value, self._width
        for other in others:
            value = (value << other._width) | other._value
            width += other._width
        return BV(value, width)

    # ------------------------------------------------------------------
    # arithmetic (same-width operands, wrap-around semantics)
    # ------------------------------------------------------------------
    def _binary(self, other: "BV", op_name: str) -> int:
        if not isinstance(other, BV):
            raise TypeError(f"BV.{op_name} requires a BV operand")
        if other._width != self._width:
            raise WidthError(
                f"BV.{op_name} width mismatch: {self._width} vs {other._width}"
            )
        return other._value

    def __add__(self, other: "BV") -> "BV":
        return BV(self._value + self._binary(other, "__add__"), self._width)

    def __sub__(self, other: "BV") -> "BV":
        return BV(self._value - self._binary(other, "__sub__"), self._width)

    def __mul__(self, other: "BV") -> "BV":
        return BV(self._value * self._binary(other, "__mul__"), self._width)

    def __and__(self, other: "BV") -> "BV":
        return BV(self._value & self._binary(other, "__and__"), self._width)

    def __or__(self, other: "BV") -> "BV":
        return BV(self._value | self._binary(other, "__or__"), self._width)

    def __xor__(self, other: "BV") -> "BV":
        return BV(self._value ^ self._binary(other, "__xor__"), self._width)

    def __invert__(self) -> "BV":
        return BV(~self._value, self._width)

    def __neg__(self) -> "BV":
        return BV(-self._value, self._width)

    def __lshift__(self, amount: int) -> "BV":
        return BV(self._value << amount, self._width)

    def __rshift__(self, amount: int) -> "BV":
        return BV(self._value >> amount, self._width)

    def sra(self, amount: int) -> "BV":
        """Arithmetic (sign-filling) right shift."""
        return BV(self.sint >> amount, self._width)

    # ------------------------------------------------------------------
    # comparison / hashing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BV):
            return NotImplemented
        return self._value == other._value and self._width == other._width

    def __hash__(self) -> int:
        return hash((self._value, self._width))

    def __bool__(self) -> bool:
        return self._value != 0

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"BV(0x{self._value:x}, {self._width})"

    def __str__(self) -> str:
        return f"{self._width}'h{self._value:x}"

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def signed(cls, value: int, width: int) -> "BV":
        """Build from a signed integer, checking that it fits."""
        if not -(1 << (width - 1)) <= value < (1 << (width - 1)):
            raise WidthError(f"signed value {value} does not fit in {width} bits")
        return cls(value, width)

    @classmethod
    def unsigned(cls, value: int, width: int) -> "BV":
        """Build from an unsigned integer, checking that it fits."""
        if not 0 <= value < (1 << width):
            raise WidthError(f"unsigned value {value} does not fit in {width} bits")
        return cls(value, width)
