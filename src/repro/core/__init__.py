"""Core value types and utilities shared by every repro subsystem."""

from .bits import BV, mask, min_width_signed, min_width_unsigned, to_signed, to_unsigned
from .errors import (
    CombinationalLoopError,
    DriverError,
    ElaborationError,
    EvaluationError,
    FrontendError,
    HlsError,
    ProtocolError,
    ReproError,
    ScheduleError,
    SimulationError,
    SynthesisError,
    WidthError,
)
from .naming import Namespace, legalize

__all__ = [
    "BV",
    "mask",
    "min_width_signed",
    "min_width_unsigned",
    "to_signed",
    "to_unsigned",
    "Namespace",
    "legalize",
    "ReproError",
    "WidthError",
    "ElaborationError",
    "DriverError",
    "CombinationalLoopError",
    "SimulationError",
    "SynthesisError",
    "ProtocolError",
    "FrontendError",
    "HlsError",
    "ScheduleError",
    "EvaluationError",
]
