"""Reference models of the 8x8 inverse DCT.

Two models live here:

* :func:`float_idct` — the IEEE 1180-1990 "reference IDCT": separable
  double-precision DCT-III with round-half-away-from-zero and clipping to
  the 9-bit output range;
* :func:`chen_wang_idct` (plus the :func:`idct_row` / :func:`idct_col`
  stages) — the integer Chen-Wang butterfly algorithm exactly as in the
  ISO/IEC 13818-4 conformance decoder, the golden model every hardware
  frontend in this repository is checked against bit-for-bit.

The ISO code's all-zero-AC early-out is intentionally omitted: it computes
the identical result through the main path (a property the test suite
verifies), and the hardware designs have no use for it.
"""

from __future__ import annotations

import math

from .constants import (
    OUTPUT_MAX,
    OUTPUT_MIN,
    SIZE,
    W1,
    W2,
    W3,
    W5,
    W6,
    W7,
)

__all__ = [
    "iclip",
    "w32",
    "idct_row",
    "idct_col",
    "chen_wang_idct",
    "float_idct",
    "round_half_away",
]

Matrix = list[list[int]]


def iclip(value: int) -> int:
    """Clamp to the 9-bit output range (the paper's ``iclip`` function)."""
    if value < OUTPUT_MIN:
        return OUTPUT_MIN
    if value > OUTPUT_MAX:
        return OUTPUT_MAX
    return value


def w32(value: int) -> int:
    """Wrap to C ``int`` (32-bit two's complement) semantics.

    Exposed for analyses only — the golden model deliberately does *not*
    wrap.  The ISO C code computes in 32-bit ints, which IEEE-1180 L=300
    stimuli can overflow in the column stage (a documented marginal
    behaviour of the reference decoder).  The hardware designs in this
    repository therefore use just-wide-enough arithmetic (34-bit row /
    38-bit column datapaths) so that no legal 12-bit input ever wraps,
    keeping them simultaneously bit-exact to this model and IEEE-1180
    compliant.
    """
    return ((value + 0x80000000) & 0xFFFFFFFF) - 0x80000000


def idct_row(row: list[int]) -> list[int]:
    """Row-wise (horizontal) Chen-Wang IDCT stage.

    Input: 8 DCT coefficients; output: 8 intermediate values scaled by
    2**3 relative to the final sample range.
    """
    if len(row) != SIZE:
        raise ValueError(f"idct_row expects {SIZE} values, got {len(row)}")
    b0, b1, b2, b3, b4, b5, b6, b7 = row
    x1 = b4 << 11
    x2 = b6
    x3 = b2
    x4 = b1
    x5 = b7
    x6 = b5
    x7 = b3
    x0 = (b0 << 11) + 128  # +128 rounds the final >> 8

    # first stage
    x8 = W7 * (x4 + x5)
    x4 = x8 + (W1 - W7) * x4
    x5 = x8 - (W1 + W7) * x5
    x8 = W3 * (x6 + x7)
    x6 = x8 - (W3 - W5) * x6
    x7 = x8 - (W3 + W5) * x7

    # second stage
    x8 = x0 + x1
    x0 -= x1
    x1 = W6 * (x3 + x2)
    x2 = x1 - (W2 + W6) * x2
    x3 = x1 + (W2 - W6) * x3
    x1 = x4 + x6
    x4 -= x6
    x6 = x5 + x7
    x5 -= x7

    # third stage
    x7 = x8 + x3
    x8 -= x3
    x3 = x0 + x2
    x0 -= x2
    x2 = (181 * (x4 + x5) + 128) >> 8
    x4 = (181 * (x4 - x5) + 128) >> 8

    # fourth stage
    return [
        (x7 + x1) >> 8,
        (x3 + x2) >> 8,
        (x0 + x4) >> 8,
        (x8 + x6) >> 8,
        (x8 - x6) >> 8,
        (x0 - x4) >> 8,
        (x3 - x2) >> 8,
        (x7 - x1) >> 8,
    ]


def idct_col(col: list[int]) -> list[int]:
    """Column-wise (vertical) Chen-Wang IDCT stage with output clipping."""
    if len(col) != SIZE:
        raise ValueError(f"idct_col expects {SIZE} values, got {len(col)}")
    b0, b1, b2, b3, b4, b5, b6, b7 = col
    x1 = b4 << 8
    x2 = b6
    x3 = b2
    x4 = b1
    x5 = b7
    x6 = b5
    x7 = b3
    x0 = (b0 << 8) + 8192

    # first stage
    x8 = W7 * (x4 + x5) + 4
    x4 = (x8 + (W1 - W7) * x4) >> 3
    x5 = (x8 - (W1 + W7) * x5) >> 3
    x8 = W3 * (x6 + x7) + 4
    x6 = (x8 - (W3 - W5) * x6) >> 3
    x7 = (x8 - (W3 + W5) * x7) >> 3

    # second stage
    x8 = x0 + x1
    x0 -= x1
    x1 = W6 * (x3 + x2) + 4
    x2 = (x1 - (W2 + W6) * x2) >> 3
    x3 = (x1 + (W2 - W6) * x3) >> 3
    x1 = x4 + x6
    x4 -= x6
    x6 = x5 + x7
    x5 -= x7

    # third stage
    x7 = x8 + x3
    x8 -= x3
    x3 = x0 + x2
    x0 -= x2
    x2 = (181 * (x4 + x5) + 128) >> 8
    x4 = (181 * (x4 - x5) + 128) >> 8

    # fourth stage
    return [
        iclip((x7 + x1) >> 14),
        iclip((x3 + x2) >> 14),
        iclip((x0 + x4) >> 14),
        iclip((x8 + x6) >> 14),
        iclip((x8 - x6) >> 14),
        iclip((x0 - x4) >> 14),
        iclip((x3 - x2) >> 14),
        iclip((x7 - x1) >> 14),
    ]


def chen_wang_idct(block: Matrix) -> Matrix:
    """Full 8x8 integer IDCT: row pass then column pass."""
    if len(block) != SIZE or any(len(row) != SIZE for row in block):
        raise ValueError("chen_wang_idct expects an 8x8 block")
    mid = [idct_row(list(row)) for row in block]
    out: Matrix = [[0] * SIZE for _ in range(SIZE)]
    for c in range(SIZE):
        column = [mid[r][c] for r in range(SIZE)]
        result = idct_col(column)
        for r in range(SIZE):
            out[r][c] = result[r]
    return out


def round_half_away(value: float) -> int:
    """Round half away from zero, as the IEEE 1180 reference C code does."""
    return int(value + 0.5) if value >= 0.0 else int(value - 0.5)


_COS = [
    [math.cos((2 * x + 1) * u * math.pi / 16.0) for u in range(SIZE)]
    for x in range(SIZE)
]
_CU = [math.sqrt(0.5) if u == 0 else 1.0 for u in range(SIZE)]


def float_idct(block: Matrix) -> Matrix:
    """IEEE 1180-1990 double-precision reference IDCT (rounded + clipped)."""
    out: Matrix = [[0] * SIZE for _ in range(SIZE)]
    for x in range(SIZE):
        for y in range(SIZE):
            acc = 0.0
            for u in range(SIZE):
                for v in range(SIZE):
                    acc += (
                        _CU[u] * _CU[v] * block[u][v] * _COS[x][u] * _COS[y][v]
                    )
            out[x][y] = iclip(round_half_away(acc / 4.0))
    return out
