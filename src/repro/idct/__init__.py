"""8x8 inverse discrete cosine transform: references and compliance.

The benchmark algorithm of the paper.  :mod:`repro.idct.reference` holds
the bit-exact golden models, :mod:`repro.idct.batch` their vectorized
twins, and :mod:`repro.idct.ieee1180` the IEEE Std 1180-1990 accuracy
test suite.
"""

from .batch import batch_chen_wang, batch_float_idct
from .constants import (
    INPUT_MAX,
    INPUT_MIN,
    INPUT_WIDTH,
    OUTPUT_MAX,
    OUTPUT_MIN,
    OUTPUT_WIDTH,
    SIZE,
    W1,
    W2,
    W3,
    W5,
    W6,
    W7,
)
from .ieee1180 import (
    ComplianceReport,
    ConditionResult,
    Ieee1180Generator,
    STANDARD_CONDITIONS,
    generate_blocks,
    run_compliance,
    run_condition,
)
from .reference import chen_wang_idct, float_idct, iclip, idct_col, idct_row

__all__ = [
    "SIZE",
    "INPUT_WIDTH", "INPUT_MIN", "INPUT_MAX",
    "OUTPUT_WIDTH", "OUTPUT_MIN", "OUTPUT_MAX",
    "W1", "W2", "W3", "W5", "W6", "W7",
    "chen_wang_idct", "float_idct", "iclip", "idct_row", "idct_col",
    "batch_chen_wang", "batch_float_idct",
    "Ieee1180Generator", "generate_blocks",
    "run_condition", "run_compliance",
    "ConditionResult", "ComplianceReport", "STANDARD_CONDITIONS",
]
