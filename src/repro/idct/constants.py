"""Chen-Wang IDCT constants (ISO/IEC 13818-4 reference decoder values).

``W[k] = round(2048 * sqrt(2) * cos(k*pi/16))`` — 11-bit fixed-point
representations of the DCT basis, exactly as in the MPEG-2 conformance
decoder that the paper's C/BSV/Verilog implementations derive from.
"""

from __future__ import annotations

W1 = 2841  # 2048*sqrt(2)*cos(1*pi/16)
W2 = 2676  # 2048*sqrt(2)*cos(2*pi/16)
W3 = 2408  # 2048*sqrt(2)*cos(3*pi/16)
W5 = 1609  # 2048*sqrt(2)*cos(5*pi/16)
W6 = 1108  # 2048*sqrt(2)*cos(6*pi/16)
W7 = 565   # 2048*sqrt(2)*cos(7*pi/16)

#: Matrix shape of the benchmark.
SIZE = 8

#: Input coefficients are 12-bit signed (−2048 … 2047).
INPUT_WIDTH = 12
INPUT_MIN = -2048
INPUT_MAX = 2047

#: Output samples are 9-bit signed (−256 … 255), the ``iclip`` range.
OUTPUT_WIDTH = 9
OUTPUT_MIN = -256
OUTPUT_MAX = 255

__all__ = [
    "W1", "W2", "W3", "W5", "W6", "W7",
    "SIZE",
    "INPUT_WIDTH", "INPUT_MIN", "INPUT_MAX",
    "OUTPUT_WIDTH", "OUTPUT_MIN", "OUTPUT_MAX",
]
