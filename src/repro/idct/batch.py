"""Vectorized (numpy) batch implementations of both IDCT models.

The IEEE 1180 compliance run processes 10,000 blocks; the scalar reference
in :mod:`repro.idct.reference` would take minutes, so the compliance suite
uses these vectorized twins.  The test suite verifies bit-exact agreement
between scalar and batched models.
"""

from __future__ import annotations

import math

import numpy as np

from .constants import OUTPUT_MAX, OUTPUT_MIN, SIZE, W1, W2, W3, W5, W6, W7

__all__ = ["batch_chen_wang", "batch_float_idct"]




def _rows_pass(blocks: np.ndarray) -> np.ndarray:
    """Row IDCT over blocks shaped (n, 8, 8); operates along the last axis."""
    b = blocks.astype(np.int64)
    x1 = b[..., 4] << 11
    x2 = b[..., 6].copy()
    x3 = b[..., 2].copy()
    x4 = b[..., 1].copy()
    x5 = b[..., 7].copy()
    x6 = b[..., 5].copy()
    x7 = b[..., 3].copy()
    x0 = (b[..., 0] << 11) + 128

    x8 = W7 * (x4 + x5)
    x4 = x8 + (W1 - W7) * x4
    x5 = x8 - (W1 + W7) * x5
    x8 = W3 * (x6 + x7)
    x6 = x8 - (W3 - W5) * x6
    x7 = x8 - (W3 + W5) * x7

    x8 = x0 + x1
    x0 = x0 - x1
    x1 = W6 * (x3 + x2)
    x2 = x1 - (W2 + W6) * x2
    x3 = x1 + (W2 - W6) * x3
    x1 = x4 + x6
    x4 = x4 - x6
    x6 = x5 + x7
    x5 = x5 - x7

    x7 = x8 + x3
    x8 = x8 - x3
    x3 = x0 + x2
    x0 = x0 - x2
    x2 = (181 * (x4 + x5) + 128) >> 8
    x4 = (181 * (x4 - x5) + 128) >> 8

    out = np.empty_like(b)
    out[..., 0] = (x7 + x1) >> 8
    out[..., 1] = (x3 + x2) >> 8
    out[..., 2] = (x0 + x4) >> 8
    out[..., 3] = (x8 + x6) >> 8
    out[..., 4] = (x8 - x6) >> 8
    out[..., 5] = (x0 - x4) >> 8
    out[..., 6] = (x3 - x2) >> 8
    out[..., 7] = (x7 - x1) >> 8
    return out


def _cols_pass(blocks: np.ndarray) -> np.ndarray:
    """Column IDCT with clipping; operates along axis -2."""
    b = blocks.astype(np.int64)
    x1 = b[..., 4, :] << 8
    x2 = b[..., 6, :].copy()
    x3 = b[..., 2, :].copy()
    x4 = b[..., 1, :].copy()
    x5 = b[..., 7, :].copy()
    x6 = b[..., 5, :].copy()
    x7 = b[..., 3, :].copy()
    x0 = (b[..., 0, :] << 8) + 8192

    x8 = W7 * (x4 + x5) + 4
    x4 = (x8 + (W1 - W7) * x4) >> 3
    x5 = (x8 - (W1 + W7) * x5) >> 3
    x8 = W3 * (x6 + x7) + 4
    x6 = (x8 - (W3 - W5) * x6) >> 3
    x7 = (x8 - (W3 + W5) * x7) >> 3

    x8 = x0 + x1
    x0 = x0 - x1
    x1 = W6 * (x3 + x2) + 4
    x2 = (x1 - (W2 + W6) * x2) >> 3
    x3 = (x1 + (W2 - W6) * x3) >> 3
    x1 = x4 + x6
    x4 = x4 - x6
    x6 = x5 + x7
    x5 = x5 - x7

    x7 = x8 + x3
    x8 = x8 - x3
    x3 = x0 + x2
    x0 = x0 - x2
    x2 = (181 * (x4 + x5) + 128) >> 8
    x4 = (181 * (x4 - x5) + 128) >> 8

    out = np.empty_like(b)
    out[..., 0, :] = (x7 + x1) >> 14
    out[..., 1, :] = (x3 + x2) >> 14
    out[..., 2, :] = (x0 + x4) >> 14
    out[..., 3, :] = (x8 + x6) >> 14
    out[..., 4, :] = (x8 - x6) >> 14
    out[..., 5, :] = (x0 - x4) >> 14
    out[..., 6, :] = (x3 - x2) >> 14
    out[..., 7, :] = (x7 - x1) >> 14
    return np.clip(out, OUTPUT_MIN, OUTPUT_MAX)


def batch_chen_wang(blocks: np.ndarray) -> np.ndarray:
    """Integer Chen-Wang IDCT over blocks shaped (n, 8, 8)."""
    if blocks.shape[-2:] != (SIZE, SIZE):
        raise ValueError(f"expected (..., {SIZE}, {SIZE}) blocks")
    return _cols_pass(_rows_pass(blocks))


_COS = np.array(
    [[math.cos((2 * x + 1) * u * math.pi / 16.0) for u in range(SIZE)]
     for x in range(SIZE)]
)
_CU = np.array([math.sqrt(0.5) if u == 0 else 1.0 for u in range(SIZE)])
# Basis matrix B with B[x, u] = C(u)/2 * cos((2x+1)u*pi/16); IDCT = B F B^T.
_BASIS = (_COS * _CU[np.newaxis, :]) / 2.0


def batch_float_idct(blocks: np.ndarray) -> np.ndarray:
    """IEEE 1180 double-precision reference over (n, 8, 8) blocks."""
    if blocks.shape[-2:] != (SIZE, SIZE):
        raise ValueError(f"expected (..., {SIZE}, {SIZE}) blocks")
    real = np.einsum("xu,nuv,yv->nxy", _BASIS, blocks.astype(np.float64), _BASIS)
    rounded = np.where(real >= 0.0, np.floor(real + 0.5), np.ceil(real - 0.5))
    return np.clip(rounded.astype(np.int64), OUTPUT_MIN, OUTPUT_MAX)
