"""IEEE Std 1180-1990 compliance testing for 8x8 IDCT implementations.

Implements the standard's pseudo-random block generator and the five
accuracy criteria, comparing an implementation under test against the
double-precision reference IDCT:

* peak pixel error           |e| <= 1 for every pixel of every block;
* per-pixel mean square error  pmse[x][y] <= 0.06;
* overall mean square error    omse <= 0.02;
* per-pixel mean error         |pme[x][y]| <= 0.015;
* overall mean error           |ome| <= 0.0015;
* an all-zero input block must produce an all-zero output.

The standard prescribes 10,000 blocks for each of six input conditions
(three ranges x two signs); ``n_blocks`` is configurable so unit tests can
run a statistically meaningful subset quickly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .batch import batch_chen_wang, batch_float_idct
from .constants import SIZE

__all__ = [
    "Ieee1180Generator",
    "ConditionResult",
    "ComplianceReport",
    "generate_blocks",
    "run_condition",
    "run_compliance",
    "STANDARD_CONDITIONS",
]

#: The six input conditions of the standard: (L, H, sign).
STANDARD_CONDITIONS: tuple[tuple[int, int, int], ...] = (
    (256, 255, 1),
    (256, 255, -1),
    (5, 5, 1),
    (5, 5, -1),
    (300, 300, 1),
    (300, 300, -1),
)


class Ieee1180Generator:
    """The standard's linear-congruential random block generator."""

    def __init__(self, seed: int = 1) -> None:
        self._randx = seed

    def _drand(self) -> float:
        self._randx = (self._randx * 1103515245 + 12345) & 0xFFFFFFFF
        i = self._randx & 0x7FFFFFFE
        return i / float(0x7FFFFFFF)

    def value(self, low: int, high: int) -> int:
        """One coefficient uniform in [-low, high]."""
        return int(self._drand() * (low + high + 1)) - low

    def block(self, low: int, high: int, sign: int = 1) -> list[list[int]]:
        """One 8x8 block of random coefficients (optionally negated)."""
        return [
            [sign * self.value(low, high) for _ in range(SIZE)]
            for _ in range(SIZE)
        ]


_LCG_A = 1103515245
_LCG_C = 12345


def _lcg_states(count: int, seed: int) -> np.ndarray:
    """First ``count`` states after ``seed`` of the standard's LCG, vectorized.

    Uses the closed form x_k = a^k * x_0 + c * (a^(k-1) + ... + 1); all
    arithmetic runs modulo 2^64 (numpy uint64 wrap-around), and reducing the
    result modulo 2^32 at the end is exact because 2^32 divides 2^64.
    """
    a_powers = np.empty(count, dtype=np.uint64)
    a_powers[0] = _LCG_A  # a^1 aligns with the first *advanced* state
    if count > 1:
        a_powers[1:] = _LCG_A
        a_powers = np.multiply.accumulate(a_powers)
    geom = np.ones(count, dtype=np.uint64)
    if count > 1:
        geom[1:] = a_powers[:-1]
    geom = np.add.accumulate(geom)  # 1 + a + ... + a^(k-1) for state k
    states = a_powers * np.uint64(seed & 0xFFFFFFFF) + np.uint64(_LCG_C) * geom
    return states & np.uint64(0xFFFFFFFF)


def generate_blocks(
    n_blocks: int, low: int, high: int, sign: int = 1, seed: int = 1
) -> np.ndarray:
    """Generate ``n_blocks`` random blocks as an (n, 8, 8) array.

    Bit-identical to :class:`Ieee1180Generator` (verified by tests) but
    vectorized, so the full 10,000-block standard run stays fast.
    """
    count = n_blocks * SIZE * SIZE
    states = _lcg_states(count, seed)
    i = (states & np.uint64(0x7FFFFFFE)).astype(np.float64)
    x = i / float(0x7FFFFFFF) * (low + high + 1)
    values = x.astype(np.int64) - low
    return (sign * values).reshape(n_blocks, SIZE, SIZE)


@dataclass
class ConditionResult:
    """Accuracy metrics of one (L, H, sign) condition."""

    low: int
    high: int
    sign: int
    n_blocks: int
    peak_error: int
    pmse_max: float
    omse: float
    pme_max: float
    ome: float

    @property
    def passed(self) -> bool:
        return (
            self.peak_error <= 1
            and self.pmse_max <= 0.06
            and self.omse <= 0.02
            and self.pme_max <= 0.015
            and abs(self.ome) <= 0.0015
        )

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] L={self.low} H={self.high} sign={self.sign:+d}: "
            f"peak={self.peak_error} pmse={self.pmse_max:.4f} "
            f"omse={self.omse:.4f} pme={self.pme_max:.4f} ome={self.ome:.5f}"
        )


@dataclass
class ComplianceReport:
    """Aggregated IEEE 1180 verdict."""

    conditions: list[ConditionResult] = field(default_factory=list)
    zero_input_ok: bool = True

    @property
    def compliant(self) -> bool:
        return self.zero_input_ok and all(c.passed for c in self.conditions)

    def summary(self) -> str:
        lines = [c.summary() for c in self.conditions]
        lines.append(f"zero-input test: {'PASS' if self.zero_input_ok else 'FAIL'}")
        lines.append(f"overall: {'COMPLIANT' if self.compliant else 'NON-COMPLIANT'}")
        return "\n".join(lines)


BatchIdct = Callable[[np.ndarray], np.ndarray]


def run_condition(
    idct: BatchIdct,
    low: int,
    high: int,
    sign: int,
    n_blocks: int = 10_000,
    seed: int = 1,
) -> ConditionResult:
    """Run one input condition and compute its accuracy metrics."""
    blocks = generate_blocks(n_blocks, low, high, sign, seed)
    test = np.asarray(idct(blocks), dtype=np.int64)
    ref = batch_float_idct(blocks)
    err = (test - ref).astype(np.float64)
    pmse = np.mean(err**2, axis=0)
    pme = np.mean(err, axis=0)
    return ConditionResult(
        low=low,
        high=high,
        sign=sign,
        n_blocks=n_blocks,
        peak_error=int(np.max(np.abs(err))),
        pmse_max=float(np.max(pmse)),
        omse=float(np.mean(err**2)),
        pme_max=float(np.max(np.abs(pme))),
        ome=float(np.mean(err)),
    )


def run_compliance(
    idct: BatchIdct = batch_chen_wang,
    n_blocks: int = 10_000,
    conditions: Sequence[tuple[int, int, int]] = STANDARD_CONDITIONS,
    seed: int = 1,
) -> ComplianceReport:
    """Full IEEE 1180 run over the given conditions plus the zero test."""
    report = ComplianceReport()
    for low, high, sign in conditions:
        report.conditions.append(
            run_condition(idct, low, high, sign, n_blocks, seed)
        )
    zero = np.zeros((1, SIZE, SIZE), dtype=np.int64)
    report.zero_input_ok = bool(np.all(np.asarray(idct(zero)) == 0))
    return report
