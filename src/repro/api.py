"""Stable programmatic facade: ``repro.api``.

:class:`Session` is the supported entry point for driving the
reproduction pipeline from Python (the CLI and ``scripts/check.sh`` go
through it).  It owns *execution policy* — parallelism (``jobs``), the
content-addressed artifact cache (``cache``), runner budgets/retries
(``runner``), checkpointing, and tracing — while the underlying
generators (:mod:`repro.eval.experiments`), the measurement pipeline
(:mod:`repro.eval.measure`), and the fault campaign
(:mod:`repro.resilience.campaign`) stay policy-free and remain
importable directly for backward compatibility::

    from repro.api import Session

    session = Session(jobs=4, cache="/tmp/repro-cache")
    table = session.table2()
    series = session.fig1(full=True)
    measured = session.verify("bambu-opt")

Design names everywhere accept frontend-package aliases (``vlog-opt``
for ``verilog-opt``, ``hc-*`` for ``chisel-*``, ``rules-*`` for
``bsv-*``, ``flow-initial``/``flow-opt`` for ``xls-s0``/``xls-s8``);
:func:`resolve_design` is the one place that resolution lives, and it
raises :class:`UnknownDesignError` listing near-miss names.
"""

from __future__ import annotations

import difflib
import os
from contextlib import contextmanager, nullcontext

from .cache import ArtifactCache
from .cache import activate as _activate_cache
from .chaos import ChaosPolicy, parse_chaos_spec
from .chaos import activate as _activate_chaos
from .core.errors import UsageError
from .engines import (
    ENGINES,
    EngineSpec,
    UnknownEngineError,
    default_engine,
    engine_names,
    engine_specs,
    engines_payload,
    render_engines_json,
    resolve_engine,
)
from .eval.measure import Measured, measure_design
from .frontends.base import Design
from .resilience.checkpoint import Checkpoint
from .resilience.runner import RunnerConfig, SweepRunner

# Default worker-recycling stride (mirrored from repro.exec without
# importing it eagerly — exec pulls in multiprocessing machinery).
_DEFAULT_RECYCLE = 64

__all__ = [
    "Session",
    "resolve_design",
    "find_design",
    "design_names",
    "canonical_name",
    "UsageError",
    "UnknownDesignError",
    "UnknownToolError",
    "UnknownEngineError",
    "EngineSpec",
    "ENGINES",
    "engine_specs",
    "engine_names",
    "resolve_engine",
    "default_engine",
    "engines_payload",
    "render_engines_json",
    "PREFIX_ALIASES",
    "NAME_ALIASES",
]


# ----------------------------------------------------------------------
# design-name resolution
# ----------------------------------------------------------------------

# Frontend package names double as design-name aliases for the paper's
# language names (the packages are named after the *paradigm*, the designs
# after the *language/tool*).
PREFIX_ALIASES = {
    "vlog": "verilog",
    "hc": "chisel",
    "rules": "bsv",
    "flow": "xls",
}
NAME_ALIASES = {
    "xls-initial": "xls-s0",
    "xls-opt": "xls-s8",
}


# UsageError itself now lives in repro.core.errors (so leaf modules like
# the engine registry can raise it); re-exported here unchanged.

class UnknownDesignError(UsageError):
    """No registered design matches the requested name (or any alias)."""

    def __init__(self, message: str, *, name: str,
                 suggestions: list[str] | None = None) -> None:
        super().__init__(message, design=name, phase="api.resolve")
        self.name = name
        self.suggestions = suggestions or []


class UnknownToolError(UsageError):
    """No Table II column matches the requested tool key."""

    def __init__(self, message: str, *, name: str,
                 suggestions: list[str] | None = None) -> None:
        super().__init__(message, design=name, phase="api.resolve")
        self.name = name
        self.suggestions = suggestions or []


def canonical_name(name: str) -> str:
    """Map a possibly-aliased design name to its canonical spelling.

    Purely syntactic — the result is not checked against the registry
    (use :func:`resolve_design` for that).
    """
    prefix, _, rest = name.partition("-")
    if rest and prefix in PREFIX_ALIASES:
        name = f"{PREFIX_ALIASES[prefix]}-{rest}"
    return NAME_ALIASES.get(name, name)


def find_design(name: str):
    """Lazily build design pairs until ``name`` (alias-aware) matches.

    Returns ``(design, factory)`` so callers can rebuild the pair (e.g.
    under tracing), or ``(None, None)`` when the name is unknown.
    """
    from .eval.experiments import PAIRS

    wanted = canonical_name(name)
    for factory in PAIRS.values():
        for design in factory():
            if design.name == wanted:
                return design, factory
    return None, None


def design_names() -> list[str]:
    """All registered canonical design names (builds every pair)."""
    from .eval.experiments import PAIRS

    names = []
    for factory in PAIRS.values():
        names.extend(design.name for design in factory())
    return sorted(names)


def _alias_spellings(names: list[str]) -> list[str]:
    """Every aliased spelling of ``names`` (for near-miss suggestions)."""
    reverse_prefix = {v: k for k, v in PREFIX_ALIASES.items()}
    reverse_name = {v: k for k, v in NAME_ALIASES.items()}
    spellings = set()
    for name in names:
        if name in reverse_name:
            spellings.add(reverse_name[name])
        prefix, _, rest = name.partition("-")
        if rest and prefix in reverse_prefix:
            spellings.add(f"{reverse_prefix[prefix]}-{rest}")
    return sorted(spellings)


def resolve_design(name: str) -> str:
    """The canonical design name for ``name``, alias-aware and validated.

    Raises :class:`UnknownDesignError` with near-miss suggestions when no
    registered design matches — the error message is what ``verify``,
    ``profile``, and ``faults`` print before exiting with code 2.
    """
    design, _factory = find_design(name)
    if design is not None:
        return design.name
    names = design_names()
    close = difflib.get_close_matches(
        name, names + _alias_spellings(names), n=3, cutoff=0.5)
    hint = f"; did you mean {', '.join(close)}?" if close else ""
    raise UnknownDesignError(
        f"unknown design {name!r}{hint} (try `python -m repro list`)",
        name=name, suggestions=close)


def _find_or_raise(name: str):
    design, factory = find_design(name)
    if design is None:
        resolve_design(name)  # raises UnknownDesignError with suggestions
    return design, factory


# ----------------------------------------------------------------------
# the Session facade
# ----------------------------------------------------------------------

class Session:
    """One configured execution context for the reproduction pipeline.

    Parameters
    ----------
    jobs:
        Design points measured concurrently in sweeps; ``> 1`` shards
        ``table2``/``fig1`` across a process pool
        (:class:`repro.exec.ParallelSweepRunner`) with stdout guaranteed
        byte-identical to a serial run.
    cache:
        An :class:`~repro.cache.ArtifactCache` or a directory path.
        While set, measurements and elaborated netlists are reused from
        disk across runs *and across commands*, keyed by design + phase
        + source-tree digest.
    runner:
        Sweep policy: a :class:`~repro.resilience.runner.RunnerConfig`
        (budgets/retries), a prebuilt
        :class:`~repro.resilience.runner.SweepRunner` (used as-is, e.g.
        in tests), or ``None`` for defaults.
    trace:
        Enable ``repro.obs`` instrumentation for this session's work
        (the caller exports/disable via :mod:`repro.obs.report`).
    checkpoint / resume:
        JSONL sweep checkpoint path and whether to resume from it.
    inject_faults:
        Design names (alias-aware) forced to fail, for resilience drills.
    max_tasks_per_child:
        Recycle sweep pool workers after this many tasks each (bounds
        worker memory on long-running services); ``None`` disables.
    chaos:
        A :class:`~repro.chaos.ChaosPolicy` or a ``--chaos`` spec string
        (``seed=3,kill=0.5,…``); active for this session's work,
        including pool workers and the evaluation service.  A bad spec
        raises :class:`UsageError` (CLI exit 2).
    preempt:
        QoS hook: a callable polled at every sweep-cell boundary (after
        the cell's checkpoint record is durable); returning true raises
        :class:`~repro.core.errors.SweepPreempted`.  The serve tier's
        job scheduler uses this to pause a running sweep for a
        higher-priority arrival and resume it byte-identically later.
    priority / api_key:
        Stamped on fabric sweep submissions: the broker schedules
        tenants fair-share and orders a tenant's sweeps by priority;
        ``api_key`` is sent as ``X-Api-Key`` to the fabric master.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: ArtifactCache | str | os.PathLike | None = None,
        runner: SweepRunner | RunnerConfig | None = None,
        trace: bool = False,
        checkpoint: str | os.PathLike | None = None,
        resume: bool = False,
        inject_faults=(),
        max_tasks_per_child: int | None = _DEFAULT_RECYCLE,
        chaos: ChaosPolicy | str | None = None,
        fabric: str | None = None,
        preempt=None,
        priority: int = 0,
        api_key: str | None = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.fabric = fabric
        #: QoS: sweep-cell preemption hook (see SweepRunner.preempt),
        #: the priority stamped on fabric sweep submissions, and the
        #: API key sent as ``X-Api-Key`` to a fabric master.
        self.preempt = preempt
        self.priority = int(priority)
        self.api_key = api_key
        if cache is not None and not isinstance(cache, ArtifactCache):
            cache = ArtifactCache(cache)
        self.cache = cache
        if isinstance(chaos, str):
            try:
                chaos = parse_chaos_spec(chaos)
            except ValueError as exc:
                raise UsageError(f"bad --chaos spec: {exc}") from exc
        self.chaos = chaos
        if isinstance(runner, SweepRunner):
            self._fixed_runner: SweepRunner | None = runner
            self.runner_config = runner.config
        elif isinstance(runner, RunnerConfig) or runner is None:
            self._fixed_runner = None
            self.runner_config = runner or RunnerConfig()
        else:
            raise TypeError(f"runner must be a SweepRunner or RunnerConfig, "
                            f"not {type(runner).__name__}")
        self.trace = bool(trace)
        self.checkpoint_path = checkpoint
        self.resume = resume
        self.inject_faults = frozenset(canonical_name(n)
                                       for n in inject_faults)
        self.last_runner: SweepRunner | None = None
        self.max_tasks_per_child = max_tasks_per_child
        self._evaluators: dict[str, object] = {}
        self.trace_id: str | None = None
        if self.trace:
            from . import obs

            obs.clear()
            obs.enable()
            # One trace per session: every span/event this session's
            # work records — in this process or in pool workers — is
            # stamped with this id and assembles into one tree.
            self.trace_id = obs.trace.new_trace()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Disable instrumentation this session enabled."""
        if self.trace:
            from . import obs

            obs.disable()

    @contextmanager
    def _activated(self):
        cache_ctx = (_activate_cache(self.cache) if self.cache is not None
                     else nullcontext())
        chaos_ctx = (_activate_chaos(self.chaos) if self.chaos is not None
                     else nullcontext())
        with cache_ctx, chaos_ctx:
            yield

    def _make_checkpoint(self) -> Checkpoint | None:
        if not self.checkpoint_path:
            return None
        return Checkpoint(self.checkpoint_path, resume=self.resume)

    def _sweep_runner(self, tasks) -> SweepRunner:
        if self._fixed_runner is not None:
            self.last_runner = self._fixed_runner
            return self._fixed_runner
        checkpoint = self._make_checkpoint()
        if tasks and (self.jobs > 1 or self.fabric):
            from .exec import ParallelSweepRunner

            executor = None
            if self.fabric:
                from .fabric import FabricExecutor

                executor = FabricExecutor(self.fabric,
                                          api_key=self.api_key,
                                          priority=self.priority)
            runner: SweepRunner = ParallelSweepRunner(
                tasks=tasks, jobs=self.jobs, cache=self.cache,
                config=self.runner_config, checkpoint=checkpoint,
                inject_failures=self.inject_faults,
                max_tasks_per_child=self.max_tasks_per_child,
                executor=executor, preempt=self.preempt)
            runner.prefetch()
        else:
            runner = SweepRunner(config=self.runner_config,
                                 checkpoint=checkpoint,
                                 inject_failures=self.inject_faults,
                                 preempt=self.preempt)
        self.last_runner = runner
        return runner

    def summary_lines(self) -> list[str]:
        """Human-readable resilience/cache summaries for the last sweep."""
        lines = []
        runner = self.last_runner
        if runner is not None:
            stats = runner.stats
            if stats["failed"] or stats["checkpoint_hits"] or stats["retries"]:
                lines.append(
                    f"resilience: {stats['ok']} ok, {stats['failed']} failed, "
                    f"{stats['retries']} retries, {stats['degraded_runs']} "
                    f"degraded, {stats['checkpoint_hits']} from checkpoint")
            if stats.get("worker_restarts") or stats.get("poisoned"):
                lines.append(
                    f"supervision: {stats['worker_restarts']} worker "
                    f"restarts, {stats['poisoned']} tasks quarantined")
        if self.cache is not None:
            summary = self.cache.summary()
            if summary:
                lines.append(summary)
        return lines

    # ------------------------------------------------------------------
    # single-design operations
    # ------------------------------------------------------------------
    def build(self, name: str) -> Design:
        """Build one design point by (alias-aware) name."""
        design, _factory = _find_or_raise(name)
        return design

    def measure(self, name: str, **kwargs) -> Measured:
        """Build and fully characterize one design point."""
        design = self.build(name)
        with self._activated():
            return measure_design(design, **kwargs)

    def verify(self, name: str, engine: str | None = None,
               use_cache: bool | None = None) -> Measured:
        """Measure one design; raises
        :class:`~repro.core.errors.EvaluationError` on a compliance
        failure, mirroring the ``verify`` command's exit-1 contract.

        ``use_cache`` defaults to whether this session has a cache
        configured, so a warm ``verify`` benefits from the
        content-addressed store exactly like :meth:`measure`; pass
        ``use_cache=False`` to force a fresh measurement.
        """
        engine = resolve_engine(engine or default_engine("sim"), "sim")
        if use_cache is None:
            use_cache = self.cache is not None
        design = self.build(name)
        with self._activated():
            return measure_design(design, use_cache=use_cache, engine=engine)

    def profile(self, name: str) -> tuple[Design, Measured]:
        """Rebuild one design pair under tracing and measure the point
        (so ``frontend.build`` is part of the profile)."""
        design, factory = _find_or_raise(name)
        for rebuilt in factory():
            if rebuilt.name == design.name:
                design = rebuilt
        with self._activated():
            measured = measure_design(design, use_cache=False)
        return design, measured

    def evaluator(self, name: str):
        """The memoized hot :class:`~repro.serve.DesignEvaluator` for
        ``name`` (built — and verified bit-exact — on first use)."""
        from .serve.evaluator import DesignEvaluator

        resolved = resolve_design(name)
        evaluator = self._evaluators.get(resolved)
        if evaluator is None:
            with self._activated():
                evaluator = DesignEvaluator(resolved, session=self)
            self._evaluators[resolved] = evaluator
        return evaluator

    def loaded_evaluators(self) -> list[str]:
        """Design names with a live evaluator in this session."""
        return sorted(self._evaluators)

    def idct(self, name: str, blocks, engine: str | None = None):
        """Evaluate 8×8 blocks through one verified design point.

        This is the *serial* path the service's batched ``/v1/idct``
        endpoint is checked bit-exact against: one simulator invocation
        per call, however many blocks the call carries.
        """
        from .serve.evaluator import validate_blocks

        engine = resolve_engine(engine or default_engine("serve"), "serve")
        evaluator = self.evaluator(name)
        with self._activated():
            return evaluator.evaluate(validate_blocks(blocks), engine=engine)

    def pool_init(self, *, obs: bool | None = None,
                  budget_s: float | None = None):
        """The picklable :class:`~repro.serve.pool.WorkerInit` a forked
        evaluator worker needs to mirror this session's substrate
        (cache directory, chaos policy, obs recording, wall budget)."""
        from .obs import trace as obs_trace
        from .serve.pool import WorkerInit

        return WorkerInit(
            cache_dir=(str(self.cache.root)
                       if self.cache is not None else None),
            chaos=self.chaos,
            obs=obs_trace.enabled() if obs is None else bool(obs),
            budget_s=budget_s)

    def serve(self, *, announce=None, **config) -> int:
        """Run the evaluation service over this session; returns the
        process exit code (0 after a clean SIGTERM drain, 3 after ^C).
        ``config`` keywords populate :class:`~repro.serve.ServeConfig`."""
        from .serve import EvalServer, ServeConfig

        with self._activated():
            server = EvalServer(self, ServeConfig(**config))
            return server.serve_forever(announce=announce)

    def faults(self, name: str, limit: int = 64, seed: int = 1, **kwargs):
        """Run the mutation campaign against the compliance verifier."""
        from .resilience.campaign import run_campaign

        design = self.build(name)
        with self._activated():
            return run_campaign(design, limit=limit, seed=seed, **kwargs)

    # ------------------------------------------------------------------
    # sweeps
    # ------------------------------------------------------------------
    def table2(self, tools: list[str] | None = None):
        """Regenerate Table II under this session's policy."""
        from .eval.experiments import PAIRS, generate_table2

        if tools:
            unknown = [key for key in tools if key not in PAIRS]
            if unknown:
                close = difflib.get_close_matches(unknown[0], list(PAIRS),
                                                  n=3, cutoff=0.4)
                hint = f"; did you mean {', '.join(close)}?" if close else ""
                raise UnknownToolError(
                    f"unknown tool key {unknown[0]!r}{hint} "
                    f"(choices: {', '.join(PAIRS)})",
                    name=unknown[0], suggestions=close)
        from .obs import trace as obs_trace

        with self._activated(), obs_trace.span("sweep.table2",
                                               jobs=self.jobs):
            from .exec import table2_tasks

            tasks = (table2_tasks(tools)
                     if self.jobs > 1 or self.fabric else None)
            runner = self._sweep_runner(tasks)
            return generate_table2(tools=tools, runner=runner)

    def fig1(self, full: bool = False, *, bsc_configs: int | None = None,
             bambu_configs: int | None = None, xls_stages: int | None = None):
        """Regenerate the Figure 1 DSE sweeps under this session's policy."""
        from .eval.experiments import fig1_design_lists, generate_fig1

        defaults = (26, 42, 18) if full else (4, 6, 8)
        sizes = {
            "bsc_configs": defaults[0] if bsc_configs is None else bsc_configs,
            "bambu_configs": (defaults[1] if bambu_configs is None
                              else bambu_configs),
            "xls_stages": defaults[2] if xls_stages is None else xls_stages,
        }
        from .obs import trace as obs_trace

        with self._activated(), obs_trace.span("sweep.fig1", jobs=self.jobs,
                                               full=full):
            if (self.jobs > 1 or self.fabric) \
                    and self._fixed_runner is None:
                from .exec import fig1_tasks

                lists = fig1_design_lists(**sizes)
                runner = self._sweep_runner(fig1_tasks(lists, sizes))
                return generate_fig1(**sizes, runner=runner,
                                     design_lists=lists)
            runner = self._sweep_runner(None)
            return generate_fig1(**sizes, runner=runner)
