"""Seeded, deterministic fault injection for the execution stack.

A :class:`ChaosPolicy` decides — purely from ``(seed, domain, key)``
SHA-256 fractions, never from wall clock or RNG state — which worker
processes die, which cache artifacts rot on disk, and which evaluator
calls stall or fail.  Determinism is the point: the same spec replays
the same disaster in every process of a sharded sweep, so the crash-safe
machinery it attacks (worker supervision in :mod:`repro.exec.parallel`,
checksum quarantine in :mod:`repro.cache.store`, the circuit breaker in
:mod:`repro.serve.breaker`) can be tested against the **honest-failure
invariant**: a chaos run either produces output byte-identical to the
clean run or marks explicit ``FAILED(…)`` cells — never silently wrong
numbers.

Hook sites (all behind a single :func:`active` read, so a run without a
policy pays one global-load per site):

* ``exec.worker.run_task``        — :meth:`ChaosPolicy.should_kill`
  SIGKILLs the worker process (``kill`` once per task, ``poison`` on
  every attempt — the latter drives the quarantine path);
* ``cache.store`` writes          — :meth:`ChaosPolicy.corrupt_bytes`
  truncates or bit-flips the sealed artifact blob;
* ``serve.evaluator.evaluate``    — :meth:`ChaosPolicy.evaluator_fault`
  injects latency and/or raises
  :class:`~repro.core.errors.EvaluationError`;
* ``serve.pool.pool_worker_main`` — :meth:`ChaosPolicy.should_kill`
  again, keyed by ``serve:<design>:<engine>:<seq>`` batch task ids:
  ``kill`` SIGKILLs the serving tier's affine evaluator worker on the
  batch's first attempt (the pool retries it once on a fresh worker),
  ``poison`` on both attempts (the request is quarantined → 503).

The policy is plain picklable state: the parallel executor ships it to
pool workers through the initializer — and the serve worker pool through
its :class:`~repro.serve.pool.WorkerInit` — so every process agrees on
which tasks are doomed.
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager

from ..core.errors import EvaluationError
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics

__all__ = ["ChaosPolicy", "parse_chaos_spec", "active", "set_active",
           "activate"]

#: One part in 16**12 — the resolution of the hash-derived fractions.
_FRACTION_DENOM = float(16 ** 12)


class ChaosPolicy:
    """One seeded fault-injection configuration.

    Parameters
    ----------
    seed:
        Namespaces every hash fraction; two policies with different
        seeds doom different tasks/artifacts.
    kill:
        Probability a sweep task SIGKILLs its worker on the *first*
        attempt only (kill-once: the supervised re-dispatch succeeds).
    poison:
        Probability a sweep task SIGKILLs its worker on *every* attempt
        — such tasks must end up quarantined as ``FAILED(…)`` cells.
    corrupt:
        Probability a written cache artifact is truncated or bit-flipped
        on disk (post-checksum, i.e. genuine bit-rot the read-side
        verification must catch).
    flaky:
        Probability one evaluator invocation raises
        :class:`~repro.core.errors.EvaluationError`.
    latency_s:
        Upper bound of a per-invocation evaluator sleep (scaled by a
        hash fraction; 0 disables).
    kill_targets / poison_targets:
        Substring selectors matched against the ``kind:key:index`` task
        id — targeted (non-probabilistic) dooming for tests; spelled
        ``kill=@substr`` / ``poison=@substr`` in a spec string.
    """

    def __init__(self, seed: int = 0, kill: float = 0.0, poison: float = 0.0,
                 corrupt: float = 0.0, flaky: float = 0.0,
                 latency_s: float = 0.0, kill_targets: tuple = (),
                 poison_targets: tuple = ()) -> None:
        self.seed = int(seed)
        self.kill = float(kill)
        self.poison = float(poison)
        self.corrupt = float(corrupt)
        self.flaky = float(flaky)
        self.latency_s = float(latency_s)
        self.kill_targets = tuple(kill_targets)
        self.poison_targets = tuple(poison_targets)
        # Per-key invocation counters so repeated evaluator calls on one
        # key draw fresh fractions (a flaky<1 endpoint recovers).
        self._calls: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _fraction(self, domain: str, key: str) -> float:
        """Deterministic fraction in [0, 1) from (seed, domain, key)."""
        digest = hashlib.sha256(
            f"{self.seed}|{domain}|{key}".encode("utf-8")).hexdigest()
        return int(digest[:12], 16) / _FRACTION_DENOM

    # ------------------------------------------------------------------
    def should_kill(self, task_id: str, attempt: int) -> bool:
        """Whether the worker running ``task_id`` dies on this attempt."""
        if any(t in task_id for t in self.poison_targets):
            return True
        if self.poison and self._fraction("poison", task_id) < self.poison:
            return True
        if attempt == 0:
            if any(t in task_id for t in self.kill_targets):
                return True
            if self.kill and self._fraction("kill", task_id) < self.kill:
                return True
        return False

    def corrupt_bytes(self, key: str, blob: bytes) -> bytes:
        """Possibly rot ``blob`` (truncate, or flip one bit) for ``key``."""
        if (not blob or not self.corrupt
                or self._fraction("corrupt", key) >= self.corrupt):
            return blob
        obs_metrics.inc("chaos.corruptions")
        obs_events.emit("chaos.inject", fault="corrupt", key=key)
        if self._fraction("corrupt-mode", key) < 0.5:
            cut = 1 + int(self._fraction("corrupt-cut", key) * (len(blob) - 1))
            return blob[:cut]
        pos = int(self._fraction("corrupt-pos", key) * len(blob))
        bit = 1 << int(self._fraction("corrupt-bit", key) * 8)
        return blob[:pos] + bytes([blob[pos] ^ bit]) + blob[pos + 1:]

    def evaluator_fault(self, key: str) -> None:
        """Inject latency and/or an exception into one evaluator call."""
        calls = self._calls.get(key, 0)
        self._calls[key] = calls + 1
        draw = f"{key}|{calls}"
        if self.latency_s:
            time.sleep(self._fraction("latency", draw) * self.latency_s)
        if self.flaky and self._fraction("flaky", draw) < self.flaky:
            obs_metrics.inc("chaos.faults")
            obs_events.emit("chaos.inject", fault="flaky", key=key)
            raise EvaluationError("chaos: injected evaluator fault",
                                  design=key, phase="chaos.evaluator")

    # ------------------------------------------------------------------
    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for field in ("kill", "poison", "corrupt", "flaky"):
            value = getattr(self, field)
            if value:
                parts.append(f"{field}={value:g}")
        if self.latency_s:
            parts.append(f"latency={self.latency_s:g}")
        for field, targets in (("kill", self.kill_targets),
                               ("poison", self.poison_targets)):
            parts.extend(f"{field}=@{t}" for t in targets)
        return ",".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChaosPolicy({self.describe()})"


_SPEC_KEYS = ("seed", "kill", "poison", "corrupt", "flaky", "latency")


def parse_chaos_spec(spec: str) -> ChaosPolicy:
    """Parse the CLI ``--chaos`` grammar into a :class:`ChaosPolicy`.

    ``SPEC ::= key=value[,key=value...]`` with keys ``seed`` (int),
    ``kill`` / ``poison`` / ``corrupt`` / ``flaky`` (probability in
    [0, 1], or ``@substr`` for ``kill``/``poison`` to doom matching task
    ids deterministically) and ``latency`` (seconds).  Raises
    ``ValueError`` on anything else; the CLI maps that to exit code 2.
    """
    kwargs: dict = {"kill_targets": [], "poison_targets": []}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if not sep or key not in _SPEC_KEYS:
            raise ValueError(
                f"bad chaos spec item {part!r} "
                f"(keys: {', '.join(_SPEC_KEYS)})")
        if value.startswith("@"):
            if key not in ("kill", "poison"):
                raise ValueError(f"@target only applies to kill/poison, "
                                 f"not {key!r}")
            kwargs[f"{key}_targets"].append(value[1:])
            continue
        try:
            number = int(value) if key == "seed" else float(value)
        except ValueError:
            raise ValueError(f"bad chaos value {part!r}") from None
        if key == "seed":
            kwargs["seed"] = number
        elif key == "latency":
            kwargs["latency_s"] = number
        else:
            if not 0.0 <= number <= 1.0:
                raise ValueError(f"{key} must be a probability in [0, 1], "
                                 f"got {value}")
            kwargs[key] = number
    kwargs["kill_targets"] = tuple(kwargs["kill_targets"])
    kwargs["poison_targets"] = tuple(kwargs["poison_targets"])
    return ChaosPolicy(**kwargs)


# ----------------------------------------------------------------------
# process-wide active policy (consulted by the exec/cache/serve hooks)
# ----------------------------------------------------------------------

_ACTIVE: ChaosPolicy | None = None


def active() -> ChaosPolicy | None:
    """The chaos policy the hook sites should consult, if any."""
    return _ACTIVE


def set_active(policy: ChaosPolicy | None) -> ChaosPolicy | None:
    """Install ``policy`` process-wide (workers call this at startup)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = policy
    return previous


@contextmanager
def activate(policy: ChaosPolicy | None):
    """Scoped :func:`set_active` for sessions and tests."""
    previous = set_active(policy)
    try:
        yield policy
    finally:
        set_active(previous)
