"""``repro.chaos`` — seeded fault injection and recovery drills.

* :mod:`repro.chaos.policy`    — :class:`ChaosPolicy` (deterministic
  worker kills, artifact bit-rot, evaluator faults) plus the
  process-wide *active policy* hook and the ``--chaos`` spec parser;
* :mod:`repro.chaos.scenarios` — named end-to-end drills behind
  ``python -m repro chaos <scenario>`` that assert the honest-failure
  invariant (chaos output is byte-identical to clean, or carries
  explicit ``FAILED(…)`` cells — never silently wrong numbers).

``scenarios`` is imported lazily (it pulls in :mod:`repro.api`); this
package root stays light enough for the cache/exec/serve hook sites to
import eagerly.
"""

from .policy import ChaosPolicy, activate, active, parse_chaos_spec, set_active

__all__ = ["ChaosPolicy", "parse_chaos_spec", "active", "set_active",
           "activate"]
