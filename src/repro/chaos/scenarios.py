"""Named end-to-end chaos drills: ``python -m repro chaos <scenario>``.

Each scenario stages a seeded disaster against the crash-safe machinery
and checks the **honest-failure invariant**: a chaos run's rendered
output is either byte-identical to the clean run's, or differs only by
explicit ``FAILED(…)`` cells — it never silently reports wrong numbers.
A violated invariant is data corruption; scenarios return exit code 1
for it (never 0), matching the compliance-failure contract of
``verify``.

Scenarios
---------
``worker-kill``
    Parallel fig1 sweep under ``kill≈0.7`` (kill-once): most tasks
    SIGKILL their pool worker on first attempt; supervision re-dispatches
    them and the output must come back byte-identical to a serial clean
    run, with ``worker_restarts > 0`` proving the crashes happened.
``cache-rot``
    A fig1 sweep writes every cache artifact through ``corrupt=1.0``
    bit-rot; a second (chaos-free) run over the same cache must detect
    every rotted artifact via its checksum footer, quarantine it, and
    recompute — both runs byte-identical to clean.
``serve-flaky``
    A real :class:`~repro.serve.DesignEvaluator` behind a
    :class:`~repro.serve.breaker.CircuitBreaker` with an injected clock,
    driven through the full closed → open → half-open → re-open →
    half-open → closed cycle by ``flaky=1.0`` evaluator faults.
``serve-kill``
    A live ``--workers 2`` service under ``kill=0.5`` chaos: evaluator
    workers are SIGKILLed mid-request by the seeded policy; every
    ``/v1/idct`` answer must be either byte-correct (the retried batch)
    or an explicit error status — never a hang, never a silently wrong
    body — and the pool must record the deaths it recovered from.
``batch-engine``
    The invariant with ``engine="batch"`` under fire: a clean
    batch-engine fig1 sweep must be byte-identical to the compiled
    engine's, worker kills during a batch-engine sweep must recover to
    byte-identical output, and rotted batch-engine cache artifacts must
    be quarantined and recomputed.
``fabric-kill``
    A live fabric master (short ``fabric_lease_s``) with a two-process
    pull-worker fleet under ``kill≈0.7`` chaos: workers SIGKILL
    themselves mid-lease on first attempt, their leases expire, the
    master re-queues the tasks, and the fleet respawns the dead
    workers.  The ``--fabric`` sweep must still render byte-identical
    to a clean serial run, with lease expiries > 0 proving the deaths
    happened.
``qos-storm``
    A saturating high-priority tenant storms the job scheduler while an
    anonymous low-priority fig1 job is mid-sweep: the storm preempts the
    light job at a cell boundary, the fair-share queue runs the heavy
    jobs, and the light job's re-run resumes from its checkpoint — its
    final output must be byte-identical to an uninterrupted run, with
    ``preemptions > 0`` proving the storm actually paused it.
``all``
    Every scenario above, worst exit code wins.
"""

from __future__ import annotations

from .policy import ChaosPolicy
from .policy import activate as _activate_chaos

__all__ = ["SCENARIOS", "check_invariant", "run_scenario"]


def check_invariant(clean: str, chaotic: str) -> list[str]:
    """Violations of the honest-failure invariant (empty list = honest).

    Line-set based, not positional: renderers may append ``FAILED(…)``
    lines after the surviving points within a series, so a quarantined
    cell legitimately reorders the chaotic output relative to clean.
    """
    if clean == chaotic:
        return []
    clean_lines = set(clean.splitlines())
    chaotic_lines = chaotic.splitlines()
    failed = [line for line in chaotic_lines if "FAILED(" in line]
    violations = [
        f"silently altered line: {line!r}"
        for line in chaotic_lines
        if line not in clean_lines and "FAILED(" not in line
    ]
    if not failed:
        violations.append(
            "output differs from the clean run without any FAILED(...) "
            "cells — silent data corruption")
    return violations


def _fig1_text(session) -> str:
    """Render a small fig1 sweep through ``session``, memo-cold."""
    from ..eval.experiments import render_fig1
    from ..eval.measure import clear_measure_cache

    clear_measure_cache()
    return render_fig1(session.fig1())


def _report(name: str, violations: list[str]) -> int:
    if violations:
        print(f"chaos {name}: INVARIANT VIOLATED")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print(f"chaos {name}: ok")
    return 0


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------

def _worker_kill(seed: int, jobs: int) -> int:
    from ..api import Session

    clean = _fig1_text(Session(jobs=1))
    session = Session(jobs=max(2, jobs),
                      chaos=ChaosPolicy(seed=seed, kill=0.7))
    chaotic = _fig1_text(session)
    violations = check_invariant(clean, chaotic)
    stats = session.last_runner.stats
    if not stats.get("worker_restarts"):
        violations.append(
            "no worker restarts recorded — the kills never happened, "
            "so the scenario proved nothing")
    if chaotic != clean:
        # Kill-once faults are transient by construction: supervision
        # must recover every task, not just fail it honestly.
        violations.append(
            "kill-once chaos should recover to a byte-identical run, "
            f"but {stats.get('poisoned', 0)} tasks were quarantined")
    print(f"  worker restarts: {stats.get('worker_restarts', 0)}, "
          f"quarantined: {stats.get('poisoned', 0)}")
    return _report("worker-kill", violations)


def _cache_rot(seed: int, jobs: int) -> int:
    import tempfile

    from ..api import Session
    from ..cache import ArtifactCache

    del jobs  # serial on purpose: corruption happens in-process
    clean = _fig1_text(Session(jobs=1))
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as root:
        cold_session = Session(
            jobs=1, cache=ArtifactCache(root),
            chaos=ChaosPolicy(seed=seed, corrupt=1.0))
        cold = _fig1_text(cold_session)
        warm_session = Session(jobs=1, cache=ArtifactCache(root))
        warm = _fig1_text(warm_session)
    violations = check_invariant(clean, cold)
    violations += check_invariant(clean, warm)
    corrupt = warm_session.cache.stats["corrupt"]
    if not corrupt:
        violations.append(
            "warm run detected no corrupt artifacts — either the rot "
            "never landed or a rotted artifact was trusted")
    print(f"  artifacts quarantined on re-read: {corrupt}")
    return _report("cache-rot", violations)


def _serve_flaky(seed: int, jobs: int) -> int:
    from ..api import Session
    from ..serve.breaker import CircuitBreaker

    del jobs
    session = Session()
    evaluator = session.evaluator("verilog-initial")
    blocks = [[[0] * 8 for _ in range(8)]]
    clock = [0.0]
    breaker = CircuitBreaker(threshold=2, cooldown_s=10.0,
                             clock=lambda: clock[0])
    transitions: list[str] = []

    def request(policy: ChaosPolicy | None) -> str:
        if breaker.admit() is not None:
            return "rejected"
        try:
            with _activate_chaos(policy):
                evaluator.evaluate(blocks, engine="model")
        except Exception as exc:  # noqa: BLE001 - chaos-injected fault
            breaker.record_failure(exc)
            return "failed"
        breaker.record_success()
        return "ok"

    flaky = ChaosPolicy(seed=seed, flaky=1.0)
    script = [
        # (advance clock by, chaos policy, expected result, expected state)
        (0.0, flaky, "failed", "closed"),
        (0.0, flaky, "failed", "open"),       # threshold=2 trips here
        (0.0, flaky, "rejected", "open"),     # cooldown not elapsed
        (11.0, flaky, "failed", "open"),      # half-open probe fails
        (0.0, None, "rejected", "open"),
        (11.0, None, "ok", "closed"),         # half-open probe succeeds
        (0.0, None, "ok", "closed"),
    ]
    violations = []
    for step, (advance, policy, want, want_state) in enumerate(script):
        clock[0] += advance
        got = request(policy)
        transitions.append(f"{got}/{breaker.state}")
        if got != want or breaker.state != want_state:
            violations.append(
                f"step {step}: expected {want}/{want_state}, "
                f"got {got}/{breaker.state}")
    print(f"  breaker path: {' -> '.join(transitions)} "
          f"(opened {breaker.stats['opened']}x, "
          f"rejected {breaker.stats['rejected']})")
    return _report("serve-flaky", violations)


def _serve_kill(seed: int, jobs: int) -> int:
    import http.client
    import json
    import random
    import socket
    import threading

    from ..api import Session
    from ..serve import EvalServer, ServeConfig

    design = "verilog-initial"
    rng = random.Random(seed)
    requests = [
        [[[rng.randint(-512, 511) for _ in range(8)] for _ in range(8)]]
        for _ in range(12)
    ]
    golden = {idx: Session().idct(design, blocks)
              for idx, blocks in enumerate(requests)}

    session = Session(chaos=ChaosPolicy(seed=seed, kill=0.5))
    server = EvalServer(session, ServeConfig(
        port=0, workers=max(2, jobs), warm=(design,),
        batch_wait_s=0.0, obs=True))
    ready = threading.Event()
    port: list[int] = []

    def announce(host: str, bound: int) -> None:
        port.append(bound)
        ready.set()

    thread = threading.Thread(
        target=server.serve_forever, kwargs={"announce": announce},
        daemon=True)
    thread.start()
    violations: list[str] = []
    if not ready.wait(timeout=120):
        return _report("serve-kill", ["server never came up"])

    ok = 0
    explicit = 0
    for idx, blocks in enumerate(requests):
        conn = http.client.HTTPConnection("127.0.0.1", port[0], timeout=120)
        try:
            conn.request("POST", "/v1/idct",
                         body=json.dumps({"design": design,
                                          "blocks": blocks}),
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            body = response.read()
        except (socket.timeout, ConnectionError) as exc:
            violations.append(f"request {idx}: hung connection ({exc})")
            continue
        finally:
            conn.close()
        if response.status == 200:
            outputs = json.loads(body)["outputs"]
            if outputs != golden[idx]:
                violations.append(
                    f"request {idx}: 200 with a silently wrong body")
            else:
                ok += 1
        elif response.status in (503, 504, 429, 422):
            explicit += 1  # honest, explicit failure
        else:
            violations.append(
                f"request {idx}: unexpected status {response.status}: "
                f"{body[:120]!r}")
    stats = dict(server.pool.stats) if server.pool is not None else {}
    server.request_drain(0)
    thread.join(timeout=60)
    if not stats.get("kills"):
        violations.append(
            "no worker deaths recorded — the kills never happened, "
            "so the scenario proved nothing")
    if not ok:
        violations.append(
            "no request ever succeeded — retry-on-fresh-worker is broken")
    print(f"  responses: {ok} correct, {explicit} explicit errors; "
          f"worker kills: {stats.get('kills', 0)}, "
          f"restarts: {stats.get('restarts', 0)}, "
          f"retries: {stats.get('retries', 0)}")
    return _report("serve-kill", violations)


def _batch_engine(seed: int, jobs: int) -> int:
    """The honest-failure invariant, with the batch engine under fire.

    Three checks: (1) a clean batch-engine sweep is byte-identical to the
    compiled engine's, (2) worker kills during a batch-engine sweep
    recover to byte-identical output, (3) cache rot under the batch
    engine is detected and recomputed, never trusted.
    """
    import tempfile

    from ..api import Session
    from ..cache import ArtifactCache
    from ..resilience.runner import RunnerConfig

    batch_cfg = RunnerConfig(engine="batch")
    clean_compiled = _fig1_text(Session(jobs=1))
    clean = _fig1_text(Session(jobs=1, runner=batch_cfg))
    violations: list[str] = []
    if clean != clean_compiled:
        violations.append(
            "clean batch-engine sweep differs from the compiled engine — "
            "the engines disagree before any chaos was injected")

    kill_session = Session(jobs=max(2, jobs), runner=batch_cfg,
                           chaos=ChaosPolicy(seed=seed, kill=0.7))
    chaotic = _fig1_text(kill_session)
    violations += check_invariant(clean, chaotic)
    stats = kill_session.last_runner.stats
    if not stats.get("worker_restarts"):
        violations.append(
            "no worker restarts recorded — the kills never happened, "
            "so the scenario proved nothing")

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as root:
        cold = _fig1_text(Session(
            jobs=1, runner=batch_cfg, cache=ArtifactCache(root),
            chaos=ChaosPolicy(seed=seed, corrupt=1.0)))
        warm_session = Session(jobs=1, runner=batch_cfg,
                               cache=ArtifactCache(root))
        warm = _fig1_text(warm_session)
    violations += check_invariant(clean, cold)
    violations += check_invariant(clean, warm)
    corrupt = warm_session.cache.stats["corrupt"]
    if not corrupt:
        violations.append(
            "warm batch-engine run detected no corrupt artifacts — either "
            "the rot never landed or a rotted artifact was trusted")
    print(f"  worker restarts: {stats.get('worker_restarts', 0)}, "
          f"artifacts quarantined: {corrupt}")
    return _report("batch-engine", violations)


def _fabric_kill(seed: int, jobs: int) -> int:
    """SIGKILL fabric pull-workers mid-lease; the sweep must converge.

    Kill-once faults are transient: the expired lease re-queues with a
    bumped attempt, the respawned worker measures it cleanly, and the
    task-order merge keeps the rendered output byte-identical to a
    clean serial run — quarantine would be an invariant violation here.
    """
    import multiprocessing
    import threading

    from ..api import Session
    from ..core.errors import WorkerCrashError
    from ..fabric import run_worker_fleet
    from ..serve import EvalServer, ServeConfig

    clean = _fig1_text(Session(jobs=1))

    server = EvalServer(Session(), ServeConfig(port=0, fabric_lease_s=1.0))
    ready = threading.Event()
    port: list[int] = []

    def announce(host: str, bound: int) -> None:
        port.append(bound)
        ready.set()

    thread = threading.Thread(
        target=server.serve_forever, kwargs={"announce": announce},
        daemon=True)
    thread.start()
    if not ready.wait(timeout=120):
        return _report("fabric-kill", ["fabric master never came up"])
    master = f"127.0.0.1:{port[0]}"

    # Non-daemon on purpose: the fleet forks its own worker children.
    mp = multiprocessing.get_context("fork")
    fleet = mp.Process(
        target=run_worker_fleet, args=(master, max(2, jobs)),
        kwargs={"chaos": ChaosPolicy(seed=seed, kill=0.7)})
    fleet.start()

    violations: list[str] = []
    chaotic = clean
    session = Session(fabric=master)
    try:
        chaotic = _fig1_text(session)
    except WorkerCrashError as exc:
        violations.append(
            f"kill-once chaos exhausted the sweep's expiry budget: {exc}")
    finally:
        server.request_drain(0)
        thread.join(timeout=60)
        fleet.join(timeout=60)
        if fleet.is_alive():  # pragma: no cover - cleanup of a wedged fleet
            fleet.terminate()
            fleet.join(timeout=10)

    violations += check_invariant(clean, chaotic)
    stats = session.last_runner.stats if session.last_runner else {}
    if not stats.get("worker_restarts"):
        violations.append(
            "no lease expiries recorded — the kills never happened, "
            "so the scenario proved nothing")
    if chaotic != clean:
        violations.append(
            "kill-once chaos should recover to a byte-identical run, "
            f"but {stats.get('poisoned', 0)} tasks were quarantined")
    print(f"  lease expiries recovered: {stats.get('worker_restarts', 0)}, "
          f"quarantined: {stats.get('poisoned', 0)}")
    return _report("fabric-kill", violations)


def _qos_storm(seed: int, jobs: int) -> int:
    """A tenant storm preempts a running sweep; its output must not move.

    The storm is synchronized off the obs event stream, not sleeps: the
    first ``cell.done`` of the light job triggers the heavy-tenant
    submissions, so the light sweep is provably mid-flight (at least one
    cell committed, more to go) when the higher priority arrives.
    """
    import time as _time

    from .. import obs
    from ..api import Session
    from ..obs import events as obs_events
    from ..obs import metrics as obs_metrics
    from ..qos import Keyring, Tenant
    from ..serve.jobs import JobManager

    del seed  # deterministic by construction: no randomness involved
    clean = _fig1_text(Session(jobs=1))

    obs.clear()
    obs.enable()
    keyring = Keyring.from_dict(
        {"tenants": {"heavy": {"weight": 4, "priority": 5}},
         "keys": {"storm-key": "heavy"}},
        default=Tenant())
    manager = JobManager(Session(jobs=max(1, jobs)), max_queued=16,
                         keyring=keyring)
    violations: list[str] = []
    try:
        light = manager.submit("fig1")
        heavy_params = {"bsc_configs": 1, "bambu_configs": 1,
                        "xls_stages": 1}
        heavy_ids: list[str] = []
        stormed = False

        def storm(event: dict) -> None:
            nonlocal stormed
            if stormed or event.get("type") != "cell.done" \
                    or event.get("job") != light.id:
                return
            stormed = True
            for _ in range(2):
                job = manager.submit("fig1", dict(heavy_params),
                                     tenant=keyring.resolve("storm-key"))
                heavy_ids.append(job.id)

        with obs_events.EVENTS.subscribe(storm):
            deadline = _time.monotonic() + 300
            while _time.monotonic() < deadline:
                jobs_now = manager.list()
                if stormed and all(j.status in ("done", "failed")
                                   for j in jobs_now):
                    break
                _time.sleep(0.05)
        manager.drain()
        if not stormed:
            violations.append(
                "the light job finished before the storm could trigger — "
                "the scenario proved nothing")
        for job_id in heavy_ids:
            job = manager.get(job_id)
            if job is None or job.status != "done":
                violations.append(
                    f"heavy job {job_id} did not complete "
                    f"({job.status if job else 'evicted'})")
        if light.status != "done":
            violations.append(
                f"light job never finished under the storm "
                f"(status {light.status!r}: {light.error})")
        elif light.output != clean:
            violations += check_invariant(clean, light.output or "")
            violations.append(
                "preempted-and-resumed output differs from an "
                "uninterrupted run — the checkpoint resume leaked state")
        if not light.preemptions:
            violations.append(
                "no preemption recorded — the storm never paused the "
                "light job, so the scenario proved nothing")
        preempt_count = obs_metrics.snapshot()["counters"].get(
            "qos.preemptions", 0)
        if light.preemptions and not preempt_count:
            violations.append(
                "qos.preemptions counter stayed 0 despite a recorded "
                "preemption — the metrics path is broken")
        print(f"  preemptions: {light.preemptions}, heavy jobs run: "
              f"{len(heavy_ids)}, qos.preemptions counter: "
              f"{preempt_count}")
    finally:
        obs.disable()
    return _report("qos-storm", violations)


SCENARIOS = {
    "worker-kill": _worker_kill,
    "cache-rot": _cache_rot,
    "serve-flaky": _serve_flaky,
    "serve-kill": _serve_kill,
    "batch-engine": _batch_engine,
    "fabric-kill": _fabric_kill,
    "qos-storm": _qos_storm,
}


def run_scenario(name: str, seed: int = 3, jobs: int = 2) -> int:
    """Run one scenario (or ``all``); 0 = honest, 1 = invariant violated."""
    if name == "all":
        return max(run_scenario(key, seed=seed, jobs=jobs)
                   for key in SCENARIOS)
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ValueError(
            f"unknown chaos scenario {name!r} "
            f"(choices: {', '.join([*SCENARIOS, 'all'])})")
    return scenario(seed, jobs)
