"""Command-line interface: ``python -m repro <command>``.

A thin shell over :class:`repro.api.Session` — each command builds a
Session carrying the execution policy the flags describe (parallelism,
cache, budgets, checkpointing, tracing) and delegates the work.

Commands:

* ``table1``            — print the tool classification (paper Table I);
* ``table2 [--tools ...] [--jobs N] [--cache DIR] [--csv PATH]
  [--trace PATH] [--metrics PATH] [--engine E]``
  — regenerate the evaluation table (optionally with per-phase traces);
* ``fig1 [--full] [--jobs N] [--cache DIR] [--csv PATH] [--trace PATH]
  [--metrics PATH] [--engine E]``
  — regenerate the DSE scatter;
* ``verify <design> [--engine interp|compiled|batch]`` — build and
  verify one design by name; exits 1 on a compliance failure;
* ``engines [--json]`` — list the registered evaluation engines with
  their contexts and capabilities (the :mod:`repro.engines` registry);
  ``--json`` is byte-identical to the service's ``GET /v1/engines``;
* ``measure <design> [--json] [--cache DIR]`` — fully characterize one
  design; ``--json`` dumps the canonical ``Measured.to_json()`` record
  (byte-identical to the service's ``POST /v1/measure`` response);
* ``serve [--host H] [--port P] [--jobs N] [--cache DIR] [--max-batch B]
  [--batch-wait-ms W] [--max-inflight Q] [--budget-s S] [--warm NAME]
  [--workers N] [--worker-deadline-s S] [--worker-crash-budget K]
  [--api-keys FILE] [--quota N] [--rate R] [--burst B] [--weight W]``
  — run the asyncio evaluation service (``/v1/idct`` micro-batching,
  admission control, ``/healthz`` + ``/metrics``); ``--workers N`` (N>1)
  pre-forks N evaluator processes with (design, engine)-affinity routing
  under the heartbeat → soft cancel → SIGTERM → SIGKILL → respawn
  supervision ladder; SIGTERM drains in-flight work and exits 0, ^C
  drains and exits 3; the same instance doubles as the fabric master
  (``POST /v1/sweeps`` + task leases, ``--fabric-lease-s`` sets the
  lease deadline);
* ``work --master URL [--parallel N] [--batch B] [--cache DIR]
  [--poll-s S] [--max-idle-s S] [--once] [--chaos SPEC]`` — run fabric
  pull-workers against a ``serve`` master: lease tasks, measure them
  through the shared worker path, upload content-addressed artifacts,
  post results; exits 0 when the master goes away (or ``--once`` /
  ``--max-idle-s`` fires), 2 when the master is unreachable at start
  or the worker crash budget is exhausted;
* ``profile <design> [--json] [--trace PATH] [--metrics PATH]`` — run
  one design through the full pipeline with tracing on and print the
  per-phase breakdown; ``--json`` emits the machine-readable profile
  (span tree + phases + metrics) whose totals match the text report;
* ``obs tail <events.jsonl> [--type T] [--limit N]`` — pretty-print a
  structured event log (what ``--events PATH`` on sweeps writes, and
  what ``GET /v1/jobs/<id>/events`` streams as NDJSON over a chunked
  response — replay first, then live events until the job finishes);
* ``obs tree [<trace-id>] [--trace PATH]`` — render the assembled span
  tree of one trace from a ``trace.jsonl`` export (the service's
  ``GET /v1/traces/<id>`` returns the same tree as JSON);
* ``obs diff <metrics_a.json> <metrics_b.json>`` — compare two metrics
  exports counter-by-counter (the offline view behind
  ``scripts/bench_gate.py``);
* ``faults <design> [--limit N] [--seed S] [--smoke]`` — run the
  fault-injection campaign against the compliance verifier; exits 1 when
  the detection rate drops below ``--min-detect``;
* ``chaos <scenario> [--seed S] [--jobs N]`` — run a seeded chaos drill
  (``worker-kill``, ``cache-rot``, ``serve-flaky``, ``serve-kill``,
  ``batch-engine``, ``fabric-kill``, ``qos-storm``, or ``all``) and
  assert the honest-failure invariant; exits 1 on any violation;
* ``list``              — list all registered design names.

``table2`` and ``fig1`` share the execution flags: ``--jobs N`` (measure
design points across N worker processes; stdout stays byte-identical to
a serial run), ``--fabric URL`` (route the sweep through a fabric
master — a ``serve`` instance — and its ``work`` pull-workers instead
of a local pool; the task-order merge keeps stdout byte-identical to
serial, and a lease that expires twice quarantines its design as an
honest ``FAILED(…)`` cell exactly like a twice-crashed pool worker),
``--cache DIR`` (content-addressed artifact cache reused
across runs and commands), ``--checkpoint PATH`` (JSONL progress log),
``--resume`` (skip designs already in the checkpoint), ``--inject-fault
NAME`` (force a design to fail, repeatable), ``--budget-s`` /
``--budget-cycles`` (per-design budgets), ``--retries``, ``--engine E``
(simulator engine for every measurement — ``batch`` runs each design's
stream through the lane-packed compiler with output byte-identical to
``compiled``), ``--chaos SPEC`` (seeded fault injection), and the
observability exports:
``--trace PATH`` (span JSONL), ``--metrics PATH`` (metrics + phase
timings JSON), ``--events PATH`` (structured event JSONL for ``obs
tail``).  Any of the three turns instrumentation on; each sweep run
mints one trace id that spans and events carry across pool workers.

The ``--chaos`` grammar is ``key=value[,key=value...]`` with keys
``seed`` (int), ``kill`` / ``poison`` / ``corrupt`` / ``flaky``
(probabilities in [0, 1]; ``kill``/``poison`` also accept ``@substr``
to doom task ids containing the substring) and ``latency`` (seconds of
injected evaluator delay).  ``kill`` SIGKILLs a task's pool worker on
the first attempt only (supervision recovers it), ``poison`` on every
attempt (the task is quarantined as an explicit ``FAILED(…)`` cell),
``corrupt`` rots written cache artifacts on disk (the checksum footer
catches them on re-read), ``flaky`` makes evaluator calls raise.
Under ``serve --workers N`` the same ``kill``/``poison`` decisions also
target the serving tier: batches carry ``serve:<design>:<engine>:<seq>``
task ids, ``kill`` SIGKILLs the affine evaluator worker on the first
attempt (the batch retries once on a fresh worker), ``poison`` on both
attempts (the request is quarantined and answered with an honest 503 —
the ``serve-kill`` drill asserts exactly this contract).

Multi-tenant QoS grammar: ``serve --api-keys FILE`` loads a JSON keyring
(``{"tenants": {name: {weight, rate_per_s, burst, max_jobs, priority}},
"keys": {api-key: name}}``); requests authenticate with an ``X-Api-Key``
header (no header → the anonymous tenant, unknown key → 403).
``--quota N`` caps the anonymous tenant's queued+running jobs (over
quota → 429 with a computed ``Retry-After``), ``--rate R``/``--burst B``
set its integer token-bucket request rate (0 = unlimited), and
``--weight W`` its fair-share weight: job and fabric queues dequeue by
weighted deficit round-robin across tenants, so a weight-``W`` tenant
gets ``W`` cells per scheduling round and nobody starves.  On the
client side ``table2``/``fig1`` accept ``--api-key KEY`` (identifies
the tenant to a ``--fabric`` master) and ``--priority P`` (orders the
tenant's own sweeps; a higher-priority arrival preempts a running sweep
at the next cell boundary and the preempted sweep resumes from its
checkpoint with stdout byte-identical to an uninterrupted run).

Exit-code contract (stable — scripts and CI may rely on it):

====  ==========================================================
code  meaning
====  ==========================================================
0     success (including a ``BrokenPipeError`` from a closed pager)
1     compliance/verification failure, fault-detection rate below
      ``--min-detect``, or a chaos drill detecting data corruption
      (a violated honest-failure invariant is **never** exit 0)
2     usage error: unknown design/tool/engine name, bad arguments
      (argparse also exits 2)
3     interrupted sweep (``SweepInterrupted`` or ^C); the
      checkpoint stays consistent for ``--resume``
====  ==========================================================

``serve`` maps its lifecycle onto the same contract: a SIGTERM drain
(finish in-flight work, then exit) is success (0), ^C drains but exits 3,
and an unusable ``--port`` or unknown ``--warm`` design is a usage
error (2).

Design names accept frontend-package aliases (``vlog-opt`` for
``verilog-opt``, ``hc-opt`` for ``chisel-opt``, ``rules-*`` for
``bsv-*``, ``flow-initial``/``flow-opt`` for ``xls-s0``/``xls-s8``);
resolution lives in :func:`repro.api.resolve_design`.
"""

from __future__ import annotations

import argparse
import csv
import sys

__all__ = ["main"]


def _canonical_name(name: str) -> str:
    """Deprecated: use :func:`repro.api.canonical_name`."""
    from .api import canonical_name

    return canonical_name(name)


def _design_registry() -> dict:
    from .eval.experiments import PAIRS

    registry = {}
    for key, factory in PAIRS.items():
        initial, optimized = factory()
        registry[initial.name] = initial
        registry[optimized.name] = optimized
    return registry


def _find_design(name: str):
    """Deprecated: use :func:`repro.api.find_design` (same contract)."""
    from .api import find_design

    return find_design(name)


def _aliases():
    # Deprecated module-level mirrors of repro.api.{PREFIX,NAME}_ALIASES,
    # kept importable for older scripts.
    from .api import NAME_ALIASES, PREFIX_ALIASES

    return PREFIX_ALIASES, NAME_ALIASES


def __getattr__(name: str):
    if name == "_PREFIX_ALIASES":
        return _aliases()[0]
    if name == "_NAME_ALIASES":
        return _aliases()[1]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _cmd_table1(_args) -> int:
    from .eval import render_table1

    print(render_table1())
    return 0


def _obs_start(args) -> None:
    """Attach the ``--events`` file sink (after the Session cleared obs)."""
    if getattr(args, "events", None):
        from .obs import events as obs_events

        obs_events.EVENTS.attach(args.events)


def _obs_finish(args, active: bool) -> None:
    """Export the requested artifacts and disable instrumentation."""
    if not active:
        return
    from . import obs
    from .obs.report import write_metrics_json, write_trace_jsonl

    if args.trace:
        count = write_trace_jsonl(args.trace)
        print(f"wrote {count} trace records to {args.trace}")
    if args.metrics:
        write_metrics_json(args.metrics)
        print(f"wrote metrics to {args.metrics}")
    if getattr(args, "events", None):
        from .obs import events as obs_events

        obs_events.EVENTS.detach()
        print(f"wrote events to {args.events}")
    obs.disable()


def _make_session(args, *, trace: bool = False):
    """Build the Session the table2/fig1 execution flags describe."""
    from .api import Session
    from .resilience.runner import RunnerConfig

    from .engines import resolve_engine

    config = RunnerConfig(wall_s=args.budget_s, max_cycles=args.budget_cycles,
                          retries=args.retries,
                          engine=resolve_engine(
                              getattr(args, "engine", None) or "compiled",
                              "sim"))
    return Session(jobs=args.jobs, cache=args.cache, runner=config,
                   trace=trace, checkpoint=args.checkpoint,
                   resume=args.resume,
                   inject_faults=args.inject_fault or [],
                   max_tasks_per_child=args.max_tasks_per_child or None,
                   chaos=args.chaos,
                   fabric=getattr(args, "fabric", None),
                   priority=getattr(args, "priority", 0) or 0,
                   api_key=getattr(args, "api_key", None))


def _print_summaries(session) -> None:
    for line in session.summary_lines():
        print(line, file=sys.stderr)


def _cmd_table2(args) -> int:
    from .eval import render_table2

    tracing = bool(args.trace or args.metrics or args.events)
    session = _make_session(args, trace=tracing)
    _obs_start(args)
    table = session.table2(tools=args.tools or None)
    print(render_table2(table))
    _print_summaries(session)
    if args.csv:
        with open(args.csv, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow([
                "tool", "config", "loc", "fmax_mhz", "latency", "periodicity",
                "throughput_mops", "area", "lut_star", "ff_star", "lut", "ff",
                "dsp", "n_io", "quality", "automation_pct",
                "controllability_pct", "flexibility",
            ])
            for key, column in table.columns.items():
                if column.failed:
                    # No numbers to report; the failure is in the rendered
                    # table and the checkpoint.
                    continue
                for measured, alpha in (
                    (column.initial, column.automation_initial),
                    (column.optimized, column.automation_opt),
                ):
                    writer.writerow([
                        key, measured.config, measured.loc,
                        round(measured.fmax_mhz, 2), measured.latency,
                        measured.periodicity,
                        round(measured.throughput_mops, 3), measured.area,
                        measured.lut_star, measured.ff_star, measured.lut,
                        measured.ff, measured.dsp, measured.n_io,
                        round(measured.quality, 1), round(alpha, 1),
                        round(column.controllability, 1),
                        round(column.flexibility, 1),
                    ])
        print(f"\nwrote {args.csv}")
    _obs_finish(args, tracing)
    return 0


def _cmd_fig1(args) -> int:
    from .eval.experiments import render_fig1

    tracing = bool(args.trace or args.metrics or args.events)
    session = _make_session(args, trace=tracing)
    _obs_start(args)
    series = session.fig1(full=args.full)
    print(render_fig1(series))
    _print_summaries(session)
    if args.csv:
        with open(args.csv, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["tool", "config", "throughput_mops", "area"])
            for entry in series:
                for config, throughput, area in entry.points:
                    writer.writerow([entry.tool, config,
                                     round(throughput, 3), area])
        print(f"\nwrote {args.csv}")
    _obs_finish(args, tracing)
    return 0


def _sim_engine_names() -> tuple[str, ...]:
    from .engines import engine_names

    return engine_names("sim")


def _cmd_engines(args) -> int:
    from .engines import engine_specs, render_engines_json

    if args.json:
        # One-serialization-path rule: these bytes are exactly the
        # service's GET /v1/engines response body.
        sys.stdout.write(render_engines_json())
        return 0
    for spec in engine_specs():
        caps = [label for label, on in (
            ("batchable", spec.batchable),
            ("bit-exact-reference", spec.bit_exact_reference),
            ("warm-start", spec.warm_start)) if on]
        tags = "".join(f"  default[{ctx}]" for ctx in spec.default_for)
        caps_txt = f"  ({', '.join(caps)})" if caps else ""
        print(f"{spec.name:<9} contexts={','.join(spec.contexts)}"
              f"{tags}{caps_txt}")
        print(f"          {spec.summary}")
    return 0


def _cmd_verify(args) -> int:
    from .api import Session, resolve_design
    from .core.errors import EvaluationError

    name = resolve_design(args.design)
    try:
        measured = Session(cache=getattr(args, "cache", None)).verify(
            name, engine=args.engine)
    except EvaluationError as exc:
        print(f"{name}: COMPLIANCE FAILURE — {exc}", file=sys.stderr)
        return 1
    # No engine tag in the output: every sim engine must produce the
    # same measurement, so `verify --engine batch` stays byte-identical
    # to `--engine compiled` (asserted by the check.sh engine smoke).
    status = "OK (bit-exact)" if measured.bit_exact else "MISMATCH"
    print(f"{name}: {status}")
    print(f"  latency {measured.latency} cycles, periodicity "
          f"{measured.periodicity} cycles")
    print(f"  fmax {measured.fmax_mhz:.2f} MHz, throughput "
          f"{measured.throughput_mops:.2f} MOPS")
    print(f"  area {measured.area} (N*LUT {measured.lut_star} + "
          f"N*FF {measured.ff_star}), {measured.dsp} DSP, {measured.n_io} IO")
    return 0 if measured.bit_exact else 1


def _cmd_measure(args) -> int:
    from .api import Session
    from .core.errors import EvaluationError

    session = Session(cache=args.cache)
    try:
        measured = session.measure(args.design)
    except EvaluationError as exc:
        from .api import UsageError

        if isinstance(exc, UsageError):
            raise
        print(f"{args.design}: COMPLIANCE FAILURE — {exc}", file=sys.stderr)
        return 1
    if args.json:
        sys.stdout.write(measured.to_json())
    else:
        print(f"{measured.name} ({measured.language}/{measured.tool}, "
              f"{measured.config})")
        print(f"  bit-exact: {measured.bit_exact}  loc {measured.loc}")
        print(f"  latency {measured.latency} cycles, periodicity "
              f"{measured.periodicity} cycles")
        print(f"  fmax {measured.fmax_mhz:.2f} MHz, throughput "
              f"{measured.throughput_mops:.2f} MOPS")
        print(f"  area {measured.area} (N*LUT {measured.lut_star} + "
              f"N*FF {measured.ff_star}), {measured.dsp} DSP, "
              f"{measured.n_io} IO")
    _print_summaries(session)
    return 0 if measured.bit_exact else 1


def _cmd_serve(args) -> int:
    from .api import Session

    session = Session(jobs=args.jobs, cache=args.cache, chaos=args.chaos)

    def announce(host: str, port: int) -> None:
        print(f"serving on {host}:{port}", flush=True)

    try:
        return session.serve(
            announce=announce,
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            batch_wait_s=args.batch_wait_ms / 1000.0,
            max_inflight=args.max_inflight,
            max_jobs=args.max_jobs,
            request_budget_s=args.budget_s,
            warm=tuple(args.warm or ()),
            drain_grace_s=args.drain_grace_s,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_s=args.breaker_cooldown_s,
            job_journal=args.journal,
            resume_jobs=args.resume_jobs,
            workers=args.workers,
            worker_deadline_s=args.worker_deadline_s,
            worker_crash_budget=args.worker_crash_budget,
            fabric_lease_s=args.fabric_lease_s,
            api_keys=args.api_keys,
            tenant_quota=args.quota,
            tenant_rate=args.rate,
            tenant_burst=args.burst,
            tenant_weight=args.weight,
        )
    except OSError as exc:
        print(f"cannot listen on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2


def _cmd_work(args) -> int:
    from .chaos import parse_chaos_spec
    from .core.errors import UsageError
    from .fabric import run_worker_fleet

    chaos = None
    if args.chaos:
        try:
            chaos = parse_chaos_spec(args.chaos)
        except ValueError as exc:
            raise UsageError(f"bad --chaos spec: {exc}") from exc
    run_worker_fleet(
        args.master, args.parallel, batch=args.batch,
        cache_dir=args.cache, chaos=chaos, poll_s=args.poll_s,
        max_idle_s=args.max_idle_s, once=args.once)
    return 0


def _cmd_profile(args) -> int:
    from .api import Session
    from .obs.report import (
        render_profile,
        render_profile_json,
        write_metrics_json,
        write_trace_jsonl,
    )

    session = Session(trace=True)
    try:
        design, measured = session.profile(args.design)
        if args.json:
            # One serialization path: the same span records and registry
            # the text report renders, serialized once, canonically.
            sys.stdout.write(render_profile_json(extra={
                "design": design.name,
                "config": design.config,
                "tool": design.tool,
                "bit_exact": measured.bit_exact,
            }))
        else:
            print(f"profile of {design.name} "
                  f"({design.language}/{design.tool}, {design.config})")
            print(f"  bit-exact: {measured.bit_exact}  "
                  f"latency {measured.latency}  "
                  f"periodicity {measured.periodicity}  "
                  f"fmax {measured.fmax_mhz:.2f} MHz")
            print()
            print(render_profile())
        if args.trace:
            count = write_trace_jsonl(args.trace)
            print(f"\nwrote {count} trace records to {args.trace}")
        if args.metrics:
            write_metrics_json(args.metrics)
            print(f"wrote metrics to {args.metrics}")
    finally:
        session.close()
    return 0


def _format_event(event: dict) -> str:
    """One ``obs tail`` line: seq, type, trace tag, then sorted fields."""
    head = f"{event.get('seq', 0):>6}  {event.get('type', '?'):<16}"
    trace = event.get("trace")
    if trace:
        head += f"  [{trace}]"
    skip = {"seq", "type", "ts", "trace", "span"}
    fields = "  ".join(f"{key}={event[key]}" for key in sorted(event)
                       if key not in skip)
    return f"{head}  {fields}".rstrip()


def _cmd_obs_tail(args) -> int:
    import json

    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    events = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue  # torn final line from a crashed writer
        if isinstance(event, dict):
            events.append(event)
    if args.type:
        events = [e for e in events if e.get("type") == args.type]
    if args.limit:
        events = events[-args.limit:]
    for event in events:
        print(_format_event(event))
    return 0


def _cmd_obs_tree(args) -> int:
    import json

    from .obs.report import render_tree
    from .obs.trace import SpanRecord

    records = []
    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(SpanRecord.from_dict(json.loads(line)))
                except (ValueError, KeyError):
                    continue
    except OSError as exc:
        print(f"cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    print(render_tree(records, args.trace_id))
    return 0


def _cmd_obs_diff(args) -> int:
    import json

    def load(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
            return None

    before, after = load(args.a), load(args.b)
    if before is None or after is None:
        return 2
    changed = 0
    for kind in ("counters", "gauges"):
        old = (before.get("metrics") or {}).get(kind, {})
        new = (after.get("metrics") or {}).get(kind, {})
        for name in sorted(set(old) | set(new)):
            a, b = old.get(name, 0), new.get(name, 0)
            if a == b:
                continue
            changed += 1
            delta = b - a
            pct = f" ({delta / a:+.1%})" if a else ""
            print(f"{name:<40s} {a:>14g} -> {b:<14g} {delta:+g}{pct}")
    if not changed:
        print("no counter/gauge differences")
    return 0


def _cmd_faults(args) -> int:
    import json

    from .api import Session
    from .rtl.elaborate import elaborate

    session = Session()
    design = session.build(args.design)

    if args.smoke:
        # Deterministic single-fault check: flip one bit of an output data
        # driver and require the verifier to flag it.
        from .resilience.campaign import run_mutant
        from .resilience.faults import inject, output_data_sites

        netlist = elaborate(design.top)
        sites = output_data_sites(netlist)
        if not sites:
            print(f"{design.name}: no output data sites to mutate",
                  file=sys.stderr)
            return 2
        site = sites[0]
        verdict = run_mutant(design, inject(netlist, site, "flip"))
        label = site.describe("flip")
        if verdict is None:
            print(f"{design.name}: fault {label} NOT detected", file=sys.stderr)
            return 1
        print(f"{design.name}: fault {label} detected ({verdict})")
        return 0

    report = session.faults(args.design, limit=args.limit, seed=args.seed)
    print(f"fault-injection campaign on {design.name}:")
    print(f"  mutants: {report.total}  "
          f"detection rate: {report.detection_rate:.1%}  "
          f"(gate-only: {report.strict_rate:.1%})")
    for verdict, count in report.by_verdict().items():
        print(f"  {verdict:12s} {count}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"wrote {args.report}")
    if report.detection_rate < args.min_detect:
        print(f"FAIL: detection rate {report.detection_rate:.1%} below "
              f"required {args.min_detect:.0%}", file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args) -> int:
    from .chaos.scenarios import run_scenario

    return run_scenario(args.scenario, seed=args.seed, jobs=args.jobs)


def _cmd_list(_args) -> int:
    from .api import design_names

    for name in design_names():
        print(name)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'HLS versus Hardware Construction' (DATE 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I").set_defaults(fn=_cmd_table1)

    def add_runner_args(p) -> None:
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="measure design points across N worker "
                            "processes (output is byte-identical to serial)")
        p.add_argument("--cache", metavar="DIR",
                       help="content-addressed artifact cache directory "
                            "(reused across runs and commands)")
        p.add_argument("--checkpoint",
                       help="JSONL checkpoint path for this sweep")
        p.add_argument("--resume", action="store_true",
                       help="skip designs already in --checkpoint")
        p.add_argument("--inject-fault", action="append", metavar="NAME",
                       help="force this design to fail (repeatable)")
        p.add_argument("--budget-s", type=float, default=None,
                       help="wall-clock budget per design, seconds")
        p.add_argument("--budget-cycles", type=int, default=None,
                       help="simulation-cycle budget per design")
        p.add_argument("--retries", type=int, default=1,
                       help="same-config retries per design (default 1)")
        p.add_argument("--max-tasks-per-child", type=int, default=64,
                       metavar="T",
                       help="recycle pool workers after T tasks each "
                            "(bounds worker memory; 0 disables)")
        p.add_argument("--chaos", metavar="SPEC",
                       help="seeded fault injection, e.g. "
                            "'seed=3,kill=0.5,corrupt=0.1' "
                            "(keys: seed, kill, poison, corrupt, flaky, "
                            "latency; kill/poison also take @substr "
                            "task-id targets)")
        p.add_argument("--engine", choices=_sim_engine_names(),
                       default="compiled",
                       help="simulator engine for every measurement "
                            "(see `python -m repro engines`)")
        p.add_argument("--fabric", metavar="URL",
                       help="route the sweep through a fabric master "
                            "(a `serve` instance) and its `work` "
                            "pull-workers instead of a local pool; "
                            "output stays byte-identical to serial")
        p.add_argument("--api-key", metavar="KEY",
                       help="QoS tenant credential sent to the --fabric "
                            "master (X-Api-Key header)")
        p.add_argument("--priority", type=int, default=0, metavar="P",
                       help="sweep priority within the tenant (higher "
                            "preempts lower at cell boundaries; default 0)")

    p_table2 = sub.add_parser("table2", help="regenerate Table II")
    p_table2.add_argument("--tools", nargs="*", help="restrict to tool keys")
    p_table2.add_argument("--csv", help="also write CSV to this path")
    p_table2.add_argument("--trace", help="write span trace (JSON lines)")
    p_table2.add_argument("--metrics",
                          help="write metrics + per-design phase timings (JSON)")
    p_table2.add_argument("--events",
                          help="write structured event log (JSON lines)")
    add_runner_args(p_table2)
    p_table2.set_defaults(fn=_cmd_table2)

    p_fig1 = sub.add_parser("fig1", help="regenerate Figure 1 (DSE)")
    p_fig1.add_argument("--full", action="store_true",
                        help="full 26/42/19-point sweeps")
    p_fig1.add_argument("--csv", help="also write CSV to this path")
    p_fig1.add_argument("--trace", help="write span trace (JSON lines)")
    p_fig1.add_argument("--metrics",
                        help="write metrics + per-design phase timings (JSON)")
    p_fig1.add_argument("--events",
                        help="write structured event log (JSON lines)")
    add_runner_args(p_fig1)
    p_fig1.set_defaults(fn=_cmd_fig1)

    p_verify = sub.add_parser("verify", help="verify one design by name")
    p_verify.add_argument("design")
    p_verify.add_argument("--engine", choices=_sim_engine_names(),
                          default="compiled",
                          help="simulator evaluation engine")
    p_verify.add_argument("--cache", metavar="DIR",
                          help="content-addressed artifact cache directory "
                               "(warm verify reuses measurements)")
    p_verify.set_defaults(fn=_cmd_verify)

    p_engines = sub.add_parser(
        "engines", help="list registered evaluation engines")
    p_engines.add_argument("--json", action="store_true",
                           help="dump the canonical registry JSON "
                                "(matches GET /v1/engines byte-for-byte)")
    p_engines.set_defaults(fn=_cmd_engines)

    p_measure = sub.add_parser(
        "measure", help="fully characterize one design by name")
    p_measure.add_argument("design")
    p_measure.add_argument("--json", action="store_true",
                           help="dump the canonical Measured record "
                                "(matches POST /v1/measure byte-for-byte)")
    p_measure.add_argument("--cache", metavar="DIR",
                           help="content-addressed artifact cache directory")
    p_measure.set_defaults(fn=_cmd_measure)

    p_serve = sub.add_parser(
        "serve", help="run the asyncio evaluation service")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8349,
                         help="TCP port (0 picks a free one; the chosen "
                              "port is announced on stdout)")
    p_serve.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for sweep jobs")
    p_serve.add_argument("--cache", metavar="DIR",
                         help="artifact cache for warm starts and sweeps")
    p_serve.add_argument("--max-batch", type=int, default=16, metavar="B",
                         help="blocks per /v1/idct batch window (default 16)")
    p_serve.add_argument("--batch-wait-ms", type=float, default=5.0,
                         metavar="W",
                         help="max extra latency a request may wait for "
                              "its batch to fill (default 5 ms)")
    p_serve.add_argument("--max-inflight", type=int, default=64, metavar="Q",
                         help="admitted compute requests before 429")
    p_serve.add_argument("--max-jobs", type=int, default=8,
                         help="queued sweep jobs before 429")
    p_serve.add_argument("--budget-s", type=float, default=None,
                         help="wall-clock budget per request (504 past it)")
    p_serve.add_argument("--warm", action="append", metavar="NAME",
                         help="measure this design at startup (repeatable; "
                              "hits the cache when warm)")
    p_serve.add_argument("--drain-grace-s", type=float, default=30.0,
                         help="max seconds to finish in-flight work on "
                              "SIGTERM (default 30)")
    p_serve.add_argument("--journal", metavar="PATH",
                         help="JSONL write-ahead journal for sweep jobs; a "
                              "restarted server lists jobs it lost as "
                              "'interrupted'")
    p_serve.add_argument("--resume-jobs", action="store_true",
                         help="re-run journaled interrupted jobs at startup")
    p_serve.add_argument("--breaker-threshold", type=int, default=5,
                         metavar="N",
                         help="consecutive evaluator failures that open "
                              "the circuit breaker (default 5)")
    p_serve.add_argument("--breaker-cooldown-s", type=float, default=30.0,
                         help="seconds the breaker stays open before its "
                              "half-open probe (default 30)")
    p_serve.add_argument("--workers", type=int, default=1, metavar="N",
                         help="pre-forked evaluator worker processes; >1 "
                              "routes /v1/idct batches by (design, engine) "
                              "affinity under the kill/restart ladder "
                              "(default 1: in-process compute thread)")
    p_serve.add_argument("--worker-deadline-s", type=float, default=300.0,
                         help="per-batch wall deadline in the worker pool "
                              "before the soft-cancel→SIGTERM→SIGKILL "
                              "ladder engages (default 300)")
    p_serve.add_argument("--worker-crash-budget", type=int, default=None,
                         metavar="K",
                         help="total worker deaths tolerated before the "
                              "pool stops respawning and answers 503 "
                              "(default: scaled to the pool size)")
    p_serve.add_argument("--chaos", metavar="SPEC",
                         help="seeded fault injection for drills, e.g. "
                              "'seed=3,flaky=0.5,latency=0.1'")
    p_serve.add_argument("--fabric-lease-s", type=float, default=30.0,
                         metavar="S",
                         help="fabric task lease duration; a pull-worker "
                              "silent this long is presumed dead and its "
                              "task re-queues (default 30)")
    p_serve.add_argument("--api-keys", metavar="FILE",
                         help="JSON keyring mapping API keys to QoS "
                              "tenants (weight, rate, burst, quota, "
                              "priority); requests without a key run as "
                              "the anonymous tenant")
    p_serve.add_argument("--quota", type=int, default=None, metavar="N",
                         help="queued+running sweep jobs per anonymous "
                              "tenant before 429 (default: unlimited)")
    p_serve.add_argument("--rate", type=int, default=0, metavar="R",
                         help="anonymous-tenant request rate per second, "
                              "token bucket (default 0: unlimited)")
    p_serve.add_argument("--burst", type=int, default=8, metavar="B",
                         help="anonymous-tenant token-bucket burst "
                              "(default 8)")
    p_serve.add_argument("--weight", type=int, default=1, metavar="W",
                         help="anonymous-tenant fair-share weight "
                              "(default 1)")
    p_serve.set_defaults(fn=_cmd_serve)

    p_work = sub.add_parser(
        "work", help="run a fabric pull-worker against a serve master")
    p_work.add_argument("--master", required=True, metavar="URL",
                        help="fabric master address, e.g. 127.0.0.1:8349 "
                             "(a `serve` instance)")
    p_work.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="forked worker processes; dead ones respawn "
                             "under a crash budget (default 1)")
    p_work.add_argument("--batch", type=int, default=1, metavar="B",
                        help="tasks leased per pull (default 1)")
    p_work.add_argument("--cache", metavar="DIR",
                        help="local artifact cache; entries written per "
                             "task are uploaded to the master's "
                             "content-addressed store")
    p_work.add_argument("--poll-s", type=float, default=0.2, metavar="S",
                        help="idle poll interval (default 0.2)")
    p_work.add_argument("--max-idle-s", type=float, default=None,
                        metavar="S",
                        help="exit after this long without work "
                             "(default: wait until the master goes away)")
    p_work.add_argument("--once", action="store_true",
                        help="exit at the first idle poll after having "
                             "completed work (smoke tests)")
    p_work.add_argument("--chaos", metavar="SPEC",
                        help="seeded fault injection for drills "
                             "(kill= SIGKILLs this worker mid-lease)")
    p_work.set_defaults(fn=_cmd_work)

    p_chaos = sub.add_parser(
        "chaos", help="run a chaos drill asserting the honest-failure "
                      "invariant")
    p_chaos.add_argument("scenario",
                         choices=("worker-kill", "cache-rot", "serve-flaky",
                                  "serve-kill", "batch-engine",
                                  "fabric-kill", "qos-storm", "all"))
    p_chaos.add_argument("--seed", type=int, default=3,
                         help="chaos policy seed (default 3)")
    p_chaos.add_argument("--jobs", type=int, default=2,
                         help="worker processes for the chaotic sweep "
                              "(default 2)")
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_profile = sub.add_parser(
        "profile", help="trace one design through the pipeline")
    p_profile.add_argument("design")
    p_profile.add_argument("--json", action="store_true",
                           help="machine-readable profile (span tree, phase "
                                "breakdown, metrics) on stdout")
    p_profile.add_argument("--trace", help="write span trace (JSON lines)")
    p_profile.add_argument("--metrics", help="write metrics JSON")
    p_profile.set_defaults(fn=_cmd_profile)

    p_obs = sub.add_parser(
        "obs", help="inspect exported observability artifacts")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_tail = obs_sub.add_parser(
        "tail", help="print events from a --events JSONL export")
    p_tail.add_argument("file", help="event log path (JSON lines)")
    p_tail.add_argument("--type", help="only events of this type "
                                       "(e.g. cell.done, worker.restart)")
    p_tail.add_argument("--limit", type=int, default=0, metavar="N",
                        help="only the last N matching events")
    p_tail.set_defaults(fn=_cmd_obs_tail)

    p_tree = obs_sub.add_parser(
        "tree", help="render the span tree from a --trace JSONL export")
    p_tree.add_argument("trace_id", nargs="?", default=None,
                        help="trace id to assemble (default: the only one)")
    p_tree.add_argument("--trace", default="trace.jsonl",
                        help="span trace path (default: trace.jsonl)")
    p_tree.set_defaults(fn=_cmd_obs_tree)

    p_diff = obs_sub.add_parser(
        "diff", help="diff two --metrics JSON exports")
    p_diff.add_argument("a", help="baseline metrics JSON")
    p_diff.add_argument("b", help="candidate metrics JSON")
    p_diff.set_defaults(fn=_cmd_obs_diff)

    p_faults = sub.add_parser(
        "faults", help="fault-injection campaign against the verifier")
    p_faults.add_argument("design")
    p_faults.add_argument("--limit", type=int, default=64,
                          help="mutants to sample (default 64)")
    p_faults.add_argument("--seed", type=int, default=1,
                          help="campaign sampling seed")
    p_faults.add_argument("--report", help="write campaign report JSON")
    p_faults.add_argument("--min-detect", type=float, default=0.95,
                          help="required detection rate (default 0.95)")
    p_faults.add_argument("--smoke", action="store_true",
                          help="inject one output-bit flip and require "
                               "detection (fast CI check)")
    p_faults.set_defaults(fn=_cmd_faults)

    sub.add_parser("list", help="list design names").set_defaults(fn=_cmd_list)

    args = parser.parse_args(argv)
    from .api import UsageError
    from .core.errors import SweepInterrupted

    try:
        return args.fn(args)
    except UsageError as exc:
        # The bare message; the [design=…, phase=…] provenance suffix is
        # for failure records, not usage errors.
        print(exc.message or str(exc), file=sys.stderr)
        return 2
    except SweepInterrupted as exc:
        checkpoint = getattr(args, "checkpoint", None)
        print(f"sweep interrupted: {exc}", file=sys.stderr)
        if checkpoint:
            print(f"resume with: --checkpoint {checkpoint} --resume",
                  file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 3
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
