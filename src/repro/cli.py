"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1``            — print the tool classification (paper Table I);
* ``table2 [--tools ...] [--csv PATH] [--trace PATH] [--metrics PATH]``
  — regenerate the evaluation table (optionally with per-phase traces);
* ``fig1 [--full] [--csv PATH] [--trace PATH] [--metrics PATH]``
  — regenerate the DSE scatter;
* ``verify <design> [--engine interp|compiled]`` — build and verify one
  design by name; exits 1 on a compliance failure;
* ``profile <design> [--trace PATH] [--metrics PATH]`` — run one design
  through the full pipeline with tracing on and print the per-phase
  breakdown;
* ``list``              — list all registered design names.

Design names accept frontend-package aliases (``vlog-opt`` for
``verilog-opt``, ``hc-opt`` for ``chisel-opt``, ``rules-*`` for
``bsv-*``, ``flow-initial``/``flow-opt`` for ``xls-s0``/``xls-s8``).
"""

from __future__ import annotations

import argparse
import csv
import sys

__all__ = ["main"]

# Frontend package names double as design-name aliases for the paper's
# language names (the packages are named after the *paradigm*, the designs
# after the *language/tool*).
_PREFIX_ALIASES = {
    "vlog": "verilog",
    "hc": "chisel",
    "rules": "bsv",
    "flow": "xls",
}
_NAME_ALIASES = {
    "xls-initial": "xls-s0",
    "xls-opt": "xls-s8",
}


def _canonical_name(name: str) -> str:
    prefix, _, rest = name.partition("-")
    if rest and prefix in _PREFIX_ALIASES:
        name = f"{_PREFIX_ALIASES[prefix]}-{rest}"
    return _NAME_ALIASES.get(name, name)


def _design_registry() -> dict:
    from .eval.experiments import PAIRS

    registry = {}
    for key, factory in PAIRS.items():
        initial, optimized = factory()
        registry[initial.name] = initial
        registry[optimized.name] = optimized
    return registry


def _find_design(name: str):
    """Build design pairs lazily until ``name`` (alias-aware) matches.

    Returns ``(design, factory)`` so callers can rebuild the pair (e.g.
    under tracing), or ``(None, None)`` when the name is unknown.
    """
    from .eval.experiments import PAIRS

    wanted = _canonical_name(name)
    for factory in PAIRS.values():
        for design in factory():
            if design.name == wanted:
                return design, factory
    return None, None


def _cmd_table1(_args) -> int:
    from .eval import render_table1

    print(render_table1())
    return 0


def _obs_begin(args) -> bool:
    """Enable instrumentation when an export flag asks for it."""
    if not (getattr(args, "trace", None) or getattr(args, "metrics", None)):
        return False
    from . import obs

    obs.clear()
    obs.enable()
    return True


def _obs_finish(args, active: bool) -> None:
    """Export the requested artifacts and disable instrumentation."""
    if not active:
        return
    from . import obs
    from .obs.report import write_metrics_json, write_trace_jsonl

    if args.trace:
        count = write_trace_jsonl(args.trace)
        print(f"wrote {count} trace records to {args.trace}")
    if args.metrics:
        write_metrics_json(args.metrics)
        print(f"wrote metrics to {args.metrics}")
    obs.disable()


def _cmd_table2(args) -> int:
    from .eval import generate_table2, render_table2

    tracing = _obs_begin(args)
    table = generate_table2(tools=args.tools or None)
    print(render_table2(table))
    if args.csv:
        with open(args.csv, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow([
                "tool", "config", "loc", "fmax_mhz", "latency", "periodicity",
                "throughput_mops", "area", "lut_star", "ff_star", "lut", "ff",
                "dsp", "n_io", "quality", "automation_pct",
                "controllability_pct", "flexibility",
            ])
            for key, column in table.columns.items():
                for measured, alpha in (
                    (column.initial, column.automation_initial),
                    (column.optimized, column.automation_opt),
                ):
                    writer.writerow([
                        key, measured.config, measured.loc,
                        round(measured.fmax_mhz, 2), measured.latency,
                        measured.periodicity,
                        round(measured.throughput_mops, 3), measured.area,
                        measured.lut_star, measured.ff_star, measured.lut,
                        measured.ff, measured.dsp, measured.n_io,
                        round(measured.quality, 1), round(alpha, 1),
                        round(column.controllability, 1),
                        round(column.flexibility, 1),
                    ])
        print(f"\nwrote {args.csv}")
    _obs_finish(args, tracing)
    return 0


def _cmd_fig1(args) -> int:
    from .eval.experiments import generate_fig1, render_fig1

    tracing = _obs_begin(args)
    if args.full:
        series = generate_fig1(bsc_configs=26, bambu_configs=42, xls_stages=18)
    else:
        series = generate_fig1(bsc_configs=4, bambu_configs=6, xls_stages=8)
    print(render_fig1(series))
    if args.csv:
        with open(args.csv, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["tool", "config", "throughput_mops", "area"])
            for entry in series:
                for config, throughput, area in entry.points:
                    writer.writerow([entry.tool, config,
                                     round(throughput, 3), area])
        print(f"\nwrote {args.csv}")
    _obs_finish(args, tracing)
    return 0


def _cmd_verify(args) -> int:
    from .core.errors import EvaluationError
    from .eval import measure_design

    design, _factory = _find_design(args.design)
    if design is None:
        print(f"unknown design {args.design!r}; try `python -m repro list`",
              file=sys.stderr)
        return 2
    try:
        measured = measure_design(design, use_cache=False, engine=args.engine)
    except EvaluationError as exc:
        print(f"{design.name}: COMPLIANCE FAILURE — {exc}", file=sys.stderr)
        return 1
    status = "OK (bit-exact)" if measured.bit_exact else "MISMATCH"
    print(f"{design.name}: {status}  [engine={args.engine}]")
    print(f"  latency {measured.latency} cycles, periodicity "
          f"{measured.periodicity} cycles")
    print(f"  fmax {measured.fmax_mhz:.2f} MHz, throughput "
          f"{measured.throughput_mops:.2f} MOPS")
    print(f"  area {measured.area} (N*LUT {measured.lut_star} + "
          f"N*FF {measured.ff_star}), {measured.dsp} DSP, {measured.n_io} IO")
    return 0 if measured.bit_exact else 1


def _cmd_profile(args) -> int:
    from . import obs
    from .eval import measure_design
    from .obs.report import render_profile, write_metrics_json, write_trace_jsonl

    design, factory = _find_design(args.design)
    if design is None:
        print(f"unknown design {args.design!r}; try `python -m repro list`",
              file=sys.stderr)
        return 2

    obs.clear()
    obs.enable()
    try:
        # Rebuild the pair under tracing so the frontend.build phase is
        # part of the profile, then measure the requested point.
        for rebuilt in factory():
            if rebuilt.name == design.name:
                design = rebuilt
        measured = measure_design(design, use_cache=False)
        print(f"profile of {design.name} "
              f"({design.language}/{design.tool}, {design.config})")
        print(f"  bit-exact: {measured.bit_exact}  "
              f"latency {measured.latency}  periodicity {measured.periodicity}  "
              f"fmax {measured.fmax_mhz:.2f} MHz")
        print()
        print(render_profile())
        if args.trace:
            count = write_trace_jsonl(args.trace)
            print(f"\nwrote {count} trace records to {args.trace}")
        if args.metrics:
            write_metrics_json(args.metrics)
            print(f"wrote metrics to {args.metrics}")
    finally:
        obs.disable()
    return 0


def _cmd_list(_args) -> int:
    for name in sorted(_design_registry()):
        print(name)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'HLS versus Hardware Construction' (DATE 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I").set_defaults(fn=_cmd_table1)

    p_table2 = sub.add_parser("table2", help="regenerate Table II")
    p_table2.add_argument("--tools", nargs="*", help="restrict to tool keys")
    p_table2.add_argument("--csv", help="also write CSV to this path")
    p_table2.add_argument("--trace", help="write span trace (JSON lines)")
    p_table2.add_argument("--metrics",
                          help="write metrics + per-design phase timings (JSON)")
    p_table2.set_defaults(fn=_cmd_table2)

    p_fig1 = sub.add_parser("fig1", help="regenerate Figure 1 (DSE)")
    p_fig1.add_argument("--full", action="store_true",
                        help="full 26/42/19-point sweeps")
    p_fig1.add_argument("--csv", help="also write CSV to this path")
    p_fig1.add_argument("--trace", help="write span trace (JSON lines)")
    p_fig1.add_argument("--metrics",
                        help="write metrics + per-design phase timings (JSON)")
    p_fig1.set_defaults(fn=_cmd_fig1)

    p_verify = sub.add_parser("verify", help="verify one design by name")
    p_verify.add_argument("design")
    p_verify.add_argument("--engine", choices=("compiled", "interp"),
                          default="compiled",
                          help="simulator evaluation engine")
    p_verify.set_defaults(fn=_cmd_verify)

    p_profile = sub.add_parser(
        "profile", help="trace one design through the pipeline")
    p_profile.add_argument("design")
    p_profile.add_argument("--trace", help="write span trace (JSON lines)")
    p_profile.add_argument("--metrics", help="write metrics JSON")
    p_profile.set_defaults(fn=_cmd_profile)

    sub.add_parser("list", help="list design names").set_defaults(fn=_cmd_list)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
