"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1``            — print the tool classification (paper Table I);
* ``table2 [--tools ...] [--csv PATH]`` — regenerate the evaluation table;
* ``fig1 [--full] [--csv PATH]``        — regenerate the DSE scatter;
* ``verify <design>``   — build and verify one design by name;
* ``list``              — list all registered design names.
"""

from __future__ import annotations

import argparse
import csv
import sys

__all__ = ["main"]


def _design_registry() -> dict:
    from .eval.experiments import PAIRS

    registry = {}
    for key, factory in PAIRS.items():
        initial, optimized = factory()
        registry[initial.name] = initial
        registry[optimized.name] = optimized
    return registry


def _cmd_table1(_args) -> int:
    from .eval import render_table1

    print(render_table1())
    return 0


def _cmd_table2(args) -> int:
    from .eval import generate_table2, render_table2

    table = generate_table2(tools=args.tools or None)
    print(render_table2(table))
    if args.csv:
        with open(args.csv, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow([
                "tool", "config", "loc", "fmax_mhz", "latency", "periodicity",
                "throughput_mops", "area", "lut_star", "ff_star", "lut", "ff",
                "dsp", "n_io", "quality", "automation_pct",
                "controllability_pct", "flexibility",
            ])
            for key, column in table.columns.items():
                for measured, alpha in (
                    (column.initial, column.automation_initial),
                    (column.optimized, column.automation_opt),
                ):
                    writer.writerow([
                        key, measured.config, measured.loc,
                        round(measured.fmax_mhz, 2), measured.latency,
                        measured.periodicity,
                        round(measured.throughput_mops, 3), measured.area,
                        measured.lut_star, measured.ff_star, measured.lut,
                        measured.ff, measured.dsp, measured.n_io,
                        round(measured.quality, 1), round(alpha, 1),
                        round(column.controllability, 1),
                        round(column.flexibility, 1),
                    ])
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_fig1(args) -> int:
    from .eval.experiments import generate_fig1, render_fig1

    if args.full:
        series = generate_fig1(bsc_configs=26, bambu_configs=42, xls_stages=18)
    else:
        series = generate_fig1(bsc_configs=4, bambu_configs=6, xls_stages=8)
    print(render_fig1(series))
    if args.csv:
        with open(args.csv, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["tool", "config", "throughput_mops", "area"])
            for entry in series:
                for config, throughput, area in entry.points:
                    writer.writerow([entry.tool, config,
                                     round(throughput, 3), area])
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_verify(args) -> int:
    from .eval import measure_design

    registry = _design_registry()
    design = registry.get(args.design)
    if design is None:
        print(f"unknown design {args.design!r}; try `python -m repro list`",
              file=sys.stderr)
        return 2
    measured = measure_design(design)
    status = "OK (bit-exact)" if measured.bit_exact else "MISMATCH"
    print(f"{design.name}: {status}")
    print(f"  latency {measured.latency} cycles, periodicity "
          f"{measured.periodicity} cycles")
    print(f"  fmax {measured.fmax_mhz:.2f} MHz, throughput "
          f"{measured.throughput_mops:.2f} MOPS")
    print(f"  area {measured.area} (N*LUT {measured.lut_star} + "
          f"N*FF {measured.ff_star}), {measured.dsp} DSP, {measured.n_io} IO")
    return 0 if measured.bit_exact else 1


def _cmd_list(_args) -> int:
    for name in sorted(_design_registry()):
        print(name)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'HLS versus Hardware Construction' (DATE 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I").set_defaults(fn=_cmd_table1)

    p_table2 = sub.add_parser("table2", help="regenerate Table II")
    p_table2.add_argument("--tools", nargs="*", help="restrict to tool keys")
    p_table2.add_argument("--csv", help="also write CSV to this path")
    p_table2.set_defaults(fn=_cmd_table2)

    p_fig1 = sub.add_parser("fig1", help="regenerate Figure 1 (DSE)")
    p_fig1.add_argument("--full", action="store_true",
                        help="full 26/42/19-point sweeps")
    p_fig1.add_argument("--csv", help="also write CSV to this path")
    p_fig1.set_defaults(fn=_cmd_fig1)

    p_verify = sub.add_parser("verify", help="verify one design by name")
    p_verify.add_argument("design")
    p_verify.set_defaults(fn=_cmd_verify)

    sub.add_parser("list", help="list design names").set_defaults(fn=_cmd_list)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
