"""First-class registry of evaluation engines.

Before this module, engine names were loose string literals scattered
across :mod:`repro.sim.simulator` (``"compiled"``/``"interp"``),
:mod:`repro.serve.evaluator` (``"model"``/``"sim"``) and the CLI, each
with its own validation and error type.  The registry is now the one
source of truth for

* which engines exist (:data:`ENGINES`, ordered),
* what each one *is* (:class:`EngineSpec`: summary + capability flags
  ``batchable`` / ``bit_exact_reference`` / ``warm_start``),
* where each one is accepted (``contexts``: ``"sim"`` engines drive a
  :class:`~repro.sim.simulator.Simulator`, ``"serve"`` engines answer
  ``/v1/idct`` batches), and
* how a user-supplied name is validated (:func:`resolve_engine`, with
  difflib near-miss suggestions mirroring
  :func:`repro.api.resolve_design`).

Serialization follows the one-serialization-path rule:
:func:`render_engines_json` is the single JSON rendering used by both
``python -m repro engines --json`` and ``GET /v1/engines``, so the two
surfaces are byte-identical by construction.

Raw engine strings keep working everywhere — they are the *input* to
:func:`resolve_engine` — but call sites should validate through the
registry rather than comparing literals.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass

from .core.errors import UsageError

__all__ = [
    "EngineSpec",
    "UnknownEngineError",
    "ENGINES",
    "engine_specs",
    "engine_names",
    "resolve_engine",
    "default_engine",
    "engines_payload",
    "render_engines_json",
]


class UnknownEngineError(UsageError, ValueError):
    """No registered engine matches the requested name (CLI exit 2).

    Also subclasses :class:`ValueError` so pre-registry call sites that
    documented ``ValueError`` for a bad engine string (the serve
    evaluator, the worker pool) keep their exception contract.
    """

    def __init__(self, message: str, *, name: str,
                 suggestions: list[str] | None = None) -> None:
        super().__init__(message, phase="api.resolve_engine")
        self.name = name
        self.suggestions = suggestions or []


@dataclass(frozen=True)
class EngineSpec:
    """One registered evaluation engine.

    ``contexts`` lists the surfaces that accept the engine: ``"sim"``
    (``Simulator``/``verify``/``measure``/``fig1``/``table2``) and
    ``"serve"`` (``/v1/idct`` and ``Session.idct``).  Capability flags:

    batchable:
        Evaluates many input blocks per invocation (the micro-batcher
        coalesces same-engine requests into one call).
    bit_exact_reference:
        The semantics oracle other engines are asserted against.
    warm_start:
        Requires a per-design warm-up proof before first use (the serve
        model engine's licensing run).
    """

    name: str
    summary: str
    contexts: tuple[str, ...]
    batchable: bool = False
    bit_exact_reference: bool = False
    warm_start: bool = False
    default_for: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "summary": self.summary,
            "contexts": list(self.contexts),
            "capabilities": {
                "batchable": self.batchable,
                "bit_exact_reference": self.bit_exact_reference,
                "warm_start": self.warm_start,
            },
            "default_for": list(self.default_for),
        }


ENGINES: tuple[EngineSpec, ...] = (
    EngineSpec(
        name="interp",
        summary="reference IR interpreter; the semantics oracle every "
                "other engine is asserted bit-exact against",
        contexts=("sim",),
        bit_exact_reference=True,
    ),
    EngineSpec(
        name="compiled",
        summary="netlist levelized and compiled to straight-line Python; "
                "one input block per settle/tick pass",
        contexts=("sim",),
        default_for=("sim",),
    ),
    EngineSpec(
        name="batch",
        summary="lane-packed compiled netlist (repro.sim.batch); B blocks "
                "per settle/tick pass on bigint SWAR lanes",
        contexts=("sim", "serve"),
        batchable=True,
    ),
    EngineSpec(
        name="model",
        summary="vectorized golden Chen-Wang IDCT model, licensed per "
                "design by a warm-start bit-exactness proof",
        contexts=("serve",),
        batchable=True,
        warm_start=True,
        default_for=("serve",),
    ),
    EngineSpec(
        name="sim",
        summary="streamed scalar compiled simulator behind the AXI-Stream "
                "harness (the serve tier's cycle-accurate path)",
        contexts=("serve",),
    ),
)

_BY_NAME = {spec.name: spec for spec in ENGINES}


def engine_specs(context: str | None = None) -> tuple[EngineSpec, ...]:
    """Registered engines, optionally restricted to one context."""
    if context is None:
        return ENGINES
    return tuple(s for s in ENGINES if context in s.contexts)


def engine_names(context: str | None = None) -> tuple[str, ...]:
    """Registered engine names, optionally restricted to one context."""
    return tuple(s.name for s in engine_specs(context))


def default_engine(context: str) -> str:
    """The default engine name for ``context``."""
    for spec in ENGINES:
        if context in spec.default_for:
            return spec.name
    raise ValueError(f"no default engine registered for context {context!r}")


def resolve_engine(name: str, context: str | None = None) -> str:
    """Validate ``name`` against the registry; returns the canonical name.

    Raises :class:`UnknownEngineError` (also a ``ValueError``) with
    near-miss suggestions when no engine matches, or when the engine
    exists but is not available in ``context``.
    """
    spec = _BY_NAME.get(name)
    if spec is not None and (context is None or context in spec.contexts):
        return spec.name
    valid = engine_names(context)
    if spec is not None:
        raise UnknownEngineError(
            f"engine {name!r} is not available here "
            f"(choices: {', '.join(valid)})",
            name=name, suggestions=list(valid))
    close = difflib.get_close_matches(name, engine_names(), n=3, cutoff=0.5)
    hint = f"; did you mean {', '.join(close)}?" if close else ""
    raise UnknownEngineError(
        f"unknown engine {name!r}{hint} (choices: {', '.join(valid)})",
        name=name, suggestions=close)


def engines_payload() -> dict:
    """The canonical engines listing (dict form, registry order)."""
    return {"engines": [spec.to_dict() for spec in ENGINES]}


def render_engines_json() -> str:
    """The one JSON serialization of the registry.

    ``python -m repro engines --json`` and ``GET /v1/engines`` both emit
    exactly this string, keeping the two surfaces byte-identical.
    """
    return json.dumps(engines_payload(), indent=2, sort_keys=True) + "\n"
