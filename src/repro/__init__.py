"""repro — reproduction of "High-Level Synthesis versus Hardware Construction".

A Python EDA framework reproducing the DATE 2023 study by Kamkin et al.:
an RTL IR with a cycle-accurate simulator and an FPGA synthesis cost model,
six frontend "languages" modeled after the paper's tools (Verilog baseline,
Chisel-like HC, BSV-like rules, DSLX/XLS-like functional flow, MaxJ-like
dataflow, mini-C HLS), 8x8 IDCT designs in each, AXI-Stream system wrappers,
and the evaluation harness that regenerates the paper's Table I, Table II,
and Figure 1.
"""

__version__ = "1.0.0"

from .core.bits import BV

__all__ = ["BV", "__version__"]
