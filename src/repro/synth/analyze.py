"""Netlist-level synthesis analysis: area accumulation and static timing.

The analyzer walks every expression in the flat netlist exactly once per
node *object* — a shared node is one physical circuit with fan-out, while
two structurally identical but distinct objects are two circuits, matching
synthesis without cross-boundary resource sharing.

DSP allocation mirrors the paper's ``maxdsp`` Vivado knob: variable
multipliers are granted DSP slices biggest-first until the budget runs out;
the rest fall back to fabric logic.  ``max_dsp=0`` reproduces the paper's
normalized-area measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.errors import SynthesisError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..rtl.elaborate import Netlist
from ..rtl.ir import BinOp, Cat, Const, Expr, Ext, MemRead, Mux, Ref, Signal, Slice, UnOp
from ..rtl.module import Memory
from .cost import is_dsp_candidate, mult_dsp_count, node_cost
from .device import XCVU9P, Device
from .tech import ULTRASCALE_PLUS, Tech

__all__ = ["SynthReport", "synthesize", "normalized_area"]


@dataclass
class SynthReport:
    """Synthesis estimate for one netlist (one ``maxdsp`` setting)."""

    name: str
    n_lut: int
    n_ff: int
    n_dsp: int
    n_bram: int
    n_io: int
    t_clk_ns: float
    critical_path: list[str] = field(default_factory=list)

    @property
    def fmax_mhz(self) -> float:
        """Maximum clock frequency implied by the critical path."""
        return 1000.0 / self.t_clk_ns

    @property
    def area(self) -> int:
        """The paper's area indicator for this run: N_LUT + N_FF."""
        return self.n_lut + self.n_ff

    def utilization(self, device: Device = XCVU9P) -> dict[str, float]:
        return device.utilization(self.n_lut, self.n_ff, self.n_dsp, min(self.n_io, device.n_io))

    def summary(self) -> str:
        return (
            f"{self.name}: {self.n_lut} LUT, {self.n_ff} FF, {self.n_dsp} DSP, "
            f"{self.n_bram} BRAM, Tclk={self.t_clk_ns:.2f}ns "
            f"(fmax={self.fmax_mhz:.2f} MHz)"
        )


def _children(expr: Expr) -> tuple[Expr, ...]:
    if isinstance(expr, BinOp):
        return (expr.a, expr.b)
    if isinstance(expr, UnOp):
        return (expr.a,)
    if isinstance(expr, Mux):
        return (expr.sel, expr.if_true, expr.if_false)
    if isinstance(expr, Cat):
        return expr.parts
    if isinstance(expr, (Slice, Ext)):
        return (expr.a,)
    if isinstance(expr, MemRead):
        return (expr.addr,)
    return ()


def _collect_nodes(roots: list[Expr]) -> list[Expr]:
    """Unique expression nodes (by object identity), children first."""
    seen: set[int] = set()
    ordered: list[Expr] = []

    def visit(node: Expr) -> None:
        key = id(node)
        if key in seen:
            return
        seen.add(key)
        for child in _children(node):
            visit(child)
        ordered.append(node)

    for root in roots:
        visit(root)
    return ordered


def _memory_area(mem: Memory, tech: Tech) -> tuple[float, int]:
    """(LUTs, BRAMs) consumed by one memory block."""
    if mem.size_bits > tech.bram_threshold_bits:
        brams = max(1, math.ceil(mem.size_bits / tech.bram_bits))
        return 0.0, brams
    luts = mem.size_bits / tech.lutram_bits_per_lut
    # Write decode/enable logic per write port.
    luts += len(mem.writes) * max(1.0, mem.depth / 8)
    return luts, 0


def synthesize(
    netlist: Netlist,
    tech: Tech = ULTRASCALE_PLUS,
    device: Device = XCVU9P,
    max_dsp: int | None = None,
) -> SynthReport:
    """Estimate area and timing for ``netlist``.

    ``max_dsp`` caps DSP inference (``0`` disables it, ``None`` means the
    device limit).  Raises :class:`SynthesisError` when the design cannot
    fit the device.
    """
    with obs_trace.span("synth", netlist=netlist.name,
                        max_dsp="device" if max_dsp is None else max_dsp) as sp:
        return _synthesize_traced(netlist, tech, device, max_dsp, sp)


def _synthesize_traced(netlist, tech, device, max_dsp, sp) -> SynthReport:
    roots: list[Expr] = [expr for _sig, expr in netlist.assigns]
    for reg in netlist.registers:
        roots.append(reg.next)
        if reg.en is not None:
            roots.append(reg.en)
    for mem in netlist.memories:
        for write in mem.writes:
            roots.extend((write.en, write.addr, write.data))

    map_span = obs_trace.span("synth.map", netlist=netlist.name)
    map_span.__enter__()
    nodes = _collect_nodes(roots)

    # ------------------------------------------------------------------
    # DSP budget allocation: biggest variable multipliers first.
    # ------------------------------------------------------------------
    budget = device.n_dsp if max_dsp is None else min(max_dsp, device.n_dsp)
    mults = [node for node in nodes if is_dsp_candidate(node, tech)]
    mults.sort(key=lambda n: (-(n.a.width * n.b.width), id(n)))
    dsp_mapped: set[int] = set()
    used_dsp = 0
    for node in mults:
        need = mult_dsp_count(node, tech)  # type: ignore[arg-type]
        if used_dsp + need <= budget:
            dsp_mapped.add(id(node))
            used_dsp += need

    # ------------------------------------------------------------------
    # Area accumulation.
    # ------------------------------------------------------------------
    luts = 0.0
    costs: dict[int, float] = {}
    for node in nodes:
        cost = node_cost(node, tech, allow_dsp=id(node) in dsp_mapped)
        luts += cost.luts
        costs[id(node)] = cost.delay
    n_ff = sum(reg.signal.width for reg in netlist.registers)
    n_bram = 0
    for mem in netlist.memories:
        mem_luts, mem_brams = _memory_area(mem, tech)
        luts += mem_luts
        n_bram += mem_brams
    map_span.set(cells=len(nodes), dsp=used_dsp)
    map_span.__exit__(None, None, None)

    # ------------------------------------------------------------------
    # Static timing: arrival times over the DAG in dependency order.
    # ------------------------------------------------------------------
    sta_span = obs_trace.span("synth.sta", netlist=netlist.name)
    sta_span.__enter__()
    arrival_sig: dict[Signal, float] = {}
    for sig in netlist.inputs:
        arrival_sig[sig] = 0.0
    for reg in netlist.registers:
        arrival_sig[reg.signal] = tech.t_clk_to_q

    arrival_node: dict[int, float] = {}

    def arrival(node: Expr) -> float:
        key = id(node)
        cached = arrival_node.get(key)
        if cached is not None:
            return cached
        if isinstance(node, Ref):
            value = arrival_sig.get(node.signal, 0.0)
        else:
            base = max((arrival(child) for child in _children(node)), default=0.0)
            value = base + costs[key]
        arrival_node[key] = value
        return value

    for sig, expr in netlist.comb_order():
        arrival_sig[sig] = arrival(expr)

    critical = 0.0
    critical_name = ""
    def consider(value: float, name: str) -> None:
        nonlocal critical, critical_name
        if value > critical:
            critical = value
            critical_name = name

    for reg in netlist.registers:
        consider(arrival(reg.next) + tech.t_setup, f"reg {reg.signal.name}")
        if reg.en is not None:
            consider(arrival(reg.en) + tech.t_setup, f"reg {reg.signal.name} (en)")
    for mem in netlist.memories:
        for write in mem.writes:
            for expr in (write.en, write.addr, write.data):
                consider(arrival(expr) + tech.t_setup, f"mem {mem.name} write")
    for sig in netlist.outputs:
        consider(arrival_sig.get(sig, 0.0) + tech.t_setup, f"output {sig.name}")

    t_clk = critical * tech.routing_factor + tech.clock_overhead
    sta_span.set(t_clk_ns=round(t_clk, 3))
    sta_span.__exit__(None, None, None)

    n_lut = int(round(luts))
    report = SynthReport(
        name=netlist.name,
        n_lut=n_lut,
        n_ff=n_ff,
        n_dsp=used_dsp,
        n_bram=n_bram,
        n_io=netlist.n_io,
        t_clk_ns=t_clk,
        critical_path=[critical_name] if critical_name else [],
    )
    if not device.fits(n_lut, n_ff, used_dsp, min(report.n_io, device.n_io)):
        raise SynthesisError(
            f"{netlist.name} does not fit {device.name}: {report.summary()}"
        )
    if obs_trace.enabled():
        obs_metrics.inc("synth.runs")
        obs_metrics.inc("synth.cells_mapped", len(nodes))
        obs_metrics.inc("synth.dsp_used", used_dsp)
        obs_metrics.observe("synth.t_clk_ns", t_clk)
        sp.set(n_lut=n_lut, n_ff=n_ff, n_dsp=used_dsp,
               t_clk_ns=round(t_clk, 3))
    return report


def normalized_area(
    netlist: Netlist,
    tech: Tech = ULTRASCALE_PLUS,
    device: Device = XCVU9P,
) -> int:
    """The paper's A = N*_LUT + N*_FF measured with DSP inference disabled."""
    report = synthesize(netlist, tech, device, max_dsp=0)
    return report.n_lut + report.n_ff
