"""FPGA device resource envelopes."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Device", "XCVU9P"]


@dataclass(frozen=True)
class Device:
    """Available resources of a target part (the paper's Table-less §IV data)."""

    name: str
    n_lut: int
    n_ff: int
    n_dsp: int
    n_io: int
    n_bram: int

    def utilization(self, luts: int, ffs: int, dsps: int, ios: int) -> dict[str, float]:
        """Fractional utilization per resource class (1.0 == full)."""
        return {
            "lut": luts / self.n_lut,
            "ff": ffs / self.n_ff,
            "dsp": dsps / self.n_dsp if self.n_dsp else 0.0,
            "io": ios / self.n_io,
        }

    def fits(self, luts: int, ffs: int, dsps: int, ios: int) -> bool:
        """True when the design fits in the part."""
        return (
            luts <= self.n_lut
            and ffs <= self.n_ff
            and dsps <= self.n_dsp
            and ios <= self.n_io
        )


#: Xilinx Virtex UltraScale+ XCVU9P-FLGB2104-2-E, as used in the paper.
XCVU9P = Device(
    name="xcvu9p-flgb2104-2-e",
    n_lut=1_182_240,
    n_ff=2_364_480,
    n_dsp=6_840,
    n_io=702,
    n_bram=2_160,
)
