"""Per-node area and delay formulas (technology mapping model).

Each RTL expression node maps to fabric resources: carry chains for
adders/comparators, LUT trees for logic and muxes, DSP slices or partial
product arrays for multipliers.  Constant multiplication is special-cased
into a canonical-signed-digit shift-add tree — the dominant area term of a
DSP-disabled IDCT, which the paper's normalized area metric relies on.

Only the node itself is costed here; :mod:`repro.synth.analyze` walks the
netlist DAG (shared nodes counted once, duplicated nodes counted per copy,
like real synthesis without resource sharing) and accumulates totals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..rtl.ir import (
    BinOp,
    BinOpKind,
    Cat,
    Const,
    Expr,
    Ext,
    MemRead,
    Mux,
    Ref,
    Slice,
    UnOp,
    UnOpKind,
)
from .tech import Tech

__all__ = ["NodeCost", "node_cost", "is_variable_mult", "is_dsp_candidate", "mult_dsp_count"]

_LOGIC_BINOPS = {BinOpKind.AND, BinOpKind.OR, BinOpKind.XOR}
_CARRY_COMPARES = {
    BinOpKind.ULT, BinOpKind.ULE, BinOpKind.UGT, BinOpKind.UGE,
    BinOpKind.SLT, BinOpKind.SLE, BinOpKind.SGT, BinOpKind.SGE,
}
_EQ_COMPARES = {BinOpKind.EQ, BinOpKind.NE}
_SHIFTS = {BinOpKind.SHL, BinOpKind.LSHR, BinOpKind.ASHR}
_MULS = {BinOpKind.MUL, BinOpKind.MULS}


@dataclass(frozen=True)
class NodeCost:
    """Resources and propagation delay of one mapped node."""

    luts: float
    dsps: int
    delay: float  # ns through the node (input-to-output)


def _adder_delay(width: int, tech: Tech) -> float:
    """Carry-chain delay of a ``width``-bit add/sub/compare."""
    return tech.t_carry_base + width * tech.t_carry_bit + tech.t_lut + tech.t_net


def _tree_levels(fanin: int, arity: int = 6) -> int:
    """Depth of a reduction tree over ``fanin`` items with LUT ``arity``."""
    if fanin <= 1:
        return 0
    return max(1, math.ceil(math.log(fanin, arity)))


def _csd_digits(value: int, tech: Tech) -> int:
    """Estimated non-zero canonical-signed-digit count of a constant."""
    value = abs(value)
    if value == 0:
        return 0
    ones = bin(value).count("1")
    return max(1, round(ones * tech.csd_digits_factor))


def is_variable_mult(expr: Expr) -> bool:
    """True for a multiplier with two non-constant operands."""
    return (
        isinstance(expr, BinOp)
        and expr.kind in _MULS
        and not isinstance(expr.a, Const)
        and not isinstance(expr.b, Const)
    )


def is_dsp_candidate(expr: Expr, tech: Tech) -> bool:
    """Multipliers worth a DSP slice: variable, or constant with a dense
    enough CSD form that a DSP beats the shift-add tree (what Vivado's
    inference does with the IDCT coefficients)."""
    if is_variable_mult(expr):
        return True
    if isinstance(expr, BinOp) and expr.kind in _MULS:
        const = expr.a if isinstance(expr.a, Const) else expr.b
        if isinstance(const, Const):
            value = const.value
            if expr.kind is BinOpKind.MULS and const.value >> (const.width - 1):
                value = const.value - (1 << const.width)
            return _csd_digits(value, tech) >= 3
    return False


def mult_dsp_count(expr: BinOp, tech: Tech) -> int:
    """DSP slices needed to map a multiplier (constant ones take one)."""
    if isinstance(expr.a, Const) or isinstance(expr.b, Const):
        return 1
    wa, wb = expr.a.width, expr.b.width
    if wa < wb:
        wa, wb = wb, wa
    return max(1, math.ceil(wa / tech.dsp_a_width) * math.ceil(wb / tech.dsp_b_width))


def _const_mult_cost(expr: BinOp, tech: Tech, allow_dsp: bool = False) -> NodeCost:
    """Constant multiplier: DSP slice when allowed and dense, else a
    canonical-signed-digit shift-add tree."""
    if allow_dsp and is_dsp_candidate(expr, tech) and not is_variable_mult(expr):
        return NodeCost(luts=0.0, dsps=1, delay=tech.t_dsp + tech.t_net)
    if isinstance(expr.a, Const):
        const, var = expr.a, expr.b
    else:
        const, var = expr.b, expr.a  # type: ignore[assignment]
    signed_value = const.value
    if expr.kind is BinOpKind.MULS and const.value >> (const.width - 1):
        signed_value = const.value - (1 << const.width)
    digits = _csd_digits(signed_value, tech)
    if digits <= 1:
        # Power of two (or zero): pure wiring.
        return NodeCost(luts=0.0, dsps=0, delay=0.0)
    adders = digits - 1
    width = var.width + const.width
    luts = adders * width * tech.luts_per_add_bit
    levels = max(1, math.ceil(math.log2(digits)))
    return NodeCost(luts=luts, dsps=0, delay=levels * _adder_delay(width, tech))


def _variable_mult_cost(expr: BinOp, tech: Tech, allow_dsp: bool) -> NodeCost:
    wa, wb = expr.a.width, expr.b.width
    if allow_dsp:
        dsps = mult_dsp_count(expr, tech)
        # Multi-DSP multipliers need partial product recombination adders.
        extra_levels = max(0, math.ceil(math.log2(dsps + 1)) - 1)
        delay = tech.t_dsp + tech.t_net + extra_levels * _adder_delay(wa + wb, tech)
        return NodeCost(luts=0.0, dsps=dsps, delay=delay)
    luts = tech.lut_mult_factor * wa * wb
    levels = max(1, math.ceil(math.log2(min(wa, wb) + 1)))
    delay = levels * tech.t_mult_level + _adder_delay(wa + wb, tech) + tech.t_net
    return NodeCost(luts=luts, dsps=0, delay=delay)


def node_cost(expr: Expr, tech: Tech, allow_dsp: bool = True) -> NodeCost:
    """Area and delay of one expression node (children excluded)."""
    if isinstance(expr, (Const, Ref, Cat, Slice, Ext)):
        return NodeCost(0.0, 0, 0.0)

    if isinstance(expr, BinOp):
        kind, width = expr.kind, expr.width
        if kind in (BinOpKind.ADD, BinOpKind.SUB):
            return NodeCost(width * tech.luts_per_add_bit, 0, _adder_delay(width, tech))
        if kind in _MULS:
            if isinstance(expr.a, Const) or isinstance(expr.b, Const):
                return _const_mult_cost(expr, tech, allow_dsp)
            return _variable_mult_cost(expr, tech, allow_dsp)
        if kind in _LOGIC_BINOPS:
            return NodeCost(
                width * tech.luts_per_logic_bit, 0, tech.t_lut + tech.t_net
            )
        if kind in _EQ_COMPARES:
            fanin = expr.a.width
            levels = 1 + _tree_levels(math.ceil(fanin / 3))
            return NodeCost(
                max(1.0, fanin / 3), 0, levels * (tech.t_lut + tech.t_net)
            )
        if kind in _CARRY_COMPARES:
            fanin = expr.a.width
            return NodeCost(
                fanin * tech.luts_per_add_bit, 0, _adder_delay(fanin, tech)
            )
        if kind in _SHIFTS:
            if isinstance(expr.b, Const):
                return NodeCost(0.0, 0, 0.0)  # constant shift is wiring
            levels = max(1, math.ceil(math.log2(max(2, expr.width))))
            luts = expr.width * levels * tech.luts_per_shift_bit_level
            return NodeCost(luts, 0, levels * (tech.t_lut + tech.t_net))
        raise ValueError(f"unmapped binop {kind}")

    if isinstance(expr, UnOp):
        width = expr.a.width
        if expr.kind is UnOpKind.NEG:
            return NodeCost(width * tech.luts_per_add_bit, 0, _adder_delay(width, tech))
        if expr.kind is UnOpKind.NOT:
            # Inverters usually fold into neighbouring LUTs.
            return NodeCost(width * 0.15, 0, tech.t_lut * 0.5)
        # Reductions: LUT6 tree.
        levels = max(1, _tree_levels(width))
        return NodeCost(max(1.0, width / 5), 0, levels * (tech.t_lut + tech.t_net))

    if isinstance(expr, Mux):
        width = expr.width
        return NodeCost(width * tech.luts_per_mux_bit, 0, tech.t_mux)

    if isinstance(expr, MemRead):
        memory = expr.memory
        big = memory.size_bits > tech.bram_threshold_bits  # type: ignore[attr-defined]
        delay = (tech.t_bram if big else tech.t_lutram) + tech.t_net
        return NodeCost(0.0, 0, delay)

    raise ValueError(f"unmapped node {type(expr).__name__}")
