"""Technology constants for the synthesis cost model.

All area/delay formulas in :mod:`repro.synth.cost` read their constants from
a :class:`Tech` record, so the calibration lives in exactly one place.  The
values below are tuned to an UltraScale+-class fabric (LUT6 + CARRY8 +
DSP48E2): they are not vendor datasheet numbers, but they reproduce the
*relative* geometry that the paper's conclusions rest on — combinational
cascades are slow, carry chains scale linearly with width, constant
multiplier trees dominate IDCT area when DSP inference is disabled, and a
DSP-mapped multiplier is fast but monolithic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Tech", "ULTRASCALE_PLUS"]


@dataclass(frozen=True)
class Tech:
    """Area/delay calibration constants (times in ns, areas in LUTs)."""

    name: str

    # -- generic logic ---------------------------------------------------
    t_lut: float = 0.10          # one LUT6 logic level
    t_net: float = 0.20          # average routed net between logic levels
    t_clk_to_q: float = 0.10     # FF clock-to-output
    t_setup: float = 0.06        # FF setup time
    clock_overhead: float = 0.20  # skew + jitter margin added to T_clk

    # -- carry chains (adders, subtractors, comparators) -----------------
    t_carry_base: float = 0.12   # entering the carry chain
    t_carry_bit: float = 0.012   # per-bit propagation along CARRY8
    luts_per_add_bit: float = 0.75  # synthesis trims constant high bits

    # -- multipliers ------------------------------------------------------
    t_dsp: float = 2.10          # combinational DSP48 multiply
    dsp_a_width: int = 26        # signed DSP input widths (27x18 minus sign)
    dsp_b_width: int = 17
    lut_mult_factor: float = 0.62    # LUTs ~= factor * wa * wb (fabric mult)
    t_mult_level: float = 0.38       # per partial-product reduction level
    csd_digits_factor: float = 0.55  # avg CSD non-zero digits per set bit

    # -- multiplexers and logic ops ---------------------------------------
    luts_per_mux_bit: float = 0.50   # two 2:1 muxes fit one LUT6
    t_mux: float = 0.15              # MUXF7/F8 select-tree level (intra-slice)
    luts_per_logic_bit: float = 0.34  # wide AND/OR/XOR packing into LUT6

    # -- barrel shifters ---------------------------------------------------
    luts_per_shift_bit_level: float = 0.50

    # -- memories ------------------------------------------------------------
    lutram_bits_per_lut: int = 64    # distributed RAM efficiency
    bram_threshold_bits: int = 2048  # larger memories map to BRAM
    bram_bits: int = 36 * 1024
    t_lutram: float = 0.45
    t_bram: float = 1.80

    # -- global derating ----------------------------------------------------
    routing_factor: float = 1.12     # congestion/fanout derating on delays


ULTRASCALE_PLUS = Tech(name="ultrascale-plus")
