"""FPGA synthesis cost model: technology mapping, area, static timing."""

from .analyze import SynthReport, normalized_area, synthesize
from .power import PowerReport, estimate_power, measure_activity
from .cost import NodeCost, node_cost
from .device import XCVU9P, Device
from .tech import ULTRASCALE_PLUS, Tech

__all__ = [
    "SynthReport",
    "PowerReport",
    "estimate_power",
    "measure_activity",
    "synthesize",
    "normalized_area",
    "NodeCost",
    "node_cost",
    "Device",
    "XCVU9P",
    "Tech",
    "ULTRASCALE_PLUS",
]
