"""Activity-based power estimation.

The paper frames DSE as optimizing designs against "constraints on
performance, power consumption, and area"; area and performance have
first-class models in this package, and this module supplies the third
axis.  The model is the classic split:

* **dynamic power** — switched capacitance: per-bit toggle energy of the
  combinational fabric plus clock/FF load, scaled by *measured* signal
  activity (toggle rates from an actual simulation run, not a guess) and
  the clock frequency;
* **static power** — leakage proportional to occupied area.

Like the area/timing model, absolute milliwatts are indicative; the
useful outputs are comparisons (e.g. a deeply pipelined XLS design burns
far more clock power than the two-unit Verilog design for the same
throughput).

One granularity caveat: activity is observed on *named* netlist signals,
so a frontend that names many intermediate wires (the Verilog baseline)
exposes more of its switching than one that leaves expressions anonymous;
cross-style logic-power comparisons carry that bias, clock/FF/static do
not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rtl.elaborate import Netlist
from ..rtl.ir import Signal
from ..sim import Simulator
from .tech import ULTRASCALE_PLUS, Tech

__all__ = ["PowerReport", "measure_activity", "estimate_power"]

#: Energy coefficients (mW per MHz of toggle rate), calibrated to keep an
#: IDCT-class design in the hundreds-of-mW band typical of such kernels.
_ENERGY_LOGIC_BIT = 0.00045   # one combinational bit toggling once/cycle
_ENERGY_FF_BIT = 0.00025      # one flip-flop bit toggling once/cycle
_ENERGY_CLOCK_FF = 0.00008    # clock tree load per FF bit (always switching)
_STATIC_PER_KLUTFF = 0.09     # leakage per 1000 LUT+FF of occupied area


@dataclass
class PowerReport:
    """Estimated power at a given clock frequency."""

    fmax_mhz: float
    dynamic_logic_mw: float
    dynamic_ff_mw: float
    clock_mw: float
    static_mw: float
    mean_activity: float
    by_signal: dict[str, float] = field(default_factory=dict)

    @property
    def dynamic_mw(self) -> float:
        return self.dynamic_logic_mw + self.dynamic_ff_mw + self.clock_mw

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.static_mw

    def summary(self) -> str:
        return (
            f"{self.total_mw:.1f} mW total @ {self.fmax_mhz:.0f} MHz "
            f"(logic {self.dynamic_logic_mw:.1f}, ff {self.dynamic_ff_mw:.1f}, "
            f"clock {self.clock_mw:.1f}, static {self.static_mw:.1f}; "
            f"mean activity {self.mean_activity:.3f})"
        )


def measure_activity(
    simulator: Simulator,
    stimulate,
    cycles: int | None = None,
) -> dict[Signal, float]:
    """Measure per-signal toggle rates (toggled bits per cycle per bit).

    ``stimulate(sim)`` runs the workload (poking and stepping as it
    pleases); toggles are counted on every clock edge via a watcher.
    """
    netlist = simulator.netlist
    signals = netlist.signals()
    last: dict[Signal, int] = {sig: simulator.peek_int(sig) for sig in signals}
    toggles: dict[Signal, int] = {sig: 0 for sig in signals}
    edges = [0]

    def watcher(_cycle: int) -> None:
        edges[0] += 1
        for sig in signals:
            value = simulator.peek_int(sig)
            diff = value ^ last[sig]
            if diff:
                toggles[sig] += bin(diff).count("1")
                last[sig] = value

    simulator.add_watcher(watcher)
    stimulate(simulator)
    total_edges = max(1, edges[0] if cycles is None else min(edges[0], cycles))
    return {
        sig: toggles[sig] / (total_edges * sig.width) for sig in signals
    }


def estimate_power(
    netlist: Netlist,
    activity: dict[Signal, float],
    fmax_mhz: float,
    tech: Tech = ULTRASCALE_PLUS,
) -> PowerReport:
    """Combine measured activity with the area model into a power figure."""
    from .analyze import synthesize

    report = synthesize(netlist, tech, max_dsp=0)
    reg_signals = {reg.signal for reg in netlist.registers}

    logic_rate = 0.0   # toggling comb bits per cycle
    ff_rate = 0.0
    by_signal: dict[str, float] = {}
    for sig, rate in activity.items():
        bits = rate * sig.width
        by_signal[sig.name] = rate
        if sig in reg_signals:
            ff_rate += bits
        else:
            logic_rate += bits

    dynamic_logic = _ENERGY_LOGIC_BIT * logic_rate * fmax_mhz
    dynamic_ff = _ENERGY_FF_BIT * ff_rate * fmax_mhz
    clock = _ENERGY_CLOCK_FF * report.n_ff * fmax_mhz
    static = _STATIC_PER_KLUTFF * (report.n_lut + report.n_ff) / 1000.0
    mean_activity = (
        sum(activity.values()) / len(activity) if activity else 0.0
    )
    return PowerReport(
        fmax_mhz=fmax_mhz,
        dynamic_logic_mw=dynamic_logic,
        dynamic_ff_mw=dynamic_ff,
        clock_mw=clock,
        static_mw=static,
        mean_activity=mean_activity,
        by_signal=by_signal,
    )
