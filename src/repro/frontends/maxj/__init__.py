"""MaxJ-like dataflow frontend with a PCIe system manager model."""

from .designs import all_designs, build_matrix_kernel, build_row_kernel, maxj_initial, maxj_opt
from .harness import run_matrix_kernel, run_row_kernel, verify_maxj
from .lang import MaxKernel, MaxVal
from .lib import transpose_8x8
from .manager import PCIE3_X16, ManagerReport, PcieLink, system_throughput

__all__ = [
    "MaxKernel",
    "MaxVal",
    "transpose_8x8",
    "PcieLink",
    "PCIE3_X16",
    "ManagerReport",
    "system_throughput",
    "maxj_initial",
    "maxj_opt",
    "build_matrix_kernel",
    "build_row_kernel",
    "run_matrix_kernel",
    "run_row_kernel",
    "verify_maxj",
    "all_designs",
]
