"""MaxJ vendor-library blocks: the 8x8 stream transpose buffer.

MaxCompiler ships library blocks for common stream reshaping; the paper's
row-kernel "stores intermediate results in the on-board memory".  This
block is the equivalent: a ping-pong register matrix that turns a stream
of matrix rows (one per tick) into a stream of matrix columns (one per
tick), with a fixed latency of 8 ticks from a matrix's last input row to
its first output column.
"""

from __future__ import annotations

from ...rtl import ops
from ...rtl.ir import Ref
from ..hc.dsl import Sig, mux, select
from .lang import MaxKernel, MaxVal

__all__ = ["transpose_8x8"]

ROWS = 8


def transpose_8x8(kernel: MaxKernel, row: list[MaxVal]) -> list[MaxVal]:
    """Stream transpose: rows in (1/tick) -> columns out (1/tick).

    ``row`` must be eight depth-aligned element streams carrying row
    ``(tick - depth) % 8`` of each successive matrix.  The output streams
    carry column ``(tick - depth - 8) % 8`` — a fixed 8-tick latency.
    """
    depth = max(v.depth for v in row)
    row = [v.delayed(depth - v.depth) for v in row]
    width = max(v.width for v in row)
    module = kernel.module
    ce = Ref(kernel._ce)

    # Phase counter aligned so that it reads 0 when row 0 arrives.
    phase = kernel.counter(3, init=(-depth) % ROWS)
    wrap = phase.eq(ROWS - 1)
    bank = module.reg("tp_bank", 1)
    module.set_next(bank, ops.mux(wrap.expr, ops.bnot(Ref(bank)), Ref(bank)), en=ce)
    bank_sig = Sig(Ref(bank), signed=False)

    # Ping-pong register matrix: write rows into the active bank while
    # reading columns from the other.
    cells: list[list[list[Sig]]] = [[], []]
    for half in range(2):
        for r in range(ROWS):
            cells[half].append([])
            for c in range(ROWS):
                en = ops.band(
                    ops.band(ce, phase.eq(r).expr),
                    ops.eq(Ref(bank), ops.const(half, 1)),
                )
                cell = module.reg(
                    f"tp{half}_{r}_{c}", width,
                    next=row[c].sig.resize(width).expr, en=en,
                )
                cells[half][r].append(Sig(Ref(cell), signed=True))

    # Column read from the inactive bank: element r of column ``phase``.
    out: list[MaxVal] = []
    for r in range(ROWS):
        from_bank0 = select(phase, cells[0][r])
        from_bank1 = select(phase, cells[1][r])
        value = mux(bank_sig.eq(0), from_bank1, from_bank0).as_signed()
        reg = kernel._register(value, depth + ROWS + 1)
        out.append(reg)
    return out
