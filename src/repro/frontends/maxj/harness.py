"""Simulation harness for MaxJ kernels (stream-per-tick, no AXI)."""

from __future__ import annotations

from typing import Sequence

from ...core.bits import to_signed, to_unsigned
from ...sim import Simulator
from ..base import Design
from .designs import COLS, ELEM_W, ROWS

__all__ = ["run_matrix_kernel", "run_row_kernel", "verify_maxj"]


def _pack(values: Sequence[int]) -> int:
    word = 0
    for i, value in enumerate(values):
        word |= to_unsigned(value, ELEM_W) << (i * ELEM_W)
    return word


def _unpack(word: int, count: int) -> list[int]:
    return [to_signed((word >> (i * ELEM_W)) & 0xFFFF, ELEM_W) for i in range(count)]


def run_matrix_kernel(design: Design, matrices: Sequence[Sequence[Sequence[int]]]):
    """Drive one matrix per tick through the full-matrix kernel."""
    sim = Simulator(design.top)
    sim.poke("ce", 1)
    depth = design.meta["maxj"]["pipeline_depth"]
    outs = []
    total = len(matrices) + depth
    for tick in range(total):
        if tick < len(matrices):
            flat = [v for row in matrices[tick] for v in row]
            sim.poke("in_mat", _pack(flat))
        if tick >= depth:
            flat = _unpack(sim.peek_int("out_mat"), ROWS * COLS)
            outs.append([flat[r * COLS:(r + 1) * COLS] for r in range(ROWS)])
        sim.step()
    return outs


def run_row_kernel(design: Design, matrices: Sequence[Sequence[Sequence[int]]]):
    """Drive one row per tick; collect column-streamed results."""
    sim = Simulator(design.top)
    sim.poke("ce", 1)
    depth = design.meta["maxj"]["pipeline_depth"]
    beats = [row for matrix in matrices for row in matrix]
    col_beats: list[list[int]] = []
    total = len(beats) + depth
    for tick in range(total):
        if tick < len(beats):
            sim.poke("in_row", _pack(beats[tick]))
        if tick >= depth:
            col_beats.append(_unpack(sim.peek_int("out_col"), COLS))
        sim.step()
    # The kernel streams columns; reassemble row-major matrices.
    outs = []
    for k in range(len(matrices)):
        cols = col_beats[k * ROWS:(k + 1) * ROWS]
        outs.append([[cols[c][r] for c in range(COLS)] for r in range(ROWS)])
    return outs


def verify_maxj(design: Design, matrices) -> bool:
    """Bit-exactness of a MaxJ design against the golden model."""
    from ...idct.reference import chen_wang_idct

    if design.meta["maxj"]["ticks_per_op"] == 1:
        outs = run_matrix_kernel(design, matrices)
    else:
        outs = run_row_kernel(design, matrices)
    expected = [chen_wang_idct([list(r) for r in m]) for m in matrices]
    return outs == expected
