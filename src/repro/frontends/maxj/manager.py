"""The MaxCompiler manager model: PCIe link and system throughput.

MaxCompiler builds whole systems: the kernel runs on the FPGA and talks to
the CPU over PCIe.  The paper accordingly evaluates MaxJ designs without
an AXI wrapper — the initial kernel's throughput is the PCIe 3.0 x16
bandwidth divided by the input record size, and the optimized row kernel
is frequency-bound instead.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PcieLink", "PCIE3_X16", "ManagerReport", "system_throughput"]


@dataclass(frozen=True)
class PcieLink:
    """A host link: usable bandwidth in bytes/second and pin count."""

    name: str
    bandwidth_bytes: float
    pins: int


#: PCIe 3.0 x16: ~16 GB/s usable, 59 interface pins (the paper's N_IO).
PCIE3_X16 = PcieLink(name="pcie3-x16", bandwidth_bytes=16e9, pins=59)


@dataclass
class ManagerReport:
    """System-level throughput of a kernel behind a host link."""

    fmax_mhz: float
    ticks_per_op: int
    input_bits_per_op: int
    link: PcieLink
    kernel_mops: float = 0.0
    link_mops: float = 0.0

    @property
    def throughput_mops(self) -> float:
        return min(self.kernel_mops, self.link_mops)

    @property
    def bound(self) -> str:
        return "link" if self.link_mops <= self.kernel_mops else "kernel"


def system_throughput(
    fmax_mhz: float,
    ticks_per_op: int,
    input_bits_per_op: int,
    link: PcieLink = PCIE3_X16,
) -> ManagerReport:
    """Combine kernel rate and link bandwidth into system throughput."""
    report = ManagerReport(
        fmax_mhz=fmax_mhz,
        ticks_per_op=ticks_per_op,
        input_bits_per_op=input_bits_per_op,
        link=link,
    )
    report.kernel_mops = fmax_mhz / ticks_per_op
    report.link_mops = link.bandwidth_bytes * 8 / input_bits_per_op / 1e6
    return report
