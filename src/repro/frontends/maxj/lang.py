"""MaxJ-like dataflow kernel language.

A Max kernel is a graph of stream operations: every arithmetic node is
*automatically registered* (one pipeline stage per operation) and operands
at different pipeline depths are aligned with delay registers, exactly as
MaxCompiler schedules its dataflow graphs.  The result: very high clock
frequency, very many flip-flops — the signature of the paper's MaxJ
numbers (403 MHz, 36k FFs).

Kernels process one stream element per tick; a global ``ce`` input is the
manager's stall signal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.errors import FrontendError
from ...rtl import Module, ops
from ...rtl.ir import Ref, Signal
from ..hc.dsl import Sig, lit

__all__ = ["MaxKernel", "MaxVal"]


@dataclass(frozen=True)
class MaxVal:
    """A stream value at a known pipeline depth inside a kernel."""

    kernel: "MaxKernel"
    sig: Sig
    depth: int

    @property
    def width(self) -> int:
        return self.sig.width

    # -- alignment -------------------------------------------------------
    def delayed(self, ticks: int) -> "MaxVal":
        """This stream delayed by ``ticks`` (MaxJ ``stream.offset(-k)``)."""
        if ticks < 0:
            raise FrontendError("only past offsets (delays) are realizable")
        value = self
        for _ in range(ticks):
            value = self.kernel._register(value.sig, value.depth + 1)
        return value

    def _binary(self, other: "MaxVal | int", op) -> "MaxVal":
        if isinstance(other, int):
            aligned_self, rhs_sig = self, lit(other, signed=self.sig.signed)
            result = op(aligned_self.sig, rhs_sig)
            return self.kernel._register(result, aligned_self.depth + 1)
        if not isinstance(other, MaxVal):
            raise FrontendError(f"cannot combine MaxVal with {type(other).__name__}")
        if other.kernel is not self.kernel:
            raise FrontendError("values belong to different kernels")
        depth = max(self.depth, other.depth)
        a = self.delayed(depth - self.depth)
        b = other.delayed(depth - other.depth)
        return self.kernel._register(op(a.sig, b.sig), depth + 1)

    # -- arithmetic (each op = one pipeline stage) ------------------------
    def __add__(self, other: "MaxVal | int") -> "MaxVal":
        return self._binary(other, lambda a, b: a + b)

    def __radd__(self, other: int) -> "MaxVal":
        return self.__add__(other)

    def __sub__(self, other: "MaxVal | int") -> "MaxVal":
        return self._binary(other, lambda a, b: a - b)

    def __rsub__(self, other: int) -> "MaxVal":
        return self._binary(other, lambda a, b: b - a)

    def __mul__(self, other: "MaxVal | int") -> "MaxVal":
        return self._binary(other, lambda a, b: a * b)

    def __rmul__(self, other: int) -> "MaxVal":
        return self.__mul__(other)

    def __lshift__(self, amount: int) -> "MaxVal":
        # Pure wiring: shifts by constants cost no pipeline stage.
        return MaxVal(self.kernel, self.sig << amount, self.depth)

    def __rshift__(self, amount: int) -> "MaxVal":
        return MaxVal(self.kernel, self.sig >> amount, self.depth)

    def clip(self, low: int, high: int) -> "MaxVal":
        return self.kernel._register(self.sig.clip(low, high), self.depth + 1)

    def resize(self, width: int) -> "MaxVal":
        return MaxVal(self.kernel, self.sig.resize(width), self.depth)


class MaxKernel:
    """A dataflow kernel under construction."""

    def __init__(self, name: str) -> None:
        self.module = Module(name)
        self._ce: Signal = self.module.input("ce", 1)
        self._reg_count = 0
        self.outputs: dict[str, int] = {}  # name -> pipeline depth

    # -- streams ----------------------------------------------------------
    def input(self, name: str, width: int, signed: bool = True) -> MaxVal:
        """Declare an input stream (one element per tick)."""
        sig = self.module.input(name, width)
        return MaxVal(self, Sig(Ref(sig), signed), 0)

    def input_vector(self, name: str, count: int, width: int) -> list[MaxVal]:
        """A packed vector input stream, unpacked into elements."""
        bus = self.module.input(name, count * width)
        return [
            MaxVal(self, Sig(ops.bits(Ref(bus), (i + 1) * width - 1, i * width),
                             signed=False).as_signed(), 0)
            for i in range(count)
        ]

    def output(self, name: str, value: MaxVal, width: int | None = None) -> int:
        """Declare an output stream; returns its pipeline depth."""
        width = width if width is not None else value.width
        port = self.module.output(name, width)
        self.module.assign(port, value.sig.resize(width).expr)
        self.outputs[name] = value.depth
        return value.depth

    def output_vector(
        self, name: str, values: list[MaxVal], width: int
    ) -> int:
        """A packed vector output stream; elements are depth-aligned."""
        depth = max(v.depth for v in values)
        aligned = [v.delayed(depth - v.depth) for v in values]
        port = self.module.output(name, len(values) * width)
        packed = ops.cat(*[v.sig.resize(width).expr for v in reversed(aligned)])
        self.module.assign(port, packed)
        self.outputs[name] = depth
        return depth

    # -- control ------------------------------------------------------------
    def counter(self, bits: int, init: int = 0) -> Sig:
        """A free-running tick counter (MaxJ ``control.count``)."""
        count = self.module.reg(f"cnt{self._reg_count}", bits, init=init)
        self._reg_count += 1
        self.module.set_next(count, ops.trunc(ops.add(Ref(count), 1), bits),
                             en=Ref(self._ce))
        return Sig(Ref(count), signed=False)

    @property
    def ce(self) -> Sig:
        return Sig(Ref(self._ce), signed=False)

    # -- internals ------------------------------------------------------------
    def _register(self, value: Sig, depth: int) -> MaxVal:
        reg = self.module.reg(f"s{self._reg_count}", value.width,
                              next=value.expr, en=Ref(self._ce))
        self._reg_count += 1
        return MaxVal(self, Sig(Ref(reg), value.signed), depth)

    @property
    def pipeline_depth(self) -> int:
        """Deepest output stream depth (the kernel's tick latency)."""
        return max(self.outputs.values(), default=0)
