"""MaxJ IDCT kernels: the full-matrix kernel and the row kernel.

* ``initial``: one whole 8x8 matrix enters and leaves per tick (1024-bit
  streams of 16-bit elements).  Everything is deeply pipelined, the clock
  is the fastest in the study, and the throughput is PCIe-bound:
  16 GB/s / 1024 bits ~ 125 Mops.
* ``opt``: one matrix *row* per tick through a single row unit, the
  library transpose buffer ("on-board memory"), and a single column unit:
  roughly 2.8x less area, frequency-bound throughput.
"""

from __future__ import annotations

from ...axis.spec import KernelSpec, KernelStyle
from ...idct.constants import W1, W2, W3, W5, W6, W7
from ..base import Design, SourceArtifact, source_of, traced_build
from .lang import MaxKernel, MaxVal
from .lib import transpose_8x8
from .manager import PCIE3_X16, system_throughput

__all__ = [
    "build_matrix_kernel",
    "build_row_kernel",
    "maxj_initial",
    "maxj_opt",
    "all_designs",
]

ROWS, COLS, IN_W, OUT_W = 8, 8, 12, 9
ELEM_W = 16  # PCIe stream element width (12/9-bit values, 16-bit records)


def _row_xform(b: list[MaxVal]) -> list[MaxVal]:
    """Row butterfly over MaxVals (every op is one pipeline stage)."""
    x1 = b[4] << 11
    x0 = (b[0] << 11) + 128
    x8 = (b[1] + b[7]) * W7
    x4, x5 = x8 + b[1] * (W1 - W7), x8 - b[7] * (W1 + W7)
    x8 = (b[5] + b[3]) * W3
    x6, x7 = x8 - b[5] * (W3 - W5), x8 - b[3] * (W3 + W5)
    x8, x0 = x0 + x1, x0 - x1
    x1 = (b[2] + b[6]) * W6
    x2, x3 = x1 - b[6] * (W2 + W6), x1 + b[2] * (W2 - W6)
    x1, x4 = x4 + x6, x4 - x6
    x6, x5 = x5 + x7, x5 - x7
    x7, x8 = x8 + x3, x8 - x3
    x3, x0 = x0 + x2, x0 - x2
    x2 = ((x4 + x5) * 181 + 128) >> 8
    x4 = ((x4 - x5) * 181 + 128) >> 8
    return [
        (x7 + x1) >> 8, (x3 + x2) >> 8, (x0 + x4) >> 8, (x8 + x6) >> 8,
        (x8 - x6) >> 8, (x0 - x4) >> 8, (x3 - x2) >> 8, (x7 - x1) >> 8,
    ]


def _col_xform(b: list[MaxVal]) -> list[MaxVal]:
    """Column butterfly with saturation."""
    x1 = b[4] << 8
    x0 = (b[0] << 8) + 8192
    x8 = (b[1] + b[7]) * W7 + 4
    x4, x5 = (x8 + b[1] * (W1 - W7)) >> 3, (x8 - b[7] * (W1 + W7)) >> 3
    x8 = (b[5] + b[3]) * W3 + 4
    x6, x7 = (x8 - b[5] * (W3 - W5)) >> 3, (x8 - b[3] * (W3 + W5)) >> 3
    x8, x0 = x0 + x1, x0 - x1
    x1 = (b[2] + b[6]) * W6 + 4
    x2, x3 = (x1 - b[6] * (W2 + W6)) >> 3, (x1 + b[2] * (W2 - W6)) >> 3
    x1, x4 = x4 + x6, x4 - x6
    x6, x5 = x5 + x7, x5 - x7
    x7, x8 = x8 + x3, x8 - x3
    x3, x0 = x0 + x2, x0 - x2
    x2 = ((x4 + x5) * 181 + 128) >> 8
    x4 = ((x4 - x5) * 181 + 128) >> 8
    return [
        ((x7 + x1) >> 14).clip(-256, 255),
        ((x3 + x2) >> 14).clip(-256, 255),
        ((x0 + x4) >> 14).clip(-256, 255),
        ((x8 + x6) >> 14).clip(-256, 255),
        ((x8 - x6) >> 14).clip(-256, 255),
        ((x0 - x4) >> 14).clip(-256, 255),
        ((x3 - x2) >> 14).clip(-256, 255),
        ((x7 - x1) >> 14).clip(-256, 255),
    ]


def build_matrix_kernel() -> MaxKernel:
    """Full-matrix kernel: 64 elements in, 64 elements out, every tick."""
    kernel = MaxKernel("maxj_idct_matrix")
    elements = kernel.input_vector("in_mat", ROWS * COLS, ELEM_W)
    rows = [elements[r * COLS:(r + 1) * COLS] for r in range(ROWS)]
    mid = [_row_xform(row) for row in rows]
    cols = [_col_xform([mid[r][c] for r in range(ROWS)]) for c in range(COLS)]
    out_elements = [cols[c][r] for r in range(ROWS) for c in range(COLS)]
    kernel.output_vector("out_mat", out_elements, ELEM_W)
    return kernel


def build_row_kernel() -> MaxKernel:
    """Row kernel: one row per tick, transpose in on-board memory."""
    kernel = MaxKernel("maxj_idct_row")
    row = kernel.input_vector("in_row", COLS, ELEM_W)
    mid = _row_xform(row)
    columns = transpose_8x8(kernel, mid)
    result = _col_xform(columns)
    kernel.output_vector("out_col", result, ELEM_W)
    return kernel


def _sources(builder) -> list[SourceArtifact]:
    return [
        source_of(_row_xform, "IdctRow.maxj"),
        source_of(_col_xform, "IdctCol.maxj"),
        source_of(builder, f"{builder.__name__}.maxj"),
        SourceArtifact(
            label="IdctManager.maxj",
            text=(
                "Manager manager = new Manager(params);\n"
                "Kernel k = new IdctKernel(manager.makeKernelParameters());\n"
                "manager.setKernel(k);\n"
                "manager.setIO(link(PCIE_CPU));\n"
                "manager.build();\n"
            ),
        ),
    ]


@traced_build("maxj")
def maxj_initial() -> Design:
    kernel = build_matrix_kernel()
    spec = KernelSpec(style=KernelStyle.PIPELINED_MATRIX, rows=ROWS, cols=COLS,
                      in_width=IN_W, out_width=OUT_W,
                      latency=max(1, kernel.pipeline_depth))
    design = Design(
        name="maxj-initial",
        language="MaxJ",
        tool="MaxCompiler",
        config="initial",
        top=kernel.module,
        spec=spec,
        sources=_sources(build_matrix_kernel),
    )
    design.meta["maxj"] = {
        "ticks_per_op": 1,
        "input_bits": ROWS * COLS * ELEM_W,
        "pipeline_depth": kernel.pipeline_depth,
        "link": PCIE3_X16,
    }
    return design


@traced_build("maxj")
def maxj_opt() -> Design:
    kernel = build_row_kernel()
    spec = KernelSpec(style=KernelStyle.PIPELINED_MATRIX, rows=ROWS, cols=COLS,
                      in_width=IN_W, out_width=OUT_W,
                      latency=max(1, kernel.pipeline_depth))
    design = Design(
        name="maxj-opt",
        language="MaxJ",
        tool="MaxCompiler",
        config="opt",
        top=kernel.module,
        spec=spec,
        sources=_sources(build_row_kernel),
    )
    design.meta["maxj"] = {
        "ticks_per_op": ROWS,
        "input_bits": COLS * ELEM_W * ROWS,
        "pipeline_depth": kernel.pipeline_depth,
        "link": PCIE3_X16,
    }
    return design


def all_designs() -> list[Design]:
    return [maxj_initial(), maxj_opt()]
