"""Frontend "languages" modeled after the paper's evaluated tools.

Each subpackage is one language/tool pairing with its own idiom and its own
IDCT implementations (initial and optimized), all lowering to the shared
RTL IR:

* :mod:`repro.frontends.vlog`  — hand-written Verilog baseline;
* :mod:`repro.frontends.hc`    — Chisel-like hardware construction;
* :mod:`repro.frontends.rules` — BSV-like guarded atomic rules;
* :mod:`repro.frontends.flow`  — DSLX/XLS-like functional kernels;
* :mod:`repro.frontends.maxj`  — MaxJ-like dataflow with a PCIe manager;
* :mod:`repro.frontends.chls`  — mini-C HLS (Bambu-like and Vivado-HLS-like).
"""

from .base import Design, SourceArtifact

__all__ = ["Design", "SourceArtifact"]
