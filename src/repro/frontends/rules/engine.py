"""BSV-like guarded atomic rules: language and scheduler.

A :class:`RulesModule` is a set of registers plus *rules* — atomic guarded
actions with one-rule-at-a-time semantics.  The compiler (playing BSC's
role) schedules as many non-conflicting rules as possible into each clock
cycle:

* two rules **conflict** when they write the same register (exact mode) or
  additionally when one writes a register the other reads (pessimistic
  mode, one of the scheduler knobs the paper's 26-configuration BSC sweep
  varies);
* among conflicting ready rules, the earlier-declared one fires
  (descending urgency);
* every firing rule reads pre-cycle state — the atomicity guarantee.

``will_fire`` logic, write-back priority muxes, and the conflict matrix
are all generated into ordinary RTL, so the scheduled design simulates
and synthesizes like any other module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...core.errors import FrontendError
from ...rtl import Module, ops
from ...rtl.ir import Expr, Ref, Signal, expr_signals
from ..hc.dsl import Sig, lit

__all__ = ["RulesModule", "Rule", "SchedulerOptions", "Schedule"]


@dataclass(frozen=True)
class SchedulerOptions:
    """Compiler knobs (the BSC command-line options of the paper's sweep).

    ``urgency_seed`` permutes declaration order among *non-conflicting*
    rules (behaviour-preserving; perturbs the generated logic slightly);
    ``conflict_mode`` selects exact write-write analysis or the
    pessimistic read/write variant (more serialization, never less
    correctness); ``lift_guards`` folds rule guards into write-enable
    terms instead of next-value muxes where possible.
    """

    urgency_seed: int = 0
    conflict_mode: str = "exact"  # "exact" | "pessimistic"
    lift_guards: bool = True

    def __post_init__(self) -> None:
        if self.conflict_mode not in ("exact", "pessimistic"):
            raise FrontendError(f"unknown conflict mode {self.conflict_mode!r}")


@dataclass(eq=False)
class Rule:
    """One guarded atomic action."""

    name: str
    guard: Expr | None
    writes: list[tuple[Signal, Expr]] = field(default_factory=list)

    def write_targets(self) -> set[Signal]:
        return {sig for sig, _expr in self.writes}

    def guard_reads(self) -> set[Signal]:
        if self.guard is None:
            return set()
        return expr_signals(self.guard)

    def read_signals(self) -> set[Signal]:
        reads: set[Signal] = set(self.guard_reads())
        for _sig, expr in self.writes:
            reads |= expr_signals(expr)
        return reads


@dataclass
class Schedule:
    """The compiler's scheduling result (inspected by tests and reports)."""

    order: list[str]
    conflicts: list[tuple[str, str]]
    will_fire: dict[str, Signal] = field(default_factory=dict)

    def conflict_free(self, a: str, b: str) -> bool:
        return (a, b) not in self.conflicts and (b, a) not in self.conflicts


class _RuleBuilder:
    """Accumulates one rule's actions."""

    def __init__(self, module: "RulesModule", rule: Rule) -> None:
        self._module = module
        self._rule = rule

    def write(self, reg: Sig, value: Sig | int) -> "_RuleBuilder":
        """Schedule ``reg := value`` when this rule fires."""
        if not isinstance(reg.expr, Ref):
            raise FrontendError("rule writes must target registers")
        target = reg.expr.signal
        if target not in self._module._regs:
            raise FrontendError(f"{target.name} is not a register of this module")
        if target in self._rule.write_targets():
            raise FrontendError(
                f"rule {self._rule.name!r} writes {target.name!r} twice "
                f"(atomic actions have no intra-rule sequencing)"
            )
        if isinstance(value, int):
            value = lit(value, target.width, signed=reg.signed)
        self._rule.writes.append((target, ops.resize(value.expr, target.width,
                                                     signed=value.signed)))
        return self


class RulesModule:
    """A module described as registers plus guarded atomic rules."""

    def __init__(self, name: str) -> None:
        self.module = Module(name)
        self._regs: dict[Signal, int] = {}  # signal -> init
        self._rules: list[Rule] = []
        self._compiled = False

    # -- state and ports -------------------------------------------------
    def input(self, name: str, width: int, signed: bool = False) -> Sig:
        return Sig(Ref(self.module.input(name, width)), signed)

    def output(self, name: str, value: Sig, width: int | None = None) -> None:
        """A combinational value method (always-enabled read interface)."""
        width = width if width is not None else value.width
        port = self.module.output(name, width)
        self.module.assign(port, ops.resize(value.expr, width, signed=value.signed))

    def reg(self, name: str, width: int, init: int = 0, signed: bool = True) -> Sig:
        sig = self.module.reg(name, width, init=init)
        self._regs[sig] = init
        return Sig(Ref(sig), signed)

    def rule(self, name: str, guard: Sig | None = None) -> _RuleBuilder:
        """Declare a rule; earlier rules are more urgent."""
        guard_expr = None if guard is None else guard.expr
        rule = Rule(name=name, guard=guard_expr)
        self._rules.append(rule)
        return _RuleBuilder(self, rule)

    # -- scheduling -------------------------------------------------------
    def _conflicts(self, a: Rule, b: Rule, options: SchedulerOptions) -> bool:
        if a.write_targets() & b.write_targets():
            return True
        if options.conflict_mode == "pessimistic":
            # Guard-read vs write overlap also serializes (the conservative
            # urgency analysis older BSC versions apply).
            if a.write_targets() & b.guard_reads():
                return True
            if b.write_targets() & a.guard_reads():
                return True
        return False

    def _urgency_order(self, options: SchedulerOptions) -> list[Rule]:
        """Permute rule order without reordering any conflicting pair."""
        order = list(self._rules)
        if options.urgency_seed == 0:
            return order
        # Deterministic bubble-pass permutation: swap adjacent
        # non-conflicting pairs selected by the seed.
        seed = options.urgency_seed
        for sweep in range(seed):
            index = (seed + sweep * 7) % max(1, len(order) - 1)
            a, b = order[index], order[index + 1]
            if not self._conflicts(a, b, options):
                order[index], order[index + 1] = b, a
        return order

    def compile(self, options: SchedulerOptions | None = None) -> tuple[Module, Schedule]:
        """Schedule the rules and generate the will-fire/write-back logic."""
        if self._compiled:
            raise FrontendError("a RulesModule can only be compiled once")
        self._compiled = True
        options = options or SchedulerOptions()
        order = self._urgency_order(options)

        conflicts: list[tuple[str, str]] = []
        for i, a in enumerate(order):
            for b in order[i + 1:]:
                if self._conflicts(a, b, options):
                    conflicts.append((a.name, b.name))

        # will_fire chain: a rule fires when ready and no more-urgent
        # conflicting rule fires this cycle.
        will_fire: dict[str, Signal] = {}
        fire_expr: dict[int, Expr] = {}
        for i, rule in enumerate(order):
            ready = rule.guard if rule.guard is not None else ops.const(1, 1)
            blockers = [
                fire_expr[j]
                for j in range(i)
                if self._conflicts(order[j], rule, options)
            ]
            expr = ready
            for blocker in blockers:
                expr = ops.band(expr, ops.bnot(blocker))
            wf = self.module.connect(f"WF_{rule.name}", 1, expr)
            will_fire[rule.name] = wf
            fire_expr[i] = Ref(wf)

        # Write-back: priority mux per register over the rules writing it.
        for reg_sig in self._regs:
            writers = [
                (fire_expr[i], expr)
                for i, rule in enumerate(order)
                for sig, expr in rule.writes
                if sig is reg_sig
            ]
            if not writers:
                self.module.set_next(reg_sig, Ref(reg_sig))
                continue
            if options.lift_guards:
                value: Expr = writers[-1][1]
                for wf, expr in reversed(writers[:-1]):
                    value = ops.mux(wf, expr, value)
                enable: Expr = writers[0][0]
                for wf, _expr in writers[1:]:
                    enable = ops.bor(enable, wf)
                self.module.set_next(reg_sig, value, en=enable)
            else:
                value = Ref(reg_sig)
                for wf, expr in reversed(writers):
                    value = ops.mux(wf, expr, value)
                self.module.set_next(reg_sig, value)

        schedule = Schedule(
            order=[rule.name for rule in order],
            conflicts=conflicts,
            will_fire=will_fire,
        )
        return self.module, schedule
