"""BSV-like rule-based frontend (guarded atomic actions + scheduler)."""

from .designs import all_designs, bsc_sweep, bsv_initial, bsv_opt
from .engine import Rule, RulesModule, Schedule, SchedulerOptions

__all__ = [
    "RulesModule",
    "Rule",
    "Schedule",
    "SchedulerOptions",
    "bsv_initial",
    "bsv_opt",
    "bsc_sweep",
    "all_designs",
]
