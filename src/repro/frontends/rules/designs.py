"""BSV-like IDCT designs, AXI-Stream interface included, written as rules.

Unlike the other frontends these designs implement the *whole* system —
computation and stream interface — as guarded atomic rules, the way a BSV
program would.  Two consequences the paper observes fall out of the rule
semantics rather than being coded in:

* the optimized design has **periodicity 9**: the ``start_cols`` rule that
  recycles the input counter conflicts with ``accept`` (both write
  ``in_cnt``), so one input beat per matrix is stalled — the "bubble" the
  paper notes "could in theory be eliminated";
* backpressure costs nothing extra: rules simply stay disabled while their
  guards are false.

The arithmetic is the same Chen-Wang butterfly, reused from the HC
transforms (the paper's BSV was likewise a translation of the same C).
"""

from __future__ import annotations

from ...axis.spec import KernelSpec, KernelStyle
from ...rtl import Module
from ..base import Design, SourceArtifact, source_of, traced_build
from ..hc.dsl import Sig, lit, mux, select
from ..hc.idct import idct_col_hc, idct_row_hc
from .engine import RulesModule, Schedule, SchedulerOptions

__all__ = [
    "build_initial_system",
    "build_opt_system",
    "bsv_initial",
    "bsv_opt",
    "bsc_sweep",
    "all_designs",
]

ROWS, COLS, IN_W, OUT_W = 8, 8, 12, 9
ROW_BITS = COLS * IN_W
OUT_ROW_BITS = COLS * OUT_W


def _unpack(bus: Sig, width: int) -> list[Sig]:
    return [bus.bits((i + 1) * width - 1, i * width).as_signed() for i in range(COLS)]


def _pack(values: list[Sig], width: int) -> Sig:
    from ...rtl import ops

    return Sig(ops.cat(*[v.resize(width).expr for v in reversed(values)]), signed=False)


def _mid_width() -> int:
    """Inferred row-stage output width (uniform packing width)."""
    probe = RulesModule("probe")
    ins = [probe.input(f"p{k}", IN_W, signed=True) for k in range(COLS)]
    return max(v.width for v in idct_row_hc(ins))


def build_initial_system(
    options: SchedulerOptions | None = None,
) -> tuple[Module, Schedule]:
    """Initial BSV design: a phase-FSM straight from the C program.

    Rules: ``load`` (one row per cycle), ``rowpass`` (all eight row IDCTs
    in one action), ``colpass`` (all eight column IDCTs), ``drain`` (one
    output row per cycle, overlapping the next matrix's load).
    """
    m = RulesModule("bsv_initial")
    s_tdata = m.input("s_tdata", ROW_BITS)
    s_tvalid = m.input("s_tvalid", 1)
    s_tlast = m.input("s_tlast", 1)
    m_tready = m.input("m_tready", 1)

    mid_w = _mid_width()
    LOAD, ROWP, COLP = 0, 1, 2
    state = m.reg("state", 2, init=LOAD, signed=False)
    in_cnt = m.reg("in_cnt", 4, signed=False)
    in_buf = [m.reg(f"in_buf{r}", ROW_BITS, signed=False) for r in range(ROWS)]
    mid = [m.reg(f"mid{r}", COLS * mid_w, signed=False) for r in range(ROWS)]
    out_buf = [m.reg(f"out_buf{r}", OUT_ROW_BITS, signed=False) for r in range(ROWS)]
    out_pending = m.reg("out_pending", 1, signed=False)
    out_cnt = m.reg("out_cnt", 4, signed=False)
    out_reg = m.reg("out_reg", OUT_ROW_BITS, signed=False)
    out_vld = m.reg("out_vld", 1, signed=False)
    out_last = m.reg("out_last", 1, signed=False)
    err = m.reg("err", 1, signed=False)

    in_last = in_cnt.eq(ROWS - 1)

    load = m.rule("load", guard=s_tvalid & state.eq(LOAD))
    for r in range(ROWS):
        load.write(in_buf[r], mux(in_cnt.eq(r), s_tdata, in_buf[r]))
    load.write(in_cnt, mux(in_last, lit(0, 4, False),
                           Sig((in_cnt + 1).resize(4).expr, False)))
    load.write(state, mux(in_last, lit(ROWP, 2, False), state))
    load.write(err, err | (s_tlast.ne(in_last.resize(1))))

    rowpass = m.rule("rowpass", guard=state.eq(ROWP))
    row_results = [idct_row_hc(_unpack(in_buf[r], IN_W)) for r in range(ROWS)]
    for r in range(ROWS):
        rowpass.write(mid[r], _pack(row_results[r], mid_w))
    rowpass.write(state, lit(COLP, 2, False))

    colpass = m.rule("colpass", guard=state.eq(COLP) & ~out_pending)
    mid_elems = [_unpack_mid(mid[r], mid_w) for r in range(ROWS)]
    col_results = [
        idct_col_hc([mid_elems[r][c] for r in range(ROWS)]) for c in range(COLS)
    ]
    for r in range(ROWS):
        row_out = [col_results[c][r] for c in range(COLS)]
        colpass.write(out_buf[r], _pack(row_out, OUT_W))
    colpass.write(out_pending, 1)
    colpass.write(out_cnt, 0)
    colpass.write(state, lit(LOAD, 2, False))

    can_emit = ~out_vld | m_tready
    drain = m.rule("drain", guard=out_pending & can_emit)
    drain.write(out_reg, select(out_cnt, [Sig(b.expr, False) for b in out_buf]))
    drain.write(out_vld, 1)
    drain.write(out_last, out_cnt.eq(ROWS - 1).resize(1))
    drain.write(out_cnt, Sig((out_cnt + 1).resize(4).expr, False))
    drain.write(out_pending, mux(out_cnt.eq(ROWS - 1), lit(0, 1, False), out_pending))

    retire = m.rule("retire", guard=out_vld & m_tready)
    retire.write(out_vld, 0)

    m.output("s_tready", state.eq(LOAD), width=1)
    m.output("m_tdata", Sig(out_reg.expr, False), width=OUT_ROW_BITS)
    m.output("m_tvalid", out_vld, width=1)
    m.output("m_tlast", out_last & out_vld, width=1)
    m.output("error", err, width=1)
    return m.compile(options)


def _unpack_mid(bus: Sig, width: int) -> list[Sig]:
    return [bus.bits((i + 1) * width - 1, i * width).as_signed() for i in range(COLS)]


def build_opt_system(
    options: SchedulerOptions | None = None,
) -> tuple[Module, Schedule]:
    """Optimized BSV design: row-serial, one row + one column unit.

    The input counter is recycled by a separate ``start_cols`` rule, which
    conflicts with ``accept`` — the scheduling bubble that makes the
    steady-state periodicity 9 instead of 8.
    """
    m = RulesModule("bsv_opt")
    s_tdata = m.input("s_tdata", ROW_BITS)
    s_tvalid = m.input("s_tvalid", 1)
    s_tlast = m.input("s_tlast", 1)
    m_tready = m.input("m_tready", 1)

    mid_w = _mid_width()
    in_cnt = m.reg("in_cnt", 4, signed=False)
    in_sel = m.reg("in_sel", 1, signed=False)
    mid = [
        [m.reg(f"mid{h}_{r}", COLS * mid_w, signed=False) for r in range(ROWS)]
        for h in range(2)
    ]
    col_active = m.reg("col_active", 1, signed=False)
    col_cnt = m.reg("col_cnt", 3, signed=False)
    col_sel = m.reg("col_sel", 1, signed=False)
    out_sel = m.reg("out_sel", 1, signed=False)
    # Pending flags as set/clear toggle pairs: the producing rule
    # (col_step) and the consuming rule (drain) each own one register, so
    # they never conflict and can fire in the same cycle — the BSV idiom
    # for a 1-token credit between concurrently scheduled rules.
    pend_set = [m.reg(f"pend_set{h}", 1, signed=False) for h in range(2)]
    pend_clr = [m.reg(f"pend_clr{h}", 1, signed=False) for h in range(2)]
    out_pend = [pend_set[h] ^ pend_clr[h] for h in range(2)]
    obuf = [
        [m.reg(f"obuf{h}_{r}", OUT_ROW_BITS, signed=False) for r in range(ROWS)]
        for h in range(2)
    ]
    out_cnt = m.reg("out_cnt", 3, signed=False)
    read_sel = m.reg("read_sel", 1, signed=False)
    out_reg = m.reg("out_reg", OUT_ROW_BITS, signed=False)
    out_vld = m.reg("out_vld", 1, signed=False)
    out_last = m.reg("out_last", 1, signed=False)
    err = m.reg("err", 1, signed=False)

    # -- input: one row per cycle through the single row unit ------------
    row_out = _pack(idct_row_hc(_unpack(s_tdata, IN_W)), mid_w)
    can_accept = in_cnt.ne(ROWS)
    accept = m.rule("accept", guard=s_tvalid & can_accept)
    for h in range(2):
        for r in range(ROWS):
            hit = in_sel.eq(h) & in_cnt.eq(r)
            accept.write(mid[h][r], mux(hit, row_out, mid[h][r]))
    accept.write(in_cnt, Sig((in_cnt + 1).resize(4).expr, False))
    accept.write(err, err | (s_tlast.ne(in_cnt.eq(ROWS - 1).resize(1))))

    # -- matrix hand-off: conflicts with accept on in_cnt (the bubble) ---
    start_cols = m.rule("start_cols", guard=in_cnt.eq(ROWS) & ~col_active)
    start_cols.write(in_cnt, 0)
    start_cols.write(in_sel, ~in_sel)
    start_cols.write(col_sel, in_sel)
    start_cols.write(col_active, 1)
    start_cols.write(col_cnt, 0)

    # -- column phase: one column per cycle through the single col unit --
    pend_target = mux(out_sel.eq(0), out_pend[0], out_pend[1])
    col_step = m.rule("col_step", guard=col_active & ~pend_target)
    col_in = [
        mux(
            col_sel.eq(0),
            select(col_cnt, _unpack_mid(mid[0][r], mid_w)),
            select(col_cnt, _unpack_mid(mid[1][r], mid_w)),
        ).as_signed()
        for r in range(ROWS)
    ]
    col_out = idct_col_hc(col_in)
    col_done = col_cnt.eq(COLS - 1)
    for h in range(2):
        for r in range(ROWS):
            elems = _unpack_mid(obuf[h][r], OUT_W)
            updated = [
                mux(col_cnt.eq(c) & out_sel.eq(h), col_out[r], elems[c])
                for c in range(COLS)
            ]
            col_step.write(obuf[h][r], _pack(updated, OUT_W))
    col_step.write(col_cnt, Sig((col_cnt + 1).resize(3).expr, False))
    col_step.write(col_active, mux(col_done, lit(0, 1, False), col_active))
    for h in range(2):
        col_step.write(
            pend_set[h],
            mux(col_done & out_sel.eq(h), ~pend_set[h], pend_set[h]),
        )
    col_step.write(out_sel, mux(col_done, ~out_sel, out_sel))

    # -- output drain ------------------------------------------------------
    pend_read = mux(read_sel.eq(0), out_pend[0], out_pend[1])
    can_emit = ~out_vld | m_tready
    drain = m.rule("drain", guard=pend_read & can_emit)
    picked = mux(
        read_sel.eq(0),
        select(out_cnt, [Sig(b.expr, False) for b in obuf[0]]),
        select(out_cnt, [Sig(b.expr, False) for b in obuf[1]]),
    )
    drain.write(out_reg, picked)
    drain.write(out_vld, 1)
    drain.write(out_last, out_cnt.eq(ROWS - 1).resize(1))
    drain.write(out_cnt, Sig((out_cnt + 1).resize(3).expr, False))
    for h in range(2):
        drain.write(
            pend_clr[h],
            mux(out_cnt.eq(ROWS - 1) & read_sel.eq(h), ~pend_clr[h], pend_clr[h]),
        )
    drain.write(read_sel, mux(out_cnt.eq(ROWS - 1), ~read_sel, read_sel))

    retire = m.rule("retire", guard=out_vld & m_tready)
    retire.write(out_vld, 0)

    m.output("s_tready", can_accept, width=1)
    m.output("m_tdata", Sig(out_reg.expr, False), width=OUT_ROW_BITS)
    m.output("m_tvalid", out_vld, width=1)
    m.output("m_tlast", out_last & out_vld, width=1)
    m.output("error", err, width=1)
    return m.compile(options)


def _spec(style: KernelStyle, latency: int = 0) -> KernelSpec:
    return KernelSpec(style=style, rows=ROWS, cols=COLS, in_width=IN_W,
                      out_width=OUT_W, latency=latency)


def _sources(builder) -> list[SourceArtifact]:
    from ..hc import idct as hc_idct

    return [
        source_of(hc_idct.idct_row_hc, "IdctRow.bsv"),
        source_of(hc_idct.idct_col_hc, "IdctCol.bsv"),
        source_of(builder, f"{builder.__name__}.bsv"),
    ]


@traced_build("rules")
def bsv_initial(options: SchedulerOptions | None = None, config: str = "initial") -> Design:
    top, schedule = build_initial_system(options)
    design = Design(
        name="bsv-initial" if config == "initial" else f"bsv-initial-{config}",
        language="BSV",
        tool="BSC",
        config=config,
        top=top,
        spec=_spec(KernelStyle.COMB_MATRIX),
        sources=_sources(build_initial_system),
    )
    design.meta["schedule"] = schedule
    return design


@traced_build("rules")
def bsv_opt(options: SchedulerOptions | None = None, config: str = "opt") -> Design:
    top, schedule = build_opt_system(options)
    design = Design(
        name="bsv-opt" if config == "opt" else f"bsv-opt-{config}",
        language="BSV",
        tool="BSC",
        config=config,
        top=top,
        spec=_spec(KernelStyle.ROW_SERIAL, latency=17),
        sources=_sources(build_opt_system),
    )
    design.meta["schedule"] = schedule
    return design


def bsc_sweep() -> list[Design]:
    """The paper's 26 BSC configurations (options and code attributes).

    13 urgency permutations x 2 conflict analyses, applied to the
    optimized design — the paper found the settings have "a negligible
    impact on the performance and area", which this sweep reproduces.
    """
    designs = []
    for mode in ("exact", "pessimistic"):
        for seed in range(13):
            options = SchedulerOptions(urgency_seed=seed, conflict_mode=mode)
            designs.append(bsv_opt(options, config=f"sweep-{mode}-{seed}"))
    return designs


def all_designs() -> list[Design]:
    return [bsv_initial(), bsv_opt()]
