"""Verilog-baseline IDCT designs: initial and the two paper optimizations.

* ``initial``  — a naive combinational circuit with eight IDCT_row and
  eight IDCT_col instances behind the row-by-row AXI-Stream adapter (the
  paper's starting point: large, slow, adapter-bound).
* ``opt1``     — one IDCT_row (rows are transformed as they arrive) and
  eight IDCT_col instances: ~1.8x the throughput at ~1/1.7 the area.
* ``opt``      — one IDCT_row and one IDCT_col in a fully row-serial,
  ping-pong-buffered pipeline: double the throughput at ~1/4.6 the area
  (latency grows from 17 to 24 cycles).  The paper's best Verilog design.
"""

from __future__ import annotations

from ...axis.spec import KernelSpec, KernelStyle
from ...axis.wrapper import build_axis_wrapper
from ...rtl import Module, ops
from ...rtl.ir import Expr, Ref, Signal
from ..base import Design, SourceArtifact, source_of, traced_build
from .units import MID_WIDTH, idct_col_unit, idct_row_unit

__all__ = [
    "build_initial_kernel",
    "build_opt1_kernel",
    "build_opt_kernel",
    "verilog_initial",
    "verilog_opt1",
    "verilog_opt",
    "all_designs",
]

ROWS, COLS = 8, 8
IN_W, OUT_W = 12, 9
ROW_BITS = COLS * IN_W            # one input beat
MID_ROW_BITS = COLS * MID_WIDTH   # one row-stage result
OUT_ROW_BITS = COLS * OUT_W       # one output beat


def _mid_slice(bus: Signal, index: int) -> Expr:
    return ops.bits(bus, MID_WIDTH * (index + 1) - 1, MID_WIDTH * index)


def build_initial_kernel() -> Module:
    """Combinational matrix kernel: 8 row units into 8 column units."""
    m = Module("idct_v_initial")
    in_mat = m.input("in_mat", ROWS * ROW_BITS)
    out_mat = m.output("out_mat", ROWS * OUT_ROW_BITS)
    row_unit = idct_row_unit()
    col_unit = idct_col_unit()

    mid_rows: list[Signal] = []
    for r in range(ROWS):
        mid = m.wire(f"mid{r}", MID_ROW_BITS)
        m.instance(
            row_unit,
            f"u_row{r}",
            blk=ops.bits(in_mat, ROW_BITS * (r + 1) - 1, ROW_BITS * r),
            res=mid,
        )
        mid_rows.append(mid)

    col_outs: list[Signal] = []
    for c in range(COLS):
        # Transpose wiring: column c gathers element c of every row result.
        column = ops.cat(*[_mid_slice(mid_rows[r], c) for r in reversed(range(ROWS))])
        out = m.wire(f"colres{c}", OUT_ROW_BITS)
        m.instance(col_unit, f"u_col{c}", blk=column, res=out)
        col_outs.append(out)

    # Second transpose: out_mat[r][c] = col_outs[c] element r.
    rows_out = []
    for r in range(ROWS):
        elements = [
            ops.bits(col_outs[c], OUT_W * (r + 1) - 1, OUT_W * r)
            for c in range(COLS)
        ]
        rows_out.append(ops.cat(*reversed(elements)))
    m.assign(out_mat, ops.cat(*reversed(rows_out)))
    return m


def build_opt1_kernel() -> Module:
    """Row-serial kernel: one row unit at the input, eight column units.

    Each arriving row passes through the single IDCT_row combinationally
    and is registered; when the eighth lands, all eight IDCT_col units
    transform the buffered matrix in one cycle into the output buffer.
    """
    m = Module("idct_v_opt1")
    ce = m.input("ce", 1)
    in_row = m.input("in_row", ROW_BITS)
    in_valid = m.input("in_valid", 1)
    out_row = m.output("out_row", OUT_ROW_BITS)
    out_valid = m.output("out_valid", 1)

    row_unit = idct_row_unit()
    col_unit = idct_col_unit()

    row_res = m.wire("row_res", MID_ROW_BITS)
    m.instance(row_unit, "u_row", blk=Ref(in_row), res=row_res)

    in_cnt = m.reg("in_cnt", 3)
    last_in = m.connect("last_in", 1, ops.eq(in_cnt, ops.const(7, 3)))
    take = m.connect("take", 1, ops.band(Ref(in_valid), Ref(ce)))
    m.set_next(
        in_cnt,
        ops.mux(Ref(in_valid), ops.add(in_cnt, 1), Ref(in_cnt)),
        en=Ref(ce),
    )

    mid_regs: list[Signal] = []
    for r in range(ROWS):
        mid = m.reg(
            f"mid{r}",
            MID_ROW_BITS,
            next=Ref(row_res),
            en=ops.band(take, ops.eq(in_cnt, ops.const(r, 3))),
        )
        mid_regs.append(mid)

    # One cycle after the eighth row is registered, run the column pass.
    mat_full = m.reg("mat_full", 1, next=ops.band(take, last_in), en=Ref(ce))

    col_outs: list[Signal] = []
    for c in range(COLS):
        column = ops.cat(*[_mid_slice(mid_regs[r], c) for r in reversed(range(ROWS))])
        out = m.wire(f"colres{c}", OUT_ROW_BITS)
        m.instance(col_unit, f"u_col{c}", blk=column, res=out)
        col_outs.append(out)
    rows_out = []
    for r in range(ROWS):
        elements = [
            ops.bits(col_outs[c], OUT_W * (r + 1) - 1, OUT_W * r)
            for c in range(COLS)
        ]
        rows_out.append(ops.cat(*reversed(elements)))
    out_buf = m.reg(
        "out_buf",
        ROWS * OUT_ROW_BITS,
        next=ops.cat(*reversed(rows_out)),
        en=ops.band(Ref(ce), Ref(mat_full)),
    )

    # Drain the output buffer row by row.
    out_cnt = m.reg("out_cnt", 4, init=ROWS)
    draining = m.connect("draining", 1, ops.ne(out_cnt, ops.const(ROWS, 4)))
    m.set_next(
        out_cnt,
        ops.mux(
            Ref(mat_full),
            ops.const(0, 4),
            ops.mux(draining, ops.add(out_cnt, 1), Ref(out_cnt)),
        ),
        en=Ref(ce),
    )
    selected = ops.select(
        out_cnt,
        [ops.bits(out_buf, OUT_ROW_BITS * (r + 1) - 1, OUT_ROW_BITS * r)
         for r in range(ROWS)],
        signed=False,
    )
    m.assign(out_row, selected)
    m.assign(out_valid, Ref(draining))
    return m


def build_opt_kernel() -> Module:
    """Fully row-serial kernel: one IDCT_row, one IDCT_col, ping-pong buffers.

    Phase A registers row-transformed input rows into one half of the mid
    buffer; phase B (overlapping the next matrix's phase A) feeds columns of
    the other half through the single IDCT_col into the output ping-pong;
    phase C streams result rows out.  Steady state: one matrix per 8 cycles.
    """
    m = Module("idct_v_opt")
    ce = m.input("ce", 1)
    in_row = m.input("in_row", ROW_BITS)
    in_valid = m.input("in_valid", 1)
    out_row = m.output("out_row", OUT_ROW_BITS)
    out_valid = m.output("out_valid", 1)

    row_unit = idct_row_unit()
    col_unit = idct_col_unit()

    row_res = m.wire("row_res", MID_ROW_BITS)
    m.instance(row_unit, "u_row", blk=Ref(in_row), res=row_res)

    take = m.connect("take", 1, ops.band(Ref(in_valid), Ref(ce)))
    in_cnt = m.reg("in_cnt", 3)
    last_in = m.connect("last_in", 1, ops.eq(in_cnt, ops.const(7, 3)))
    in_sel = m.reg("in_sel", 1)
    m.set_next(in_cnt, ops.mux(Ref(in_valid), ops.add(in_cnt, 1), Ref(in_cnt)), en=Ref(ce))
    m.set_next(
        in_sel,
        ops.mux(ops.band(Ref(in_valid), last_in), ops.bnot(in_sel), Ref(in_sel)),
        en=Ref(ce),
    )

    # Mid ping-pong: 2 halves x 8 rows of row-stage results.
    mid: list[list[Signal]] = [[], []]
    for half in range(2):
        for r in range(ROWS):
            sel_match = ops.eq(in_sel, ops.const(half, 1))
            reg = m.reg(
                f"mid{half}_{r}",
                MID_ROW_BITS,
                next=Ref(row_res),
                en=ops.band(ops.band(take, ops.eq(in_cnt, ops.const(r, 3))), sel_match),
            )
            mid[half].append(reg)

    # Column phase: triggered each time a mid half completes.
    col_active = m.reg("col_active", 1)
    col_cnt = m.reg("col_cnt", 3)
    col_sel = m.reg("col_sel", 1)
    trigger = m.connect("trigger", 1, ops.band(take, last_in))
    last_col = m.connect("last_col", 1, ops.eq(col_cnt, ops.const(7, 3)))
    m.set_next(
        col_active,
        ops.mux(trigger, ops.const(1, 1),
                ops.mux(last_col, ops.const(0, 1), Ref(col_active))),
        en=Ref(ce),
    )
    m.set_next(col_sel, ops.mux(trigger, Ref(in_sel), Ref(col_sel)), en=Ref(ce))
    m.set_next(
        col_cnt,
        ops.mux(Ref(col_active), ops.add(col_cnt, 1), ops.const(0, 3)),
        en=Ref(ce),
    )

    # Column read: element r of the active column, 8:1 mux per row.
    col_in_elems = []
    for r in range(ROWS):
        mux0 = ops.select(col_cnt, [_mid_slice(mid[0][r], c) for c in range(COLS)],
                          signed=False)
        mux1 = ops.select(col_cnt, [_mid_slice(mid[1][r], c) for c in range(COLS)],
                          signed=False)
        col_in_elems.append(ops.mux(ops.eq(col_sel, ops.const(0, 1)), mux0, mux1))
    col_in = m.connect("col_in", MID_ROW_BITS, ops.cat(*reversed(col_in_elems)))
    col_res = m.wire("col_res", OUT_ROW_BITS)
    m.instance(col_unit, "u_col", blk=Ref(col_in), res=col_res)

    # Output ping-pong: column results land column-by-column.
    out_sel = m.reg("out_sel", 1)
    m.set_next(
        out_sel,
        ops.mux(ops.band(Ref(col_active), last_col), ops.bnot(out_sel), Ref(out_sel)),
        en=Ref(ce),
    )
    # Per-element registers with write-enable decode: writing column
    # ``col_cnt`` costs only enable logic, not data muxes.
    obuf_elems: list[list[list[Signal]]] = [
        [[None] * COLS for _ in range(ROWS)] for _ in range(2)  # type: ignore[list-item]
    ]
    for half in range(2):
        for r in range(ROWS):
            elem = ops.bits(col_res, OUT_W * (r + 1) - 1, OUT_W * r)
            for c in range(COLS):
                write_en = ops.band(
                    ops.band(
                        ops.band(Ref(ce), Ref(col_active)),
                        ops.eq(out_sel, ops.const(half, 1)),
                    ),
                    ops.eq(col_cnt, ops.const(c, 3)),
                )
                obuf_elems[half][r][c] = m.reg(
                    f"out{half}_{r}_{c}", OUT_W, next=elem, en=write_en
                )
    obuf: list[list[Expr]] = [[], []]
    for half in range(2):
        for r in range(ROWS):
            obuf[half].append(
                ops.cat(*[Ref(obuf_elems[half][r][c]) for c in reversed(range(COLS))])
            )

    # Output streaming phase.
    out_active = m.reg("out_active", 1)
    out_cnt = m.reg("out_cnt", 3)
    out_done = m.connect("out_done", 1, ops.eq(out_cnt, ops.const(7, 3)))
    finish_cols = m.connect("finish_cols", 1, ops.band(Ref(col_active), last_col))
    m.set_next(
        out_active,
        ops.mux(finish_cols, ops.const(1, 1),
                ops.mux(out_done, ops.const(0, 1), Ref(out_active))),
        en=Ref(ce),
    )
    m.set_next(
        out_cnt,
        ops.mux(Ref(out_active), ops.add(out_cnt, 1), ops.const(0, 3)),
        en=Ref(ce),
    )
    read_sel = m.reg("read_sel", 1)
    m.set_next(read_sel, ops.mux(finish_cols, Ref(out_sel), Ref(read_sel)), en=Ref(ce))

    picked0 = ops.select(out_cnt, list(obuf[0]), signed=False)
    picked1 = ops.select(out_cnt, list(obuf[1]), signed=False)
    m.assign(out_row, ops.mux(ops.eq(read_sel, ops.const(0, 1)), picked0, picked1))
    m.assign(out_valid, Ref(out_active))
    return m


def _comb_spec() -> KernelSpec:
    return KernelSpec(style=KernelStyle.COMB_MATRIX, rows=ROWS, cols=COLS,
                      in_width=IN_W, out_width=OUT_W)


def _row_spec(latency: int) -> KernelSpec:
    return KernelSpec(style=KernelStyle.ROW_SERIAL, rows=ROWS, cols=COLS,
                      in_width=IN_W, out_width=OUT_W, latency=latency)


def _sources(*builders, adapter: bool) -> list[SourceArtifact]:
    from ...axis import wrapper as axis_wrapper
    from . import units

    artifacts = [source_of(units.idct_row_unit, "idct_row.v"),
                 source_of(units.idct_col_unit, "idct_col.v")]
    for builder in builders:
        artifacts.append(source_of(builder, f"{builder.__name__}.v"))
    if adapter:
        # The hand-written row-by-row AXI-Stream adapter, as the paper's
        # Verilog flow requires (L_AXI).
        artifacts.append(
            source_of(axis_wrapper._build_matrix_wrapper, "axis_adapter.v")
        )
    return artifacts


@traced_build("vlog")
def verilog_initial() -> Design:
    kernel = build_initial_kernel()
    spec = _comb_spec()
    top = build_axis_wrapper(kernel, spec, name="verilog_initial_top")
    return Design(
        name="verilog-initial",
        language="Verilog",
        tool="Vivado",
        config="initial",
        top=top,
        spec=spec,
        sources=_sources(build_initial_kernel, adapter=True),
    )


@traced_build("vlog")
def verilog_opt1() -> Design:
    kernel = build_opt1_kernel()
    spec = _row_spec(latency=2)
    top = build_axis_wrapper(kernel, spec, name="verilog_opt1_top")
    return Design(
        name="verilog-opt1",
        language="Verilog",
        tool="Vivado",
        config="opt1",
        top=top,
        spec=spec,
        sources=_sources(build_opt1_kernel, adapter=True),
    )


@traced_build("vlog")
def verilog_opt() -> Design:
    kernel = build_opt_kernel()
    spec = _row_spec(latency=16)
    top = build_axis_wrapper(kernel, spec, name="verilog_opt_top")
    return Design(
        name="verilog-opt",
        language="Verilog",
        tool="Vivado",
        config="opt",
        top=top,
        spec=spec,
        sources=_sources(build_opt_kernel, adapter=True),
    )


def all_designs() -> list[Design]:
    """Every Verilog-baseline design point (for the DSE figure)."""
    return [verilog_initial(), verilog_opt1(), verilog_opt()]
