"""Verilog-baseline frontend (the paper's hand-written reference flow)."""

from .designs import (
    all_designs,
    build_initial_kernel,
    build_opt1_kernel,
    build_opt_kernel,
    verilog_initial,
    verilog_opt,
    verilog_opt1,
)
from .units import idct_col_unit, idct_row_unit

__all__ = [
    "idct_row_unit",
    "idct_col_unit",
    "build_initial_kernel",
    "build_opt1_kernel",
    "build_opt_kernel",
    "verilog_initial",
    "verilog_opt1",
    "verilog_opt",
    "all_designs",
]
