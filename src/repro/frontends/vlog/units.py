"""Verilog-baseline IDCT functional units.

This frontend plays the paper's role of the hand-written Verilog reference:
a flat structural description with explicit fixed-width arithmetic, no
width inference, every wire spelled out.  The other frontends are measured
against it.  Where the ISO C code uses 32-bit ints (which IEEE-1180 L=300
stimuli can overflow in the column stage), the hardware uses just-wide-
enough words — 34 bits in the row datapath, 38 in the column datapath —
so no legal 12-bit input ever wraps.

``idct_row_unit`` and ``idct_col_unit`` are straight transcriptions of the
Chen-Wang butterfly from :mod:`repro.idct.reference` into combinational
logic, bit-exact to the golden model on the full 12-bit input space (the
test suite proves this on random blocks).
"""

from __future__ import annotations

from ...idct.constants import W1, W2, W3, W5, W6, W7
from ...rtl import Module, ops
from ...rtl.ir import Expr

__all__ = ["idct_row_unit", "idct_col_unit", "MID_WIDTH", "ROW_WORD", "COL_WORD"]

#: Row datapath word: covers every intermediate for 12-bit inputs.
ROW_WORD = 34
#: Column datapath word: covers every intermediate for 19-bit mid values.
COL_WORD = 38
#: Row-stage results fit in 19 signed bits for any 12-bit input block.
MID_WIDTH = 19


def _mul(value: Expr, coeff: int, word: int) -> Expr:
    """Fixed-word product with a constant (truncated to the datapath word)."""
    return ops.trunc(ops.mul(value, coeff, signed=True), word)


def _sar(value: Expr, amount: int) -> Expr:
    """Arithmetic shift right (C ``>>`` on a signed int)."""
    return ops.ashr(value, amount)


def _shl(value: Expr, amount: int, word: int) -> Expr:
    return ops.trunc(ops.shl(value, amount), word)


def idct_row_unit() -> Module:
    """Row (horizontal) IDCT: 8 x 12-bit in, 8 x 19-bit out, combinational."""
    m = Module("idct_row")
    blk = m.input("blk", 8 * 12)
    res = m.output("res", 8 * MID_WIDTH)

    b = [ops.sext(ops.bits(blk, 12 * (i + 1) - 1, 12 * i), ROW_WORD) for i in range(8)]

    x1 = m.connect("x1", ROW_WORD, _shl(b[4], 11, ROW_WORD))
    x2 = m.connect("x2", ROW_WORD, b[6])
    x3 = m.connect("x3", ROW_WORD, b[2])
    x4 = m.connect("x4", ROW_WORD, b[1])
    x5 = m.connect("x5", ROW_WORD, b[7])
    x6 = m.connect("x6", ROW_WORD, b[5])
    x7 = m.connect("x7", ROW_WORD, b[3])
    x0 = m.connect("x0", ROW_WORD, ops.add(_shl(b[0], 11, ROW_WORD), 128))

    # first stage
    x8a = m.connect("x8a", ROW_WORD, _mul(ops.add(x4, x5), W7, ROW_WORD))
    x4a = m.connect("x4a", ROW_WORD, ops.add(x8a, _mul(x4, W1 - W7, ROW_WORD)))
    x5a = m.connect("x5a", ROW_WORD, ops.sub(x8a, _mul(x5, W1 + W7, ROW_WORD)))
    x8b = m.connect("x8b", ROW_WORD, _mul(ops.add(x6, x7), W3, ROW_WORD))
    x6a = m.connect("x6a", ROW_WORD, ops.sub(x8b, _mul(x6, W3 - W5, ROW_WORD)))
    x7a = m.connect("x7a", ROW_WORD, ops.sub(x8b, _mul(x7, W3 + W5, ROW_WORD)))

    # second stage
    x8c = m.connect("x8c", ROW_WORD, ops.add(x0, x1))
    x0a = m.connect("x0a", ROW_WORD, ops.sub(x0, x1))
    x1a = m.connect("x1a", ROW_WORD, _mul(ops.add(x3, x2), W6, ROW_WORD))
    x2a = m.connect("x2a", ROW_WORD, ops.sub(x1a, _mul(x2, W2 + W6, ROW_WORD)))
    x3a = m.connect("x3a", ROW_WORD, ops.add(x1a, _mul(x3, W2 - W6, ROW_WORD)))
    x1b = m.connect("x1b", ROW_WORD, ops.add(x4a, x6a))
    x4b = m.connect("x4b", ROW_WORD, ops.sub(x4a, x6a))
    x6b = m.connect("x6b", ROW_WORD, ops.add(x5a, x7a))
    x5b = m.connect("x5b", ROW_WORD, ops.sub(x5a, x7a))

    # third stage
    x7b = m.connect("x7b", ROW_WORD, ops.add(x8c, x3a))
    x8d = m.connect("x8d", ROW_WORD, ops.sub(x8c, x3a))
    x3b = m.connect("x3b", ROW_WORD, ops.add(x0a, x2a))
    x0b = m.connect("x0b", ROW_WORD, ops.sub(x0a, x2a))
    x2b = m.connect(
        "x2b", ROW_WORD, _sar(ops.add(_mul(ops.add(x4b, x5b), 181, ROW_WORD), 128), 8)
    )
    x4c = m.connect(
        "x4c", ROW_WORD, _sar(ops.add(_mul(ops.sub(x4b, x5b), 181, ROW_WORD), 128), 8)
    )

    # fourth stage
    outs = [
        _sar(ops.add(x7b, x1b), 8),
        _sar(ops.add(x3b, x2b), 8),
        _sar(ops.add(x0b, x4c), 8),
        _sar(ops.add(x8d, x6b), 8),
        _sar(ops.sub(x8d, x6b), 8),
        _sar(ops.sub(x0b, x4c), 8),
        _sar(ops.sub(x3b, x2b), 8),
        _sar(ops.sub(x7b, x1b), 8),
    ]
    packed = [ops.trunc(o, MID_WIDTH) for o in outs]
    m.assign(res, ops.cat(*reversed(packed)))
    return m


def _iclip(value: Expr) -> Expr:
    """Clamp a 32-bit value to the signed 9-bit output range."""
    over = ops.gt(value, 255, signed=True)
    under = ops.lt(value, -256, signed=True)
    clipped = ops.mux(over, ops.const(255, COL_WORD),
                      ops.mux(under, ops.const(-256, COL_WORD), value))
    return ops.trunc(clipped, 9)


def idct_col_unit() -> Module:
    """Column (vertical) IDCT: 8 x 19-bit in, 8 x 9-bit clipped out."""
    m = Module("idct_col")
    blk = m.input("blk", 8 * MID_WIDTH)
    res = m.output("res", 8 * 9)

    b = [
        ops.sext(ops.bits(blk, MID_WIDTH * (i + 1) - 1, MID_WIDTH * i), COL_WORD)
        for i in range(8)
    ]

    x1 = m.connect("x1", COL_WORD, _shl(b[4], 8, COL_WORD))
    x2 = m.connect("x2", COL_WORD, b[6])
    x3 = m.connect("x3", COL_WORD, b[2])
    x4 = m.connect("x4", COL_WORD, b[1])
    x5 = m.connect("x5", COL_WORD, b[7])
    x6 = m.connect("x6", COL_WORD, b[5])
    x7 = m.connect("x7", COL_WORD, b[3])
    x0 = m.connect("x0", COL_WORD, ops.add(_shl(b[0], 8, COL_WORD), 8192))

    # first stage
    x8a = m.connect("x8a", COL_WORD, ops.add(_mul(ops.add(x4, x5), W7, COL_WORD), 4))
    x4a = m.connect("x4a", COL_WORD, _sar(ops.add(x8a, _mul(x4, W1 - W7, COL_WORD)), 3))
    x5a = m.connect("x5a", COL_WORD, _sar(ops.sub(x8a, _mul(x5, W1 + W7, COL_WORD)), 3))
    x8b = m.connect("x8b", COL_WORD, ops.add(_mul(ops.add(x6, x7), W3, COL_WORD), 4))
    x6a = m.connect("x6a", COL_WORD, _sar(ops.sub(x8b, _mul(x6, W3 - W5, COL_WORD)), 3))
    x7a = m.connect("x7a", COL_WORD, _sar(ops.sub(x8b, _mul(x7, W3 + W5, COL_WORD)), 3))

    # second stage
    x8c = m.connect("x8c", COL_WORD, ops.add(x0, x1))
    x0a = m.connect("x0a", COL_WORD, ops.sub(x0, x1))
    x1a = m.connect("x1a", COL_WORD, ops.add(_mul(ops.add(x3, x2), W6, COL_WORD), 4))
    x2a = m.connect("x2a", COL_WORD, _sar(ops.sub(x1a, _mul(x2, W2 + W6, COL_WORD)), 3))
    x3a = m.connect("x3a", COL_WORD, _sar(ops.add(x1a, _mul(x3, W2 - W6, COL_WORD)), 3))
    x1b = m.connect("x1b", COL_WORD, ops.add(x4a, x6a))
    x4b = m.connect("x4b", COL_WORD, ops.sub(x4a, x6a))
    x6b = m.connect("x6b", COL_WORD, ops.add(x5a, x7a))
    x5b = m.connect("x5b", COL_WORD, ops.sub(x5a, x7a))

    # third stage
    x7b = m.connect("x7b", COL_WORD, ops.add(x8c, x3a))
    x8d = m.connect("x8d", COL_WORD, ops.sub(x8c, x3a))
    x3b = m.connect("x3b", COL_WORD, ops.add(x0a, x2a))
    x0b = m.connect("x0b", COL_WORD, ops.sub(x0a, x2a))
    x2b = m.connect(
        "x2b", COL_WORD, _sar(ops.add(_mul(ops.add(x4b, x5b), 181, COL_WORD), 128), 8)
    )
    x4c = m.connect(
        "x4c", COL_WORD, _sar(ops.add(_mul(ops.sub(x4b, x5b), 181, COL_WORD), 128), 8)
    )

    # fourth stage with clipping
    outs = [
        _iclip(_sar(ops.add(x7b, x1b), 14)),
        _iclip(_sar(ops.add(x3b, x2b), 14)),
        _iclip(_sar(ops.add(x0b, x4c), 14)),
        _iclip(_sar(ops.add(x8d, x6b), 14)),
        _iclip(_sar(ops.sub(x8d, x6b), 14)),
        _iclip(_sar(ops.sub(x0b, x4c), 14)),
        _iclip(_sar(ops.sub(x3b, x2b), 14)),
        _iclip(_sar(ops.sub(x7b, x1b), 14)),
    ]
    m.assign(res, ops.cat(*reversed(outs)))
    return m
