"""Shared frontend plumbing: the Design record and element packing helpers.

A :class:`Design` is what every frontend produces and what the evaluation
harness consumes: a named, AXI-wrapped top module plus the source artifacts
whose lines of code the paper's L metric counts.
"""

from __future__ import annotations

import functools
import inspect
from dataclasses import dataclass, field
from typing import Callable

from ..axis.spec import KernelSpec
from ..obs import trace as obs_trace
from ..rtl.ir import Expr, Signal, Slice
from ..rtl.module import Module
from ..rtl import ops

__all__ = ["Design", "SourceArtifact", "unpack_elements", "pack_elements",
           "source_of", "traced_build"]


@dataclass(frozen=True)
class SourceArtifact:
    """One piece of counted source: a label and its text."""

    label: str
    text: str
    kind: str = "code"  # "code" | "config" | "pragma"


@dataclass
class Design:
    """An evaluated design point: a wrapped top plus its measured sources."""

    name: str           # e.g. "verilog-initial"
    language: str       # Table I language column
    tool: str           # Table I tool column
    config: str         # "initial" / "opt" / sweep identifier
    top: Module         # AXI-Stream-wrapped top module (or PCIe for MaxJ)
    spec: KernelSpec
    sources: list[SourceArtifact] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def is_optimized(self) -> bool:
        return self.config != "initial"


def traced_build(frontend: str):
    """Wrap a design factory in a ``frontend.build`` span.

    The produced :class:`Design`'s name/config are attached to the span so
    the profiling report can attribute build time per design point.  While
    tracing is disabled the wrapper costs one flag check.
    """
    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with obs_trace.span("frontend.build", frontend=frontend,
                                factory=fn.__name__) as span:
                result = fn(*args, **kwargs)
                if isinstance(result, Design):
                    span.set(design=result.name, config=result.config)
                return result
        return wrapper
    return decorate


def source_of(obj: Callable | type, label: str, kind: str = "code") -> SourceArtifact:
    """Capture a Python callable's source text as a counted artifact."""
    return SourceArtifact(label=label, text=inspect.getsource(obj), kind=kind)


def unpack_elements(bus: Signal | Expr, count: int, width: int) -> list[Expr]:
    """Split a packed bus into ``count`` element expressions (LSB first)."""
    expr = ops.as_expr(bus)
    return [Slice(expr, (i + 1) * width - 1, i * width) for i in range(count)]


def pack_elements(elements: list[Expr], width: int) -> Expr:
    """Pack element expressions (LSB first) into one bus, resizing each."""
    sized = [ops.resize(e, width, signed=True) for e in elements]
    return ops.cat(*reversed(sized))
